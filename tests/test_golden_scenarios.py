"""Golden-regression tests: every registered scenario's numbers are pinned.

Each scenario's key scalars (per-workload QoS floor, efficiency-optimum
frequencies per scope, best QoS-respecting point, peak efficiency,
energy per giga-instruction) are checked in as JSON under
``tests/golden/``.  Any refactor that drifts a reproduced figure's
numbers fails here with a field-level diff.

Regenerate the fixtures after an *intentional* model change with::

    PYTHONPATH=src python -m pytest tests/test_golden_scenarios.py --update-golden

and review the fixture diff like any other code change.
"""

import json
import math

import pytest

from repro import obs
from repro.scenarios import scenario_names

REL_TOL = 1e-9


def _diffs(actual, expected, path=""):
    """Recursive comparison with a tight relative tolerance on floats."""
    if isinstance(expected, dict) or isinstance(actual, dict):
        if not (isinstance(actual, dict) and isinstance(expected, dict)):
            return [f"{path}: type mismatch {actual!r} vs {expected!r}"]
        problems = []
        for key in sorted(set(actual) | set(expected)):
            if key not in actual:
                problems.append(f"{path}.{key}: missing from actual")
            elif key not in expected:
                problems.append(f"{path}.{key}: not in golden fixture")
            else:
                problems.extend(_diffs(actual[key], expected[key], f"{path}.{key}"))
        return problems
    if isinstance(expected, list) or isinstance(actual, list):
        if not (isinstance(actual, list) and isinstance(expected, list)):
            return [f"{path}: type mismatch {actual!r} vs {expected!r}"]
        if len(actual) != len(expected):
            return [f"{path}: length {len(actual)} vs {len(expected)}"]
        problems = []
        for index, (a, e) in enumerate(zip(actual, expected)):
            problems.extend(_diffs(a, e, f"{path}[{index}]"))
        return problems
    if isinstance(expected, float) or isinstance(actual, float):
        if actual is None or expected is None:
            return [] if actual == expected else [f"{path}: {actual!r} vs {expected!r}"]
        if math.isclose(float(actual), float(expected), rel_tol=REL_TOL, abs_tol=0.0):
            return []
        return [f"{path}: {actual!r} drifted from golden {expected!r}"]
    if actual != expected:
        return [f"{path}: {actual!r} vs golden {expected!r}"]
    return []


@pytest.mark.parametrize("name", scenario_names())
def test_golden_scenario_scalars(name, scenario_results, update_golden, golden_dir):
    result = scenario_results(name)
    scalars = result.key_scalars()
    path = golden_dir / f"{name}.json"

    if update_golden:
        golden_dir.mkdir(exist_ok=True)
        path.write_text(json.dumps(scalars, indent=2, sort_keys=True) + "\n")

    assert path.exists(), (
        f"golden fixture {path} is missing; generate it with "
        "pytest --update-golden"
    )
    expected = json.loads(path.read_text())
    obs.count("golden.comparisons")  # visible when a capture is open
    problems = _diffs(scalars, expected)
    assert not problems, (
        f"scenario {name!r} drifted from its golden fixture "
        f"({len(problems)} fields):\n  " + "\n  ".join(problems)
    )


def test_no_stale_golden_fixtures(golden_dir, scenario_registry):
    """Every fixture on disk corresponds to a registered scenario."""
    fixtures = {path.stem for path in golden_dir.glob("*.json")}
    registered = set(scenario_registry.names())
    stale = fixtures - registered
    assert not stale, f"golden fixtures without a registered scenario: {sorted(stale)}"
    missing = registered - fixtures
    assert not missing, (
        f"registered scenarios without a golden fixture: {sorted(missing)}; "
        "generate them with pytest --update-golden"
    )
