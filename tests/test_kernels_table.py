"""Tests for the kernels' frozen frequency tables.

Covers the ISSUE's edge-case checklist -- single-frequency grids,
unreachable frequencies excluded, NaN-free columns, equality with the
per-point ``evaluate`` path -- plus the exactly-once
``evaluated_points`` contract under bulk table builds.
"""

import numpy as np
import pytest

from repro.core.config import default_server
from repro.dvfs import GovernorSimulator, LoadTrace
from repro.fleet import FleetSimulator
from repro.kernels import FrequencyTable
from repro.sweep.context import ModelContext
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import WEB_SEARCH


# -- construction and edge cases --------------------------------------------------------


def test_table_matches_per_point_evaluate(default_context):
    """Every column equals the record fields, workload by workload."""
    for workload in (WEB_SEARCH, VMS_LOW_MEM):
        table = default_context.frequency_table(workload)
        assert len(table) == len(default_context.reachable_frequencies())
        for index, frequency in enumerate(table.frequencies()):
            record = default_context.evaluate(workload, frequency)
            assert table.power_w[index] == record.server_power
            assert table.capacity_uips[index] == record.chip_uips
            assert bool(table.qos_ok[index]) == record.meets_qos
            expected_metric = (
                record.degradation
                if record.degradation is not None
                else record.latency_normalized_to_qos
            )
            if expected_metric is None:
                assert np.isnan(table.qos_metric[index])
            else:
                assert table.qos_metric[index] == pytest.approx(
                    expected_metric, rel=1e-12
                )
            if record.latency_seconds is None:
                assert np.isnan(table.latency_seconds[index])
            else:
                assert table.latency_seconds[index] == record.latency_seconds


def test_table_columns_are_nan_free_and_frozen(default_context):
    table = default_context.frequency_table(WEB_SEARCH)
    for name in ("frequencies_hz", "capacity_uips", "power_w"):
        column = getattr(table, name)
        assert np.all(np.isfinite(column)), name
        with pytest.raises(ValueError):
            column[0] = 0.0
    assert np.all(table.capacity_uips > 0)
    assert np.all(table.energy_per_instruction_j > 0)
    assert np.all(np.isfinite(table.energy_per_instruction_j))


def test_single_frequency_grid(default_context):
    frequency = default_context.reachable_frequencies()[0]
    table = default_context.frequency_table(WEB_SEARCH, frequencies=(frequency,))
    assert len(table) == 1
    assert table.nominal_index == 0
    assert table.nominal_frequency_hz == frequency
    assert table.min_frequency_hz == frequency
    # Selection collapses to index 0 or the (same) nominal fallback.
    indices = table.lowest_covering_indices(np.array([0.0, 1e30]))
    assert indices[0] == 0
    assert indices[1] == -1  # beyond capacity: caller falls back to nominal
    # A single-point grid still replays every governor.
    simulator = GovernorSimulator(
        default_context, WEB_SEARCH, frequencies=(frequency,)
    )
    trace = LoadTrace.constant(0.4, steps=4)
    replay = simulator.replay(trace, "conservative")
    assert set(replay.column("frequency_hz")) == {frequency}


def test_unreachable_frequencies_are_excluded(default_context):
    grid = default_context.reachable_frequencies()
    table = default_context.frequency_table(
        WEB_SEARCH, frequencies=(grid[0], 100e9)
    )
    assert table.frequencies() == (grid[0],)


def test_fully_unreachable_grid_is_rejected(default_context):
    with pytest.raises(ValueError, match="no reachable frequency"):
        default_context.frequency_table(WEB_SEARCH, frequencies=(100e9,))


def test_constructor_validation():
    with pytest.raises(ValueError, match="at least one frequency"):
        FrequencyTable(
            workload_name="w",
            frequencies_hz=[],
            capacity_uips=[],
            power_w=[],
            qos_metric=[],
            qos_ok=[],
            latency_seconds=[],
        )
    with pytest.raises(ValueError, match="strictly ascending"):
        FrequencyTable(
            workload_name="w",
            frequencies_hz=[2.0, 1.0],
            capacity_uips=[1.0, 1.0],
            power_w=[1.0, 1.0],
            qos_metric=[0.0, 0.0],
            qos_ok=[True, True],
            latency_seconds=[0.0, 0.0],
        )
    with pytest.raises(ValueError, match="power_w"):
        FrequencyTable(
            workload_name="w",
            frequencies_hz=[1.0, 2.0],
            capacity_uips=[1.0, 2.0],
            power_w=[1.0],
            qos_metric=[0.0, 0.0],
            qos_ok=[True, True],
            latency_seconds=[0.0, 0.0],
        )
    with pytest.raises(ValueError, match="must be finite"):
        FrequencyTable(
            workload_name="w",
            frequencies_hz=[1.0, 2.0],
            capacity_uips=[1.0, float("nan")],
            power_w=[1.0, 2.0],
            qos_metric=[0.0, 0.0],
            qos_ok=[True, True],
            latency_seconds=[0.0, 0.0],
        )
    with pytest.raises(ValueError, match="qos_ok"):
        FrequencyTable(
            workload_name="w",
            frequencies_hz=[1.0, 2.0],
            capacity_uips=[1.0, 2.0],
            power_w=[1.0, 2.0],
            qos_metric=[0.0, 0.0],
            qos_ok=[True],
            latency_seconds=[0.0, 0.0],
        )


def test_table_is_memoized_per_workload_and_grid(default_context):
    first = default_context.frequency_table(WEB_SEARCH)
    assert default_context.frequency_table(WEB_SEARCH) is first
    grid = default_context.reachable_frequencies()[:2]
    sub = default_context.frequency_table(WEB_SEARCH, frequencies=grid)
    assert sub is not first
    assert default_context.frequency_table(WEB_SEARCH, frequencies=grid) is sub


# -- the exactly-once accounting contract -----------------------------------------------


def test_evaluated_points_counts_table_builds_exactly_once():
    """Bulk table builds, replays and fleets never double-count points.

    Regression for the kernels' accounting contract: every grid point
    is resolved through the context's memoized ``evaluate``, so one
    workload's whole kernel stack -- repeated table builds, platform
    construction, kernel and reference replays, fleet runs -- costs
    exactly one evaluation per reachable grid frequency.
    """
    context = ModelContext(default_server())
    assert context.evaluated_points == 0
    table = context.frequency_table(WEB_SEARCH)
    grid_points = len(table)
    assert grid_points == len(context.reachable_frequencies())
    assert context.evaluated_points == grid_points

    context.frequency_table(WEB_SEARCH)  # rebuild: memoized, no recount
    assert context.evaluated_points == grid_points

    simulator = GovernorSimulator(context, WEB_SEARCH)
    trace = LoadTrace.diurnal()
    simulator.replay(trace, "qos_tracker")
    simulator.replay(trace, "qos_tracker", reference=True)
    assert context.evaluated_points == grid_points

    fleet = FleetSimulator(context, WEB_SEARCH, fleet_size=3)
    fleet.run(trace, "pack")
    fleet.run(trace, "pack", reference=True)
    assert context.evaluated_points == grid_points

    # A second workload adds exactly its own grid, nothing more.
    context.frequency_table(VMS_LOW_MEM)
    assert context.evaluated_points == 2 * grid_points
