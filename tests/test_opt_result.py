"""Optimizer results: the Pareto frontier and the trials table.

The frontier tests pin the skyline contract on hand-built points: no
returned point is dominated, the point set is stable under duplication
and permutation of the trials, and degenerate inputs (zero points,
NaN coordinates, mismatched axes) are rejected with precise errors.
The :class:`OptResult` tests run on synthetic trials so the ranking and
serialisation logic is exercised without any replays.
"""

import math

import pytest

from repro.opt import (
    OptResult,
    ParamSpace,
    PolicyConfig,
    Trial,
    pareto_frontier,
    trial_rank_key,
)


def _dominates(a, b):
    """True when point ``a`` strictly dominates ``b`` (both minimised)."""
    return a[0] <= b[0] and a[1] <= b[1] and a != b


class TestParetoFrontier:
    def test_single_point_is_the_frontier(self):
        assert pareto_frontier([0], [10.0]) == (0,)

    def test_no_frontier_point_dominated(self):
        violations = [0, 0, 2, 3, 1, 5, 0]
        energy = [9.0, 7.0, 5.0, 4.0, 6.0, 3.0, 8.0]
        frontier = pareto_frontier(violations, energy)
        points = [(violations[i], energy[i]) for i in frontier]
        everything = list(zip(violations, energy))
        for point in points:
            assert not any(_dominates(other, point) for other in everything)

    def test_dominated_points_dropped(self):
        # (1, 9) is dominated by (0, 7); (2, 8) by both.
        frontier = pareto_frontier([0, 1, 2], [7.0, 9.0, 8.0])
        assert frontier == (0,)

    def test_all_dominated_by_one_point_collapses_to_it(self):
        frontier = pareto_frontier([2, 0, 1], [5.0, 1.0, 3.0])
        assert frontier == (1,)

    def test_stable_under_duplicated_trials(self):
        violations = [0, 1, 0, 1, 2]
        energy = [5.0, 3.0, 5.0, 3.0, 1.0]
        frontier = pareto_frontier(violations, energy)
        points = {(violations[i], energy[i]) for i in frontier}
        assert points == {(0, 5.0), (1, 3.0), (2, 1.0)}
        # First occurrence wins for duplicated points.
        assert frontier == (0, 1, 4)

    def test_point_set_invariant_under_permutation(self):
        violations = [0, 3, 1, 0, 2]
        energy = [8.0, 2.0, 5.0, 9.0, 4.0]
        baseline = {
            (violations[i], energy[i])
            for i in pareto_frontier(violations, energy)
        }
        order = [4, 0, 3, 1, 2]
        permuted_v = [violations[i] for i in order]
        permuted_e = [energy[i] for i in order]
        permuted = {
            (permuted_v[i], permuted_e[i])
            for i in pareto_frontier(permuted_v, permuted_e)
        }
        assert permuted == baseline

    def test_zero_trials_rejected(self):
        with pytest.raises(
            ValueError,
            match=r"cannot compute a Pareto frontier over zero trials",
        ):
            pareto_frontier([], [])

    def test_nan_coordinate_rejected(self):
        with pytest.raises(
            ValueError, match=r"point 1 has a NaN coordinate"
        ):
            pareto_frontier([0, 1], [2.0, math.nan])

    def test_mismatched_axes_rejected(self):
        with pytest.raises(
            ValueError, match=r"one energy per violation count"
        ):
            pareto_frontier([0, 1], [2.0])


def _config(fleet_size=4, governor="qos_tracker", routing="pack"):
    return PolicyConfig(
        governor=governor,
        routing=routing,
        fleet_size=fleet_size,
        fill_fraction=0.75,
    )


def _trial(config, violations, cost, energy_per_request, rung=0, steps=8):
    feasible = violations == 0
    summary = {
        "violation_count": violations,
        "queue_violation_count": 0,
        "total_energy_j": energy_per_request * 1000.0,
        "energy_per_request_j": energy_per_request,
        "mean_qps": 100.0,
    }
    economics = {
        "cost_per_qps_year": cost,
        "cost_per_million_requests": cost / 10.0,
    }
    return Trial(
        config=config,
        rung=rung,
        steps=steps,
        summary=summary,
        economics=economics,
        objective=cost if feasible else math.inf,
        feasible=feasible,
    )


SPACE = ParamSpace(fleet_sizes=(2, 4, 6))


class TestTrialRanking:
    def test_feasible_always_precedes_infeasible(self):
        cheap_violating = _trial(_config(2), violations=3, cost=0.1,
                                 energy_per_request=0.01)
        pricey_clean = _trial(_config(4), violations=0, cost=9.0,
                              energy_per_request=0.02)
        assert trial_rank_key(pricey_clean) < trial_rank_key(cheap_violating)

    def test_feasible_ranked_by_cost(self):
        a = _trial(_config(2), 0, cost=2.0, energy_per_request=0.01)
        b = _trial(_config(4), 0, cost=1.0, energy_per_request=0.02)
        assert trial_rank_key(b) < trial_rank_key(a)

    def test_ties_broken_by_config_key(self):
        a = _trial(_config(2), 0, cost=1.0, energy_per_request=0.01)
        b = _trial(_config(4), 0, cost=1.0, energy_per_request=0.01)
        assert trial_rank_key(a) < trial_rank_key(b)


class TestOptResult:
    def _result(self, trials):
        return OptResult(
            space=SPACE,
            strategy="grid",
            trials=trials,
            full_steps=8,
            evaluations=len(trials),
            full_length_evaluations=len(trials),
        )

    def test_zero_trials_rejected(self):
        with pytest.raises(
            ValueError, match=r"cannot build an OptResult from zero trials"
        ):
            self._result([])

    def test_short_final_rung_trial_rejected(self):
        with pytest.raises(ValueError, match=r"ran 4 steps, not the full 8"):
            self._result(
                [_trial(_config(2), 0, 1.0, 0.01, steps=4)]
            )

    def test_best_is_cheapest_feasible(self):
        trials = [
            _trial(_config(2), 2, cost=0.5, energy_per_request=0.01),
            _trial(_config(4), 0, cost=2.0, energy_per_request=0.03),
            _trial(_config(6), 0, cost=1.5, energy_per_request=0.05),
        ]
        result = self._result(trials)
        assert result.best_index == 2
        assert result.best_config.fleet_size == 6

    def test_frontier_over_final_rung_only(self):
        trials = [
            # Cheap prefix rung: would dominate everything if counted.
            _trial(_config(2), 0, cost=0.1, energy_per_request=0.001,
                   rung=0, steps=4),
            _trial(_config(2), 0, cost=1.0, energy_per_request=0.02,
                   rung=1, steps=8),
            _trial(_config(4), 1, cost=0.9, energy_per_request=0.01,
                   rung=1, steps=8),
        ]
        result = OptResult(
            space=SPACE,
            strategy="halving",
            trials=trials,
            full_steps=8,
            evaluations=3,
            full_length_evaluations=2,
        )
        assert result.final_indices == (1, 2)
        assert set(result.frontier_indices) == {1, 2}

    def test_columns_are_frozen_and_row_aligned(self):
        trials = [
            _trial(_config(2), 0, cost=1.0, energy_per_request=0.02),
            _trial(_config(4), 3, cost=0.5, energy_per_request=0.01),
        ]
        columns = self._result(trials).columns
        assert list(columns["fleet_size"]) == [2, 4]
        assert list(columns["violation_count"]) == [0, 3]
        assert list(columns["feasible"]) == [True, False]
        assert math.isinf(columns["objective"][1])
        with pytest.raises(ValueError):
            columns["fleet_size"][0] = 99

    def test_trial_dicts_mark_exactly_one_best(self):
        trials = [
            _trial(_config(2), 0, cost=1.0, energy_per_request=0.02),
            _trial(_config(4), 0, cost=0.5, energy_per_request=0.01),
        ]
        rows = self._result(trials).trial_dicts()
        assert [row["best"] for row in rows] == [False, True]
        assert rows[1]["label"] == _config(4).label()

    def test_as_dict_pins_optimum_counters_and_frontier(self):
        trials = [
            _trial(_config(2), 0, cost=1.0, energy_per_request=0.02),
            _trial(_config(4), 1, cost=0.5, energy_per_request=0.01),
        ]
        data = self._result(trials).as_dict()
        assert data["strategy"] == "grid"
        assert data["trial_count"] == 2
        assert data["best"]["config"]["fleet_size"] == 2
        assert data["best"]["violation_count"] == 0
        assert data["frontier_metric"] == "energy_per_request_j"
        # Both points survive: (0 viol, 0.02) and (1 viol, 0.01).
        assert len(data["frontier"]) == 2
        assert "wall_s" not in data

    def test_frontier_metric_falls_back_to_total_energy(self):
        trial = _trial(_config(2), 0, cost=1.0, energy_per_request=0.02)
        no_requests = Trial(
            config=_config(4),
            rung=0,
            steps=8,
            summary={**trial.summary, "energy_per_request_j": None},
            economics=trial.economics,
            objective=1.0,
            feasible=True,
        )
        result = self._result([trial, no_requests])
        assert result.frontier_metric == "total_energy_j"
