"""Failure-injection and edge-case tests across the library."""

import pytest

from repro.core.config import ServerConfiguration, default_server
from repro.core.consolidation import ConsolidationAnalyzer
from repro.core.efficiency import EfficiencyAnalyzer, EfficiencyScope
from repro.core.qos import QosAnalyzer
from repro.dram.commands import MemoryRequest, RequestType
from repro.power.dram_power import MemoryOrganization, MemoryPowerModel
from repro.technology.a57_model import CortexA57PowerModel
from repro.technology.process import BULK_28NM
from repro.utils.units import ghz, mhz
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import DATA_SERVING


def test_bulk_server_has_reduced_frequency_grid():
    """A bulk-technology server cannot reach the lowest NTC grid points."""
    configuration = default_server().with_technology(BULK_28NM)
    analyzer = EfficiencyAnalyzer(configuration)
    reachable = analyzer.reachable_frequencies()
    assert min(reachable) >= mhz(100)
    # Bulk cannot use the 100MHz point that FD-SOI reaches at 0.5V...
    fdsoi_reachable = EfficiencyAnalyzer(default_server()).reachable_frequencies()
    assert len(reachable) <= len(fdsoi_reachable)


def test_qos_floor_is_none_when_no_frequency_meets_qos():
    """A workload with almost no QoS headroom cannot meet QoS anywhere below nominal."""
    from dataclasses import replace

    tight = replace(
        DATA_SERVING,
        name="Tight QoS",
        minimum_latency_99th_seconds=19.9e-3,
        qos_limit_seconds=20.0e-3,
    )
    analyzer = QosAnalyzer(default_server())
    floor = analyzer.qos_frequency_floor(tight, [mhz(200), mhz(500)])
    assert floor is None


def test_consolidation_best_plan_raises_when_bound_unreachable():
    analyzer = ConsolidationAnalyzer(default_server(), degradation_bound=0.5)
    with pytest.raises(ValueError, match="degradation bound"):
        analyzer.best_plan(VMS_LOW_MEM)


def test_memory_request_rejects_negative_address():
    with pytest.raises(ValueError):
        MemoryRequest(address=-1, request_type=RequestType.READ, arrival_cycle=0)


def test_memory_request_rejects_zero_size():
    with pytest.raises(ValueError):
        MemoryRequest(
            address=0, request_type=RequestType.READ, arrival_cycle=0, size_bytes=0
        )


def test_memory_model_with_single_channel_has_lower_peak():
    small = MemoryPowerModel(organization=MemoryOrganization(channels=1))
    assert small.organization.peak_bandwidth == pytest.approx(25.6e9)
    with pytest.raises(ValueError):
        small.dynamic_power(read_bandwidth=30e9)


def test_unreachable_frequency_in_efficiency_curve_is_skipped():
    configuration = default_server().with_technology(BULK_28NM)
    analyzer = EfficiencyAnalyzer(configuration)
    points = analyzer.curve(DATA_SERVING, EfficiencyScope.SOC, [mhz(100), ghz(1), 5e9])
    frequencies = [point.frequency_hz for point in points]
    assert 5e9 not in frequencies


def test_core_model_activity_bounds_enforced():
    model = CortexA57PowerModel()
    with pytest.raises(ValueError):
        model.operating_point(ghz(1), activity=-0.1)


def test_server_configuration_rejects_negative_frequency_grid():
    with pytest.raises(ValueError):
        ServerConfiguration(frequency_grid=(1e9, -1.0))


def test_degradation_bound_zero_rejected():
    from repro.latency.degradation import BatchDegradationModel

    model = BatchDegradationModel(VMS_LOW_MEM)
    with pytest.raises(ValueError):
        model.meets_bound(1e9, 2e9, bound=0.0)
