"""Failure-injection and edge-case tests across the library."""

import pytest

from repro.core.config import ServerConfiguration, default_server
from repro.core.consolidation import ConsolidationAnalyzer
from repro.core.efficiency import EfficiencyAnalyzer, EfficiencyScope
from repro.core.qos import QosAnalyzer
from repro.dram.commands import MemoryRequest, RequestType
from repro.power.dram_power import MemoryOrganization, MemoryPowerModel
from repro.technology.a57_model import CortexA57PowerModel
from repro.technology.process import BULK_28NM
from repro.utils.units import ghz, mhz
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import DATA_SERVING


def test_bulk_server_has_reduced_frequency_grid():
    """A bulk-technology server cannot reach the lowest NTC grid points."""
    configuration = default_server().with_technology(BULK_28NM)
    analyzer = EfficiencyAnalyzer(configuration)
    reachable = analyzer.reachable_frequencies()
    assert min(reachable) >= mhz(100)
    # Bulk cannot use the 100MHz point that FD-SOI reaches at 0.5V...
    fdsoi_reachable = EfficiencyAnalyzer(default_server()).reachable_frequencies()
    assert len(reachable) <= len(fdsoi_reachable)


def test_qos_floor_is_none_when_no_frequency_meets_qos():
    """A workload with almost no QoS headroom cannot meet QoS anywhere below nominal."""
    from dataclasses import replace

    tight = replace(
        DATA_SERVING,
        name="Tight QoS",
        minimum_latency_99th_seconds=19.9e-3,
        qos_limit_seconds=20.0e-3,
    )
    analyzer = QosAnalyzer(default_server())
    floor = analyzer.qos_frequency_floor(tight, [mhz(200), mhz(500)])
    assert floor is None


def test_consolidation_best_plan_raises_when_bound_unreachable():
    analyzer = ConsolidationAnalyzer(default_server(), degradation_bound=0.5)
    with pytest.raises(ValueError, match="degradation bound"):
        analyzer.best_plan(VMS_LOW_MEM)


def test_memory_request_rejects_negative_address():
    with pytest.raises(ValueError):
        MemoryRequest(address=-1, request_type=RequestType.READ, arrival_cycle=0)


def test_memory_request_rejects_zero_size():
    with pytest.raises(ValueError):
        MemoryRequest(
            address=0, request_type=RequestType.READ, arrival_cycle=0, size_bytes=0
        )


def test_memory_model_with_single_channel_has_lower_peak():
    small = MemoryPowerModel(organization=MemoryOrganization(channels=1))
    assert small.organization.peak_bandwidth == pytest.approx(25.6e9)
    with pytest.raises(ValueError):
        small.dynamic_power(read_bandwidth=30e9)


def test_unreachable_frequency_in_efficiency_curve_is_skipped():
    configuration = default_server().with_technology(BULK_28NM)
    analyzer = EfficiencyAnalyzer(configuration)
    points = analyzer.curve(DATA_SERVING, EfficiencyScope.SOC, [mhz(100), ghz(1), 5e9])
    frequencies = [point.frequency_hz for point in points]
    assert 5e9 not in frequencies


def test_core_model_activity_bounds_enforced():
    model = CortexA57PowerModel()
    with pytest.raises(ValueError):
        model.operating_point(ghz(1), activity=-0.1)


def test_server_configuration_rejects_negative_frequency_grid():
    with pytest.raises(ValueError):
        ServerConfiguration(frequency_grid=(1e9, -1.0))


def test_degradation_bound_zero_rejected():
    from repro.latency.degradation import BatchDegradationModel

    model = BatchDegradationModel(VMS_LOW_MEM)
    with pytest.raises(ValueError):
        model.meets_bound(1e9, 2e9, bound=0.0)


# -- scenario layer ---------------------------------------------------------------


def test_unknown_scenario_name_lists_alternatives():
    from repro.scenarios import ScenarioRunner

    with pytest.raises(ValueError, match="unknown scenario 'no_such'.*fig2_qos"):
        ScenarioRunner().run("no_such")


def test_scenario_empty_frequency_grid_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="frequency grid must not be empty"):
        ScenarioSpec(name="bad", title="t", frequency_grid_hz=())


def test_scenario_negative_frequency_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="must be positive"):
        ScenarioSpec(name="bad", title="t", frequency_grid_hz=(1e9, -2e9))


def test_scenario_degradation_bound_below_one_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="degradation bound must be >= 1"):
        ScenarioSpec(name="bad", title="t", degradation_bound=-4.0)


def test_scenario_unknown_workload_set_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="unknown workload set 'gpu'"):
        ScenarioSpec(name="bad", title="t", workload_set="gpu")


def test_scenario_unknown_workload_name_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match=r"workloads \['SPECint'\] are not in"):
        ScenarioSpec(name="bad", title="t", workload_names=("SPECint",))


def test_scenario_unknown_technology_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="unknown technology 'finfet-7nm'"):
        ScenarioSpec(name="bad", title="t", technology="finfet-7nm")


def test_scenario_unknown_memory_chip_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="unknown memory_chip 'hbm2'"):
        ScenarioSpec(name="bad", title="t", memory_chip="hbm2")


def test_scenario_unknown_analysis_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match=r"unknown analyses \['sharding'\]"):
        ScenarioSpec(name="bad", title="t", analyses=("sharding",))


def test_scenario_unreachable_grid_raises_at_run():
    """A grid no flavour point can reach fails with a precise error."""
    from repro.scenarios import ScenarioRunner, ScenarioSpec

    spec = ScenarioSpec(
        name="unreachable",
        title="t",
        technology="bulk-28nm",
        frequency_grid_hz=(ghz(10),),
    )
    with pytest.raises(ValueError, match="no frequency in the grid is reachable"):
        ScenarioRunner().run(spec)


def test_scenario_duplicate_workload_names_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="contains duplicates"):
        ScenarioSpec(
            name="bad", title="t", workload_names=("Web Search", "Web Search")
        )


def test_figure2_series_rejects_sweep_missing_workloads():
    from repro.analysis.figures import figure2_series
    from repro.scenarios import ScenarioRunner

    vm_sweep = ScenarioRunner().run("fig4_virtualized").sweep
    with pytest.raises(ValueError, match="does not cover scale-out workload"):
        figure2_series(sweep=vm_sweep)


def test_duplicate_scenario_registration_rejected():
    from repro.scenarios import ScenarioRegistry, ScenarioSpec

    registry = ScenarioRegistry()
    registry.register(ScenarioSpec(name="dup", title="t"))
    with pytest.raises(ValueError, match="already registered"):
        registry.register(ScenarioSpec(name="dup", title="t"))


def test_scenario_unknown_load_trace_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="unknown load trace 'tidal'"):
        ScenarioSpec(name="bad", title="t", load_trace="tidal")


def test_scenario_unknown_governor_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="unknown governors"):
        ScenarioSpec(
            name="bad",
            title="t",
            load_trace="diurnal",
            governors=("performance", "schedutil"),
        )


def test_scenario_duplicate_governors_rejected():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="governors contains duplicates"):
        ScenarioSpec(
            name="bad",
            title="t",
            load_trace="diurnal",
            governors=("performance", "performance"),
        )


def test_scenario_dvfs_replay_requires_a_load_trace():
    from repro.scenarios import ScenarioSpec

    with pytest.raises(ValueError, match="needs load_trace"):
        ScenarioSpec(name="bad", title="t", analyses=("dvfs_replay",))
