"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.cache import CacheConfig, SetAssociativeCache
from repro.utils.units import KB


def make_cache(capacity=32 * KB, associativity=2):
    return SetAssociativeCache(CacheConfig(capacity_bytes=capacity, associativity=associativity))


def test_config_sets_and_lines():
    config = CacheConfig(capacity_bytes=32 * KB, associativity=2, line_bytes=64)
    assert config.sets == 256
    assert config.lines == 512


def test_config_rejects_bad_geometry():
    with pytest.raises(ValueError):
        CacheConfig(capacity_bytes=1000, associativity=3, line_bytes=64)


def test_first_access_misses_second_hits():
    cache = make_cache()
    assert not cache.access(0x1000).hit
    assert cache.access(0x1000).hit


def test_same_line_different_offset_hits():
    cache = make_cache()
    cache.access(0x1000)
    assert cache.access(0x1030).hit


def test_lru_eviction_order():
    cache = SetAssociativeCache(CacheConfig(capacity_bytes=256, associativity=2, line_bytes=64))
    sets = cache.config.sets
    # Three lines mapping to the same set: the first should be evicted.
    a, b, c = 0, sets * 64, 2 * sets * 64
    cache.access(a)
    cache.access(b)
    cache.access(c)
    assert not cache.contains(a)
    assert cache.contains(b)
    assert cache.contains(c)


def test_lru_updated_on_hit():
    cache = SetAssociativeCache(CacheConfig(capacity_bytes=256, associativity=2, line_bytes=64))
    sets = cache.config.sets
    a, b, c = 0, sets * 64, 2 * sets * 64
    cache.access(a)
    cache.access(b)
    cache.access(a)  # refresh a, so b becomes LRU
    cache.access(c)
    assert cache.contains(a)
    assert not cache.contains(b)


def test_dirty_eviction_reports_writeback_address():
    cache = SetAssociativeCache(CacheConfig(capacity_bytes=256, associativity=1, line_bytes=64))
    sets = cache.config.sets
    cache.access(0, is_write=True)
    outcome = cache.access(sets * 64)
    assert outcome.caused_writeback
    assert outcome.evicted_dirty_address == 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_has_no_writeback():
    cache = SetAssociativeCache(CacheConfig(capacity_bytes=256, associativity=1, line_bytes=64))
    sets = cache.config.sets
    cache.access(0, is_write=False)
    outcome = cache.access(sets * 64)
    assert not outcome.caused_writeback


def test_write_through_counts_writebacks_immediately():
    cache = SetAssociativeCache(
        CacheConfig(capacity_bytes=256, associativity=1, line_bytes=64, write_back=False)
    )
    cache.access(0, is_write=True)
    cache.access(0, is_write=True)
    assert cache.stats.writebacks >= 1


def test_invalidate_removes_line():
    cache = make_cache()
    cache.access(0x2000)
    assert cache.invalidate(0x2000)
    assert not cache.contains(0x2000)
    assert not cache.invalidate(0x2000)


def test_stats_hit_and_miss_rates():
    cache = make_cache()
    cache.access(0)
    cache.access(0)
    cache.access(64 * 1024 * 1024)
    assert cache.stats.accesses == 3
    assert cache.stats.hits == 1
    assert cache.stats.hit_rate == pytest.approx(1 / 3)
    assert cache.stats.miss_rate == pytest.approx(2 / 3)


def test_mpki_computation():
    cache = make_cache()
    cache.access(0)
    cache.access(1 << 20)
    assert cache.stats.mpki(1000) == pytest.approx(2.0)


def test_reset_stats_preserves_contents():
    cache = make_cache()
    cache.access(0x40)
    cache.reset_stats()
    assert cache.stats.accesses == 0
    assert cache.contains(0x40)


def test_negative_address_rejected():
    with pytest.raises(ValueError):
        make_cache().access(-4)


def test_working_set_smaller_than_cache_always_hits_after_warmup():
    cache = make_cache(capacity=32 * KB, associativity=2)
    addresses = [line * 64 for line in range(256)]  # 16KB working set
    for address in addresses:
        cache.access(address)
    cache.reset_stats()
    for address in addresses:
        cache.access(address)
    assert cache.stats.hit_rate == pytest.approx(1.0)


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=0, max_value=1 << 22), min_size=1, max_size=300))
def test_resident_lines_never_exceed_capacity(addresses):
    cache = SetAssociativeCache(CacheConfig(capacity_bytes=4 * KB, associativity=4, line_bytes=64))
    for address in addresses:
        cache.access(address)
    assert cache.resident_lines <= cache.config.lines
    assert cache.stats.hits + cache.stats.misses == cache.stats.accesses
