"""Policy parameter spaces: validation, canonicalization, materialisation.

The negative paths mirror the :class:`ScenarioSpec` validation tests:
every malformed space is rejected at construction time with a precise
``ValueError`` naming the offending dimension and value.  The positive
paths pin the canonicalization contract -- no-op parameters are
normalised away and the resulting duplicates dropped -- and that a
config materialises into exactly the policy objects the simulators use.
"""

import math

import pytest

from repro.fleet.autoscaler import Autoscaler
from repro.fleet.routing import PackRouting, SpreadRouting
from repro.kernels.batch import ReplaySpec
from repro.opt import ParamSpace, PolicyConfig


class TestParamSpaceValidation:
    def test_empty_dimension_rejected(self):
        with pytest.raises(
            ValueError, match=r"dimension 'governors' must not be empty"
        ):
            ParamSpace(governors=())

    def test_every_dimension_checked_for_emptiness(self):
        for name in (
            "fleet_sizes",
            "governors",
            "routings",
            "fill_fractions",
            "bands",
            "wake_steps",
            "degradation_bounds",
        ):
            with pytest.raises(
                ValueError, match=rf"dimension {name!r} must not be empty"
            ):
                ParamSpace(**{name: ()})

    def test_duplicate_entries_rejected(self):
        with pytest.raises(
            ValueError, match=r"dimension 'fleet_sizes' contains duplicates"
        ):
            ParamSpace(fleet_sizes=(4, 4))

    def test_non_integer_fleet_size_rejected(self):
        with pytest.raises(
            ValueError, match=r"fleet sizes must be integers >= 1, got 2.5"
        ):
            ParamSpace(fleet_sizes=(2.5,))

    def test_zero_fleet_size_rejected(self):
        with pytest.raises(
            ValueError, match=r"fleet sizes must be integers >= 1, got 0"
        ):
            ParamSpace(fleet_sizes=(0,))

    def test_unregistered_governor_rejected(self):
        with pytest.raises(
            ValueError,
            match=r"unknown governors \['turbo'\]; known governors: ",
        ):
            ParamSpace(governors=("qos_tracker", "turbo"))

    def test_unregistered_routing_rejected(self):
        with pytest.raises(
            ValueError,
            match=r"unknown routings \['random'\]; known policies: ",
        ):
            ParamSpace(routings=("random",))

    def test_fill_fraction_out_of_range_rejected(self):
        with pytest.raises(
            ValueError,
            match=r"fill fractions must be finite and in \(0, 1\], got 1.5",
        ):
            ParamSpace(fill_fractions=(1.5,))

    def test_nan_fill_fraction_rejected(self):
        with pytest.raises(
            ValueError, match=r"fill fractions must be finite"
        ):
            ParamSpace(fill_fractions=(math.nan,))

    def test_degenerate_band_rejected(self):
        with pytest.raises(
            ValueError,
            match=r"degenerate band \(need low < high\), got low=0.8 high=0.4",
        ):
            ParamSpace(bands=((0.8, 0.4),))

    def test_equal_band_bounds_rejected(self):
        with pytest.raises(
            ValueError, match=r"degenerate band \(need low < high\)"
        ):
            ParamSpace(bands=((0.5, 0.5),))

    def test_band_must_be_a_pair(self):
        with pytest.raises(
            ValueError, match=r"a band is a \(low, high\) pair"
        ):
            ParamSpace(bands=((0.2, 0.5, 0.9),))

    def test_nan_band_bound_rejected(self):
        with pytest.raises(ValueError, match=r"band bounds must be finite"):
            ParamSpace(bands=((math.nan, 0.7),))

    def test_band_outside_unit_interval_rejected(self):
        with pytest.raises(
            ValueError, match=r"band must satisfy 0 < low < high <= 1"
        ):
            ParamSpace(bands=((0.0, 0.7),))

    def test_negative_wake_steps_rejected(self):
        with pytest.raises(
            ValueError, match=r"wake steps must be integers >= 0, got -1"
        ):
            ParamSpace(wake_steps=(-1,))

    def test_nan_degradation_bound_rejected(self):
        with pytest.raises(
            ValueError, match=r"degradation bound must not be NaN"
        ):
            ParamSpace(degradation_bounds=(math.nan,))

    def test_infinite_degradation_bound_rejected(self):
        with pytest.raises(
            ValueError, match=r"degradation bound must be finite and >= 1"
        ):
            ParamSpace(degradation_bounds=(math.inf,))

    def test_sub_unity_degradation_bound_rejected(self):
        with pytest.raises(
            ValueError, match=r"degradation bound must be finite and >= 1"
        ):
            ParamSpace(degradation_bounds=(0.5,))


class TestCanonicalization:
    def test_fill_fraction_is_noop_for_non_pack_routings(self):
        space = ParamSpace(
            routings=("pack", "spread"), fill_fractions=(0.6, 0.9)
        )
        configs = space.configs()
        # pack keeps both fills; spread collapses them to one config.
        assert space.raw_size == 4
        assert space.size == 3
        assert [c.fill_fraction for c in configs if c.routing == "pack"] == [
            0.6,
            0.9,
        ]
        spread = [c for c in configs if c.routing == "spread"]
        assert len(spread) == 1
        assert spread[0].fill_fraction is None

    def test_wake_steps_is_noop_for_the_static_band(self):
        space = ParamSpace(bands=(None, (0.3, 0.7)), wake_steps=(1, 3))
        configs = space.configs()
        assert space.raw_size == 4
        assert space.size == 3
        static = [c for c in configs if c.band is None]
        assert len(static) == 1
        assert static[0].wake_steps is None

    def test_enumeration_order_is_deterministic(self):
        space = ParamSpace(
            fleet_sizes=(2, 4), governors=("ondemand", "qos_tracker")
        )
        assert space.configs() == space.configs()
        assert [c.fleet_size for c in space.configs()] == [2, 2, 4, 4]

    def test_summary_reports_both_sizes(self):
        space = ParamSpace(
            routings=("pack", "spread"), fill_fractions=(0.6, 0.9)
        )
        summary = space.summary()
        assert summary["raw_size"] == 4
        assert summary["size"] == 3
        assert summary["routings"] == ["pack", "spread"]


class TestPolicyConfigMaterialisation:
    def test_pack_config_builds_custom_fill_routing(self):
        config = PolicyConfig(
            governor="qos_tracker",
            routing="pack",
            fleet_size=4,
            fill_fraction=0.6,
        )
        routing = config.routing_policy()
        assert isinstance(routing, PackRouting)
        assert routing.fill_fraction == 0.6

    def test_non_pack_config_uses_registry_router(self):
        config = PolicyConfig(
            governor="qos_tracker", routing="spread", fleet_size=4
        )
        assert isinstance(config.routing_policy(), SpreadRouting)

    def test_band_builds_autoscaler_and_static_does_not(self):
        banded = PolicyConfig(
            governor="qos_tracker",
            routing="pack",
            fleet_size=4,
            band=(0.3, 0.7),
            wake_steps=2,
        )
        scaler = banded.autoscaler()
        assert scaler == Autoscaler(low=0.3, high=0.7, wake_steps=2)
        static = PolicyConfig(
            governor="qos_tracker", routing="pack", fleet_size=4
        )
        assert static.autoscaler() is None

    def test_replay_spec_round_trip(self, diurnal_trace):
        from repro.workloads.cloudsuite import WEB_SEARCH

        config = PolicyConfig(
            governor="ondemand",
            routing="pack",
            fleet_size=3,
            fill_fraction=0.8,
            band=(0.3, 0.7),
            wake_steps=1,
        )
        spec = config.replay_spec(WEB_SEARCH, diurnal_trace)
        assert spec == ReplaySpec(
            workload=WEB_SEARCH,
            trace=diurnal_trace,
            governor="ondemand",
            fleet_size=3,
            routing=PackRouting(fill_fraction=0.8),
            autoscaler=Autoscaler(low=0.3, high=0.7, wake_steps=1),
        )

    def test_key_orders_configs_totally(self):
        space = ParamSpace(
            fleet_sizes=(2, 4),
            governors=("ondemand", "qos_tracker"),
            routings=("pack", "spread"),
            bands=(None, (0.3, 0.7)),
        )
        keys = [config.key() for config in space.configs()]
        assert len(set(keys)) == len(keys)
        assert sorted(keys) == sorted(keys, key=lambda k: tuple(k))
