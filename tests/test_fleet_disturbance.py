"""Tests for timed failure injection and the resilience metrics.

Covers the disturbance data model (event/schedule validation), the
crash / restore / thermal-cap semantics on the object path, bit-for-bit
kernel parity for crash/restore schedules, the batch runner's fallback
for disturbed replays, and the two robustness bugfixes the disturbance
sweeps exposed (boot-grace and cold-start utilisation).
"""

import math

import numpy as np
import pytest

from repro.dvfs import LoadTrace, governor_by_name
from repro.fleet import (
    Autoscaler,
    DisturbanceEvent,
    DisturbanceSchedule,
    FleetSimulator,
    NodeState,
    ServerNode,
    event_from_tuple,
    load_surge,
    node_crash,
    node_restore,
    thermal_cap,
)
from repro.kernels.batch import BatchReplayRunner, ReplaySpec
from repro.workloads.cloudsuite import WEB_SEARCH


@pytest.fixture(scope="module")
def crash_fleet(default_context):
    """A 4-server static Web Search fleet for disturbance replays."""
    return FleetSimulator(default_context, WEB_SEARCH, fleet_size=4)


# -- event validation -------------------------------------------------------------------


def test_unknown_event_kind_is_rejected():
    with pytest.raises(ValueError, match="unknown disturbance kind"):
        DisturbanceEvent(kind="meteor_strike", step=3, node_id=0)


def test_negative_step_is_rejected():
    with pytest.raises(ValueError, match="step must be >= 0"):
        node_crash(0, -1)


def test_node_events_need_a_node_id():
    with pytest.raises(ValueError, match="needs a node_id"):
        DisturbanceEvent(kind="node_crash", step=2)
    with pytest.raises(ValueError, match="needs a node_id"):
        DisturbanceEvent(kind="node_restore", step=2, node_id=-1)


def test_load_surge_takes_no_node_id():
    with pytest.raises(ValueError, match="no node_id"):
        DisturbanceEvent(kind="load_surge", step=2, node_id=0)


@pytest.mark.parametrize("cap", [None, 0.0, -1e9, float("nan"), float("inf")])
def test_thermal_cap_needs_a_positive_finite_frequency(cap):
    with pytest.raises(ValueError, match="max_frequency_hz"):
        DisturbanceEvent(
            kind="thermal_cap", step=2, node_id=0, max_frequency_hz=cap
        )


def test_only_thermal_cap_takes_a_frequency():
    with pytest.raises(ValueError, match="only thermal_cap"):
        DisturbanceEvent(
            kind="node_crash", step=2, node_id=0, max_frequency_hz=1e9
        )


def test_event_from_tuple_round_trips_all_kinds():
    assert event_from_tuple(("node_crash", 1, 5)) == node_crash(1, 5)
    assert event_from_tuple(("node_restore", 1, 9)) == node_restore(1, 9)
    assert event_from_tuple(("thermal_cap", 0, 3, 1.2e9)) == thermal_cap(
        0, 3, 1.2e9
    )
    assert event_from_tuple(("load_surge", 7)) == load_surge(7)


def test_event_from_tuple_rejects_malformed_data():
    with pytest.raises(ValueError, match="empty disturbance tuple"):
        event_from_tuple(())
    with pytest.raises(ValueError, match="unknown disturbance kind"):
        event_from_tuple(("comet", 1, 2))
    with pytest.raises(ValueError, match="malformed node_crash"):
        event_from_tuple(("node_crash", 1))


# -- schedule validation ----------------------------------------------------------------


def test_schedule_rejects_non_events():
    with pytest.raises(TypeError, match="DisturbanceEvent"):
        DisturbanceSchedule(events=(("node_crash", 0, 2),))


def test_schedule_rejects_duplicates_and_conflicts():
    with pytest.raises(ValueError, match="duplicate node_crash"):
        DisturbanceSchedule(events=(node_crash(0, 2), node_crash(0, 2)))
    with pytest.raises(ValueError, match="conflicting events for node 0"):
        DisturbanceSchedule(events=(node_crash(0, 2), node_restore(0, 2)))


def test_schedule_rejects_unpaired_restores_and_double_crashes():
    with pytest.raises(ValueError, match="without a preceding crash"):
        DisturbanceSchedule(events=(node_restore(1, 4),))
    with pytest.raises(ValueError, match="crashes again"):
        DisturbanceSchedule(events=(node_crash(1, 2), node_crash(1, 6)))
    # A proper crash -> restore -> crash chain is fine.
    DisturbanceSchedule(
        events=(node_crash(1, 2), node_restore(1, 4), node_crash(1, 6))
    )


def test_validate_for_checks_fleet_and_trace_bounds():
    schedule = DisturbanceSchedule(events=(node_crash(5, 10),))
    with pytest.raises(ValueError, match="nodes 0..3"):
        schedule.validate_for(fleet_size=4, steps=24)
    with pytest.raises(ValueError, match="beyond the trace"):
        schedule.validate_for(fleet_size=8, steps=10)
    schedule.validate_for(fleet_size=8, steps=24)


def test_schedule_views():
    schedule = DisturbanceSchedule(
        events=(node_crash(0, 2), node_restore(0, 6), load_surge(4))
    )
    assert len(schedule) == 3 and bool(schedule)
    assert not DisturbanceSchedule()
    assert schedule.kinds == ("node_crash", "node_restore", "load_surge")
    assert schedule.max_step == 6
    assert schedule.events_at(4) == (load_surge(4),)
    assert schedule.events_at(2, kind="node_restore") == ()
    assert schedule.kernel_supported
    capped = schedule.with_events(thermal_cap(1, 3, 1.2e9))
    assert len(capped) == 4 and not capped.kernel_supported
    assert DisturbanceSchedule().max_step == -1


def test_replay_spec_disturbances_need_a_fleet():
    schedule = DisturbanceSchedule(events=(node_crash(0, 2),))
    with pytest.raises(ValueError, match="needs a fleet_size"):
        ReplaySpec(
            workload=WEB_SEARCH,
            trace=LoadTrace.constant(0.5, steps=8),
            disturbances=schedule,
        )


# -- node-level semantics ---------------------------------------------------------------


def test_crashed_node_cannot_wake_until_recovered(websearch_simulator):
    node = ServerNode(
        node_id=0,
        governor=governor_by_name("qos_tracker"),
        simulator=websearch_simulator,
    )
    node.crash()
    assert node.failed and node.state is NodeState.OFF
    node.crash()  # idempotent
    with pytest.raises(ValueError, match="crashed"):
        node.wake(boot_steps=0)
    node.recover()
    assert not node.failed
    node.wake(boot_steps=0)
    assert node.state is NodeState.SERVING
    with pytest.raises(ValueError, match="nothing to recover"):
        node.recover()


def test_thermal_cap_shrinks_the_grid_and_clamps_history(websearch_simulator):
    node = ServerNode(
        node_id=0,
        governor=governor_by_name("performance"),
        simulator=websearch_simulator,
    )
    full = websearch_simulator.platform
    assert node.previous_frequency_hz == full.nominal_frequency_hz
    node.apply_thermal_cap(1.2e9)
    assert node.platform.frequencies[-1] <= 1.2e9
    assert node.platform.frequencies == tuple(
        f for f in full.frequencies if f <= 1.2e9
    )
    # The DVFS anchor is clamped onto the capped grid ...
    assert node.previous_frequency_hz == node.platform.frequencies[-1]
    # ... while the demand reference stays the full platform's nominal.
    assert node.nominal_capacity_uips == full.nominal_capacity_uips
    node.clear_thermal_cap()
    assert node.platform.frequencies == full.frequencies


def test_thermal_cap_below_the_grid_bottom_is_rejected(websearch_simulator):
    node = ServerNode(
        node_id=2,
        governor=governor_by_name("qos_tracker"),
        simulator=websearch_simulator,
    )
    with pytest.raises(ValueError, match="no reachable frequency"):
        node.apply_thermal_cap(websearch_simulator.platform.min_frequency_hz / 2)


# -- replay semantics -------------------------------------------------------------------


def test_crash_drops_the_routed_share_then_respreads(crash_fleet):
    trace = LoadTrace.constant(0.4, steps=12, step_seconds=60.0)
    schedule = DisturbanceSchedule(events=(node_crash(0, 5),))
    result = crash_fleet.run(trace, "round_robin", disturbances=schedule)
    violations = result.column("violation")
    # The crash lands after routing: node 0's share for step 5 is
    # dropped (stale-view violation), then step 6 re-spreads over the
    # three survivors and the fleet is clean again.
    assert bool(violations[5])
    assert not violations[6:].any()
    assert result.node_column(0, "state")[5:].max() == int(NodeState.OFF)
    served = result.column("served_uips") / result.column("offered_uips")
    assert served[5] == pytest.approx(0.75)
    assert served[6] == pytest.approx(1.0)


def test_static_restore_serves_immediately_without_wake_energy(crash_fleet):
    trace = LoadTrace.constant(0.4, steps=12, step_seconds=60.0)
    schedule = DisturbanceSchedule(
        events=(node_crash(0, 3), node_restore(0, 7))
    )
    result = crash_fleet.run(trace, "round_robin", disturbances=schedule)
    states = result.node_column(0, "state")
    assert states[3] == int(NodeState.OFF)
    assert states[7] == int(NodeState.SERVING)
    # A static fleet has no autoscaler: the restore re-admits the node
    # directly with no wake event and no wake energy on the ledger.
    assert result.wake_count == 0
    assert result.disturbance_events == schedule.events


def test_autoscaled_restore_readmits_through_the_wake_path(default_context):
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=2,
        autoscaler=Autoscaler(low=0.35, high=0.75, wake_steps=1),
    )
    trace = LoadTrace.constant(0.9, steps=16, step_seconds=60.0)
    schedule = DisturbanceSchedule(
        events=(node_crash(1, 4), node_restore(1, 8))
    )
    result = simulator.run(trace, "least_loaded", disturbances=schedule)
    states = result.node_column(1, "state")
    # While failed the node stays OFF even though the half-fleet is
    # overloaded; once restored the autoscaler wakes it again.
    assert (states[4:8] == int(NodeState.OFF)).all()
    assert int(NodeState.SERVING) in states[8:]
    assert result.wake_count >= 1


def test_thermal_cap_forces_the_reference_path_and_caps_the_node(crash_fleet):
    trace = LoadTrace.constant(0.95, steps=10, step_seconds=60.0)
    schedule = DisturbanceSchedule(events=(thermal_cap(0, 2, 1.2e9),))
    assert not schedule.kernel_supported
    result = crash_fleet.run(trace, "round_robin", disturbances=schedule)
    frequencies = result.node_column(0, "frequency_hz")
    assert (frequencies[2:] <= 1.2e9).all()
    # Uncapped peers keep buying the full grid for the same share.
    assert frequencies[2:].max() < result.node_column(1, "frequency_hz")[2:].max()


def test_disturbed_replay_rejects_out_of_range_events(crash_fleet):
    trace = LoadTrace.constant(0.4, steps=8, step_seconds=60.0)
    with pytest.raises(ValueError, match="nodes 0..3"):
        crash_fleet.run(
            trace,
            "round_robin",
            disturbances=DisturbanceSchedule(events=(node_crash(9, 2),)),
        )


# -- kernel parity ----------------------------------------------------------------------


@pytest.mark.parametrize("routing", ["round_robin", "spread", "pack", "least_loaded"])
@pytest.mark.parametrize("autoscaled", [False, True], ids=["static", "autoscaled"])
def test_crash_restore_kernel_matches_reference(
    default_context, routing, autoscaled
):
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=5,
        autoscaler=Autoscaler() if autoscaled else None,
    )
    trace = LoadTrace.diurnal(steps=30)
    schedule = DisturbanceSchedule(
        events=(node_crash(0, 8), node_restore(0, 14), load_surge(20))
    )
    kernel = simulator.run(trace, routing, disturbances=schedule)
    reference = simulator.run(
        trace, routing, reference=True, disturbances=schedule
    )
    for name in ("energy_j", "violation", "served_uips", "serving_servers"):
        np.testing.assert_array_equal(
            kernel.column(name), reference.column(name), err_msg=name
        )
    for node_id in kernel.node_ids:
        for name in ("state", "frequency_hz", "energy_j"):
            np.testing.assert_array_equal(
                kernel.node_column(node_id, name),
                reference.node_column(node_id, name),
                err_msg=f"node {node_id} {name}",
            )
    assert kernel.summary() == reference.summary()
    assert kernel.resilience() == reference.resilience()


def test_batch_runner_falls_back_for_disturbed_replays(default_context):
    trace = LoadTrace.diurnal(steps=24)
    schedule = DisturbanceSchedule(events=(node_crash(1, 6),))
    disturbed = ReplaySpec(
        workload=WEB_SEARCH,
        trace=trace,
        fleet_size=4,
        routing="spread",
        autoscaler=Autoscaler(),
        disturbances=schedule,
    )
    clean = ReplaySpec(
        workload=WEB_SEARCH,
        trace=trace,
        fleet_size=4,
        routing="spread",
        autoscaler=Autoscaler(),
    )
    runner = BatchReplayRunner(default_context)
    batch = runner.run([disturbed, clean])
    # The disturbed spec bypasses the batched kernel; the clean one
    # still rides it.
    assert batch.fallback_count == 1
    assert batch.batched_count == 1
    simulator = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=4, autoscaler=Autoscaler()
    )
    direct = simulator.run(trace, "spread", disturbances=schedule)
    assert batch.result(0).summary() == direct.summary()
    assert batch.result(0).resilience() == direct.resilience()


# -- resilience metrics -----------------------------------------------------------------


def test_resilience_reports_recovery_per_event(crash_fleet):
    trace = LoadTrace.constant(0.4, steps=12, step_seconds=60.0)
    schedule = DisturbanceSchedule(
        events=(node_crash(0, 3), node_restore(0, 7))
    )
    result = crash_fleet.run(trace, "round_robin", disturbances=schedule)
    assert result.recovery_after(3) == 1
    assert result.recovery_after(7) == 0
    metrics = result.resilience()
    crash_row, restore_row = metrics["events"]
    assert crash_row["kind"] == "node_crash"
    assert crash_row["recovery_time_steps"] == 1
    assert crash_row["violations_during_respread"] == 1
    assert restore_row["recovery_time_steps"] == 0
    assert restore_row["violations_during_respread"] == 0
    assert metrics["max_recovery_time_steps"] == 1
    assert metrics["unrecovered_events"] == 0
    assert metrics["surge_peak_energy_j"] == result.surge_peak_energy_j
    assert metrics["surge_peak_energy_j"] == pytest.approx(
        result.column("energy_j").max()
    )


def test_resilience_counts_unrecovered_events(crash_fleet):
    trace = LoadTrace.constant(0.4, steps=8, step_seconds=60.0)
    schedule = DisturbanceSchedule(events=(node_crash(0, 7),))
    result = crash_fleet.run(trace, "round_robin", disturbances=schedule)
    # The crash lands on the last step: the trace ends before the fleet
    # re-spreads, so the event never recovers.
    assert result.recovery_after(7) is None
    metrics = result.resilience()
    assert metrics["events"][0]["recovery_time_steps"] is None
    assert metrics["events"][0]["violations_during_respread"] == 1
    assert metrics["unrecovered_events"] == 1


def test_undisturbed_result_has_empty_resilience(crash_fleet):
    result = crash_fleet.run(
        LoadTrace.constant(0.4, steps=4, step_seconds=60.0), "round_robin"
    )
    metrics = result.resilience()
    assert metrics["events"] == []
    assert metrics["max_recovery_time_steps"] == 0
    assert metrics["unrecovered_events"] == 0


# -- bugfix regressions -----------------------------------------------------------------


def test_flash_crowd_ramp_wakes_each_node_once(default_context):
    """Boot-grace regression: no park/re-wake thrash during a ramp.

    On a monotonic flash-crowd ramp every node the fleet ends up
    needing should be woken exactly once.  Before the boot-grace fix a
    node still booting on the next step's (lower-looking) serving
    utilisation could be parked mid-boot and re-woken a step later,
    double-charging the wake energy.
    """
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=8,
        autoscaler=Autoscaler(low=0.35, high=0.75, wake_steps=2),
    )
    base = LoadTrace.constant(0.15, steps=6, step_seconds=60.0)
    ramp = base.concat(
        LoadTrace.constant(0.15, steps=18, step_seconds=60.0).with_surge(
            0, 18, factor=6.0, shape="ramp"
        )
    )
    result = simulator.run(ramp, "pack")
    first_serving = int(result.column("serving_servers")[0])
    peak_serving = result.peak_serving_servers
    assert peak_serving > first_serving
    assert result.wake_count == peak_serving - first_serving


def test_cold_start_utilisation_uses_booting_capacity(websearch_simulator):
    """Cold-start regression: a booting-only fleet is not 'infinitely hot'.

    With zero serving nodes the old ``mass / len(serving)`` divided by
    zero, read infinite utilisation on every boot step, and woke the
    whole fleet.  Utilisation now falls back to the booting capacity,
    so an in-flight boot that already covers the load wakes nothing.
    """
    scaler = Autoscaler(low=0.35, high=0.75, wake_steps=2)
    nodes = [
        ServerNode(
            node_id=i,
            governor=governor_by_name("qos_tracker"),
            simulator=websearch_simulator,
            serving=False,
        )
        for i in range(4)
    ]
    nodes[0].wake(boot_steps=2)
    decision = scaler.scale(mass=0.5, nodes=nodes)
    # util = 0.5 / 1 booting = 0.5, inside the band: hold.
    assert decision.woken == () and decision.parked == ()
    assert sum(1 for n in nodes if n.state is NodeState.BOOTING) == 1
    # With nothing powered on at all, utilisation is infinite and the
    # scaler must wake capacity.
    nodes[0].shut_down()
    decision = scaler.scale(mass=0.5, nodes=nodes)
    assert len(decision.woken) >= 1


def test_mass_zero_at_step_zero_keeps_min_servers(default_context):
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=4,
        autoscaler=Autoscaler(min_servers=1),
    )
    trace = LoadTrace(
        name="cold", step_seconds=60.0, utilization=(0.0, 0.0, 0.3, 0.3)
    )
    kernel = simulator.run(trace, "pack")
    reference = simulator.run(trace, "pack", reference=True)
    assert kernel.summary() == reference.summary()
    assert int(kernel.column("serving_servers")[0]) == 1
    assert not math.isnan(kernel.total_energy_j)
