"""Chaos properties: injected faults isolate exactly what they hit.

The contract these property tests pin, sweeping seeded
:class:`FaultPlan` instances: for ANY single injected fault, a
quarantine-mode run equals the fault-free run minus exactly the
quarantined item -- every surviving replay, trial, or scenario is bit
for bit what the undisturbed run produced, and exactly one slot is a
:class:`FailedSummary` naming the fault.  Retried transient faults
leave no trace at all: the retried run's result is identical to the
fault-free result, deterministically across repeats of the same seed.
"""

import pytest

from repro import obs
from repro.dvfs import LoadTrace
from repro.kernels import BatchReplayRunner, ReplaySpec
from repro.opt import GridSearch, ParamSpace, PolicyTuner
from repro.resilience import FailedSummary, FaultPlan, InjectedFault, inject
from repro.scenarios.registry import REGISTRY, ScenarioRegistry
from repro.scenarios.runner import ScenarioRunner
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import WEB_SEARCH


def make_specs():
    """A mixed batch: single-server and fleet rows, several governors."""
    bursty = LoadTrace.bursty(steps=24, seed=7)
    diurnal = LoadTrace.diurnal().head(20)
    specs = [
        ReplaySpec(workload=WEB_SEARCH, trace=bursty, governor="ondemand"),
        ReplaySpec(workload=WEB_SEARCH, trace=diurnal, governor="performance"),
        ReplaySpec(workload=VMS_LOW_MEM, trace=bursty, governor="powersave"),
        ReplaySpec(
            workload=WEB_SEARCH,
            trace=bursty,
            governor="qos_tracker",
            fleet_size=3,
            routing="round_robin",
        ),
        ReplaySpec(
            workload=VMS_LOW_MEM,
            trace=diurnal,
            governor="qos_tracker",
            fleet_size=2,
            routing="pack",
        ),
        ReplaySpec(workload=VMS_LOW_MEM, trace=diurnal, governor="ondemand"),
    ]
    return specs


SPACE = ParamSpace(
    fleet_sizes=(2, 3),
    governors=("qos_tracker", "ondemand"),
    routings=("round_robin",),
    fill_fractions=(0.75,),
    bands=(None,),
    wake_steps=(1,),
)


@pytest.fixture(scope="module")
def batch_baseline(default_context):
    specs = make_specs()
    return specs, BatchReplayRunner(default_context).run(specs).summaries()


@pytest.fixture(scope="module")
def tuner_trace():
    return LoadTrace.bursty(steps=10, seed=3)


@pytest.fixture(scope="module")
def tuner_baseline(default_context, tuner_trace):
    tuner = PolicyTuner(default_context, WEB_SEARCH, tuner_trace)
    return tuner.tune(SPACE, GridSearch())


# -- batch quarantine ------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(12))
def test_single_fault_batch_equals_baseline_minus_quarantined(
    seed, default_context, batch_baseline
):
    """The quarantine-equivalence property over seeded fault plans."""
    specs, baseline = batch_baseline
    plan = FaultPlan.seeded(
        seed,
        sites=("batch.replay",),
        max_call=len(specs),
        actions=("raise", "nan"),
    )
    runner = BatchReplayRunner(default_context, on_error="quarantine")
    with inject(plan), obs.capture() as cap:
        result = runner.run(specs)
    # ``batch.replay`` fires once per spec in submission order, so the
    # plan's Nth call is exactly spec N-1 -- and nothing else.
    failed_index = plan.at_call - 1
    summaries = result.summaries()
    assert result.quarantined_count == 1
    assert cap.counter_deltas()["resilience.quarantined"] == 1
    for index, summary in enumerate(summaries):
        if index == failed_index:
            assert isinstance(summary, FailedSummary)
            assert summary.error_type == "InjectedFault"
            assert f"replay {index}" in summary.identity
        else:
            assert summary == baseline[index], f"row {index} disturbed"
    (quarantined,) = result.quarantined()
    assert quarantined[0] == failed_index
    with pytest.raises(InjectedFault):
        result.result(failed_index)


def test_seeded_fault_in_a_thousand_replay_batch(default_context):
    """The equivalence property at benchmark scale: 1000 fleet replays."""
    from repro.dvfs import GOVERNORS
    from repro.fleet import Autoscaler

    traces = [LoadTrace.bursty(steps=30, seed=seed) for seed in range(100)]
    specs = [
        ReplaySpec(
            workload=WEB_SEARCH,
            trace=trace,
            governor=governor,
            fleet_size=4,
            routing="round_robin",
            autoscaler=autoscaler,
        )
        for governor in GOVERNORS
        for autoscaler in (None, Autoscaler())
        for trace in traces
    ]
    assert len(specs) == 1000
    baseline = BatchReplayRunner(default_context).run(specs).summaries()
    plan = FaultPlan.seeded(
        321, sites=("batch.replay",), max_call=len(specs)
    )
    runner = BatchReplayRunner(default_context, on_error="quarantine")
    with inject(plan):
        result = runner.run(specs)
    summaries = result.summaries()
    failed_index = plan.at_call - 1
    assert isinstance(summaries[failed_index], FailedSummary)
    assert result.quarantined_count == 1
    assert summaries[:failed_index] == baseline[:failed_index]
    assert summaries[failed_index + 1 :] == baseline[failed_index + 1 :]


def test_strict_mode_propagates_the_injected_fault(default_context):
    specs, _ = make_specs(), None
    plan = FaultPlan(site="batch.replay", at_call=2, action="raise")
    with inject(plan):
        with pytest.raises(InjectedFault):
            BatchReplayRunner(default_context).run(specs)


def test_group_fault_degrades_to_fallback_bit_for_bit(
    default_context, batch_baseline
):
    """A failed batched group re-runs per replay with zero loss."""
    specs, baseline = batch_baseline
    plan = FaultPlan(site="batch.group", at_call=1, action="raise")
    runner = BatchReplayRunner(default_context, on_error="quarantine")
    with inject(plan):
        result = runner.run(specs)
    assert result.quarantined_count == 0
    assert result.fallback_count > 0
    assert result.summaries() == baseline


# -- tuner quarantine ------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_single_corrupt_objective_drops_exactly_one_trial(
    seed, default_context, tuner_trace, tuner_baseline
):
    """NaN-corrupting any one objective quarantines only that trial."""
    baseline_labels = [
        trial.config.label() for trial in tuner_baseline.trials
    ]
    plan = FaultPlan.seeded(
        seed,
        sites=("tuner.objective",),
        max_call=len(baseline_labels),
        actions=("nan",),
    )
    tuner = PolicyTuner(
        default_context, WEB_SEARCH, tuner_trace, on_error="quarantine"
    )
    with inject(plan):
        result = tuner.tune(SPACE, GridSearch())
    dropped_label = baseline_labels[plan.at_call - 1]
    assert [t.config.label() for t in result.trials] == [
        label for label in baseline_labels if label != dropped_label
    ]
    # Surviving trials are bit for bit the baseline trials.
    survivors = {t.config.label(): t for t in tuner_baseline.trials}
    for trial in result.trials:
        assert trial == survivors[trial.config.label()]
    (record,) = result.quarantined
    assert record["label"] == dropped_label
    assert record["failure"]["failed"] is True
    if dropped_label != tuner_baseline.best_config.label():
        assert result.best_trial == tuner_baseline.best_trial
    else:
        assert result.best_config.label() != dropped_label


def test_retried_transient_rung_fault_leaves_no_trace(
    default_context, tuner_trace, tuner_baseline
):
    """Retry determinism: same seed, same fault, identical results."""
    plan = FaultPlan(site="tuner.rung", at_call=1, action="raise")
    results = []
    for _ in range(2):
        tuner = PolicyTuner(
            default_context, WEB_SEARCH, tuner_trace, retries=1
        )
        with inject(plan), obs.capture() as cap:
            results.append(tuner.tune(SPACE, GridSearch()))
        assert cap.counter_deltas()["resilience.retries"] == 1
    assert results[0].as_dict() == results[1].as_dict()
    assert results[0].as_dict() == tuner_baseline.as_dict()


# -- scenario quarantine ---------------------------------------------------------------


def test_run_all_quarantines_only_the_faulted_scenario():
    registry = ScenarioRegistry()
    registry.register(REGISTRY.get("fig2_qos"))
    registry.register(REGISTRY.get("table1_ddr4"))
    runner = ScenarioRunner(registry=registry)

    plan = FaultPlan(site="scenario.run", at_call=1, action="raise")
    with inject(plan), obs.capture() as cap:
        results = runner.run_all(on_error="quarantine")
    assert cap.counter_deltas()["resilience.quarantined"] == 1
    failed = results["fig2_qos"]
    assert isinstance(failed, FailedSummary)
    assert "fig2_qos" in failed.identity
    survivor = results["table1_ddr4"]
    assert survivor.name == "table1_ddr4"
    assert survivor.key_scalars()["rows"] > 0

    # Strict mode propagates instead.
    with inject(plan):
        with pytest.raises(InjectedFault):
            runner.run_all()
