"""Unit tests for the ``repro.obs`` instrumentation layer.

Covers the span/counter primitives (off-path no-ops, capture windows,
nesting, thread-local stacks), the :class:`RunReport` schema (strict
JSON round trips, validation, merge) and the ``python -m repro.obs``
artifact CLI.
"""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test starts and ends with an empty global registry."""
    obs.reset()
    yield
    assert not obs.is_enabled(), "a test leaked an open capture/enable"
    obs.reset()


# -- the off switch --------------------------------------------------------------------


def test_disabled_by_default_everything_is_a_noop():
    assert not obs.is_enabled()
    span = obs.trace("anything", rows=3)
    assert span is obs.trace("something_else")  # the shared null span
    with span as live:
        live.set(more=1)  # still a no-op
    obs.count("events", 5)
    obs.gauge("level", 2.5)
    assert obs.counters_snapshot() == {}


def test_enable_disable_nest():
    obs.enable()
    obs.enable()
    obs.disable()
    assert obs.is_enabled()
    obs.disable()
    assert not obs.is_enabled()
    obs.disable()  # already off: stays off, no underflow
    assert not obs.is_enabled()


def test_suspended_forces_the_off_path_inside_a_capture():
    with obs.capture() as cap:
        with obs.suspended():
            assert not obs.is_enabled()
            with obs.trace("hidden"):
                obs.count("hidden")
        assert obs.is_enabled()
        with obs.trace("seen"):
            pass
    assert [span.name for span in cap.spans] == ["seen"]
    assert cap.counter_deltas() == {}


# -- spans -----------------------------------------------------------------------------


def test_capture_records_nested_spans_with_parents_and_depths():
    with obs.capture() as cap:
        with obs.trace("outer", kind="test") as outer:
            with obs.trace("inner"):
                pass
            outer.set(rows=3)
    assert [span.name for span in cap.spans] == ["outer", "inner"]
    outer_record, inner_record = cap.spans
    assert outer_record.parent_id is None and outer_record.depth == 0
    assert inner_record.parent_id == outer_record.span_id
    assert inner_record.depth == 1
    assert outer_record.attributes == {"kind": "test", "rows": 3}
    assert 0 <= inner_record.duration_s <= outer_record.duration_s
    assert cap.duration_s > 0


def test_sibling_spans_share_a_parent():
    with obs.capture() as cap:
        with obs.trace("parent") as parent:
            with obs.trace("first"):
                pass
            with obs.trace("second"):
                pass
    first, second = cap.spans[1], cap.spans[2]
    assert first.name == "first" and second.name == "second"
    assert first.parent_id == second.parent_id == parent.span_id
    assert first.depth == second.depth == 1


def test_nested_captures_isolate_inner_spans():
    with obs.capture() as outer_cap:
        with obs.trace("before"):
            pass
        with obs.capture() as inner_cap:
            with obs.trace("inside"):
                pass
        with obs.trace("after"):
            pass
    assert [span.name for span in inner_cap.spans] == ["inside"]
    assert [span.name for span in outer_cap.spans] == [
        "before",
        "inside",
        "after",
    ]


def test_last_capture_exit_clears_the_span_buffer():
    with obs.capture():
        with obs.trace("old"):
            pass
    with obs.capture() as cap:
        pass
    assert cap.spans == ()


def test_span_stacks_are_thread_local():
    barrier = threading.Barrier(2)
    errors = []

    def worker(name):
        try:
            barrier.wait(timeout=5)
            with obs.trace(name):
                time.sleep(0.005)
        except Exception as error:  # pragma: no cover - diagnostic only
            errors.append(error)

    with obs.capture() as cap:
        threads = [
            threading.Thread(target=worker, args=(f"thread_{index}",))
            for index in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert not errors
    # Concurrent spans on different threads are both roots: neither is
    # the other's parent, even though their lifetimes overlap.
    assert sorted(span.name for span in cap.spans) == ["thread_0", "thread_1"]
    assert all(span.parent_id is None for span in cap.spans)
    assert all(span.depth == 0 for span in cap.spans)


# -- counters --------------------------------------------------------------------------


def test_counter_deltas_are_window_scoped_and_integer_normalised():
    with obs.capture():
        obs.count("events", 2)
    with obs.capture() as cap:
        obs.count("events")
        obs.count("ratio", 0.5)
    deltas = cap.counter_deltas()
    assert deltas == {"events": 1, "ratio": 0.5}
    assert isinstance(deltas["events"], int)
    # The global registry keeps the cumulative values.
    assert obs.counters_snapshot() == {"events": 3, "ratio": 0.5}


def test_counter_deltas_freeze_at_capture_exit():
    with obs.capture() as cap:
        obs.count("events")
    with obs.capture():
        obs.count("events", 10)
        assert cap.counter_deltas() == {"events": 1}


def test_gauge_overwrites_instead_of_accumulating():
    with obs.capture() as cap:
        obs.gauge("level", 3)
        obs.gauge("level", 7)
    assert cap.counter_deltas() == {"level": 7}


# -- run reports -----------------------------------------------------------------------


def _sample_report(meta=None) -> obs.RunReport:
    with obs.capture() as cap:
        with obs.trace("outer", kind="sample"):
            with obs.trace("inner"):
                pass
        obs.count("events", 3)
    return cap.report(meta=meta)


def test_report_from_capture_uses_positions_and_window_relative_starts():
    report = _sample_report(meta={"scenario": "sample"})
    assert len(report) == 2
    assert report.names == ("outer", "inner")
    assert report.parents == (None, 0)
    assert report.depths == (0, 1)
    assert all(start >= 0 for start in report.starts_s)
    assert report.starts_s[1] >= report.starts_s[0]
    assert report.counters == {"events": 3}
    assert report.meta == {"scenario": "sample"}
    assert report.spans_named("inner") == [
        {
            "name": "inner",
            "start_s": report.starts_s[1],
            "duration_s": report.durations_s[1],
            "depth": 1,
            "parent": 0,
            "attributes": {},
        }
    ]


def test_report_json_round_trip_and_validation():
    report = _sample_report(meta={"scenario": "sample"})
    document = json.loads(report.to_json())
    obs.validate_report(document)  # must not raise
    rebuilt = obs.RunReport.from_dict(document)
    assert rebuilt == report


def test_report_rejects_mismatched_column_lengths():
    with pytest.raises(ValueError, match="mismatched lengths"):
        obs.RunReport(
            duration_s=1.0,
            names=("a",),
            starts_s=(),
            durations_s=(0.0,),
            depths=(0,),
            parents=(None,),
            attributes=({},),
        )


def test_merge_offsets_starts_rebases_parents_and_sums_counters():
    first = _sample_report()
    second = _sample_report()
    merged = obs.RunReport.merge([first, second], meta={"runs": 2})
    assert merged.names == ("outer", "inner", "outer", "inner")
    assert merged.parents == (None, 0, None, 2)
    assert merged.counters == {"events": 6}
    assert merged.meta == {"runs": 2}
    assert merged.duration_s == pytest.approx(
        first.duration_s + second.duration_s
    )
    # The second report's spans start after the first report's window.
    assert merged.starts_s[2] >= first.duration_s
    obs.validate_report(json.loads(merged.to_json()))


def test_merge_single_report_without_meta_is_identity():
    report = _sample_report()
    assert obs.RunReport.merge([report]) is report


def test_merge_zero_reports_raises():
    with pytest.raises(ValueError, match="cannot merge zero reports"):
        obs.RunReport.merge([])


def test_render_shows_tree_totals_and_counters():
    rendered = _sample_report().render()
    assert "run report: 2 spans" in rendered
    assert "  inner" in rendered  # depth-indented tree row
    assert "kind=sample" in rendered
    assert "calls" in rendered and "share" in rendered
    assert "events" in rendered


@pytest.mark.parametrize(
    ("mutate", "message"),
    [
        (lambda d: d.pop("counters"), "top-level keys"),
        (lambda d: d.update(schema="other"), "schema"),
        (lambda d: d.update(version=99), "version"),
        (lambda d: d.update(duration_s=-1.0), "duration_s"),
        (lambda d: d["spans"].pop("depth"), "span columns"),
        (lambda d: d["spans"]["name"].append("extra"), "mismatched lengths"),
        (lambda d: d["spans"]["name"].__setitem__(0, ""), "non-empty string"),
        (lambda d: d["spans"]["depth"].__setitem__(0, 0.5), "integer"),
        (lambda d: d["spans"]["parent"].__setitem__(0, 0), "points at itself"),
        (lambda d: d["spans"]["parent"].__setitem__(1, 99), "span position"),
        (
            lambda d: d["spans"]["attributes"].__setitem__(0, {"k": [1]}),
            "JSON scalar",
        ),
        (lambda d: d["counters"].update(events=True), "finite number"),
        (lambda d: d["counters"].update({"": 1}), "non-empty string"),
    ],
)
def test_validate_rejects_malformed_documents(mutate, message):
    document = json.loads(_sample_report().to_json())
    mutate(document)
    with pytest.raises(ValueError, match=message):
        obs.validate_report(document)


def test_to_json_is_strict_about_non_finite_values():
    report = obs.RunReport(duration_s=float("nan"))
    with pytest.raises(ValueError):
        report.to_json()


# -- the artifact CLI ------------------------------------------------------------------


def test_obs_cli_validate_accepts_a_good_report(tmp_path, capsys):
    path = tmp_path / "report.json"
    path.write_text(_sample_report().to_json() + "\n")
    assert obs_main(["validate", str(path)]) == 0
    assert f"{path}: ok" in capsys.readouterr().out


def test_obs_cli_validate_flags_bad_reports_but_checks_all(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(_sample_report().to_json() + "\n")
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope"}))
    assert obs_main(["validate", str(bad), str(good)]) == 1
    captured = capsys.readouterr()
    assert "INVALID" in captured.err
    assert f"{good}: ok" in captured.out


def test_obs_cli_validate_rejects_nonfinite_json_constants(tmp_path, capsys):
    path = tmp_path / "nan.json"
    path.write_text(_sample_report().to_json().replace("3", "NaN", 1))
    assert obs_main(["validate", str(path)]) == 1
    assert "non-finite JSON constant" in capsys.readouterr().err


def test_obs_cli_validate_reports_missing_files(tmp_path, capsys):
    assert obs_main(["validate", str(tmp_path / "absent.json")]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_obs_cli_show_renders_tables(tmp_path, capsys):
    path = tmp_path / "report.json"
    path.write_text(_sample_report().to_json() + "\n")
    assert obs_main(["show", str(path)]) == 0
    out = capsys.readouterr().out
    assert "run report: 2 spans" in out
    assert "counter" in out


def test_obs_cli_show_rejects_invalid_documents(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "nope"}))
    assert obs_main(["show", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().err
