"""Tests for the cluster cache hierarchy and coherence directory."""

import pytest

from repro.uarch.coherence import CoherenceDirectory, LineState
from repro.uarch.hierarchy import ClusterCacheHierarchy, ServicedBy


# -- coherence directory --------------------------------------------------------------


def test_read_then_state_shared():
    directory = CoherenceDirectory()
    directory.read(0, 0x1000)
    assert directory.state(0x1000) is LineState.SHARED
    assert directory.sharers(0x1000) == {0}


def test_write_makes_line_modified():
    directory = CoherenceDirectory()
    directory.write(1, 0x1000)
    assert directory.state(0x1000) is LineState.MODIFIED
    assert directory.sharers(0x1000) == {1}


def test_write_invalidates_other_sharers():
    directory = CoherenceDirectory()
    directory.read(0, 0x40)
    directory.read(1, 0x40)
    invalidations = directory.write(2, 0x40)
    assert invalidations == 2
    assert directory.sharers(0x40) == {2}


def test_read_of_modified_line_causes_transfer():
    directory = CoherenceDirectory()
    directory.write(0, 0x80)
    transferred = directory.read(1, 0x80)
    assert transferred
    assert directory.state(0x80) is LineState.SHARED
    assert directory.stats.cache_to_cache_transfers == 1
    assert directory.stats.downgrade_writebacks == 1


def test_evict_clears_entry():
    directory = CoherenceDirectory()
    directory.write(0, 0xC0)
    directory.evict(0xC0)
    assert directory.state(0xC0) is LineState.INVALID


def test_invalid_core_id_rejected():
    directory = CoherenceDirectory(core_count=4)
    with pytest.raises(ValueError):
        directory.read(4, 0)


# -- hierarchy ---------------------------------------------------------------------------


def test_first_access_goes_to_memory():
    hierarchy = ClusterCacheHierarchy()
    result = hierarchy.access(0, 0x100000)
    assert result.serviced_by is ServicedBy.MEMORY
    assert result.memory_reads == 1


def test_second_access_hits_l1():
    hierarchy = ClusterCacheHierarchy()
    hierarchy.access(0, 0x100000)
    result = hierarchy.access(0, 0x100000)
    assert result.serviced_by is ServicedBy.L1
    assert result.memory_reads == 0


def test_other_core_hits_llc():
    hierarchy = ClusterCacheHierarchy()
    hierarchy.access(0, 0x200000)
    result = hierarchy.access(1, 0x200000)
    assert result.serviced_by is ServicedBy.LLC


def test_write_by_other_core_invalidates_l1_copy():
    hierarchy = ClusterCacheHierarchy()
    hierarchy.access(0, 0x300000)
    result = hierarchy.access(1, 0x300000, is_write=True)
    assert result.coherence_invalidations >= 1
    # Core 0 must now miss its L1 (the line was invalidated).
    result_after = hierarchy.access(0, 0x300000)
    assert result_after.serviced_by is not ServicedBy.L1


def test_instruction_fetches_use_l1i():
    hierarchy = ClusterCacheHierarchy()
    hierarchy.access(0, 0x400000, is_instruction=True)
    assert hierarchy.l1i[0].stats.accesses == 1
    assert hierarchy.l1d[0].stats.accesses == 0


def test_llc_misses_counted():
    hierarchy = ClusterCacheHierarchy()
    for line in range(100):
        hierarchy.access(0, 0x10000000 + line * 64)
    assert hierarchy.llc_misses() == 100
    assert hierarchy.l1d_misses() == 100


def test_invalid_core_rejected():
    hierarchy = ClusterCacheHierarchy()
    with pytest.raises(ValueError):
        hierarchy.access(7, 0)


def test_reset_stats():
    hierarchy = ClusterCacheHierarchy()
    hierarchy.access(0, 0)
    hierarchy.reset_stats()
    assert hierarchy.llc.stats.accesses == 0
