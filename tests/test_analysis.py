"""Tests for the figure/table builders and the paper-claim validation."""

import pytest

from repro.analysis.figures import (
    FigureSeries,
    figure1_series,
    figure2_series,
    figure3_series,
    figure4_series,
)
from repro.analysis.tables import memory_power_summary, table1_rows
from repro.analysis.validation import claims_as_dict, validate_paper_claims
from repro.core.efficiency import EfficiencyScope
from repro.utils.units import mhz


# -- Figure 1 -----------------------------------------------------------------------


def test_figure1_contains_three_flavours():
    series = figure1_series(frequencies_hz=[mhz(f) for f in (200, 500, 1000, 2000)])
    assert set(series) == {"bulk", "fdsoi", "fdsoi-fbb"}
    for flavour in series.values():
        assert set(flavour) == {"vdd", "power"}


def test_figure1_power_and_vdd_monotone_in_frequency():
    series = figure1_series(frequencies_hz=[mhz(f) for f in range(200, 2001, 200)])
    for flavour in series.values():
        assert list(flavour["power"].y_values) == sorted(flavour["power"].y_values)
        assert list(flavour["vdd"].y_values) == sorted(flavour["vdd"].y_values)


def test_figure1_fdsoi_below_bulk_power():
    series = figure1_series(frequencies_hz=[mhz(f) for f in (500, 1000, 2000)])
    bulk = series["bulk"]["power"].y_values
    fdsoi = series["fdsoi"]["power"].y_values
    assert all(f < b for f, b in zip(fdsoi, bulk))


# -- Figure 2 -----------------------------------------------------------------------


def test_figure2_has_four_workloads():
    series = figure2_series(frequencies_hz=[mhz(f) for f in (200, 500, 1000, 2000)])
    assert len(series) == 4


def test_figure2_normalized_latency_decreases_with_frequency():
    series = figure2_series(frequencies_hz=[mhz(f) for f in (200, 500, 1000, 2000)])
    for figure in series.values():
        assert list(figure.y_values) == sorted(figure.y_values, reverse=True)


def test_figure2_meets_qos_at_2ghz():
    series = figure2_series(frequencies_hz=[mhz(2000)])
    for figure in series.values():
        assert figure.y_values[0] < 1.0


# -- Figures 3 and 4 -------------------------------------------------------------------


def test_figure3_scopes_have_expected_shapes():
    frequencies = [mhz(f) for f in (200, 500, 1000, 1500, 2000)]
    cores = figure3_series(EfficiencyScope.CORES, frequencies_hz=frequencies)
    soc = figure3_series(EfficiencyScope.SOC, frequencies_hz=frequencies)
    for name in cores:
        # Cores: efficiency decreases with frequency.
        assert list(cores[name].y_values) == sorted(cores[name].y_values, reverse=True)
        # SoC: interior maximum (not at either end for this grid).
        soc_values = list(soc[name].y_values)
        assert max(soc_values) not in (soc_values[0],)


def test_figure4_has_two_vm_classes():
    series = figure4_series(
        EfficiencyScope.SERVER, frequencies_hz=[mhz(500), mhz(1000), mhz(2000)]
    )
    assert set(series) == {"VMs low-mem", "VMs high-mem"}


def test_figure4_high_mem_above_low_mem_efficiency():
    series = figure4_series(
        EfficiencyScope.SERVER, frequencies_hz=[mhz(1000), mhz(2000)]
    )
    high = series["VMs high-mem"].y_values
    low = series["VMs low-mem"].y_values
    assert all(h > l for h, l in zip(high, low))


def test_figure_series_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        FigureSeries("broken", (1.0, 2.0), (1.0,))


def test_figure_series_as_rows():
    series = FigureSeries("x", (1.0, 2.0), (3.0, 4.0))
    assert series.as_rows() == [(1.0, 3.0), (2.0, 4.0)]


# -- Table I and validation ---------------------------------------------------------------


def test_table1_values_match_paper():
    row = table1_rows()[0]
    assert row["E_IDLE (nJ/cycle)"] == pytest.approx(0.0728)
    assert row["E_READ (nJ/byte)"] == pytest.approx(0.2566)
    assert row["E_WRITE (nJ/byte)"] == pytest.approx(0.2495)


def test_memory_power_summary_fields():
    summary = memory_power_summary()
    assert summary["chips"] == 128
    assert summary["capacity_gb"] == pytest.approx(64.0)
    assert summary["total_power_w"] == pytest.approx(
        summary["background_power_w"] + summary["dynamic_power_w"]
    )


def test_all_paper_claims_pass():
    checks = validate_paper_claims()
    failed = [check.claim for check in checks if not check.passed]
    assert failed == []


def test_claims_as_dict_shape():
    claims = claims_as_dict()
    assert len(claims) >= 10
    assert all(isinstance(value, bool) for value in claims.values())
