"""Property tests for the batched replay engine.

The tentpole claim, pinned with ``np.array_equal`` and exact ``==`` --
no tolerances anywhere: a :class:`BatchReplayRunner` run over B specs
is **bit for bit** the same as B independent single-replay kernel
calls (and, via the simulators, the object-based reference path):

* every column of every replay, across all governors, routings,
  autoscale on/off and ragged trace lengths (so the (B, T) padding and
  masking must be exact, not approximately right);
* every scalar summary dict, against ``GovernorSimulator.replay`` /
  ``FleetSimulator.run`` summaries (float-sensitive derived ratios
  included);
* hypothesis-sampled batch shapes: random row counts, random lengths,
  mixed governors in one batch;
* specs whose policy types have no kernel fall back to the per-replay
  simulator path inside the same batch.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvfs import GOVERNORS, GovernorSimulator, LoadTrace
from repro.dvfs.governors import PerformanceGovernor, governor_by_name
from repro.fleet import ROUTERS, Autoscaler, FleetSimulator
from repro.fleet.routing import RoundRobinRouting, router_by_name
from repro.kernels import (
    BatchReplayRunner,
    ReplaySpec,
    fleet_replay_columns,
    governor_replay_columns,
)
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import WEB_SEARCH

utilizations = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=12,
)

ragged_batches = st.lists(utilizations, min_size=1, max_size=5)


def make_trace(values, step_seconds=60.0, name="sampled") -> LoadTrace:
    return LoadTrace(
        name=name, step_seconds=step_seconds, utilization=tuple(values)
    )


def assert_columns_equal(got, ref, label):
    assert set(got) == set(ref), label
    for name, reference in ref.items():
        column = got[name]
        assert column.dtype == reference.dtype, f"{label}/{name}"
        assert np.array_equal(
            column, reference, equal_nan=column.dtype.kind == "f"
        ), f"{label}/{name}"


# -- single-server batches vs looped kernel calls ---------------------------------------


@settings(max_examples=15, deadline=None)
@given(batch=ragged_batches, governor=st.sampled_from(sorted(GOVERNORS)))
def test_batched_replay_equals_looped_kernel_calls(
    batch, governor, default_context
):
    """(B, T) stacking with ragged lengths never changes a single bit."""
    traces = [make_trace(values, name=f"row{i}") for i, values in enumerate(batch)]
    runner = BatchReplayRunner(default_context)
    specs = [
        ReplaySpec(workload=WEB_SEARCH, trace=trace, governor=governor)
        for trace in traces
    ]
    result = runner.run(specs)
    assert result.batched_count == len(traces)
    assert result.fallback_count == 0
    table = default_context.frequency_table(WEB_SEARCH)
    for row, trace in enumerate(traces):
        reference = governor_replay_columns(
            table, governor_by_name(governor), trace
        )
        replay = result.result(row)
        got = {name: replay.column(name) for name in reference}
        assert_columns_equal(got, reference, f"{governor}/row{row}")


@settings(max_examples=10, deadline=None)
@given(batch=ragged_batches)
def test_mixed_governor_batch_matches_simulator_summaries(
    batch, default_context, websearch_simulator
):
    """Mixed-policy batches reproduce simulator summaries exactly."""
    governors = sorted(GOVERNORS)
    specs = []
    for index, values in enumerate(batch):
        specs.append(
            ReplaySpec(
                workload=WEB_SEARCH,
                trace=make_trace(values, name=f"row{index}"),
                governor=governors[index % len(governors)],
            )
        )
    result = BatchReplayRunner(default_context).run(specs)
    summaries = result.summaries()
    for index, spec in enumerate(specs):
        reference = websearch_simulator.replay(spec.trace, spec.governor)
        assert summaries[index] == reference.summary()


# -- fleet batches vs looped kernel calls -----------------------------------------------


@pytest.mark.parametrize("routing", sorted(ROUTERS))
@pytest.mark.parametrize("governor", sorted(GOVERNORS))
@settings(max_examples=6, deadline=None)
@given(
    batch=st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
        min_size=1,
        max_size=4,
    ),
    autoscale=st.booleans(),
)
def test_batched_fleet_equals_looped_kernel_calls(
    routing, governor, batch, autoscale, default_context
):
    """(B, N, T) stacking is exact for every routing x governor trio."""
    autoscaler = Autoscaler() if autoscale else None
    traces = [make_trace(values, name=f"row{i}") for i, values in enumerate(batch)]
    specs = [
        ReplaySpec(
            workload=WEB_SEARCH,
            trace=trace,
            governor=governor,
            fleet_size=3,
            routing=routing,
            autoscaler=autoscaler,
            off_power_w=7.0,
        )
        for trace in traces
    ]
    result = BatchReplayRunner(default_context).run(specs)
    assert result.fallback_count == 0
    table = default_context.frequency_table(WEB_SEARCH)
    for row, trace in enumerate(traces):
        fleet_ref, node_ref = fleet_replay_columns(
            table,
            WEB_SEARCH,
            3,
            governor_by_name(governor),
            router_by_name(routing),
            autoscaler,
            7.0,
            trace,
            True,
        )
        replay = result.result(row)
        got = {name: replay.column(name) for name in fleet_ref}
        assert_columns_equal(got, fleet_ref, f"{routing}/{governor}/row{row}")
        for node, reference in node_ref.items():
            got = {
                name: replay.node_column(node, name) for name in reference
            }
            assert_columns_equal(
                got, reference, f"{routing}/{governor}/row{row}/node{node}"
            )


@pytest.mark.parametrize("routing", sorted(ROUTERS))
def test_batched_fleet_summaries_match_simulator(routing, default_context):
    """Summary dicts equal FleetSimulator's exactly, per routing."""
    traces = [
        LoadTrace.bursty(steps=40, seed=3).head(31),
        LoadTrace.diurnal(steps=24, step_seconds=600.0),
        LoadTrace.constant(utilization=0.8, steps=7),
    ]
    specs = [
        ReplaySpec(
            workload=WEB_SEARCH,
            trace=trace,
            governor="conservative",
            fleet_size=4,
            routing=routing,
            autoscaler=Autoscaler(),
        )
        for trace in traces
    ]
    summaries = BatchReplayRunner(default_context).run(specs).summaries()
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=4,
        governor="conservative",
        autoscaler=Autoscaler(),
    )
    for index, trace in enumerate(traces):
        assert summaries[index] == simulator.run(trace, routing).summary()


# -- mixed batches, fallbacks and edge specs --------------------------------------------


def test_mixed_single_and_fleet_batch(default_context, websearch_simulator):
    """Single-server and fleet specs coexist in one submission order."""
    trace = LoadTrace.bursty(steps=50, seed=5)
    specs = [
        ReplaySpec(workload=WEB_SEARCH, trace=trace, governor="ondemand"),
        ReplaySpec(
            workload=WEB_SEARCH,
            trace=trace.head(20),
            governor="qos_tracker",
            fleet_size=2,
            routing="pack",
        ),
        ReplaySpec(workload=VMS_LOW_MEM, trace=trace, governor="powersave"),
    ]
    result = BatchReplayRunner(default_context).run(specs)
    assert len(result) == 3
    assert result.batched_count == 3
    summaries = result.summaries()
    assert summaries[0]["governor"] == "ondemand"
    assert summaries[1]["routing"] == "pack"
    assert summaries[2]["workload"] == VMS_LOW_MEM.name
    # VM workloads replay without queueing columns: all-NaN tails.
    vm_fleet = ReplaySpec(
        workload=VMS_LOW_MEM,
        trace=trace.head(10),
        governor="performance",
        fleet_size=2,
        routing="round_robin",
    )
    vm_result = BatchReplayRunner(default_context).run([vm_fleet])
    tails = vm_result.result(0).column("tail_latency_s")
    assert np.isnan(tails).all()
    assert vm_result.summaries()[0]["queue_violation_count"] == 0
    reference = websearch_simulator.replay(trace, "ondemand")
    assert summaries[0] == reference.summary()


def test_custom_policy_specs_fall_back_to_simulators(default_context):
    """Subclassed policies run object-path but stay in the batch."""

    @dataclasses.dataclass(frozen=True)
    class FloorGovernor(PerformanceGovernor):
        def select(self, observation, platform):
            return platform.frequencies[0]

    @dataclasses.dataclass(frozen=True)
    class NoisyRoundRobin(RoundRobinRouting):
        pass

    trace = LoadTrace.constant(utilization=0.5, steps=8)
    specs = [
        ReplaySpec(workload=WEB_SEARCH, trace=trace, governor=FloorGovernor()),
        ReplaySpec(workload=WEB_SEARCH, trace=trace, governor="performance"),
        ReplaySpec(
            workload=WEB_SEARCH,
            trace=trace,
            governor="performance",
            fleet_size=2,
            routing=NoisyRoundRobin(),
        ),
    ]
    result = BatchReplayRunner(default_context).run(specs)
    assert result.batched_count == 1
    assert result.fallback_count == 2
    summaries = result.summaries()
    # The fallback governor floors the frequency; the kernel one tops it.
    assert summaries[0]["mean_frequency_hz"] < summaries[1]["mean_frequency_hz"]
    reference = GovernorSimulator(default_context, WEB_SEARCH).replay(
        trace, FloorGovernor()
    )
    assert summaries[0] == reference.summary()
    fleet_reference = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=2, governor="performance"
    ).run(trace, NoisyRoundRobin())
    assert summaries[2] == fleet_reference.summary()


def test_replay_spec_validation():
    trace = LoadTrace.constant(steps=4)
    with pytest.raises(ValueError, match="routing policy needs a fleet_size"):
        ReplaySpec(workload=WEB_SEARCH, trace=trace, routing="pack")
    with pytest.raises(ValueError, match="autoscaler needs a fleet_size"):
        ReplaySpec(
            workload=WEB_SEARCH, trace=trace, autoscaler=Autoscaler()
        )
    with pytest.raises(ValueError, match="off_power_w needs a fleet_size"):
        ReplaySpec(workload=WEB_SEARCH, trace=trace, off_power_w=3.0)
    with pytest.raises(ValueError, match="needs a routing policy"):
        ReplaySpec(workload=WEB_SEARCH, trace=trace, fleet_size=2)
    with pytest.raises(ValueError, match="fleet_size must be >= 1"):
        ReplaySpec(
            workload=WEB_SEARCH,
            trace=trace,
            fleet_size=0,
            routing="pack",
        )
    with pytest.raises(ValueError, match="min_servers"):
        ReplaySpec(
            workload=WEB_SEARCH,
            trace=trace,
            fleet_size=1,
            routing="pack",
            autoscaler=Autoscaler(min_servers=2),
        )
    with pytest.raises(TypeError, match="ReplaySpec items"):
        BatchReplayRunner(None).run(["not a spec"])


def test_results_materialize_in_submission_order(default_context):
    trace = LoadTrace.diurnal()
    specs = [
        ReplaySpec(workload=WEB_SEARCH, trace=trace.head(n), governor=g)
        for n, g in ((12, "ondemand"), (48, "powersave"), (30, "ondemand"))
    ]
    result = BatchReplayRunner(default_context).run(specs)
    results = result.results()
    assert [len(r.column("step")) for r in results] == [12, 48, 30]
    assert [r.governor_name for r in results] == [
        "ondemand",
        "powersave",
        "ondemand",
    ]
    # summaries() is cached and stable across calls.
    assert result.summaries() == result.summaries()
