"""Checkpointed tuner runs resume bit for bit.

The resumability contract, pinned with exact ``as_dict()`` equality
(every float bit-identical): a :meth:`PolicyTuner.tune` run with
``checkpoint_dir=`` produces the same :class:`OptResult` as an
uncheckpointed run, whether it resumes mid-optimisation after a crash,
rebuilds a corrupt or truncated rung checkpoint, or replays entirely
from cached rungs.  Fingerprints keep one directory from leaking
results across different run configurations.
"""

import json

import pytest

from repro import obs
from repro.dvfs import LoadTrace
from repro.opt import GridSearch, ParamSpace, PolicyTuner, SuccessiveHalving
from repro.resilience import FaultPlan, InjectedFault, inject
from repro.workloads.cloudsuite import WEB_SEARCH

SPACE = ParamSpace(
    fleet_sizes=(2, 3),
    governors=("qos_tracker", "ondemand"),
    routings=("round_robin",),
    fill_fractions=(0.75,),
    bands=(None,),
    wake_steps=(1,),
)

HALVING = SuccessiveHalving(keep_fraction=0.5, prefix_steps=(3, 6))


@pytest.fixture(scope="module")
def trace():
    return LoadTrace.bursty(steps=12, seed=5)


@pytest.fixture(scope="module")
def halving_baseline(default_context, trace):
    tuner = PolicyTuner(default_context, WEB_SEARCH, trace)
    return tuner.tune(SPACE, HALVING).as_dict()


def make_tuner(default_context, trace, **kwargs):
    return PolicyTuner(default_context, WEB_SEARCH, trace, **kwargs)


def test_checkpointed_run_matches_uncheckpointed(
    default_context, trace, halving_baseline, tmp_path
):
    tuner = make_tuner(default_context, trace)
    with obs.capture() as cap:
        result = tuner.tune(SPACE, HALVING, checkpoint_dir=tmp_path)
    assert result.as_dict() == halving_baseline
    rungs = sorted(path.name for path in tmp_path.glob("rung_*.json"))
    assert rungs == ["rung_000.json", "rung_001.json", "rung_002.json"]
    assert cap.counter_deltas()["resilience.checkpoint_saves"] == 3


def test_crash_between_rungs_then_resume_is_bit_identical(
    default_context, trace, halving_baseline, tmp_path
):
    """Kill the run after rung 0 lands, resume, compare bit for bit."""
    plan = FaultPlan(site="tuner.rung", at_call=2, action="raise")
    tuner = make_tuner(default_context, trace)
    with inject(plan):
        with pytest.raises(InjectedFault):
            tuner.tune(SPACE, HALVING, checkpoint_dir=tmp_path)
    assert [p.name for p in sorted(tmp_path.glob("*.json"))] == [
        "rung_000.json"
    ]

    resumed = make_tuner(default_context, trace)
    with obs.capture() as cap:
        result = resumed.tune(SPACE, HALVING, checkpoint_dir=tmp_path)
    deltas = cap.counter_deltas()
    assert deltas["resilience.rungs_resumed"] == 1
    assert deltas["resilience.checkpoint_hits"] == 1
    assert result.as_dict() == halving_baseline


def test_full_resume_replays_every_rung_from_cache(
    default_context, trace, halving_baseline, tmp_path
):
    make_tuner(default_context, trace).tune(
        SPACE, HALVING, checkpoint_dir=tmp_path
    )
    with obs.capture() as cap:
        result = make_tuner(default_context, trace).tune(
            SPACE, HALVING, checkpoint_dir=tmp_path
        )
    deltas = cap.counter_deltas()
    assert deltas["resilience.rungs_resumed"] == 3
    # Fully cached: no batched replay work happened at all.
    assert "batch.groups" not in deltas
    assert result.as_dict() == halving_baseline


@pytest.mark.parametrize(
    "damage",
    [
        pytest.param(lambda text: text[: len(text) // 2], id="truncated"),
        pytest.param(
            lambda text: text.replace('"trials"', '"trails"'), id="bit-rot"
        ),
        pytest.param(lambda text: "", id="empty"),
    ],
)
def test_damaged_checkpoint_is_rebuilt_bit_identically(
    damage, default_context, trace, halving_baseline, tmp_path
):
    make_tuner(default_context, trace).tune(
        SPACE, HALVING, checkpoint_dir=tmp_path
    )
    victim = tmp_path / "rung_001.json"
    victim.write_text(damage(victim.read_text()))
    with obs.capture() as cap:
        result = make_tuner(default_context, trace).tune(
            SPACE, HALVING, checkpoint_dir=tmp_path
        )
    deltas = cap.counter_deltas()
    assert deltas["resilience.checkpoint_rejected"] == 1
    assert deltas["resilience.rungs_resumed"] == 2  # rungs 0 and 2 cached
    assert result.as_dict() == halving_baseline
    # The damaged file was rebuilt into a valid checkpoint on disk.
    envelope = json.loads(victim.read_text())
    assert envelope["format"] == "repro.checkpoint.v1"


def test_stale_fingerprint_never_resumes(default_context, trace, tmp_path):
    make_tuner(default_context, trace).tune(
        SPACE, HALVING, checkpoint_dir=tmp_path
    )
    other_trace = LoadTrace.bursty(steps=12, seed=6)
    baseline = make_tuner(default_context, other_trace).tune(SPACE, HALVING)
    with obs.capture() as cap:
        result = make_tuner(default_context, other_trace).tune(
            SPACE, HALVING, checkpoint_dir=tmp_path
        )
    deltas = cap.counter_deltas()
    assert deltas.get("resilience.rungs_resumed", 0) == 0
    assert result.as_dict() == baseline.as_dict()


def test_grid_checkpoint_round_trip(
    default_context, trace, tmp_path
):
    baseline = make_tuner(default_context, trace).tune(SPACE, GridSearch())
    make_tuner(default_context, trace).tune(
        SPACE, GridSearch(), checkpoint_dir=tmp_path
    )
    resumed = make_tuner(default_context, trace).tune(
        SPACE, GridSearch(), checkpoint_dir=tmp_path
    )
    assert resumed.as_dict() == baseline.as_dict()


def test_quarantine_state_survives_resume(default_context, trace, tmp_path):
    """A rung whose quarantine happened pre-crash is restored from disk."""
    corrupt_plan = FaultPlan(site="tuner.objective", at_call=1, action="nan")
    quarantine_tuner = make_tuner(
        default_context, trace, on_error="quarantine"
    )
    with inject(corrupt_plan):
        baseline = quarantine_tuner.tune(
            SPACE, HALVING, checkpoint_dir=tmp_path
        )
    assert len(baseline.quarantined) == 1

    resumed = make_tuner(default_context, trace, on_error="quarantine").tune(
        SPACE, HALVING, checkpoint_dir=tmp_path
    )
    assert resumed.as_dict() == baseline.as_dict()
    assert resumed.quarantined == baseline.quarantined
