"""Tests for unit conversion helpers."""

import pytest

from repro.utils import units


def test_mhz_to_hz():
    assert units.mhz(100) == 100e6


def test_ghz_to_hz():
    assert units.ghz(2.0) == 2.0e9


def test_to_mhz_roundtrip():
    assert units.to_mhz(units.mhz(750)) == pytest.approx(750)


def test_to_ghz_roundtrip():
    assert units.to_ghz(units.ghz(1.3)) == pytest.approx(1.3)


def test_nj_to_joules():
    assert units.nj(0.0728) == pytest.approx(0.0728e-9)


def test_joules_per_op_to_nj_roundtrip():
    assert units.joules_per_op_to_nj(units.nj(0.2566)) == pytest.approx(0.2566)


def test_mw_and_uw():
    assert units.mw(25) == pytest.approx(0.025)
    assert units.uw(500) == pytest.approx(0.0005)


def test_ms_roundtrip():
    assert units.seconds_to_ms(units.ms_to_seconds(20)) == pytest.approx(20)


def test_capacity_constants():
    assert units.MB == 1024 * units.KB
    assert units.GB == 1024 * units.MB


def test_cycles_to_seconds():
    assert units.cycles_to_seconds(2.0e9, 2.0e9) == pytest.approx(1.0)


def test_seconds_to_cycles():
    assert units.seconds_to_cycles(0.5, 1.0e9) == pytest.approx(5.0e8)


def test_cycles_to_seconds_rejects_zero_frequency():
    with pytest.raises(ValueError):
        units.cycles_to_seconds(100, 0.0)


def test_seconds_to_cycles_rejects_negative_frequency():
    with pytest.raises(ValueError):
        units.seconds_to_cycles(1.0, -1.0)
