"""Tests for the branch, ROB, crossbar and interval core models."""

import pytest
from hypothesis import given, strategies as st

from repro.uarch.branch import BranchPredictorModel
from repro.uarch.core_model import CoreConfig, IntervalCoreModel, UncoreLatencies
from repro.uarch.interconnect import CrossbarModel
from repro.uarch.rob import ReorderBufferModel
from repro.workloads.cloudsuite import DATA_SERVING, MEDIA_STREAMING, WEB_SEARCH


def _stack(model, workload, frequency, **overrides):
    parameters = dict(
        base_cpi=workload.base_cpi,
        branch_fraction=workload.branch_fraction,
        branch_predictability=workload.branch_predictability,
        l1_mpki=workload.l1_mpki,
        llc_mpki=workload.llc_mpki,
        memory_level_parallelism=workload.memory_level_parallelism,
    )
    parameters.update(overrides)
    return model.cpi_stack(frequency, **parameters)


# -- branch predictor -------------------------------------------------------------------


def test_branch_accuracy_with_perfect_predictability():
    model = BranchPredictorModel(base_accuracy=0.95)
    assert model.accuracy(1.0) == pytest.approx(0.95)


def test_branch_accuracy_degrades_with_hard_workloads():
    model = BranchPredictorModel()
    assert model.accuracy(0.5) < model.accuracy(1.0)


def test_branch_cpi_contribution_scales_with_fraction():
    model = BranchPredictorModel()
    assert model.cpi_contribution(0.2) == pytest.approx(2 * model.cpi_contribution(0.1))


# -- reorder buffer ----------------------------------------------------------------------


def test_window_limited_mlp_grows_with_miss_density():
    rob = ReorderBufferModel(window_size=128)
    assert rob.window_limited_mlp(40.0) > rob.window_limited_mlp(5.0)


def test_effective_mlp_bounded_by_workload():
    rob = ReorderBufferModel()
    assert rob.effective_mlp(50.0, workload_mlp=2.0) == pytest.approx(2.0)


def test_effective_mlp_at_least_one():
    rob = ReorderBufferModel()
    assert rob.effective_mlp(0.5, workload_mlp=4.0) >= 1.0


def test_exposed_latency_divides_by_mlp():
    rob = ReorderBufferModel()
    exposed = rob.exposed_miss_latency(100.0, 20.0, workload_mlp=2.0)
    assert exposed == pytest.approx(50.0)


# -- crossbar ----------------------------------------------------------------------------


def test_crossbar_latency_increases_with_load():
    crossbar = CrossbarModel()
    assert crossbar.round_trip_latency_ns(3.0e9) > crossbar.round_trip_latency_ns(0.0)


def test_crossbar_utilization_capped():
    crossbar = CrossbarModel()
    assert crossbar.port_utilization(1e12) <= 0.99


def test_crossbar_saturation_flag():
    crossbar = CrossbarModel()
    assert crossbar.saturated(1e11)
    assert not crossbar.saturated(1e6)


# -- interval model -----------------------------------------------------------------------


def test_uipc_increases_as_frequency_decreases():
    model = IntervalCoreModel()
    uipc_low = _stack(model, DATA_SERVING, 0.2e9).uipc
    uipc_high = _stack(model, DATA_SERVING, 2.0e9).uipc
    assert uipc_low > uipc_high


def test_uips_still_increases_with_frequency():
    model = IntervalCoreModel()
    assert _stack(model, DATA_SERVING, 2.0e9).uipc * 2.0e9 > (
        _stack(model, DATA_SERVING, 0.2e9).uipc * 0.2e9
    )


def test_memory_bound_workload_has_larger_memory_component():
    model = IntervalCoreModel()
    data_serving = _stack(model, DATA_SERVING, 2.0e9)
    web_search = _stack(model, WEB_SEARCH, 2.0e9)
    assert data_serving.memory > web_search.memory


def test_high_mlp_workload_hides_memory_latency():
    model = IntervalCoreModel()
    streaming = _stack(model, MEDIA_STREAMING, 2.0e9)
    low_mlp = _stack(model, MEDIA_STREAMING, 2.0e9, memory_level_parallelism=1.0)
    assert streaming.memory < low_mlp.memory


def test_cpi_stack_total_and_uipc_consistent():
    model = IntervalCoreModel()
    stack = _stack(model, WEB_SEARCH, 1.0e9)
    assert stack.total == pytest.approx(
        stack.base + stack.branch + stack.llc + stack.memory
    )
    assert stack.uipc == pytest.approx(1.0 / stack.total)
    assert 0.0 < stack.memory_bound_fraction < 1.0


def test_llc_mpki_cannot_exceed_l1_mpki():
    model = IntervalCoreModel()
    with pytest.raises(ValueError):
        _stack(model, WEB_SEARCH, 1.0e9, l1_mpki=5.0, llc_mpki=10.0)


def test_uips_helper_matches_uipc_times_frequency():
    model = IntervalCoreModel()
    characteristics = dict(
        base_cpi=0.7,
        branch_fraction=0.15,
        branch_predictability=0.9,
        l1_mpki=20.0,
        llc_mpki=5.0,
        memory_level_parallelism=2.0,
    )
    assert model.uips(1.5e9, **characteristics) == pytest.approx(
        model.uipc(1.5e9, **characteristics) * 1.5e9
    )


def test_custom_uncore_latency_changes_memory_component():
    model = IntervalCoreModel()
    slow_memory = _stack(
        model, DATA_SERVING, 2.0e9, uncore=UncoreLatencies(memory_ns=140.0)
    )
    fast_memory = _stack(
        model, DATA_SERVING, 2.0e9, uncore=UncoreLatencies(memory_ns=50.0)
    )
    assert slow_memory.memory > fast_memory.memory


def test_core_config_defaults_match_paper():
    config = CoreConfig()
    assert config.issue_width == 3
    assert config.window_size == 128


@given(st.floats(min_value=1e8, max_value=2e9), st.floats(min_value=1.5e8, max_value=2e9))
def test_uipc_monotone_nonincreasing_in_frequency(f1, f2):
    model = IntervalCoreModel()
    low, high = sorted((f1, f2))
    assert _stack(model, DATA_SERVING, low).uipc >= _stack(model, DATA_SERVING, high).uipc - 1e-9
