"""Tests for the governor simulator and its columnar replay tables."""

import numpy as np
import pytest

from repro.core.config import default_server
from repro.dvfs import (
    GOVERNORS,
    MEMORYLESS_GOVERNORS,
    REPLAY_COLUMNS,
    GovernorSimulator,
    LoadTrace,
)
from repro.dvfs.replay import ReplayResult
from repro.sweep.context import ModelContext
from repro.workloads.banking_vm import VMS_HIGH_MEM
from repro.workloads.cloudsuite import WEB_SEARCH


def assert_replays_identical(left, right) -> None:
    assert len(left) == len(right)
    for name in REPLAY_COLUMNS:
        assert np.array_equal(
            left.column(name), right.column(name), equal_nan=True
        ), f"column {name} differs"


# -- table mechanics --------------------------------------------------------------------


def test_replay_table_shape_and_dicts(websearch_simulator, diurnal_trace):
    replay = websearch_simulator.replay(diurnal_trace, "qos_tracker")
    assert len(replay) == len(diurnal_trace)
    assert replay.governor_name == "qos_tracker"
    assert replay.workload_name == "Web Search"
    assert replay.trace_name == "diurnal"
    rows = replay.to_dicts()
    assert [row["step"] for row in rows] == list(range(len(diurnal_trace)))
    first = rows[0]
    assert set(first) == set(REPLAY_COLUMNS)
    # Energy is power x step duration, row by row.
    assert np.allclose(
        replay.column("energy_j"),
        replay.column("power_w") * diurnal_trace.step_seconds,
    )
    # Served work never exceeds demand or capacity.
    assert np.all(
        replay.column("served_uips") <= replay.column("demand_uips") + 1e-9
    )
    assert np.all(
        replay.column("served_uips") <= replay.column("capacity_uips") + 1e-9
    )


def test_replay_column_access_errors(websearch_simulator, diurnal_trace):
    replay = websearch_simulator.replay(diurnal_trace, "performance")
    with pytest.raises(KeyError, match="unknown replay column"):
        replay.column("wattage")


def test_replay_result_rejects_malformed_columns():
    with pytest.raises(ValueError, match="missing replay columns"):
        ReplayResult(
            governor_name="g",
            workload_name="w",
            trace_name="t",
            step_seconds=1.0,
            instructions_per_request=0.0,
            columns={},
        )
    good = {name: np.zeros(2) for name in REPLAY_COLUMNS}
    good["frequency_hz"] = np.zeros(3)  # unequal length
    with pytest.raises(ValueError, match="unequal lengths"):
        ReplayResult(
            governor_name="g",
            workload_name="w",
            trace_name="t",
            step_seconds=1.0,
            instructions_per_request=0.0,
            columns=good,
        )


def test_residency_and_summary(websearch_simulator, diurnal_trace):
    replay = websearch_simulator.replay(diurnal_trace, "performance")
    residency = replay.residency()
    assert residency == {max(websearch_simulator.platform.frequencies): 1.0}
    summary = replay.summary()
    assert summary["governor"] == "performance"
    assert summary["steps"] == len(diurnal_trace)
    assert summary["violation_count"] == 0
    assert summary["total_energy_j"] == pytest.approx(replay.total_energy_j)
    # Web Search has a request size, so per-request energy is defined.
    assert summary["energy_per_request_j"] > 0


def test_vm_replay_has_no_request_metric(vm_simulator, diurnal_trace):
    replay = vm_simulator.replay(diurnal_trace, "qos_tracker")
    assert replay.total_requests is None
    assert replay.energy_per_request_j is None
    assert replay.energy_per_giga_instruction_j > 0


def test_zero_load_trace_serves_no_work(websearch_simulator):
    idle = LoadTrace.constant(0.0, steps=4, name="idle")
    replay = websearch_simulator.replay(idle, "powersave")
    assert replay.total_giga_instructions == 0.0
    assert replay.energy_per_giga_instruction_j is None
    assert replay.energy_per_request_j is None
    assert replay.total_energy_j > 0  # the server still burns power


# -- simulator behaviour ----------------------------------------------------------------


def test_unknown_governor_name_raises(websearch_simulator, diurnal_trace):
    with pytest.raises(ValueError, match="unknown governor"):
        websearch_simulator.replay(diurnal_trace, "schedutil")


def test_record_requires_grid_frequency(websearch_simulator):
    with pytest.raises(ValueError, match="not on the replay grid"):
        websearch_simulator.record(123.0)


def test_unreachable_grid_is_rejected():
    """A grid beyond the technology's reach cannot be replayed."""
    context = ModelContext(default_server())
    simulator = GovernorSimulator(
        context, WEB_SEARCH, frequencies=(100e9,)  # 100GHz: no vdd reaches it
    )
    with pytest.raises(ValueError, match="no reachable frequency"):
        simulator.platform


def test_compare_runs_all_registered_governors(
    websearch_simulator, bursty_trace
):
    replays = websearch_simulator.compare(bursty_trace)
    assert list(replays) == list(GOVERNORS)
    for replay in replays.values():
        assert len(replay) == len(bursty_trace)


def test_compare_rejects_duplicate_governors(websearch_simulator, bursty_trace):
    with pytest.raises(ValueError, match="duplicate governor"):
        websearch_simulator.compare(
            bursty_trace, ["performance", "performance"]
        )


def test_platform_is_shared_with_the_context(default_context):
    """Replay evaluations reuse the context's memoized design points."""
    simulator = GovernorSimulator(default_context, WEB_SEARCH)
    before = default_context.evaluated_points
    simulator.platform  # builds once, evaluating each grid frequency
    between = default_context.evaluated_points
    simulator.replay(LoadTrace.diurnal(), "ondemand")
    after = default_context.evaluated_points
    assert between >= before
    assert after == between  # replays add no new evaluations


# -- determinism (seeding audit regression) --------------------------------------------


def test_replay_tables_identical_across_runs_with_same_seed():
    """The whole path trace -> governor -> table is bit-reproducible."""

    def build():
        context = ModelContext(default_server())
        simulator = GovernorSimulator(context, WEB_SEARCH)
        trace = LoadTrace.diurnal(seed=99)
        return {
            name: simulator.replay(trace, name) for name in GOVERNORS
        }

    first, second = build(), build()
    for name in GOVERNORS:
        assert_replays_identical(first[name], second[name])
        assert first[name].summary() == second[name].summary()


def test_constant_load_replay_matches_single_point_evaluation(
    websearch_simulator, default_context
):
    """At constant load every memoryless governor collapses to one point.

    (``conservative`` ramps through a transient first; its per-step
    point-equivalence is covered by the property tests.)
    """
    trace = LoadTrace.constant(0.45, steps=6, step_seconds=120.0)
    for name in MEMORYLESS_GOVERNORS:
        replay = websearch_simulator.replay(trace, name)
        frequencies = set(replay.column("frequency_hz"))
        assert len(frequencies) == 1, f"{name} moved at constant load"
        frequency = frequencies.pop()
        record = default_context.evaluate(WEB_SEARCH, frequency)
        assert np.all(replay.column("power_w") == record.server_power)
        assert np.all(replay.column("capacity_uips") == record.chip_uips)
        assert replay.total_energy_j == pytest.approx(
            record.server_power * trace.duration_seconds
        )


# -- the long Bitbrains replay ----------------------------------------------------------


def test_week_long_bitbrains_replay_is_deterministic_and_bounded():
    """A full week of 300-second Bitbrains steps, all five governors.

    Tier-1 since the kernel path landed: the vectorized replay makes
    2016-step weeks cheap enough to run on every push (the object-based
    reference variant below stays behind ``--runslow``).
    """
    context = ModelContext(default_server(), degradation_bound=4.0)
    simulator = GovernorSimulator(context, VMS_HIGH_MEM)
    trace = LoadTrace.from_bitbrains(steps=2016, seed=77)

    replays = simulator.compare(trace)
    rerun = GovernorSimulator(
        ModelContext(default_server(), degradation_bound=4.0), VMS_HIGH_MEM
    ).compare(LoadTrace.from_bitbrains(steps=2016, seed=77))
    for name in GOVERNORS:
        assert_replays_identical(replays[name], rerun[name])

    performance = replays["performance"]
    for name, replay in replays.items():
        assert replay.total_energy_j <= performance.total_energy_j + 1e-6, name
    tracker = replays["qos_tracker"]
    assert tracker.violation_count == 0
    assert tracker.total_energy_j < performance.total_energy_j
    degradation = tracker.column("qos_metric")
    assert np.all(degradation <= 4.0 + 1e-9)


@pytest.mark.slow
def test_week_long_bitbrains_replay_reference_path_matches_kernels():
    """The object-based step loop reproduces the kernel week bit for bit."""
    context = ModelContext(default_server(), degradation_bound=4.0)
    simulator = GovernorSimulator(context, VMS_HIGH_MEM)
    trace = LoadTrace.from_bitbrains(steps=2016, seed=77)
    kernel = simulator.compare(trace)
    reference = simulator.compare(trace, reference=True)
    for name in GOVERNORS:
        assert_replays_identical(kernel[name], reference[name])
