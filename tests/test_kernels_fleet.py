"""Kernel-vs-reference equivalence for the columnar fleet stepper.

The acceptance criterion the tentpole pins: for **every** routing x
governor x autoscale combination, the kernel path's fleet-level and
per-node columns are bit-for-bit identical to the object-based
reference loop -- wake penalties, boot countdowns, queueing tails,
dropped-load violations and all.  Equality is ``np.array_equal`` on
the raw arrays; no tolerances.
"""

import numpy as np
import pytest

from repro.dvfs import GOVERNORS, LoadTrace
from repro.fleet import ROUTERS, Autoscaler, FleetSimulator
from repro.fleet.result import FLEET_COLUMNS, NODE_COLUMNS
from repro.fleet.routing import SpreadRouting
from repro.kernels import fleet_kernel_supports
from repro.kernels.fleet import supports
from repro.workloads.banking_vm import VMS_HIGH_MEM
from repro.workloads.cloudsuite import WEB_SEARCH


def assert_fleets_bit_identical(kernel, reference) -> None:
    assert len(kernel) == len(reference)
    for name in FLEET_COLUMNS:
        assert np.array_equal(
            kernel.column(name), reference.column(name), equal_nan=True
        ), f"fleet column {name} differs between kernel and reference"
    assert kernel.node_ids == reference.node_ids
    for node_id in kernel.node_ids:
        for name in NODE_COLUMNS:
            assert np.array_equal(
                kernel.node_column(node_id, name),
                reference.node_column(node_id, name),
                equal_nan=True,
            ), f"node {node_id} column {name} differs"


@pytest.fixture(scope="module")
def short_bursty():
    """A 40-step slice: bursts, troughs and autoscaler flapping."""
    return LoadTrace.bursty().head(40)


@pytest.mark.parametrize("routing", sorted(ROUTERS))
@pytest.mark.parametrize("autoscaled", [False, True])
@pytest.mark.parametrize("governor", sorted(GOVERNORS))
def test_websearch_fleet_bit_identical(
    routing, autoscaled, governor, default_context, short_bursty
):
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=5,
        governor=governor,
        autoscaler=Autoscaler() if autoscaled else None,
        off_power_w=7.5,
    )
    kernel = simulator.run(short_bursty, routing)
    reference = simulator.run(short_bursty, routing, reference=True)
    assert_fleets_bit_identical(kernel, reference)
    assert kernel.summary() == reference.summary()


@pytest.mark.parametrize("routing", sorted(ROUTERS))
def test_vm_fleet_bit_identical(routing, default_context, diurnal_trace):
    """VM workloads: no queueing tails, degradation-based QoS."""
    simulator = FleetSimulator(
        default_context,
        VMS_HIGH_MEM,
        fleet_size=6,
        autoscaler=Autoscaler(wake_steps=2, wake_energy_j=500.0),
    )
    kernel = simulator.run(diurnal_trace, routing)
    reference = simulator.run(diurnal_trace, routing, reference=True)
    assert_fleets_bit_identical(kernel, reference)


def test_instant_wakes_bit_identical(default_context, short_bursty):
    """wake_steps=0 exercises the boot-free wake transition."""
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=4,
        autoscaler=Autoscaler(wake_steps=0),
    )
    for routing in ROUTERS:
        assert_fleets_bit_identical(
            simulator.run(short_bursty, routing),
            simulator.run(short_bursty, routing, reference=True),
        )


def test_compare_supports_reference_flag(default_context, short_bursty):
    simulator = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=3, autoscaler=Autoscaler()
    )
    kernel = simulator.compare(short_bursty)
    reference = simulator.compare(short_bursty, reference=True)
    assert list(kernel) == list(reference) == list(ROUTERS)
    for name in ROUTERS:
        assert_fleets_bit_identical(kernel[name], reference[name])


def test_tail_cache_is_shared_without_drift(default_context, short_bursty):
    """Repeated kernel runs reuse the tail memo and stay identical."""
    simulator = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=3, autoscaler=Autoscaler()
    )
    first = simulator.run(short_bursty, "pack")
    assert simulator._tail_cache  # the memo filled up
    second = simulator.run(short_bursty, "pack")
    assert_fleets_bit_identical(first, second)


def test_custom_routing_subclass_takes_the_reference_path(
    default_context, short_bursty
):
    """Exact-type dispatch: an overridden policy's assign really runs."""

    class ReverseSpread(SpreadRouting):
        name = "reverse_spread"

        def assign(self, mass, nodes):
            shares = super().assign(mass, nodes)
            return tuple(reversed(shares))

    routing = ReverseSpread()
    simulator = FleetSimulator(default_context, WEB_SEARCH, fleet_size=3)
    assert not supports(
        routing, simulator._make_governor(), simulator.autoscaler
    )
    result = simulator.run(short_bursty, routing)
    assert result.routing_name == "reverse_spread"
    # An even split reversed is still an even split, so the run is
    # identical to spread -- proving the subclass's assign was honoured.
    spread = simulator.run(short_bursty, "spread", reference=True)
    np.testing.assert_array_equal(
        result.column("energy_j"), spread.column("energy_j")
    )


def test_saturating_bursts_hit_the_queueing_tail_branches(
    default_context, short_bursty
):
    """Burst fronts on a booting fleet saturate queues (inf tails)."""
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=4,
        governor="powersave",
        autoscaler=Autoscaler(wake_steps=3),
    )
    kernel = simulator.run(short_bursty, "round_robin")
    reference = simulator.run(short_bursty, "round_robin", reference=True)
    assert_fleets_bit_identical(kernel, reference)
    # The stress case actually stressed: some queue saturated.
    assert kernel.saturated_step_count > 0


# -- private kernel branches the simulators cannot reach --------------------------------


def test_tail_latency_branches():
    import math

    from repro.kernels.fleet import _tail_latency
    from repro.kernels.table import FrequencyTable

    table = FrequencyTable(
        workload_name="probe",
        frequencies_hz=[1.0e9, 2.0e9],
        capacity_uips=[0.0, 1.0e9],
        power_w=[10.0, 20.0],
        qos_metric=[math.nan, math.nan],
        qos_ok=[True, True],
        latency_seconds=[math.nan, 0.001],
    )
    # NaN base latency (VM workloads) -> NaN tail.
    assert math.isnan(_tail_latency(table, WEB_SEARCH, 0, 1.0))
    table_with_base = FrequencyTable(
        workload_name="probe",
        frequencies_hz=[1.0e9, 2.0e9],
        capacity_uips=[0.0, 1.0e9],
        power_w=[10.0, 20.0],
        qos_metric=[0.5, 0.5],
        qos_ok=[True, True],
        latency_seconds=[0.001, 0.001],
    )
    # Zero capacity -> saturated.
    assert _tail_latency(table_with_base, WEB_SEARCH, 0, 1.0) == math.inf
    # Demand at capacity -> saturated.
    assert _tail_latency(table_with_base, WEB_SEARCH, 1, 1.0e9) == math.inf
    # Lightly loaded -> base plus a finite waiting tail.
    light = _tail_latency(table_with_base, WEB_SEARCH, 1, 1.0e8)
    assert 0.001 < light < math.inf


def test_least_loaded_zero_capacity_falls_back_to_even_split():
    import math

    from repro.dvfs.governors import governor_by_name
    from repro.kernels.fleet import fleet_replay_columns
    from repro.kernels.table import FrequencyTable
    from repro.fleet.routing import LeastLoadedRouting

    # A degenerate grid whose bottom point has zero capacity: once
    # powersave parks every node there, the least-loaded weights sum
    # to zero and the policy's even-split fallback engages.
    table = FrequencyTable(
        workload_name="probe",
        frequencies_hz=[1.0e9, 2.0e9],
        capacity_uips=[0.0, 1.0e9],
        power_w=[10.0, 20.0],
        qos_metric=[0.0, 0.0],
        qos_ok=[True, True],
        latency_seconds=[math.nan, math.nan],
    )
    trace = LoadTrace.constant(0.5, steps=3)
    fleet_columns, node_columns = fleet_replay_columns(
        table=table,
        workload=WEB_SEARCH,
        fleet_size=2,
        governor=governor_by_name("powersave"),
        routing=LeastLoadedRouting(),
        autoscaler=None,
        off_power_w=0.0,
        trace=trace,
        use_queueing=False,
    )
    # Even split of the mass at every step, fallback steps included.
    np.testing.assert_array_equal(node_columns[0]["demand_uips"],
                                  node_columns[1]["demand_uips"])
    # Nothing can be served at the zero-capacity point; the routed
    # load is dropped and recorded as a violation.
    assert np.all(fleet_columns["served_uips"] == 0.0)
    assert np.all(fleet_columns["violation"])


def test_routing_kernels_reject_an_empty_active_set():
    from repro.kernels.fleet import (
        _StateTimeline,
        _even_split_shares,
        _pack_shares,
    )
    from repro.fleet.routing import PackRouting

    with pytest.raises(ValueError, match="no active node"):
        _even_split_shares(np.array([1.0]), np.zeros((2, 1), dtype=bool))
    timeline = _StateTimeline(
        state2d=np.zeros((2, 1), dtype=np.int8),
        wake_counts=np.zeros(1, dtype=np.int64),
        woken=[[]],
        serving_ids=[[]],
        active_ids=[[]],
    )
    with pytest.raises(ValueError, match="no active node"):
        _pack_shares(PackRouting(), [1.0], timeline, fleet_size=2)


def test_custom_autoscaler_subclass_takes_the_reference_path(default_context):
    class EagerScaler(Autoscaler):
        pass

    simulator = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=3, autoscaler=EagerScaler()
    )
    governor = simulator._make_governor()
    from repro.fleet.routing import router_by_name

    assert not fleet_kernel_supports(
        router_by_name("pack"), governor, simulator.autoscaler
    )
    # The run still works (reference fallback) and stays deterministic.
    trace = LoadTrace.constant(0.5, steps=5)
    first = simulator.run(trace, "pack")
    second = simulator.run(trace, "pack")
    np.testing.assert_array_equal(
        first.column("energy_j"), second.column("energy_j")
    )
