"""Kernel-vs-reference equivalence for the columnar fleet stepper.

The acceptance criterion the tentpole pins: for **every** routing x
governor x autoscale combination, the kernel path's fleet-level and
per-node columns are bit-for-bit identical to the object-based
reference loop -- wake penalties, boot countdowns, queueing tails,
dropped-load violations and all.  Equality is ``np.array_equal`` on
the raw arrays; no tolerances.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.dvfs import GOVERNORS, LoadTrace
from repro.fleet import ROUTERS, Autoscaler, FleetSimulator
from repro.fleet.result import FLEET_COLUMNS, NODE_COLUMNS
from repro.fleet.routing import SpreadRouting
from repro.kernels import fleet_kernel_supports
from repro.kernels.fleet import supports, tail_latencies
from repro.kernels.table import FrequencyTable
from repro.latency.queueing import MG1Queue, MM1Queue
from repro.workloads.banking_vm import VMS_HIGH_MEM
from repro.workloads.cloudsuite import WEB_SEARCH


def assert_fleets_bit_identical(kernel, reference) -> None:
    assert len(kernel) == len(reference)
    for name in FLEET_COLUMNS:
        assert np.array_equal(
            kernel.column(name), reference.column(name), equal_nan=True
        ), f"fleet column {name} differs between kernel and reference"
    assert kernel.node_ids == reference.node_ids
    for node_id in kernel.node_ids:
        for name in NODE_COLUMNS:
            assert np.array_equal(
                kernel.node_column(node_id, name),
                reference.node_column(node_id, name),
                equal_nan=True,
            ), f"node {node_id} column {name} differs"


@pytest.fixture(scope="module")
def short_bursty():
    """A 40-step slice: bursts, troughs and autoscaler flapping."""
    return LoadTrace.bursty().head(40)


@pytest.mark.parametrize("routing", sorted(ROUTERS))
@pytest.mark.parametrize("autoscaled", [False, True])
@pytest.mark.parametrize("governor", sorted(GOVERNORS))
def test_websearch_fleet_bit_identical(
    routing, autoscaled, governor, default_context, short_bursty
):
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=5,
        governor=governor,
        autoscaler=Autoscaler() if autoscaled else None,
        off_power_w=7.5,
    )
    kernel = simulator.run(short_bursty, routing)
    reference = simulator.run(short_bursty, routing, reference=True)
    assert_fleets_bit_identical(kernel, reference)
    assert kernel.summary() == reference.summary()


@pytest.mark.parametrize("routing", sorted(ROUTERS))
def test_vm_fleet_bit_identical(routing, default_context, diurnal_trace):
    """VM workloads: no queueing tails, degradation-based QoS."""
    simulator = FleetSimulator(
        default_context,
        VMS_HIGH_MEM,
        fleet_size=6,
        autoscaler=Autoscaler(wake_steps=2, wake_energy_j=500.0),
    )
    kernel = simulator.run(diurnal_trace, routing)
    reference = simulator.run(diurnal_trace, routing, reference=True)
    assert_fleets_bit_identical(kernel, reference)


def test_instant_wakes_bit_identical(default_context, short_bursty):
    """wake_steps=0 exercises the boot-free wake transition."""
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=4,
        autoscaler=Autoscaler(wake_steps=0),
    )
    for routing in ROUTERS:
        assert_fleets_bit_identical(
            simulator.run(short_bursty, routing),
            simulator.run(short_bursty, routing, reference=True),
        )


def test_compare_supports_reference_flag(default_context, short_bursty):
    simulator = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=3, autoscaler=Autoscaler()
    )
    kernel = simulator.compare(short_bursty)
    reference = simulator.compare(short_bursty, reference=True)
    assert list(kernel) == list(reference) == list(ROUTERS)
    for name in ROUTERS:
        assert_fleets_bit_identical(kernel[name], reference[name])


def test_repeated_runs_are_stateless_and_identical(
    default_context, short_bursty
):
    """The closed-form tail kernel keeps no per-simulator state."""
    simulator = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=3, autoscaler=Autoscaler()
    )
    first = simulator.run(short_bursty, "pack")
    # The old (index, demand) memo dict is gone: tails come from the
    # stateless vectorized kernel, so nothing accumulates on the
    # simulator and repeated runs are bit-identical by construction.
    assert not hasattr(simulator, "_tail_cache")
    second = simulator.run(short_bursty, "pack")
    assert_fleets_bit_identical(first, second)


def test_custom_routing_subclass_takes_the_reference_path(
    default_context, short_bursty
):
    """Exact-type dispatch: an overridden policy's assign really runs."""

    class ReverseSpread(SpreadRouting):
        name = "reverse_spread"

        def assign(self, mass, nodes):
            shares = super().assign(mass, nodes)
            return tuple(reversed(shares))

    routing = ReverseSpread()
    simulator = FleetSimulator(default_context, WEB_SEARCH, fleet_size=3)
    assert not supports(
        routing, simulator._make_governor(), simulator.autoscaler
    )
    result = simulator.run(short_bursty, routing)
    assert result.routing_name == "reverse_spread"
    # An even split reversed is still an even split, so the run is
    # identical to spread -- proving the subclass's assign was honoured.
    spread = simulator.run(short_bursty, "spread", reference=True)
    np.testing.assert_array_equal(
        result.column("energy_j"), spread.column("energy_j")
    )


def test_saturating_bursts_hit_the_queueing_tail_branches(
    default_context, short_bursty
):
    """Burst fronts on a booting fleet saturate queues (inf tails)."""
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=4,
        governor="powersave",
        autoscaler=Autoscaler(wake_steps=3),
    )
    kernel = simulator.run(short_bursty, "round_robin")
    reference = simulator.run(short_bursty, "round_robin", reference=True)
    assert_fleets_bit_identical(kernel, reference)
    # The stress case actually stressed: some queue saturated.
    assert kernel.saturated_step_count > 0


# -- private kernel branches the simulators cannot reach --------------------------------


def test_least_loaded_zero_capacity_falls_back_to_even_split():
    import math

    from repro.dvfs.governors import governor_by_name
    from repro.kernels.fleet import fleet_replay_columns
    from repro.kernels.table import FrequencyTable
    from repro.fleet.routing import LeastLoadedRouting

    # A degenerate grid whose bottom point has zero capacity: once
    # powersave parks every node there, the least-loaded weights sum
    # to zero and the policy's even-split fallback engages.
    table = FrequencyTable(
        workload_name="probe",
        frequencies_hz=[1.0e9, 2.0e9],
        capacity_uips=[0.0, 1.0e9],
        power_w=[10.0, 20.0],
        qos_metric=[0.0, 0.0],
        qos_ok=[True, True],
        latency_seconds=[math.nan, math.nan],
    )
    trace = LoadTrace.constant(0.5, steps=3)
    fleet_columns, node_columns = fleet_replay_columns(
        table=table,
        workload=WEB_SEARCH,
        fleet_size=2,
        governor=governor_by_name("powersave"),
        routing=LeastLoadedRouting(),
        autoscaler=None,
        off_power_w=0.0,
        trace=trace,
        use_queueing=False,
    )
    # Even split of the mass at every step, fallback steps included.
    np.testing.assert_array_equal(node_columns[0]["demand_uips"],
                                  node_columns[1]["demand_uips"])
    # Nothing can be served at the zero-capacity point; the routed
    # load is dropped and recorded as a violation.
    assert np.all(fleet_columns["served_uips"] == 0.0)
    assert np.all(fleet_columns["violation"])


def test_routing_kernels_reject_an_empty_active_set():
    from repro.kernels.fleet import (
        _StateTimeline,
        _even_split_shares,
        _pack_shares,
    )
    from repro.fleet.routing import PackRouting

    with pytest.raises(ValueError, match="no active node"):
        _even_split_shares(np.array([1.0]), np.zeros((2, 1), dtype=bool))
    state2d = np.zeros((2, 1), dtype=np.int8)
    timeline = _StateTimeline(
        state2d=state2d,
        route_state2d=state2d,
        wake_counts=np.zeros(1, dtype=np.int64),
        woken=[[]],
        restarted=[[]],
        serving_ids=[[]],
        active_ids=[[]],
        select_ids=[[]],
    )
    with pytest.raises(ValueError, match="no active node"):
        _pack_shares(PackRouting(), [1.0], timeline, fleet_size=2)


def test_custom_autoscaler_subclass_takes_the_reference_path(default_context):
    class EagerScaler(Autoscaler):
        pass

    simulator = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=3, autoscaler=EagerScaler()
    )
    governor = simulator._make_governor()
    from repro.fleet.routing import router_by_name

    assert not fleet_kernel_supports(
        router_by_name("pack"), governor, simulator.autoscaler
    )
    # The run still works (reference fallback) and stays deterministic.
    trace = LoadTrace.constant(0.5, steps=5)
    first = simulator.run(trace, "pack")
    second = simulator.run(trace, "pack")
    np.testing.assert_array_equal(
        first.column("energy_j"), second.column("energy_j")
    )


# -- closed-form tail kernel vs the scalar queue models ---------------------------------


def _scalar_tail(table, workload, index, demand):
    """FleetSimulator._node_tail_latency transcribed onto table columns.

    The same guards in the same order, and the *actual*
    :class:`MM1Queue` / :class:`MG1Queue` objects for the formula --
    the reference the vectorized kernel must match to the last bit.
    """
    base = float(table.latency_seconds[index])
    if math.isnan(base):
        return math.nan
    capacity = float(table.capacity_uips[index])
    if capacity <= 0.0:
        return math.inf
    utilization = demand / capacity
    if utilization >= 1.0 - 1e-9:
        return math.inf
    ipr = workload.instructions_per_request
    service_time = ipr / capacity
    arrival_rate = demand / ipr
    if workload.service_time_cv == 1.0:
        response_p99 = MM1Queue(
            arrival_rate=arrival_rate, service_rate=capacity / ipr
        ).response_time_percentile(99.0)
    else:
        response_p99 = MG1Queue(
            arrival_rate=arrival_rate,
            mean_service_time=service_time,
            service_time_cv=workload.service_time_cv,
        ).response_time_percentile(99.0, corrected=True)
    return base + max(0.0, response_p99 - service_time)


def _assert_tails_exactly_equal(table, workload, indices, demand):
    got = tail_latencies(table, workload, indices, demand)
    for index, one_demand, value in zip(
        indices.tolist(), demand.tolist(), got.tolist()
    ):
        expected = _scalar_tail(table, workload, index, one_demand)
        assert value == expected or (
            math.isnan(value) and math.isnan(expected)
        ), (
            f"tail at (index={index}, demand={one_demand}): "
            f"kernel {value!r} != scalar {expected!r}"
        )


def test_mg1_tails_equal_scalar_queue_math(default_context):
    """Web Search (cv=1.2): the Marchal-corrected M/G/1 path, exactly."""
    table = default_context.frequency_table(WEB_SEARCH)
    rng = np.random.default_rng(7)
    indices = rng.integers(0, len(table), size=500)
    # Load fractions spanning idle, the idle-atom region, heavy load
    # and saturation (>= 1 - epsilon maps to +inf in both paths).
    fraction = rng.uniform(0.0, 1.2, size=500)
    demand = fraction * table.capacity_uips[indices]
    _assert_tails_exactly_equal(table, WEB_SEARCH, indices, demand)


def test_mm1_tails_equal_scalar_queue_math(default_context):
    """A cv=1.0 twin of Web Search drives the exact M/M/1 branch."""
    workload = dataclasses.replace(WEB_SEARCH, service_time_cv=1.0)
    table = default_context.frequency_table(WEB_SEARCH)
    rng = np.random.default_rng(11)
    indices = rng.integers(0, len(table), size=300)
    # Strictly positive, strictly stable loads: the scalar MM1Queue
    # constructor rejects arrival >= service, so the comparison runs
    # where both paths are defined.
    fraction = rng.uniform(0.05, 0.95, size=300)
    demand = fraction * table.capacity_uips[indices]
    _assert_tails_exactly_equal(table, workload, indices, demand)


def test_tail_guards_nan_base_and_zero_capacity():
    """NaN base latency wins over every other guard; 0 capacity is inf."""
    table = FrequencyTable(
        workload_name="synthetic",
        frequencies_hz=[1.0e9, 2.0e9, 3.0e9],
        capacity_uips=[0.0, 1.0e9, 2.0e9],
        power_w=[10.0, 20.0, 30.0],
        qos_metric=[np.nan, 1.0, 1.0],
        qos_ok=[True, True, True],
        latency_seconds=[0.01, np.nan, 0.005],
    )
    indices = np.array([0, 1, 2, 2])
    demand = np.array([0.5e9, 0.5e9, 0.4e9, 3.0e9])
    tails = tail_latencies(table, WEB_SEARCH, indices, demand)
    assert math.isinf(tails[0])  # zero capacity saturates
    assert math.isnan(tails[1])  # NaN base latency stays undefined
    assert math.isfinite(tails[2])
    assert math.isinf(tails[3])  # demand beyond capacity saturates
    _assert_tails_exactly_equal(table, WEB_SEARCH, indices, demand)


def test_tail_deduplication_preserves_order_and_values(default_context):
    """Repeated (index, demand) pairs scatter back to their positions."""
    table = default_context.frequency_table(WEB_SEARCH)
    capacity = float(table.capacity_uips[-1])
    indices = np.array([3, 1, 3, 1, 3, 2])
    demand = capacity * np.array([0.4, 0.4, 0.4, 0.6, 0.7, 0.4])
    tails = tail_latencies(table, WEB_SEARCH, indices, demand)
    assert tails[0] == tails[2]  # identical pairs, identical tails
    assert tails[0] != tails[4]  # same index, different demand
    _assert_tails_exactly_equal(table, WEB_SEARCH, indices, demand)
    assert tail_latencies(table, WEB_SEARCH, [], []).size == 0
