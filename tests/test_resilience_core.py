"""The resilience primitives: taxonomy, quarantine records, guard, chaos.

Unit-level pins for the building blocks the stack wiring relies on:
fault classification is idempotent and identity-preserving, deadlines
are cooperative step budgets with no wall clock, backoff is a pure
seeded function, and fault plans are plain deterministic data.
"""

import math
import threading

import pytest

from repro.resilience import (
    AnalysisFault,
    CheckpointError,
    Deadline,
    DeadlineExceeded,
    ExecutionFault,
    FailedSummary,
    FaultPlan,
    InjectedFault,
    ReplayFault,
    SpecError,
    TransientError,
    backoff_steps,
    check_on_error,
    classify,
    corrupt,
    current_deadline,
    fault_point,
    inject,
    run_guarded,
)
from repro.resilience import chaos


# -- taxonomy --------------------------------------------------------------------------


def test_faults_carry_identity_and_stage():
    fault = ReplayFault("kernel blew up", identity="replay 7")
    assert fault.identity == "replay 7"
    assert fault.stage == "replay"
    assert fault.describe() == "replay 7: kernel blew up"
    assert ReplayFault("x").describe() == "x"


def test_spec_and_checkpoint_errors_are_value_errors():
    # Existing ``except ValueError`` contracts (CLI rendering,
    # validation tests) must keep catching the new structured types.
    assert issubclass(SpecError, ValueError)
    assert issubclass(CheckpointError, ValueError)
    with pytest.raises(ValueError):
        raise SpecError("bad spec")


def test_transient_subtree():
    assert issubclass(InjectedFault, TransientError)
    assert issubclass(DeadlineExceeded, TransientError)
    assert not issubclass(ReplayFault, TransientError)


def test_analysis_fault_builds_identity_from_names():
    fault = AnalysisFault("boom", scenario="fig2_qos", analysis="policy_opt")
    assert fault.scenario == "fig2_qos"
    assert "fig2_qos" in fault.identity and "policy_opt" in fault.identity


def test_classify_wraps_and_passes_through():
    error = ValueError("bad value")
    fault = classify(error, identity="replay 3")
    assert isinstance(fault, SpecError)
    assert fault.identity == "replay 3"
    assert fault.__cause__ is error

    generic = classify(RuntimeError("boom"), identity="replay 4")
    assert isinstance(generic, ReplayFault)

    analysis = classify(RuntimeError("boom"), stage="analysis")
    assert isinstance(analysis, AnalysisFault)

    # Idempotent: an ExecutionFault passes through, gaining identity
    # only when it has none.
    original = ReplayFault("x", identity="kept")
    assert classify(original, identity="ignored") is original
    assert original.identity == "kept"
    bare = ReplayFault("x")
    assert classify(bare, identity="filled").identity == "filled"


def test_failed_summary_round_trip():
    failed = FailedSummary.from_exception(
        RuntimeError("boom"), identity="replay 5"
    )
    assert failed.identity == "replay 5"
    assert failed.error_type == "ReplayFault"
    record = failed.as_dict()
    assert record["failed"] is True
    assert record["message"] == "boom"
    assert "replay 5" in failed.describe()


def test_check_on_error():
    assert check_on_error("raise") == "raise"
    assert check_on_error("quarantine") == "quarantine"
    with pytest.raises(ValueError, match="on_error"):
        check_on_error("ignore")


# -- non-finite values stop at the spec boundary ---------------------------------------


@pytest.mark.parametrize("value", [math.nan, math.inf, -math.inf])
def test_replay_spec_rejects_non_finite_off_power(value):
    from repro.dvfs import LoadTrace
    from repro.kernels import ReplaySpec
    from repro.workloads.cloudsuite import WEB_SEARCH

    trace = LoadTrace.bursty(steps=4, seed=1)
    with pytest.raises(SpecError, match="replay spec: off_power_w"):
        ReplaySpec(
            workload=WEB_SEARCH,
            trace=trace,
            fleet_size=2,
            routing="round_robin",
            off_power_w=value,
        )


@pytest.mark.parametrize("value", [math.nan, math.inf, -math.inf])
def test_load_trace_rejects_non_finite_step_seconds(value):
    from repro.dvfs import LoadTrace

    with pytest.raises(ValueError, match="step duration"):
        LoadTrace(name="bad", step_seconds=value, utilization=(0.5,))


@pytest.mark.parametrize("value", [math.nan, math.inf, -math.inf])
def test_load_trace_rejects_non_finite_utilization(value):
    from repro.dvfs import LoadTrace

    with pytest.raises(ValueError, match="utilisation at step 1"):
        LoadTrace(name="bad", step_seconds=60.0, utilization=(0.5, value))


# -- guard -----------------------------------------------------------------------------


def test_deadline_is_a_cooperative_step_budget():
    deadline = Deadline(3, identity="rung 0")
    deadline.consume(2)
    assert deadline.remaining == 1
    with pytest.raises(DeadlineExceeded) as excinfo:
        deadline.consume(2)
    assert excinfo.value.identity == "rung 0"
    with pytest.raises(ValueError, match=">= 1"):
        Deadline(0)
    with pytest.raises(ValueError, match="negative"):
        Deadline(5).consume(-1)


def test_current_deadline_is_thread_local_and_nested():
    assert current_deadline() is None
    seen = {}

    def inner():
        seen["inner"] = current_deadline()
        return "ok"

    def outer():
        seen["outer"] = current_deadline()
        return run_guarded(inner, deadline_steps=5)

    assert run_guarded(outer, deadline_steps=9) == "ok"
    assert seen["outer"].limit == 9
    assert seen["inner"].limit == 5
    assert current_deadline() is None

    # Another thread never sees this thread's deadline.
    other = {}

    def probe():
        other["deadline"] = current_deadline()

    def with_deadline():
        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()

    run_guarded(with_deadline, deadline_steps=4)
    assert other["deadline"] is None


def test_backoff_is_deterministic_and_exponential():
    first = [backoff_steps(a, seed=11, base=4) for a in range(4)]
    again = [backoff_steps(a, seed=11, base=4) for a in range(4)]
    assert first == again
    # base * 2**attempt <= value < base * 2**attempt + base
    for attempt, value in enumerate(first):
        assert 4 * 2**attempt <= value < 4 * 2**attempt + 4
    assert [backoff_steps(a, seed=12, base=4) for a in range(4)] != first
    with pytest.raises(ValueError):
        backoff_steps(-1)
    with pytest.raises(ValueError):
        backoff_steps(0, base=0)


def test_run_guarded_retries_only_transient_faults():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise InjectedFault("transient")
        return "done"

    assert run_guarded(flaky, retries=2) == "done"
    assert len(calls) == 3

    def hard_fail():
        raise ReplayFault("permanent")

    with pytest.raises(ReplayFault):
        run_guarded(hard_fail, retries=5)

    def always():
        raise InjectedFault("never passes")

    with pytest.raises(InjectedFault):
        run_guarded(always, retries=2)
    with pytest.raises(ValueError, match="retries"):
        run_guarded(lambda: None, retries=-1)


def test_run_guarded_passes_arguments_through():
    assert run_guarded(lambda a, b=0: a + b, 2, b=3) == 5


# -- chaos -----------------------------------------------------------------------------


def test_fault_plan_validation_and_parse():
    plan = FaultPlan.parse("batch.replay:3:raise")
    assert plan == FaultPlan(site="batch.replay", at_call=3, action="raise")
    assert plan.describe() == "batch.replay:3:raise"
    with pytest.raises(ValueError, match="SITE:N:ACTION"):
        FaultPlan.parse("just-a-site")
    with pytest.raises(ValueError, match="integer"):
        FaultPlan.parse("site:x:raise")
    with pytest.raises(ValueError, match="action"):
        FaultPlan.parse("site:1:explode")
    with pytest.raises(ValueError, match="at_call"):
        FaultPlan(site="s", at_call=0)
    with pytest.raises(ValueError, match="site"):
        FaultPlan(site="", at_call=1)
    with pytest.raises(ValueError, match="delay_steps"):
        FaultPlan(site="s", at_call=1, action="delay", delay_steps=0)
    with pytest.raises(ValueError, match="sites"):
        FaultPlan.seeded(0, sites=())
    with pytest.raises(ValueError, match="max_call"):
        FaultPlan.seeded(0, max_call=0)


def test_seeded_plans_are_pure_functions_of_the_seed():
    plans = [FaultPlan.seeded(seed) for seed in range(24)]
    assert plans == [FaultPlan.seeded(seed) for seed in range(24)]
    assert all(plan.site in chaos.SITES for plan in plans)
    assert all(1 <= plan.at_call <= 16 for plan in plans)
    # The seed sweep actually covers more than one site.
    assert len({plan.site for plan in plans}) > 1


def test_nothing_fires_without_an_active_plan():
    fault_point("batch.replay")
    assert corrupt("tuner.objective", 1.25) == 1.25


def test_inject_scopes_and_restores_the_plan():
    plan = FaultPlan(site="site.a", at_call=2, action="raise")
    with inject(plan):
        assert chaos.active_plan() == plan
        fault_point("site.a")  # call 1: no fire
        fault_point("site.other")
        with pytest.raises(InjectedFault) as excinfo:
            fault_point("site.a", identity="item 2")  # call 2: fires
        assert excinfo.value.identity == "item 2"
        # The plan fires exactly once.
        fault_point("site.a")
        assert chaos.call_counts()["site.a"] == 3
    assert chaos.active_plan() is None


def test_corrupt_replaces_the_value_with_nan():
    plan = FaultPlan(site="tuner.objective", at_call=2, action="nan")
    with inject(plan):
        assert corrupt("tuner.objective", 7.0) == 7.0
        assert math.isnan(corrupt("tuner.objective", 7.0))
        assert corrupt("tuner.objective", 7.0) == 7.0


def test_corrupt_with_raise_and_delay_actions():
    raising = FaultPlan(site="tuner.objective", at_call=1, action="raise")
    with inject(raising):
        with pytest.raises(InjectedFault):
            corrupt("tuner.objective", 7.0, identity="config x")

    delaying = FaultPlan(
        site="tuner.objective", at_call=1, action="delay", delay_steps=10
    )

    def body():
        return corrupt("tuner.objective", 7.0)

    with inject(delaying):
        with pytest.raises(DeadlineExceeded):
            run_guarded(body, deadline_steps=4)
    # Without a deadline the delayed value passes through unchanged.
    with inject(delaying):
        assert body() == 7.0


def test_delay_fault_consumes_the_active_deadline():
    plan = FaultPlan(site="site.slow", at_call=1, action="delay", delay_steps=10)

    def body():
        fault_point("site.slow")
        return "finished"

    with inject(plan):
        with pytest.raises(DeadlineExceeded):
            run_guarded(body, deadline_steps=4)
    # Without a deadline the delay is tolerated.
    with inject(plan):
        assert body() == "finished"
