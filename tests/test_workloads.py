"""Tests for workload characterisations, generators and trace synthesis."""

import pytest

from repro.utils.units import MB
from repro.workloads.banking_vm import (
    BankingVmGenerator,
    DEGRADATION_LIMIT_RELAXED,
    DEGRADATION_LIMIT_STRICT,
    VMS_HIGH_MEM,
    VMS_LOW_MEM,
    virtualized_workloads,
)
from repro.workloads.base import WorkloadCharacteristics, WorkloadClass
from repro.workloads.bitbrains import BitbrainsTraceModel
from repro.workloads.cloudsuite import (
    DATA_SERVING,
    MEDIA_STREAMING,
    WEB_SEARCH,
    WEB_SERVING,
    qos_limits_ms,
    scale_out_workloads,
)
from repro.workloads.request_model import RequestServiceModel
from repro.workloads.trace_gen import SyntheticTraceGenerator


# -- characteristics ---------------------------------------------------------------


def test_four_scale_out_workloads():
    assert len(scale_out_workloads()) == 4


def test_qos_limits_match_paper():
    limits = qos_limits_ms()
    assert limits["Data Serving"] == pytest.approx(20.0)
    assert limits["Web Search"] == pytest.approx(200.0)
    assert limits["Web Serving"] == pytest.approx(200.0)
    assert limits["Media Streaming"] == pytest.approx(100.0)


def test_scale_out_baseline_latency_below_qos():
    for workload in scale_out_workloads().values():
        assert workload.minimum_latency_99th_seconds < workload.qos_limit_seconds
        assert workload.qos_headroom_at_nominal > 1.0


def test_vm_memory_provisioning_matches_paper():
    assert VMS_LOW_MEM.memory_footprint_bytes == 100 * MB
    assert VMS_HIGH_MEM.memory_footprint_bytes == 700 * MB


def test_vm_classes_are_virtualized():
    for workload in virtualized_workloads().values():
        assert workload.is_virtualized
        assert not workload.is_scale_out


def test_degradation_limits():
    assert DEGRADATION_LIMIT_STRICT == 2.0
    assert DEGRADATION_LIMIT_RELAXED == 4.0


def test_data_serving_most_memory_bound():
    assert DATA_SERVING.llc_mpki >= max(
        WEB_SEARCH.llc_mpki, WEB_SERVING.llc_mpki
    )


def test_media_streaming_has_highest_mlp():
    others = (DATA_SERVING, WEB_SEARCH, WEB_SERVING)
    assert MEDIA_STREAMING.memory_level_parallelism > max(
        workload.memory_level_parallelism for workload in others
    )


def test_off_chip_bytes_per_instruction_includes_writebacks():
    value = DATA_SERVING.off_chip_bytes_per_instruction()
    expected = (12.0 / 1000.0) * (1.0 + 0.30) * 64
    assert value == pytest.approx(expected)


def test_scaled_intensity_preserves_ratio():
    scaled = WEB_SEARCH.scaled_intensity(2.0)
    assert scaled.l1_mpki == pytest.approx(2 * WEB_SEARCH.l1_mpki)
    assert scaled.llc_mpki == pytest.approx(2 * WEB_SEARCH.llc_mpki)


def test_llc_mpki_above_l1_rejected():
    with pytest.raises(ValueError):
        WorkloadCharacteristics(
            name="broken",
            workload_class=WorkloadClass.VIRTUALIZED,
            base_cpi=0.5,
            branch_fraction=0.1,
            branch_predictability=0.9,
            l1_mpki=1.0,
            llc_mpki=2.0,
            memory_level_parallelism=2.0,
            activity_factor=0.8,
            write_fraction=0.3,
        )


def test_scale_out_requires_qos():
    with pytest.raises(ValueError, match="QoS"):
        WorkloadCharacteristics(
            name="broken",
            workload_class=WorkloadClass.SCALE_OUT,
            base_cpi=0.5,
            branch_fraction=0.1,
            branch_predictability=0.9,
            l1_mpki=10.0,
            llc_mpki=2.0,
            memory_level_parallelism=2.0,
            activity_factor=0.8,
            write_fraction=0.3,
        )


# -- banking VM generator -----------------------------------------------------------


def test_vm_generator_default_build():
    vm = BankingVmGenerator().build("test-vm")
    assert vm.name == "test-vm"
    assert vm.is_virtualized


def test_vm_generator_lower_utilization_raises_cpi():
    busy = BankingVmGenerator(cpu_utilization=1.0).build()
    idle = BankingVmGenerator(cpu_utilization=0.5).build()
    assert idle.base_cpi > busy.base_cpi
    assert idle.activity_factor < busy.activity_factor


def test_vm_generator_memory_intensity_scales_mpki():
    heavy = BankingVmGenerator(memory_intensity=3.0).build()
    assert heavy.llc_mpki == pytest.approx(3.0 * VMS_LOW_MEM.llc_mpki)


def test_vm_generator_sweep():
    vms = BankingVmGenerator().sweep([0.25, 0.5, 1.0])
    assert len(vms) == 3
    assert vms[0].base_cpi > vms[-1].base_cpi


# -- Bitbrains model -----------------------------------------------------------------


def test_bitbrains_population_size():
    model = BitbrainsTraceModel(vm_count=200)
    assert len(model.samples()) == 200


def test_bitbrains_deterministic_for_seed():
    first = BitbrainsTraceModel(vm_count=100, seed=3).samples()
    second = BitbrainsTraceModel(vm_count=100, seed=3).samples()
    assert first[10].memory_bytes == second[10].memory_bytes


def test_bitbrains_classes_near_paper_values():
    classes = BitbrainsTraceModel().representative_classes()
    assert 50 * MB <= classes["low-mem"] <= 250 * MB
    assert 400 * MB <= classes["high-mem"] <= 1200 * MB
    assert classes["high-mem"] > classes["low-mem"]


def test_bitbrains_class_populations_sum():
    model = BitbrainsTraceModel(vm_count=500)
    populations = model.class_populations()
    assert populations["low-mem"] + populations["high-mem"] == 500


def test_bitbrains_percentile_bounds():
    model = BitbrainsTraceModel(vm_count=300)
    assert model.memory_percentile(10) < model.memory_percentile(90)
    with pytest.raises(ValueError):
        model.memory_percentile(150)


# -- trace generator -----------------------------------------------------------------


def test_trace_generator_produces_requested_count():
    generator = SyntheticTraceGenerator(DATA_SERVING, seed=1)
    records = generator.records(500)
    assert len(records) == 500


def test_trace_generator_deterministic_per_seed_and_core():
    first = SyntheticTraceGenerator(DATA_SERVING, seed=5).records(200, core_id=1)
    second = SyntheticTraceGenerator(DATA_SERVING, seed=5).records(200, core_id=1)
    assert [r.address for r in first] == [r.address for r in second]


def test_trace_generator_core_streams_differ():
    generator = SyntheticTraceGenerator(DATA_SERVING, seed=5)
    core0 = generator.records(200, core_id=0)
    core1 = generator.records(200, core_id=1)
    assert [r.address for r in core0] != [r.address for r in core1]


def test_trace_generator_write_fraction_approximate():
    generator = SyntheticTraceGenerator(DATA_SERVING, seed=11)
    records = generator.records(4000)
    write_share = sum(record.is_write for record in records) / len(records)
    assert abs(write_share - DATA_SERVING.write_fraction) < 0.05


def test_trace_addresses_are_line_aligned_nonnegative():
    generator = SyntheticTraceGenerator(WEB_SEARCH, seed=2)
    for record in generator.records(300):
        assert record.address >= 0
        assert record.instruction_gap >= 0


# -- request service model -------------------------------------------------------------


def test_request_service_mean_time():
    model = RequestServiceModel(WEB_SEARCH)
    assert model.mean_service_time(1.0e9) == pytest.approx(8.0e-3)


def test_request_service_rate_inverse_of_mean():
    model = RequestServiceModel(WEB_SEARCH)
    assert model.service_rate(1.0e9) == pytest.approx(1.0 / model.mean_service_time(1.0e9))


def test_request_percentile_above_mean():
    model = RequestServiceModel(DATA_SERVING)
    assert model.percentile_service_time(0.7e9, 99.0) > model.mean_service_time(0.7e9)


def test_request_model_rejects_vm_workloads():
    with pytest.raises(ValueError):
        RequestServiceModel(VMS_LOW_MEM)


def test_request_percentile_bounds_checked():
    model = RequestServiceModel(DATA_SERVING)
    with pytest.raises(ValueError):
        model.percentile_service_time(1e9, 100.0)
