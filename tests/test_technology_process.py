"""Tests for process technology definitions."""

import pytest

from repro.technology.process import (
    BULK_28NM,
    FDSOI_28NM,
    FDSOI_28NM_FBB,
    TECHNOLOGIES,
    ProcessTechnology,
    technology_by_name,
)


def test_registry_contains_three_flavours():
    assert set(TECHNOLOGIES) == {"bulk-28nm", "fdsoi-28nm", "fdsoi-28nm-fbb"}


def test_lookup_by_name():
    assert technology_by_name("fdsoi-28nm") is FDSOI_28NM


def test_lookup_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown technology"):
        technology_by_name("finfet-7nm")


def test_bulk_cannot_reach_half_volt():
    assert BULK_28NM.min_functional_vdd > 0.5


def test_fdsoi_functional_at_half_volt():
    assert FDSOI_28NM.min_functional_vdd == pytest.approx(0.5)


def test_fdsoi_threshold_below_bulk():
    assert FDSOI_28NM.threshold_voltage < BULK_28NM.threshold_voltage


def test_fdsoi_body_bias_range_is_wide():
    assert FDSOI_28NM.body_bias_max == pytest.approx(3.0)
    assert FDSOI_28NM.body_bias_min == pytest.approx(-3.0)


def test_fdsoi_body_effect_is_85mv_per_volt():
    assert FDSOI_28NM.body_effect_coefficient == pytest.approx(0.085)


def test_bulk_body_bias_range_is_narrow():
    assert BULK_28NM.body_bias_max < 1.0


def test_fbb_flavour_shares_fdsoi_parameters():
    assert FDSOI_28NM_FBB.threshold_voltage == FDSOI_28NM.threshold_voltage
    assert FDSOI_28NM_FBB.drive_factor == FDSOI_28NM.drive_factor
    assert FDSOI_28NM_FBB.name != FDSOI_28NM.name


def test_supports_forward_and_reverse_bias():
    assert FDSOI_28NM.supports_forward_body_bias
    assert FDSOI_28NM.supports_reverse_body_bias


def test_with_name_returns_copy():
    renamed = FDSOI_28NM.with_name("custom")
    assert renamed.name == "custom"
    assert renamed.threshold_voltage == FDSOI_28NM.threshold_voltage


def test_invalid_body_bias_range_rejected():
    with pytest.raises(ValueError):
        ProcessTechnology(
            name="broken",
            threshold_voltage=0.4,
            nominal_vdd=1.0,
            min_functional_vdd=0.5,
            drive_factor=1e9,
            subthreshold_slope_factor=1.5,
            body_bias_min=1.0,
            body_bias_max=-1.0,
            body_effect_coefficient=0.085,
            leakage_nominal=0.1,
            leakage_voltage_exponent=1.0,
        )


def test_negative_threshold_rejected():
    with pytest.raises(ValueError):
        ProcessTechnology(
            name="broken",
            threshold_voltage=-0.4,
            nominal_vdd=1.0,
            min_functional_vdd=0.5,
            drive_factor=1e9,
            subthreshold_slope_factor=1.5,
            body_bias_min=0.0,
            body_bias_max=1.0,
            body_effect_coefficient=0.085,
            leakage_nominal=0.1,
            leakage_voltage_exponent=1.0,
        )
