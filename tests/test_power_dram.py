"""Tests for the DDR4 / LPDDR4 memory power model (Table I)."""

import pytest

from repro.power.dram_power import (
    DDR4_4GBIT_X8,
    LPDDR4_4GBIT_X8,
    DramChipEnergyProfile,
    MemoryOrganization,
    MemoryPowerModel,
)


def test_table1_idle_energy():
    assert DDR4_4GBIT_X8.idle_energy_per_cycle == pytest.approx(0.0728e-9)


def test_table1_read_energy():
    assert DDR4_4GBIT_X8.read_energy_per_byte == pytest.approx(0.2566e-9)


def test_table1_write_energy():
    assert DDR4_4GBIT_X8.write_energy_per_byte == pytest.approx(0.2495e-9)


def test_chip_background_power_from_idle_energy():
    assert DDR4_4GBIT_X8.background_power == pytest.approx(0.0728e-9 * 1.6e9)


def test_organization_defaults_match_paper():
    organization = MemoryOrganization()
    assert organization.channels == 4
    assert organization.ranks_per_channel == 4
    assert organization.chips_per_rank == 8
    assert organization.total_chips == 128
    assert organization.peak_bandwidth == pytest.approx(4 * 25.6e9)


def test_total_capacity_is_64gb():
    model = MemoryPowerModel()
    assert model.capacity_gb() == pytest.approx(64.0)


def test_background_power_scales_with_chip_count():
    model = MemoryPowerModel()
    assert model.background_power() == pytest.approx(
        128 * DDR4_4GBIT_X8.background_power
    )


def test_dynamic_power_uses_read_and_write_energies():
    model = MemoryPowerModel()
    power = model.dynamic_power(read_bandwidth=10e9, write_bandwidth=4e9)
    expected = 10e9 * 0.2566e-9 + 4e9 * 0.2495e-9
    assert power == pytest.approx(expected)


def test_total_power_is_background_plus_dynamic():
    model = MemoryPowerModel()
    assert model.total_power(5e9, 1e9) == pytest.approx(
        model.background_power() + model.dynamic_power(5e9, 1e9)
    )


def test_bandwidth_above_peak_rejected():
    model = MemoryPowerModel()
    with pytest.raises(ValueError, match="exceeds"):
        model.dynamic_power(read_bandwidth=200e9)


def test_negative_bandwidth_rejected():
    model = MemoryPowerModel()
    with pytest.raises(ValueError):
        model.dynamic_power(read_bandwidth=-1.0)


def test_lpddr4_background_much_lower_than_ddr4():
    assert LPDDR4_4GBIT_X8.background_power < 0.25 * DDR4_4GBIT_X8.background_power


def test_with_chip_swaps_profile():
    model = MemoryPowerModel().with_chip(LPDDR4_4GBIT_X8)
    assert model.chip is LPDDR4_4GBIT_X8
    assert model.background_power() < MemoryPowerModel().background_power()


def test_custom_profile_validation():
    with pytest.raises(ValueError):
        DramChipEnergyProfile(
            name="broken",
            idle_energy_per_cycle=-1.0,
            read_energy_per_byte=0.2e-9,
            write_energy_per_byte=0.2e-9,
        )
