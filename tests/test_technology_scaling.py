"""Tests for core-generation scaling and DVFS anchors."""

import pytest

from repro.technology.scaling import (
    CoreGenerationScaling,
    DVFSAnchor,
    EXYNOS_5433_DVFS_TABLE,
    dvfs_voltage_curve,
)


def test_default_ratios_match_paper():
    scaling = CoreGenerationScaling()
    assert scaling.a57_over_a9 == pytest.approx(1.17)
    assert scaling.a53_over_a9 == pytest.approx(1.08)


def test_a9_to_a57_and_back_roundtrip():
    scaling = CoreGenerationScaling()
    assert scaling.a57_to_a9_frequency(
        scaling.a9_to_a57_frequency(1.0e9)
    ) == pytest.approx(1.0e9)


def test_a57_faster_than_a53():
    scaling = CoreGenerationScaling()
    assert scaling.a9_to_a57_frequency(1e9) > scaling.a9_to_a53_frequency(1e9)


def test_scale_dvfs_table_scales_frequencies_only():
    scaling = CoreGenerationScaling()
    scaled = scaling.scale_dvfs_table(EXYNOS_5433_DVFS_TABLE, 1.17)
    assert scaled[0].frequency_hz == pytest.approx(
        EXYNOS_5433_DVFS_TABLE[0].frequency_hz * 1.17
    )
    assert scaled[0].voltage == EXYNOS_5433_DVFS_TABLE[0].voltage


def test_exynos_table_is_monotone():
    frequencies = [anchor.frequency_hz for anchor in EXYNOS_5433_DVFS_TABLE]
    voltages = [anchor.voltage for anchor in EXYNOS_5433_DVFS_TABLE]
    assert frequencies == sorted(frequencies)
    assert voltages == sorted(voltages)


def test_dvfs_voltage_curve_interpolates():
    curve = dvfs_voltage_curve(EXYNOS_5433_DVFS_TABLE)
    v_at_1ghz = curve(1.0e9)
    assert 0.90 <= v_at_1ghz <= 0.95


def test_dvfs_voltage_curve_rejects_unsorted_anchors():
    anchors = (
        DVFSAnchor(frequency_hz=1.0e9, voltage=0.9),
        DVFSAnchor(frequency_hz=0.5e9, voltage=0.8),
    )
    with pytest.raises(ValueError):
        dvfs_voltage_curve(anchors)


def test_dvfs_voltage_curve_rejects_decreasing_voltage():
    anchors = (
        DVFSAnchor(frequency_hz=0.5e9, voltage=0.9),
        DVFSAnchor(frequency_hz=1.0e9, voltage=0.8),
    )
    with pytest.raises(ValueError):
        dvfs_voltage_curve(anchors)


def test_anchor_rejects_non_positive_values():
    with pytest.raises(ValueError):
        DVFSAnchor(frequency_hz=0.0, voltage=0.9)
