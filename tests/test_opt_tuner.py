"""The policy tuner: strategies, parity, dedup and scenario wiring.

Pins the evaluation contract: a trial's summary is bit-for-bit what the
per-replay :class:`FleetSimulator` path reports and its dollars are
bit-for-bit what :meth:`CostModel.rollup` computes from that replay;
specs that replay identically are evaluated once
(:func:`repro.kernels.batch.unique_specs`); successive halving spends
its budget on prefixes and still judges the optimum at full length.
The scenario wiring tests cover the ``opt_*`` spec fields, the
``policy_opt`` analysis and the CLI trials-table rendering.
"""

import math

import pytest

from repro.dvfs import LoadTrace
from repro.fleet import Autoscaler, CostModel, FleetSimulator
from repro.fleet.routing import PackRouting
from repro.kernels.batch import ReplaySpec, unique_specs
from repro.opt import (
    GridSearch,
    ParamSpace,
    PolicyConfig,
    PolicyTuner,
    SuccessiveHalving,
)
from repro.workloads.cloudsuite import WEB_SEARCH

SPACE = ParamSpace(
    fleet_sizes=(2, 3),
    governors=("qos_tracker", "ondemand"),
    routings=("pack", "round_robin"),
    fill_fractions=(0.75,),
    bands=(None, (0.35, 0.75)),
    wake_steps=(1,),
)


@pytest.fixture(scope="module")
def short_trace(request):
    diurnal = LoadTrace.diurnal()
    return diurnal.head(12)


@pytest.fixture(scope="module")
def tuner(default_context, short_trace):
    return PolicyTuner(default_context, WEB_SEARCH, short_trace)


class TestUniqueSpecs:
    def test_first_seen_order_and_scatter_map(self, short_trace):
        a = ReplaySpec(
            workload=WEB_SEARCH, trace=short_trace, fleet_size=2,
            routing="pack",
        )
        b = ReplaySpec(
            workload=WEB_SEARCH, trace=short_trace, fleet_size=3,
            routing="pack",
        )
        unique, index_map = unique_specs([a, b, a, a, b])
        assert unique == [a, b]
        assert index_map == [0, 1, 0, 0, 1]

    def test_identical_configs_from_different_parameters_collapse(
        self, short_trace
    ):
        # The fill fraction spelled explicitly and the pack default are
        # different parameter combinations but the same replay.
        explicit = ReplaySpec(
            workload=WEB_SEARCH, trace=short_trace, fleet_size=2,
            routing=PackRouting(fill_fraction=0.75),
        )
        default = ReplaySpec(
            workload=WEB_SEARCH, trace=short_trace, fleet_size=2,
            routing=PackRouting(),
        )
        unique, index_map = unique_specs([explicit, default])
        assert len(unique) == 1
        assert index_map == [0, 0]


class TestTunerEvaluation:
    def test_summary_matches_fleet_simulator_bit_for_bit(
        self, default_context, short_trace, tuner
    ):
        config = PolicyConfig(
            governor="qos_tracker",
            routing="pack",
            fleet_size=2,
            fill_fraction=0.75,
            band=(0.35, 0.75),
            wake_steps=1,
        )
        trial = tuner.evaluate([config])[0]
        simulator = FleetSimulator(
            default_context,
            WEB_SEARCH,
            fleet_size=2,
            autoscaler=Autoscaler(low=0.35, high=0.75, wake_steps=1),
        )
        result = simulator.run(short_trace, PackRouting(fill_fraction=0.75))
        assert trial.summary == result.summary()

    def test_economics_match_cost_model_rollup_bit_for_bit(
        self, default_context, short_trace, tuner
    ):
        config = PolicyConfig(
            governor="qos_tracker", routing="round_robin", fleet_size=2
        )
        trial = tuner.evaluate([config])[0]
        simulator = FleetSimulator(default_context, WEB_SEARCH, fleet_size=2)
        rollup = CostModel().rollup(simulator.run(short_trace, "round_robin"))
        for key, value in rollup.items():
            assert trial.economics[key] == value, key

    def test_duplicate_configs_evaluated_once(self, tuner):
        pack_explicit = PolicyConfig(
            governor="qos_tracker",
            routing="pack",
            fleet_size=2,
            fill_fraction=0.75,
        )
        pack_default = PolicyConfig(
            governor="qos_tracker", routing="pack", fleet_size=2
        )
        tuner.evaluations = 0
        tuner.duplicate_trials = 0
        trials = tuner.evaluate([pack_explicit, pack_default])
        assert tuner.evaluations == 1
        assert tuner.duplicate_trials == 1
        assert trials[0].summary == trials[1].summary

    def test_infeasible_trial_gets_infinite_objective(self, tuner):
        # One server under a diurnal peak cannot hold QoS headroom; if
        # it violates, the objective must be inf, never a finite cost.
        config = PolicyConfig(
            governor="powersave", routing="round_robin", fleet_size=1
        )
        trial = tuner.evaluate([config])[0]
        if trial.summary["violation_count"] > 0:
            assert math.isinf(trial.objective)
            assert not trial.feasible
        else:
            assert trial.objective == trial.economics["cost_per_qps_year"]

    def test_degradation_bound_dimension_spawns_memoized_contexts(
        self, default_context, short_trace
    ):
        tuner = PolicyTuner(default_context, WEB_SEARCH, short_trace)
        explicit_equal = default_context.degradation_bound
        space = ParamSpace(
            fleet_sizes=(2,),
            degradation_bounds=(None, explicit_equal, 2.0),
        )
        result = tuner.tune(space, GridSearch())
        # An explicit bound equal to the context's inherits its runner;
        # only the genuinely different bound builds a new context.
        assert len(result.trials) == 3
        assert set(tuner._contexts) == {None, 2.0}
        assert tuner._contexts[2.0].degradation_bound == 2.0
        # The inherited-bound trial and the explicit-equal-bound trial
        # replay identically (they only differ in labeling).
        assert result.trials[0].summary == result.trials[1].summary
        labels = [trial.config.label() for trial in result.trials]
        assert labels[2].endswith("bound=2")

    def test_workload_without_request_size_rejected(
        self, default_context, short_trace
    ):
        from repro.workloads.banking_vm import VMS_LOW_MEM

        with pytest.raises(
            ValueError, match=r"needs a workload with a request size"
        ):
            PolicyTuner(default_context, VMS_LOW_MEM, short_trace)


class TestStrategies:
    def test_grid_counts_every_canonical_config_once(self, tuner):
        result = tuner.tune(SPACE, GridSearch())
        assert result.evaluations == SPACE.size
        assert result.full_length_evaluations == SPACE.size
        assert len(result.trials) == SPACE.size
        assert result.duplicate_trials == 0

    def test_halving_runs_rungs_and_judges_at_full_length(self, tuner):
        strategy = SuccessiveHalving(keep_fraction=0.5, prefix_steps=(3, 6))
        result = tuner.tune(SPACE, strategy)
        size = SPACE.size
        rung_sizes = [size, math.ceil(size / 2), math.ceil(size / 4)]
        assert len(result.trials) == sum(rung_sizes)
        assert result.full_length_evaluations == rung_sizes[-1]
        steps = [trial.steps for trial in result.trials]
        assert steps == [3] * rung_sizes[0] + [6] * rung_sizes[1] + [
            12
        ] * rung_sizes[2]
        assert all(
            result.trials[i].steps == 12 for i in result.final_indices
        )

    def test_halving_keep_one_reproduces_grid(self, tuner):
        grid = tuner.tune(SPACE, GridSearch())
        halving = tuner.tune(
            SPACE, SuccessiveHalving(keep_fraction=1.0, prefix_steps=(3,))
        )
        final = [halving.trials[i] for i in halving.final_indices]
        assert [t.config for t in final] == [t.config for t in grid.trials]
        assert [t.summary for t in final] == [t.summary for t in grid.trials]
        assert halving.best_config == grid.best_config
        assert halving.frontier() == grid.frontier()

    def test_halving_finds_grid_optimum_cheaper(self, tuner):
        grid = tuner.tune(SPACE, GridSearch())
        halving = tuner.tune(
            SPACE, SuccessiveHalving(keep_fraction=0.34, prefix_steps=(3, 6))
        )
        assert halving.best_config == grid.best_config
        assert (
            halving.full_length_evaluations < grid.full_length_evaluations
        )

    def test_invalid_keep_fraction_rejected(self):
        with pytest.raises(
            ValueError, match=r"keep fraction must be a finite float in \(0, 1\]"
        ):
            SuccessiveHalving(keep_fraction=0.0)

    def test_unsorted_prefixes_rejected(self):
        with pytest.raises(
            ValueError, match=r"prefix steps must be strictly increasing"
        ):
            SuccessiveHalving(prefix_steps=(6, 3))

    def test_prefix_not_shorter_than_trace_rejected(self, tuner):
        strategy = SuccessiveHalving(prefix_steps=(12,))
        with pytest.raises(
            ValueError, match=r"prefix of 12 steps is not shorter"
        ):
            tuner.tune(SPACE, strategy)

    def test_default_schedule_quarters_then_halves(self):
        strategy = SuccessiveHalving()
        assert strategy.schedule(48) == (12, 24, None)
        assert strategy.schedule(2) == (1, None)


class TestScenarioWiring:
    def test_spec_rejects_unknown_strategy(self):
        from repro.scenarios.spec import ScenarioSpec

        with pytest.raises(
            ValueError,
            match=r"scenario 'bad': unknown opt strategy 'annealing'",
        ):
            ScenarioSpec(name="bad", title="t", opt_strategy="annealing")

    def test_spec_surfaces_space_validation_with_scenario_name(self):
        from repro.scenarios.spec import ScenarioSpec

        with pytest.raises(
            ValueError,
            match=r"scenario 'bad': parameter space: degenerate band",
        ):
            ScenarioSpec(name="bad", title="t", opt_bands=((0.9, 0.2),))

    def test_policy_opt_analysis_requires_load_trace(self):
        from repro.scenarios.spec import ScenarioSpec

        with pytest.raises(
            ValueError,
            match=r"the policy_opt analysis needs load_trace to be set",
        ):
            ScenarioSpec(name="bad", title="t", analyses=("policy_opt",))

    def test_opt_fleet_sizes_default_to_scenario_fleet(self):
        from repro.scenarios.registry import get_scenario

        spec = get_scenario("fleet_diurnal_websearch").with_overrides(
            name="derived_opt", analyses=("policy_opt",)
        )
        assert spec.opt_param_space().fleet_sizes == (spec.fleet_size,)

    def test_registered_opt_scenarios_pin_their_spaces(self):
        from repro.scenarios.registry import get_scenario

        grid = get_scenario("opt_fleet_diurnal_websearch")
        assert grid.opt_strategy == "grid"
        assert grid.opt_param_space().raw_size == 48
        assert grid.opt_param_space().size == 36
        halving = get_scenario("opt_autoscaler_bursty")
        assert halving.opt_strategy == "halving"
        assert halving.opt_param_space().raw_size == 32
        assert halving.opt_param_space().size == 28

    def test_cli_renders_trials_table(self, scenario_results):
        from repro.scenarios.cli import _render_table

        result = scenario_results("opt_fleet_diurnal_websearch")
        rendered = _render_table(result)
        assert "policy trials: Web Search" in rendered
        assert "best" in rendered
        assert "$/QPS-yr" in rendered
        # The private trials table must stay out of the pinned tree.
        assert "_trials" not in result.key_scalars()["analyses"]["policy_opt"]

    def test_opt_scenario_optimum_is_feasible(self, scenario_results):
        result = scenario_results("opt_autoscaler_bursty")
        block = result.extras["policy_opt"]["optimization"]["Data Serving"]
        assert block["best"]["violation_count"] == 0
        assert block["best"]["feasible"] is True
        # Halving paid full price for a fraction of the space.
        assert block["full_length_evaluations"] * 3 <= block["space"]["size"]
