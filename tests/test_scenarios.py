"""Unit tests for the scenario spec/registry/runner/CLI layer."""

import json

import pytest

from repro import obs
from repro.core.config import default_server
from repro.dvfs import GOVERNORS, GovernorSimulator, load_trace_by_name
from repro.scenarios import (
    ALL_WORKLOADS,
    ANALYSES,
    REGISTRY,
    ScenarioRunner,
    ScenarioSpec,
    get_scenario,
    scenario_names,
    workload_set,
)
from repro.scenarios.cli import main as cli_main
from repro.technology.process import FDSOI_28NM_FBB
from repro.utils.units import mhz


# -- spec ------------------------------------------------------------------------------


def test_workload_sets_resolve():
    assert len(workload_set("scale-out")) == 4
    assert len(workload_set("virtualized")) == 2
    assert len(workload_set(ALL_WORKLOADS)) == 6


def test_workload_set_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown workload set 'gpu'"):
        workload_set("gpu")


def test_spec_configuration_applies_all_deltas():
    spec = ScenarioSpec(
        name="combo",
        title="t",
        technology="fdsoi-28nm-fbb",
        bias_policy="optimal",
        memory_chip="lpddr4-4gbit-x8",
        cluster_count=3,
        cores_per_cluster=16,
        frequency_grid_hz=(mhz(500), mhz(1000)),
    )
    configuration = spec.configuration()
    assert configuration.technology is FDSOI_28NM_FBB
    assert configuration.bias_policy.value == "optimal"
    assert configuration.memory_chip.name == "lpddr4-4gbit-x8"
    assert configuration.cluster_count == 3
    assert configuration.cores_per_cluster == 16
    assert configuration.core_count == 48
    assert configuration.frequency_grid == (mhz(500), mhz(1000))


def test_spec_without_deltas_is_default_server():
    assert ScenarioSpec(name="plain", title="t").configuration() == default_server()


def test_spec_workload_names_preserve_order():
    spec = ScenarioSpec(
        name="ordered",
        title="t",
        workload_names=("Web Search", "Data Serving"),
    )
    assert list(spec.workloads()) == ["Web Search", "Data Serving"]


def test_with_overrides_revalidates():
    spec = get_scenario("fig2_qos")
    with pytest.raises(ValueError, match="frequency grid must not be empty"):
        spec.with_overrides(frequency_grid_hz=())


def test_bias_policy_without_technology_applies_to_base():
    spec = ScenarioSpec(name="biased", title="t", bias_policy="optimal")
    assert spec.configuration().bias_policy.value == "optimal"
    assert spec.configuration().technology == default_server().technology


def test_memory_technology_analysis_requires_compare_chip(scenario_results):
    result = scenario_results("fig2_qos")
    with pytest.raises(ValueError, match="compare_memory_chip"):
        ANALYSES["memory_technology"](result.spec, result.context, result.sweep)


# -- registry --------------------------------------------------------------------------


def test_registry_has_required_scenarios():
    required = {
        "fig2_qos",
        "fig3_scaleout",
        "fig4_virtualized",
        "table1_ddr4",
        "ablation_body_bias",
        "ablation_cluster_size",
        "ablation_memory_tech",
        "consolidation_oversubscribe",
        "colocation_mixed",
        "sweep_governor_grid",
    }
    assert required <= set(scenario_names())
    assert len(REGISTRY) >= 8


def test_registry_membership_and_iteration():
    assert "fig2_qos" in REGISTRY
    assert "no_such" not in REGISTRY
    assert [spec.name for spec in REGISTRY] == list(scenario_names())


def test_every_scenario_analysis_is_registered():
    for spec in REGISTRY:
        for analysis in spec.analyses:
            assert analysis in ANALYSES


# -- runner ----------------------------------------------------------------------------


@pytest.mark.parametrize("name", scenario_names())
def test_every_scenario_runs_and_is_uniform(name, scenario_results):
    result = scenario_results(name)
    spec = get_scenario(name)
    workloads = spec.workloads()
    # Uniform shape: one summary per workload, workload-major sweep,
    # every declared analysis present.
    assert [summary.workload_name for summary in result.summaries] == list(workloads)
    assert len(result.sweep) % len(workloads) == 0
    assert len(result.sweep) > 0
    assert set(result.extras) == set(spec.analyses)
    # Exactly-once evaluation on the shared context.
    assert result.context.evaluated_points == len(result.sweep)


def test_key_scalars_are_json_roundtrippable(scenario_results):
    scalars = scenario_results("fig3_scaleout").key_scalars()
    assert json.loads(json.dumps(scalars)) == scalars
    workload = scalars["workloads"]["Web Search"]
    assert workload["qos_floor_hz"] == 200e6
    assert set(workload["optimal_frequency_by_scope_hz"]) == {"cores", "soc", "server"}


def test_runner_accepts_spec_objects(scenario_results):
    spec = get_scenario("table1_ddr4")
    result = ScenarioRunner().run(spec)
    assert result.spec is spec
    assert result.extras["memory_table"]["table1_rows"][0]["chip"] == "ddr4-4gbit-x8"


def test_colocation_mixed_covers_both_classes(scenario_results):
    result = scenario_results("colocation_mixed")
    classes = set(result.sweep.column("workload_class"))
    assert classes == {"scale-out", "virtualized"}
    # The relaxed bound leaves a common feasible band across all six
    # workloads (the scenario's reason to exist).
    floors = result.extras["qos_floors"]
    assert all(floor is not None for floor in floors.values())
    assert max(floors.values()) <= 2e9


def test_sweep_to_dicts_roundtrip(scenario_results):
    sweep = scenario_results("fig4_virtualized").sweep
    rows = sweep.to_dicts()
    assert len(rows) == len(sweep)
    assert rows[0]["workload_name"] == sweep.record(0).workload_name
    assert rows[0]["latency_seconds"] is None  # virtualized rows have no latency
    assert json.loads(json.dumps(rows)) == rows


# -- CLI -------------------------------------------------------------------------------


def test_cli_list_names_every_scenario(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_cli_list_json(capsys):
    assert cli_main(["list", "--json"]) == 0
    specs = json.loads(capsys.readouterr().out)
    assert [spec["name"] for spec in specs] == list(scenario_names())


def test_cli_show(capsys):
    assert cli_main(["show", "fig2_qos"]) == 0
    spec = json.loads(capsys.readouterr().out)
    assert spec["workload_set"] == "scale-out"


def test_cli_show_unknown_fails(capsys):
    assert cli_main(["show", "no_such"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_run_table(capsys):
    assert cli_main(["run", "table1_ddr4"]) == 0
    out = capsys.readouterr().out
    assert "scenario: table1_ddr4" in out
    assert "Web Search" in out


def test_cli_run_json_and_csv_files(tmp_path, capsys):
    assert (
        cli_main(
            [
                "run",
                "fig4_virtualized",
                "--format",
                "json",
                "--sweep",
                "--output",
                str(tmp_path / "fig4.json"),
            ]
        )
        == 0
    )
    data = json.loads((tmp_path / "fig4.json").read_text())
    assert data["scenario"] == "fig4_virtualized"
    assert len(data["sweep"]) == data["key_scalars"]["rows"]

    assert (
        cli_main(
            ["run", "table1_ddr4", "--format", "csv", "--outdir", str(tmp_path)]
        )
        == 0
    )
    csv_text = (tmp_path / "table1_ddr4.csv").read_text()
    assert csv_text.splitlines()[0].startswith("scenario,workload_name")


def test_cli_run_rejects_bad_usage(capsys, tmp_path):
    assert cli_main(["run"]) == 2
    assert cli_main(["run", "fig2_qos", "--all"]) == 2
    assert (
        cli_main(
            [
                "run",
                "fig2_qos",
                "fig3_scaleout",
                "--output",
                str(tmp_path / "x.json"),
            ]
        )
        == 2
    )
    assert cli_main(["run", "no_such"]) == 2


def test_cli_run_all_runs_every_registered_scenario(tmp_path, capsys):
    # A small private registry keeps --all fast while still proving it
    # hits every registered scenario exactly once.
    from repro.scenarios import ScenarioRegistry

    registry = ScenarioRegistry()
    for name in ("tiny_one", "tiny_two"):
        registry.register(
            ScenarioSpec(
                name=name,
                title=f"tiny scenario {name}",
                workload_names=("Web Search",),
                frequency_grid_hz=(mhz(1000), mhz(2000)),
            )
        )
    assert (
        cli_main(
            ["run", "--all", "--format", "json", "--outdir", str(tmp_path)],
            registry=registry,
        )
        == 0
    )
    written = sorted(path.stem for path in tmp_path.glob("*.json"))
    assert written == ["tiny_one", "tiny_two"]
    out = capsys.readouterr().out
    assert "tiny_one.json" in out and "tiny_two.json" in out


def test_cli_run_unknown_name_fails_and_lists_known_names(capsys):
    assert cli_main(["run", "no_such_scenario"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario 'no_such_scenario'" in err
    for name in scenario_names():
        assert name in err


def test_cli_run_unknown_name_among_valid_ones_still_fails(capsys, tmp_path):
    # One bad name poisons the whole invocation (non-zero exit), even
    # when other requested scenarios exist.
    code = cli_main(
        ["run", "table1_ddr4", "no_such", "--outdir", str(tmp_path)]
    )
    assert code == 2
    assert "unknown scenario 'no_such'" in capsys.readouterr().err


def test_cli_run_parallel_matches_serial(tmp_path):
    for flag, path in ((None, "serial.json"), ("--parallel", "parallel.json")):
        argv = ["run", "fig2_qos", "--format", "json", "--sweep"]
        if flag:
            argv.append(flag)
        argv += ["--output", str(tmp_path / path)]
        assert cli_main(argv) == 0
    serial = json.loads((tmp_path / "serial.json").read_text())
    parallel = json.loads((tmp_path / "parallel.json").read_text())
    assert serial == parallel


def test_cli_run_timing_table(capsys):
    assert cli_main(["run", "table1_ddr4", "--timing"]) == 0
    out = capsys.readouterr().out
    # Per-scenario line plus the aligned summary table.
    assert "evaluated points" in out
    assert "wall (s)" in out
    assert "timing:" in out
    assert "s wall" in out


def test_cli_run_timing_json_embeds_counts(tmp_path, capsys):
    output = tmp_path / "timed.json"
    assert (
        cli_main(
            [
                "run",
                "table1_ddr4",
                "--format",
                "json",
                "--timing",
                "--output",
                str(output),
            ]
        )
        == 0
    )
    data = json.loads(output.read_text())
    assert data["timing"]["wall_s"] > 0
    assert data["timing"]["evaluated_points"] > 0
    # The summary table still lands on stdout, not in the file.
    out = capsys.readouterr().out
    assert "wall (s)" in out


def test_cli_run_without_timing_has_no_timing_output(tmp_path, capsys):
    output = tmp_path / "untimed.json"
    assert (
        cli_main(
            ["run", "table1_ddr4", "--format", "json", "--output", str(output)]
        )
        == 0
    )
    assert "timing" not in json.loads(output.read_text())
    assert "wall (s)" not in capsys.readouterr().out


# -- batched governor grid scenario -----------------------------------------------------


def _grid_batch_size() -> int:
    # One workload x three registry traces x every registered governor.
    return 3 * len(GOVERNORS)


def test_sweep_governor_grid_matches_sequential_replays(scenario_results):
    """The batched grid's summaries equal sequential simulator replays."""
    result = scenario_results("sweep_governor_grid")
    extras = result.extras["sweep_governor_grid"]
    assert extras["batch_size"] == _grid_batch_size()
    assert extras["batched_replays"] == _grid_batch_size()
    assert extras["fallback_replays"] == 0
    assert set(extras["governors"]) == set(GOVERNORS)
    spec = get_scenario("sweep_governor_grid")
    for name, workload in spec.workloads().items():
        simulator = GovernorSimulator(
            result.context, workload, frequencies=spec.frequency_grid_hz
        )
        by_trace = extras["replays"][name]
        assert set(by_trace) == {"diurnal", "bursty", "bitbrains"}
        for trace_name, per_governor in by_trace.items():
            trace = load_trace_by_name(trace_name)
            for governor, summary in per_governor.items():
                assert summary == simulator.replay(trace, governor).summary()


def test_sweep_governor_grid_picks_best_governor(scenario_results):
    extras = scenario_results("sweep_governor_grid").extras[
        "sweep_governor_grid"
    ]
    for by_trace in extras["best_governor_at_zero_violations"].values():
        for trace_name, best in by_trace.items():
            per_governor = extras["replays"]["Web Search"][trace_name]
            if best is None:
                assert all(
                    summary["violation_count"] > 0
                    for summary in per_governor.values()
                )
                continue
            winner = per_governor[best]
            assert winner["violation_count"] == 0
            assert all(
                winner["total_energy_j"] <= summary["total_energy_j"]
                for summary in per_governor.values()
                if summary["violation_count"] == 0
            )


def test_cli_run_batched_scenario_reports_throughput(capsys):
    assert cli_main(["run", "sweep_governor_grid", "--timing"]) == 0
    out = capsys.readouterr().out
    assert f"batch of {_grid_batch_size()} replays" in out
    assert "replays/s" in out
    # The summary table grows batch columns alongside the old ones.
    assert "batch" in out
    assert "wall (s)" in out
    assert "evaluated points" in out


def test_cli_run_batched_scenario_timing_json(tmp_path, capsys):
    output = tmp_path / "grid.json"
    assert (
        cli_main(
            [
                "run",
                "sweep_governor_grid",
                "--format",
                "json",
                "--timing",
                "--output",
                str(output),
            ]
        )
        == 0
    )
    data = json.loads(output.read_text())
    assert data["timing"]["batch_size"] == _grid_batch_size()
    assert data["timing"]["replays_per_s"] > 0
    assert data["timing"]["wall_s"] > 0
    capsys.readouterr()


def test_cli_timing_shows_dashes_for_unbatched_scenarios(tmp_path, capsys):
    # A scenario without a batched analysis: no batch keys in JSON...
    output = tmp_path / "untimed.json"
    assert (
        cli_main(
            [
                "run",
                "table1_ddr4",
                "--format",
                "json",
                "--timing",
                "--output",
                str(output),
            ]
        )
        == 0
    )
    assert "batch_size" not in json.loads(output.read_text())["timing"]
    # ...and dash cells in the shared timing summary table.
    out = capsys.readouterr().out
    rows = [
        line
        for line in out.splitlines()
        if line.startswith("table1_ddr4")
    ]
    assert rows and all("-" in row for row in rows)


# -- profiling and run reports ----------------------------------------------------------


def test_cli_run_profile_prints_span_tree(capsys):
    assert cli_main(["run", "table1_ddr4", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "profile: table1_ddr4" in out
    assert "scenario.run" in out
    assert "scenario.context_build" in out
    assert "scenario.analysis" in out
    assert "context.memo_misses" in out


def test_cli_report_out_writes_a_valid_report_covering_the_run(
    tmp_path, capsys
):
    output = tmp_path / "report.json"
    assert (
        cli_main(
            ["run", "sweep_governor_grid", "--report-out", str(output)]
        )
        == 0
    )
    assert f"wrote {output}" in capsys.readouterr().out
    data = json.loads(output.read_text())
    obs.validate_report(data)
    report = obs.RunReport.from_dict(data)
    assert data["meta"]["scenarios"] == ["sweep_governor_grid"]
    # The spans cover every stage of the run: context build, table
    # build, the batched replay, the sweep and the analyses.
    assert {
        "scenario.run",
        "scenario.context_build",
        "scenario.sweep",
        "scenario.summaries",
        "scenario.analysis",
        "context.table_build",
        "batch.run",
    } <= set(report.names)
    (batch,) = report.spans_named("batch.run")
    assert batch["attributes"]["batch_size"] == _grid_batch_size()
    assert report.counters["batch.batched_replays"] == _grid_batch_size()
    assert report.counters["context.memo_misses"] > 0
    assert report.counters["context.memo_hits"] > 0


def test_cli_report_out_merges_multiple_scenarios(tmp_path, capsys):
    output = tmp_path / "multi.json"
    assert (
        cli_main(
            ["run", "table1_ddr4", "fig2_qos", "--report-out", str(output)]
        )
        == 0
    )
    out = capsys.readouterr().out
    # --report-out alone does not switch on the timing output.
    assert "timing:" not in out
    data = json.loads(output.read_text())
    obs.validate_report(data)
    report = obs.RunReport.from_dict(data)
    assert data["meta"]["scenarios"] == ["table1_ddr4", "fig2_qos"]
    assert len(report.spans_named("scenario.run")) == 2
    scenarios = [
        span["attributes"]["scenario"]
        for span in report.spans_named("scenario.run")
    ]
    assert scenarios == ["table1_ddr4", "fig2_qos"]


def test_cli_run_leaves_instrumentation_off(tmp_path):
    output = tmp_path / "report.json"
    assert (
        cli_main(["run", "table1_ddr4", "--report-out", str(output)]) == 0
    )
    assert not obs.is_enabled()


# -- fleet spec fields ------------------------------------------------------------------


def _fleet_spec(**overrides):
    fields = dict(
        name="fleet_probe",
        title="fleet validation probe",
        workload_names=("Web Search",),
        load_trace="diurnal",
        fleet_size=4,
        analyses=("fleet_replay",),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def test_fleet_spec_accepts_valid_fields():
    spec = _fleet_spec(fleet_routings=("pack", "spread"), fleet_autoscale=False)
    assert spec.fleet_size == 4
    assert spec.fleet_governor == "qos_tracker"


def test_fleet_spec_rejects_non_positive_fleet_size():
    with pytest.raises(ValueError, match="fleet_size must be >= 1"):
        _fleet_spec(fleet_size=0)


def test_fleet_spec_rejects_unknown_routing():
    with pytest.raises(ValueError, match="unknown fleet routings.*random"):
        _fleet_spec(fleet_routings=("pack", "random"))


def test_fleet_spec_rejects_duplicate_routings():
    with pytest.raises(ValueError, match="duplicates"):
        _fleet_spec(fleet_routings=("pack", "pack"))


def test_fleet_spec_rejects_unknown_governor():
    with pytest.raises(ValueError, match="unknown fleet governor"):
        _fleet_spec(fleet_governor="turbo")


def test_fleet_replay_analysis_requires_fleet_size():
    with pytest.raises(ValueError, match="needs fleet_size"):
        _fleet_spec(fleet_size=None)


def test_fleet_replay_analysis_requires_load_trace():
    with pytest.raises(ValueError, match="needs load_trace"):
        _fleet_spec(load_trace=None)


def test_fleet_scenarios_are_registered_with_goldens():
    for name in (
        "fleet_diurnal_websearch",
        "fleet_bursty_dataserving",
        "fleet_bitbrains_consolidation",
    ):
        spec = get_scenario(name)
        assert "fleet_replay" in spec.analyses
        assert spec.fleet_size is not None and spec.load_trace is not None


# -- stress spec fields -----------------------------------------------------------------


def _stress_spec(**overrides):
    fields = dict(
        name="stress_probe",
        title="stress validation probe",
        workload_names=("Web Search",),
        load_trace="diurnal",
        fleet_size=4,
        surge_start=8,
        surge_steps=4,
        surge_factor=2.0,
        analyses=("fleet_stress",),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def test_stress_spec_accepts_valid_fields():
    spec = _stress_spec(surge_shape="ramp")
    assert spec.surge_steps == 4
    assert len(spec.disturbance_schedule()) == 0


def test_stress_spec_rejects_bad_surge_fields():
    with pytest.raises(ValueError, match="surge_start must be >= 0"):
        _stress_spec(surge_start=-1)
    with pytest.raises(ValueError, match="surge_steps must be >= 0"):
        _stress_spec(surge_steps=-2)
    with pytest.raises(ValueError, match="surge_factor must be positive"):
        _stress_spec(surge_factor=0.0)
    with pytest.raises(ValueError, match="surge_shape must be"):
        _stress_spec(surge_shape="cliff")


def test_stress_spec_validates_disturbance_tuples():
    spec = _stress_spec(
        surge_steps=0,
        disturbances=(("node_crash", 0, 6), ("node_restore", 0, 10)),
    )
    schedule = spec.disturbance_schedule()
    assert len(schedule) == 2 and schedule.kernel_supported
    with pytest.raises(ValueError, match="stress_probe.*unknown disturbance"):
        _stress_spec(disturbances=(("comet", 0, 6),))
    with pytest.raises(ValueError, match="without a preceding crash"):
        _stress_spec(disturbances=(("node_restore", 0, 6),))


def test_fleet_stress_analysis_needs_a_stressor():
    with pytest.raises(ValueError, match="needs a surge"):
        _stress_spec(surge_steps=0)
    with pytest.raises(ValueError, match="needs fleet_size"):
        _stress_spec(fleet_size=None)
    with pytest.raises(ValueError, match="needs load_trace"):
        _stress_spec(load_trace=None)


def test_stress_scenarios_are_registered_with_goldens():
    for name in (
        "stress_flash_crowd",
        "stress_node_crash",
        "stress_thermal_cap",
    ):
        spec = get_scenario(name)
        assert "fleet_stress" in spec.analyses
        assert spec.fleet_size is not None and spec.load_trace is not None
    assert get_scenario("stress_flash_crowd").surge_steps > 0
    assert get_scenario("stress_node_crash").disturbance_schedule().kinds == (
        "node_crash",
        "node_restore",
    )
    assert not get_scenario(
        "stress_thermal_cap"
    ).disturbance_schedule().kernel_supported
