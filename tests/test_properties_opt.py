"""Property tests over the policy auto-tuner.

The optimizer's determinism contract, exercised with Hypothesis over
drawn parameter spaces and submission orders on a short diurnal prefix:

* grid search's reported optimum and frontier are invariant to the
  order trials are submitted in;
* successive halving with ``keep_fraction=1.0`` reproduces exhaustive
  grid search on the same prefix schedule;
* the reported optimum is reproducible bit-for-bit across runs on
  fresh model contexts;
* the optimum is never QoS-violating when the space contains a
  zero-violation config.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvfs import LoadTrace
from repro.opt import (
    GridSearch,
    OptResult,
    ParamSpace,
    PolicyTuner,
    SuccessiveHalving,
)
from repro.sweep.context import ModelContext
from repro.workloads.cloudsuite import WEB_SEARCH

TRACE = LoadTrace.diurnal().head(8)

spaces = st.builds(
    ParamSpace,
    fleet_sizes=st.lists(
        st.sampled_from((1, 2, 3)), min_size=1, max_size=2, unique=True
    ).map(tuple),
    governors=st.lists(
        st.sampled_from(("qos_tracker", "ondemand", "powersave")),
        min_size=1,
        max_size=2,
        unique=True,
    ).map(tuple),
    routings=st.lists(
        st.sampled_from(("pack", "spread", "round_robin")),
        min_size=1,
        max_size=2,
        unique=True,
    ).map(tuple),
    bands=st.lists(
        st.sampled_from((None, (0.35, 0.75), (0.5, 0.9))),
        min_size=1,
        max_size=2,
        unique=True,
    ).map(tuple),
)

prefix_schedules = st.lists(
    st.sampled_from((2, 3, 4, 6)), min_size=1, max_size=3, unique=True
).map(lambda steps: tuple(sorted(steps)))


@pytest.fixture(scope="module")
def tuner(default_context):
    return PolicyTuner(default_context, WEB_SEARCH, TRACE)


@settings(max_examples=10, deadline=None)
@given(space=spaces, seed=st.randoms(use_true_random=False))
def test_grid_optimum_invariant_to_submission_order(tuner, space, seed):
    configs = list(space.configs())
    baseline = tuner.tune(space, GridSearch())

    shuffled = list(configs)
    seed.shuffle(shuffled)
    trials = tuner.evaluate(shuffled)
    permuted = OptResult(
        space=space,
        strategy="grid",
        trials=trials,
        full_steps=len(TRACE),
        evaluations=len(trials),
        full_length_evaluations=len(trials),
    )

    assert permuted.best_config == baseline.best_config
    assert permuted.best_trial.summary == baseline.best_trial.summary
    frontier_points = lambda result: {
        (row["violation_count"], row[result.frontier_metric])
        for row in result.frontier()
    }
    assert frontier_points(permuted) == frontier_points(baseline)


@settings(max_examples=10, deadline=None)
@given(space=spaces, prefixes=prefix_schedules)
def test_halving_with_keep_one_equals_grid(tuner, space, prefixes):
    grid = tuner.tune(space, GridSearch())
    halving = tuner.tune(
        space, SuccessiveHalving(keep_fraction=1.0, prefix_steps=prefixes)
    )
    final = [halving.trials[i] for i in halving.final_indices]
    assert [t.config for t in final] == [t.config for t in grid.trials]
    assert [t.summary for t in final] == [t.summary for t in grid.trials]
    assert [t.objective for t in final] == [t.objective for t in grid.trials]
    assert halving.best_config == grid.best_config
    assert halving.frontier() == grid.frontier()
    assert halving.as_dict()["best"] == grid.as_dict()["best"]


@settings(max_examples=5, deadline=None)
@given(space=spaces)
def test_optimum_reproducible_bit_for_bit_across_runs(
    default_configuration, space
):
    runs = []
    for _ in range(2):
        context = ModelContext(default_configuration)
        tuner = PolicyTuner(context, WEB_SEARCH, TRACE)
        result = tuner.tune(space, GridSearch())
        runs.append(json.dumps(result.as_dict(), sort_keys=True))
    assert runs[0] == runs[1]


@settings(max_examples=10, deadline=None)
@given(space=spaces)
def test_optimum_never_violates_when_a_clean_config_exists(tuner, space):
    result = tuner.tune(space, GridSearch())
    clean_exists = any(
        trial.summary["violation_count"] == 0 for trial in result.trials
    )
    if clean_exists:
        assert result.best_trial.summary["violation_count"] == 0
        assert result.best_trial.feasible
    else:
        assert not result.best_trial.feasible


@settings(max_examples=10, deadline=None)
@given(space=spaces, prefixes=prefix_schedules)
def test_halving_optimum_never_violates_on_prefix_clean_survivors(
    tuner, space, prefixes
):
    """Replays are causal: a full-length-clean config is clean on every
    prefix, so with keep_fraction=1.0 no clean config is ever cut and
    halving inherits grid's never-violating guarantee."""
    result = tuner.tune(
        space, SuccessiveHalving(keep_fraction=1.0, prefix_steps=prefixes)
    )
    final = [result.trials[i] for i in result.final_indices]
    if any(t.summary["violation_count"] == 0 for t in final):
        assert result.best_trial.summary["violation_count"] == 0
