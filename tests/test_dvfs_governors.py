"""Unit tests for the governor policies over a synthetic platform."""

import pytest

from repro.dvfs import (
    GOVERNORS,
    ConservativeGovernor,
    LoadObservation,
    OndemandGovernor,
    PerformanceGovernor,
    PlatformView,
    PowersaveGovernor,
    QosTrackerGovernor,
    governor_by_name,
)

# A toy platform: capacity proportional to frequency, QoS met from
# 500MHz up (the QoS floor the paper reports for scale-out workloads).
FREQS = (100e6, 500e6, 1000e6, 2000e6)
PLATFORM = PlatformView(
    frequencies=FREQS,
    capacity_uips={f: f * 10.0 for f in FREQS},
    qos_ok={100e6: False, 500e6: True, 1000e6: True, 2000e6: True},
)


def observe(utilization: float, previous: float = 2000e6) -> LoadObservation:
    return LoadObservation(
        utilization=utilization,
        demand_uips=utilization * PLATFORM.nominal_capacity_uips,
        previous_frequency_hz=previous,
    )


# -- platform view ----------------------------------------------------------------------


def test_platform_view_validates_ordering_and_coverage():
    with pytest.raises(ValueError, match="ascending"):
        PlatformView(
            frequencies=(2000e6, 100e6),
            capacity_uips={2000e6: 1.0, 100e6: 1.0},
            qos_ok={2000e6: True, 100e6: True},
        )
    with pytest.raises(ValueError, match="at least one frequency"):
        PlatformView(frequencies=(), capacity_uips={}, qos_ok={})
    with pytest.raises(ValueError, match="missing capacity"):
        PlatformView(
            frequencies=(100e6,), capacity_uips={}, qos_ok={100e6: True}
        )
    with pytest.raises(ValueError, match="missing QoS"):
        PlatformView(
            frequencies=(100e6,), capacity_uips={100e6: 1.0}, qos_ok={}
        )


def test_platform_lowest_covering_and_neighbour():
    demand = 0.3 * PLATFORM.nominal_capacity_uips  # needs >= 600MHz capacity
    assert PLATFORM.lowest_covering(demand) == 1000e6
    assert PLATFORM.lowest_covering(demand, require_qos=True) == 1000e6
    qos_demand = 0.01 * PLATFORM.nominal_capacity_uips
    assert PLATFORM.lowest_covering(qos_demand) == 100e6
    assert PLATFORM.lowest_covering(qos_demand, require_qos=True) == 500e6
    assert PLATFORM.lowest_covering(2 * PLATFORM.nominal_capacity_uips) is None
    assert PLATFORM.neighbour(500e6, +1) == 1000e6
    assert PLATFORM.neighbour(500e6, -1) == 100e6
    assert PLATFORM.neighbour(100e6, -1) == 100e6
    assert PLATFORM.neighbour(2000e6, +1) == 2000e6
    with pytest.raises(ValueError, match="not on the platform grid"):
        PLATFORM.neighbour(750e6, +1)


# -- policies ---------------------------------------------------------------------------


def test_performance_always_pins_the_top():
    governor = PerformanceGovernor()
    for utilization in (0.0, 0.5, 1.0):
        assert governor.select(observe(utilization), PLATFORM) == 2000e6


def test_powersave_always_pins_the_bottom():
    governor = PowersaveGovernor()
    for utilization in (0.0, 0.5, 1.0):
        assert governor.select(observe(utilization), PLATFORM) == 100e6


def test_ondemand_jumps_above_threshold_and_scales_below():
    governor = OndemandGovernor(up_threshold=0.8)
    assert governor.select(observe(0.9), PLATFORM) == 2000e6
    # u=0.5: target capacity 0.5/0.8 = 62.5% of nominal -> 2000MHz is
    # the only frequency with enough derated headroom.
    assert governor.select(observe(0.5), PLATFORM) == 2000e6
    # u=0.15: 0.15/0.8 = 18.75% of nominal -> 500MHz (25%) covers it.
    assert governor.select(observe(0.15), PLATFORM) == 500e6
    assert governor.select(observe(0.02), PLATFORM) == 100e6


def test_ondemand_threshold_is_validated():
    with pytest.raises(ValueError):
        OndemandGovernor(up_threshold=0.0)
    with pytest.raises(ValueError):
        OndemandGovernor(up_threshold=1.5)


def test_conservative_moves_one_notch_toward_the_load():
    governor = ConservativeGovernor(up_threshold=0.75, down_threshold=0.3)
    # Load at the previous frequency (500MHz): demand 0.5*nominal is
    # twice its capacity -> step up one notch only.
    assert governor.select(observe(0.5, previous=500e6), PLATFORM) == 1000e6
    # Load far below the down threshold -> one notch down.
    assert governor.select(observe(0.01, previous=1000e6), PLATFORM) == 500e6
    # In the comfort band -> hold.
    assert governor.select(observe(0.25, previous=1000e6), PLATFORM) == 1000e6
    # Clamped at the grid edges.
    assert governor.select(observe(1.0, previous=2000e6), PLATFORM) == 2000e6
    assert governor.select(observe(0.0, previous=100e6), PLATFORM) == 100e6


def test_conservative_thresholds_must_be_ordered():
    with pytest.raises(ValueError, match="down_threshold"):
        ConservativeGovernor(up_threshold=0.3, down_threshold=0.5)


def test_qos_tracker_respects_the_qos_floor_and_the_demand():
    governor = QosTrackerGovernor()
    # Tiny load: the lowest frequency would cover it, but 100MHz is
    # below the QoS floor -> 500MHz.
    assert governor.select(observe(0.01), PLATFORM) == 500e6
    # Heavier load: the QoS floor no longer binds, capacity does.
    assert governor.select(observe(0.3), PLATFORM) == 1000e6
    assert governor.select(observe(0.9), PLATFORM) == 2000e6


def test_qos_tracker_falls_back_to_nominal_when_nothing_is_feasible():
    hopeless = PlatformView(
        frequencies=FREQS,
        capacity_uips={f: f * 10.0 for f in FREQS},
        qos_ok={f: False for f in FREQS},
    )
    governor = QosTrackerGovernor()
    assert governor.select(observe(0.5), hopeless) == 2000e6


# -- registry ---------------------------------------------------------------------------


def test_governor_by_name_builds_every_registered_policy():
    for name in GOVERNORS:
        assert governor_by_name(name).name == name


def test_unknown_governor_name_lists_known_ones():
    with pytest.raises(ValueError, match="unknown governor") as error:
        governor_by_name("schedutil")
    for known in GOVERNORS:
        assert known in str(error.value)
