"""Tests for the DRAM bank state machine and channel controller."""

import pytest

from repro.dram.bank import Bank, BankState
from repro.dram.commands import MemoryRequest, RequestType
from repro.dram.controller import ChannelController
from repro.dram.timing import DDR4_1600_4GBIT


# -- bank ------------------------------------------------------------------------


def test_bank_starts_precharged():
    bank = Bank(DDR4_1600_4GBIT)
    assert bank.state is BankState.PRECHARGED
    assert not bank.is_open


def test_activate_opens_row():
    bank = Bank(DDR4_1600_4GBIT)
    bank.activate(row=7, cycle=0)
    assert bank.is_open
    assert bank.open_row == 7


def test_activate_twice_without_precharge_fails():
    bank = Bank(DDR4_1600_4GBIT)
    bank.activate(row=1, cycle=0)
    with pytest.raises(ValueError, match="ACTIVATE"):
        bank.activate(row=2, cycle=10)


def test_column_access_requires_open_row():
    bank = Bank(DDR4_1600_4GBIT)
    with pytest.raises(ValueError, match="no open row"):
        bank.column_access(0, is_write=False)


def test_read_after_activate_respects_trcd():
    timing = DDR4_1600_4GBIT
    bank = Bank(timing)
    bank.activate(row=1, cycle=0)
    issue, done = bank.column_access(0, is_write=False)
    assert issue >= timing.tRCD
    assert done == issue + timing.tCL + timing.burst_cycles


def test_precharge_respects_tras():
    timing = DDR4_1600_4GBIT
    bank = Bank(timing)
    bank.activate(row=1, cycle=0)
    issue = bank.precharge(cycle=0)
    assert issue >= timing.tRAS


def test_precharge_when_closed_is_noop():
    bank = Bank(DDR4_1600_4GBIT)
    assert bank.precharge(5) == 5


def test_write_recovery_delays_precharge():
    timing = DDR4_1600_4GBIT
    bank = Bank(timing)
    bank.activate(row=1, cycle=0)
    __, data_done = bank.column_access(timing.tRCD, is_write=True)
    issue = bank.precharge(cycle=0)
    assert issue >= data_done + timing.tWR


def test_block_until_pushes_all_timers():
    bank = Bank(DDR4_1600_4GBIT)
    bank.block_until(500)
    assert bank.activate(row=1, cycle=0) >= 500


# -- controller ---------------------------------------------------------------------


def _read(address, cycle):
    return MemoryRequest(address=address, request_type=RequestType.READ, arrival_cycle=cycle)


def test_single_read_latency_is_closed_row_latency():
    controller = ChannelController()
    latency = controller.access_latency(address=0, is_write=False, cycle=0)
    assert latency == DDR4_1600_4GBIT.row_closed_latency


def test_row_hits_faster_than_conflicts():
    controller = ChannelController()
    controller.access_latency(0, False, 0)
    hit_latency = controller.access_latency(64 * 4, False, 100)
    # Different row in the same bank: 4KB * channels stride later.
    conflict_address = 64 * 4 * 128 * 4 * 4 * 4
    conflict_latency = controller.access_latency(conflict_address, False, 200)
    assert hit_latency <= conflict_latency


def test_sequential_stream_mostly_row_hits():
    controller = ChannelController()
    requests = [_read(line * 64 * 4, line * 4) for line in range(500)]
    controller.run(requests)
    assert controller.stats.row_hit_rate > 0.9


def test_all_requests_complete_with_increasing_completion():
    controller = ChannelController()
    requests = [_read(line * 64 * 4, line * 8) for line in range(200)]
    completed = controller.run(requests)
    assert len(completed) == 200
    assert all(request.completion_cycle is not None for request in completed)
    assert all(request.latency > 0 for request in completed)


def test_refresh_happens_on_long_runs():
    controller = ChannelController()
    requests = [_read(line * 64 * 4, line * 100) for line in range(200)]
    controller.run(requests)
    assert controller.stats.refreshes > 0


def test_writes_counted_separately():
    controller = ChannelController()
    write = MemoryRequest(address=0, request_type=RequestType.WRITE, arrival_cycle=0)
    controller.run([write])
    assert controller.stats.writes == 1
    assert controller.stats.reads == 0
    assert controller.stats.bytes_written == 64


def test_request_latency_property_requires_completion():
    request = _read(0, 0)
    with pytest.raises(ValueError):
        __ = request.latency
