"""Tests for the server configuration and the analytical performance model."""

import pytest

from repro.core.config import ServerConfiguration, default_frequency_grid, default_server
from repro.core.performance import ServerPerformanceModel
from repro.power.dram_power import LPDDR4_4GBIT_X8
from repro.technology.a57_model import BodyBiasPolicy
from repro.technology.process import BULK_28NM, FDSOI_28NM
from repro.utils.units import ghz, mhz
from repro.workloads.banking_vm import VMS_HIGH_MEM, VMS_LOW_MEM
from repro.workloads.cloudsuite import DATA_SERVING, MEDIA_STREAMING, WEB_SEARCH


# -- configuration -------------------------------------------------------------------


def test_default_server_matches_paper_organisation():
    config = default_server()
    assert config.cluster_count == 9
    assert config.cores_per_cluster == 4
    assert config.core_count == 36
    assert config.technology is FDSOI_28NM
    assert config.nominal_frequency_hz == pytest.approx(2.0e9)
    assert config.power_budget_watts == pytest.approx(100.0)


def test_default_frequency_grid_covers_100mhz_to_2ghz():
    grid = default_frequency_grid()
    assert min(grid) == pytest.approx(mhz(100))
    assert max(grid) == pytest.approx(ghz(2))
    assert len(grid) >= 15


def test_default_server_fits_area_budget():
    assert default_server().fits_area_budget()


def test_oversized_organisation_fails_area_budget():
    config = default_server().with_cluster_organization(12, 4)
    assert not config.fits_area_budget()


def test_with_technology_builds_variant():
    config = default_server().with_technology(BULK_28NM)
    assert config.technology is BULK_28NM
    assert "bulk" in config.name


def test_with_memory_chip_builds_variant():
    config = default_server().with_memory_chip(LPDDR4_4GBIT_X8)
    assert config.memory_chip is LPDDR4_4GBIT_X8
    assert config.memory_power_model().background_power() < (
        default_server().memory_power_model().background_power()
    )


def test_memory_capacity_is_64gb():
    assert default_server().memory_power_model().capacity_gb() == pytest.approx(64.0)


def test_bias_policy_flows_into_core_model():
    config = default_server().with_technology(FDSOI_28NM, BodyBiasPolicy.OPTIMAL)
    model = config.core_power_model()
    assert model.bias_policy is BodyBiasPolicy.OPTIMAL


def test_invalid_cluster_count_rejected():
    with pytest.raises(ValueError):
        ServerConfiguration(cluster_count=0)


def test_empty_frequency_grid_rejected():
    with pytest.raises(ValueError):
        ServerConfiguration(frequency_grid=())


# -- performance model ----------------------------------------------------------------


@pytest.fixture(scope="module")
def performance():
    return ServerPerformanceModel(default_server())


def test_chip_uips_is_core_uips_times_core_count(performance):
    point = performance.performance(WEB_SEARCH, ghz(1))
    assert point.chip_uips == pytest.approx(point.core_uips * 36)


def test_uipc_rises_as_frequency_drops(performance):
    assert (
        performance.performance(DATA_SERVING, mhz(200)).uipc
        > performance.performance(DATA_SERVING, ghz(2)).uipc
    )


def test_throughput_ratio_to_nominal_above_one_at_low_frequency(performance):
    ratio = performance.throughput_ratio_to_nominal(DATA_SERVING, mhz(500))
    assert ratio > 1.0


def test_memory_bandwidth_scales_with_throughput(performance):
    low = performance.memory_read_bandwidth(DATA_SERVING, mhz(500))
    high = performance.memory_read_bandwidth(DATA_SERVING, ghz(2))
    assert high > low


def test_memory_bandwidth_within_channel_peak(performance):
    bandwidth = performance.memory_read_bandwidth(
        DATA_SERVING, ghz(2)
    ) + performance.memory_write_bandwidth(DATA_SERVING, ghz(2))
    assert bandwidth < default_server().memory_organization.peak_bandwidth


def test_write_bandwidth_uses_write_fraction(performance):
    read = performance.memory_read_bandwidth(DATA_SERVING, ghz(1))
    write = performance.memory_write_bandwidth(DATA_SERVING, ghz(1))
    assert write == pytest.approx(read * DATA_SERVING.write_fraction)


def test_vm_high_mem_has_higher_uips_than_low_mem(performance):
    high = performance.performance(VMS_HIGH_MEM, ghz(2)).chip_uips
    low = performance.performance(VMS_LOW_MEM, ghz(2)).chip_uips
    assert high > low


def test_llc_access_rate_positive(performance):
    assert performance.llc_accesses_per_second_per_cluster(MEDIA_STREAMING, ghz(1)) > 0


def test_crossbar_traffic_is_llc_rate_times_line(performance):
    rate = performance.llc_accesses_per_second_per_cluster(WEB_SEARCH, ghz(1))
    assert performance.crossbar_bytes_per_second_per_cluster(
        WEB_SEARCH, ghz(1)
    ) == pytest.approx(rate * 64)


def test_nominal_performance_uses_configured_nominal(performance):
    nominal = performance.nominal_performance(WEB_SEARCH)
    assert nominal.frequency_hz == pytest.approx(2.0e9)
