"""Tests for the trace-driven cluster and chip simulators."""

import pytest

from repro.sim.chip import ChipSimulator
from repro.sim.cluster import ClusterSimConfig, ClusterSimulator
from repro.sim.sampling import SmartsSampler
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import DATA_SERVING, MEDIA_STREAMING


RECORDS = 1500


def run_cluster(workload, frequency, records=RECORDS, seed=42):
    config = ClusterSimConfig(
        workload=workload,
        frequency_hz=frequency,
        records_per_core=records,
        trace_seed=seed,
    )
    return ClusterSimulator(config).run()


def test_cluster_produces_positive_uipc():
    result = run_cluster(DATA_SERVING, 2.0e9)
    assert result.uipc > 0.0
    assert result.instructions > 0
    assert result.cycles > 0


def test_cluster_aggregate_uipc_in_sane_range():
    result = run_cluster(DATA_SERVING, 2.0e9)
    # Aggregate over 4 cores: each core between 0.1 and 1.5 UIPC.
    assert 0.4 <= result.uipc <= 6.0


def test_uipc_higher_at_low_frequency():
    slow = run_cluster(DATA_SERVING, 0.3e9)
    fast = run_cluster(DATA_SERVING, 2.0e9)
    assert slow.uipc > fast.uipc


def test_uips_higher_at_high_frequency():
    slow = run_cluster(DATA_SERVING, 0.3e9)
    fast = run_cluster(DATA_SERVING, 2.0e9)
    assert fast.cluster_uips > slow.cluster_uips


def test_memory_bound_workload_generates_more_traffic_than_vm():
    scale_out = run_cluster(DATA_SERVING, 2.0e9)
    vm = run_cluster(VMS_LOW_MEM, 2.0e9)
    assert scale_out.read_bandwidth > vm.read_bandwidth


def test_cluster_counts_memory_traffic():
    result = run_cluster(DATA_SERVING, 2.0e9)
    assert result.memory_read_bytes > 0
    assert result.memory_accesses > 0
    assert result.average_memory_latency_ns > 10.0


def test_memory_latency_in_ddr4_plausible_range():
    for workload in (MEDIA_STREAMING, DATA_SERVING):
        result = run_cluster(workload, 2.0e9)
        # Unloaded DDR4 closed-row latency is ~33ns; queueing and
        # conflicts should keep the average under ~100ns at this load.
        assert 20.0 <= result.average_memory_latency_ns <= 100.0


def test_cluster_deterministic_for_same_seed():
    first = run_cluster(DATA_SERVING, 1.0e9, records=800, seed=7)
    second = run_cluster(DATA_SERVING, 1.0e9, records=800, seed=7)
    assert first.uipc == pytest.approx(second.uipc)
    assert first.memory_read_bytes == second.memory_read_bytes


def test_chip_simulator_scales_to_36_cores():
    config = ClusterSimConfig(
        workload=DATA_SERVING, frequency_hz=1.0e9, records_per_core=600
    )
    simulator = ChipSimulator(
        cluster_config=config,
        cluster_count=9,
        sampler=SmartsSampler(initial_units=3, max_units=4, error_target=0.05),
    )
    result = simulator.run()
    assert result.measurement.core_count == 36
    assert result.chip_uips > 0
    assert result.read_bandwidth > 0
    assert result.cluster_count == 9


def test_chip_simulator_sampling_reports_convergence_flag():
    config = ClusterSimConfig(
        workload=VMS_LOW_MEM, frequency_hz=1.0e9, records_per_core=500
    )
    simulator = ChipSimulator(
        cluster_config=config,
        cluster_count=9,
        sampler=SmartsSampler(initial_units=3, max_units=6, error_target=0.10),
    )
    result = simulator.run()
    assert isinstance(result.sampling.converged, bool)
    assert len(result.sampling.values) >= 3
