"""Tests for the transregional voltage-frequency model."""

import pytest
from hypothesis import given, strategies as st

from repro.technology.process import BULK_28NM, FDSOI_28NM
from repro.technology.vf_curve import TransregionalVFModel


@pytest.fixture
def fdsoi_model():
    return TransregionalVFModel(FDSOI_28NM)


@pytest.fixture
def bulk_model():
    return TransregionalVFModel(BULK_28NM)


def test_frequency_increases_with_voltage(fdsoi_model):
    frequencies = [fdsoi_model.max_frequency(v) for v in (0.5, 0.7, 0.9, 1.1, 1.3)]
    assert frequencies == sorted(frequencies)
    assert frequencies[0] < frequencies[-1]


def test_fdsoi_reaches_about_3_5ghz_at_nominal(fdsoi_model):
    assert fdsoi_model.max_frequency(1.3) == pytest.approx(3.5e9, rel=0.05)


def test_fdsoi_near_100mhz_at_half_volt(fdsoi_model):
    assert 50e6 <= fdsoi_model.max_frequency(0.5) <= 250e6


def test_forward_body_bias_raises_frequency(fdsoi_model):
    assert fdsoi_model.max_frequency(0.5, body_bias=1.5) > 4 * fdsoi_model.max_frequency(0.5)


def test_fbb_exceeds_500mhz_at_half_volt(fdsoi_model):
    assert fdsoi_model.max_frequency(0.5, body_bias=1.5) > 500e6


def test_reverse_body_bias_lowers_frequency(fdsoi_model):
    assert fdsoi_model.max_frequency(0.7, body_bias=-1.0) < fdsoi_model.max_frequency(0.7)


def test_bulk_needs_higher_voltage_than_fdsoi(bulk_model, fdsoi_model):
    for frequency in (0.3e9, 1.0e9, 2.0e9):
        assert bulk_model.vdd_for_frequency(frequency) > fdsoi_model.vdd_for_frequency(
            frequency
        )


def test_vdd_for_frequency_inverts_max_frequency(fdsoi_model):
    for target in (0.2e9, 1.0e9, 2.0e9, 3.0e9):
        vdd = fdsoi_model.vdd_for_frequency(target)
        assert fdsoi_model.max_frequency(vdd) == pytest.approx(target, rel=1e-3)


def test_vdd_for_unreachable_frequency_raises(fdsoi_model):
    with pytest.raises(ValueError, match="cannot reach"):
        fdsoi_model.vdd_for_frequency(10e9)


def test_zero_voltage_gives_zero_frequency(fdsoi_model):
    assert fdsoi_model.max_frequency(0.0) == 0.0


def test_body_bias_outside_range_rejected(fdsoi_model):
    with pytest.raises(ValueError, match="outside the allowed range"):
        fdsoi_model.effective_threshold(body_bias=5.0)


def test_effective_threshold_shift(fdsoi_model):
    shifted = fdsoi_model.effective_threshold(body_bias=1.0)
    assert shifted == pytest.approx(FDSOI_28NM.threshold_voltage - 0.085)


def test_frequency_range_ordering(fdsoi_model):
    low, high = fdsoi_model.frequency_range()
    assert low < high


def test_higher_temperature_slows_subthreshold_region():
    cold = TransregionalVFModel(FDSOI_28NM, temperature_kelvin=300.0)
    hot = TransregionalVFModel(FDSOI_28NM, temperature_kelvin=380.0)
    # In the deep sub/near-threshold region the thermal voltage increase
    # changes the curve; the model must remain monotone and positive.
    assert hot.max_frequency(0.45) > 0.0
    assert cold.max_frequency(1.2) > 0.0


@given(st.floats(min_value=0.45, max_value=1.3), st.floats(min_value=0.46, max_value=1.31))
def test_monotonicity_property(v1, v2):
    model = TransregionalVFModel(FDSOI_28NM)
    low, high = sorted((v1, v2))
    assert model.max_frequency(low) <= model.max_frequency(high) + 1e-6


@given(st.floats(min_value=1.5e8, max_value=3.4e9))
def test_vdd_solution_is_within_physical_range(frequency):
    model = TransregionalVFModel(FDSOI_28NM)
    vdd = model.vdd_for_frequency(frequency)
    assert 0.05 < vdd <= FDSOI_28NM.nominal_vdd + 1e-6
