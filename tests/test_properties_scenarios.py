"""Property tests over the scenario registry.

For every registered scenario: parallel and serial sweeps are
identical, row ordering is deterministic (workload-major in spec order,
grid-ascending within a workload), the set of frequencies satisfying a
degradation bound grows monotonically with the bound, and the power
scopes nest (CORES <= SOC <= SERVER) at every operating point.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import ScenarioRunner, get_scenario, scenario_names
from repro.sweep.result import (
    COLUMNS,
    _BOOL_COLUMNS,
    _STRING_COLUMNS,
    SweepResult,
)


def assert_sweeps_identical(left: SweepResult, right: SweepResult) -> None:
    assert len(left) == len(right)
    for name in COLUMNS:
        a, b = left.column(name), right.column(name)
        if name in _STRING_COLUMNS:
            assert list(a) == list(b), f"column {name} differs"
        elif name in _BOOL_COLUMNS:
            assert np.array_equal(a, b), f"column {name} differs"
        else:
            assert np.array_equal(a, b, equal_nan=True), f"column {name} differs"


@pytest.mark.parametrize("name", scenario_names())
def test_parallel_and_serial_sweeps_identical(name, scenario_results):
    serial = scenario_results(name)
    parallel = ScenarioRunner(parallel=True).run(name)
    assert_sweeps_identical(serial.sweep, parallel.sweep)
    assert [s.workload_name for s in serial.summaries] == [
        s.workload_name for s in parallel.summaries
    ]
    for left, right in zip(serial.summaries, parallel.summaries):
        assert left == right


@pytest.mark.parametrize("name", scenario_names())
def test_rows_deterministically_ordered(name, scenario_results):
    result = scenario_results(name)
    spec = get_scenario(name)
    workload_names = list(spec.workloads())
    frequencies = result.sweep.column("frequency_hz")
    rows_per_workload = len(result.sweep) // len(workload_names)

    # Workload-major in spec order, one equal contiguous chunk each.
    expected_names = [
        name_
        for name_ in workload_names
        for _ in range(rows_per_workload)
    ]
    assert list(result.sweep.column("workload_name")) == expected_names

    # Grid-ascending within each workload chunk (the default grids are
    # ascending; reachability filtering preserves order).
    for index in range(len(workload_names)):
        chunk = frequencies[index * rows_per_workload : (index + 1) * rows_per_workload]
        assert np.all(np.diff(chunk) > 0)

    # A fresh run reproduces the table bit-for-bit.
    rerun = ScenarioRunner().run(name)
    assert_sweeps_identical(result.sweep, rerun.sweep)


@pytest.mark.parametrize("name", scenario_names())
def test_power_scopes_nest(name, scenario_results):
    """CORES <= SOC <= SERVER power at every swept operating point."""
    sweep = scenario_results(name).sweep
    core = sweep.column("core_power")
    soc = sweep.column("soc_power")
    server = sweep.column("server_power")
    assert np.all(core > 0)
    assert np.all(core <= soc + 1e-12)
    assert np.all(soc <= server + 1e-12)


@settings(max_examples=30, deadline=None)
@given(
    bounds=st.tuples(
        st.floats(min_value=1.0, max_value=10.0),
        st.floats(min_value=1.0, max_value=10.0),
    )
)
def test_feasible_frequency_set_monotone_in_degradation_bound(bounds):
    """Relaxing the degradation bound can only grow the feasible set."""
    lo, hi = sorted(bounds)
    sweep = _virtualized_sweep()
    for _, rows in sweep.group_by("workload_name").items():
        degradation = rows.column("degradation")
        frequencies = rows.column("frequency_hz")
        feasible_lo = set(frequencies[degradation <= lo + 1e-9])
        feasible_hi = set(frequencies[degradation <= hi + 1e-9])
        assert feasible_lo <= feasible_hi
        # The floor is therefore non-increasing in the bound.
        floor_lo = rows.qos_floor(lo)
        floor_hi = rows.qos_floor(hi)
        if floor_lo is not None:
            assert floor_hi is not None and floor_hi <= floor_lo


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_sampled_points_match_context_evaluation(data):
    """Sweep rows are exactly the per-point context evaluations."""
    sweep = _virtualized_sweep()
    index = data.draw(st.integers(min_value=0, max_value=len(sweep) - 1))
    record = sweep.record(index)
    spec = get_scenario("consolidation_oversubscribe")
    workload = spec.workloads()[record.workload_name]
    fresh = ScenarioRunner().resolve(spec)
    context_record = _CONTEXT_CACHE.setdefault(
        "context", _fresh_context(fresh)
    ).evaluate(workload, record.frequency_hz)
    assert context_record == record


_SWEEP_CACHE = {}
_CONTEXT_CACHE = {}


def _virtualized_sweep() -> SweepResult:
    # Hypothesis re-invokes the test many times; compute the sweep once.
    if "sweep" not in _SWEEP_CACHE:
        _SWEEP_CACHE["sweep"] = (
            ScenarioRunner().run("consolidation_oversubscribe").sweep
        )
    return _SWEEP_CACHE["sweep"]


def _fresh_context(spec):
    from repro.sweep.context import ModelContext

    return ModelContext(
        spec.configuration(), degradation_bound=spec.degradation_bound
    )
