"""Tests for the design-space exploration engine and report rendering."""

import pytest

from repro.core.config import default_server
from repro.core.report import render_operating_points, render_summary
from repro.technology.a57_model import BodyBiasPolicy
from repro.technology.process import BULK_28NM, FDSOI_28NM_FBB
from repro.utils.units import ghz, mhz
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import DATA_SERVING, WEB_SEARCH, scale_out_workloads


# Session-scoped in tests/conftest.py: the explorer's model caches are
# shared with every other module probing the default server.


@pytest.fixture
def explorer(default_explorer):
    return default_explorer


def test_evaluate_produces_consistent_record(explorer):
    record = explorer.evaluate(WEB_SEARCH, ghz(1))
    assert record.workload_name == "Web Search"
    assert record.frequency_hz == pytest.approx(ghz(1))
    assert record.core_power < record.soc_power < record.server_power
    assert record.cores_efficiency > record.soc_efficiency > record.server_efficiency
    assert record.latency_seconds is not None
    assert record.degradation is None


def test_evaluate_vm_record_has_degradation(explorer):
    record = explorer.evaluate(VMS_LOW_MEM, ghz(1))
    assert record.degradation is not None
    assert record.latency_seconds is None


def test_explore_covers_grid_for_all_workloads(explorer):
    workloads = list(scale_out_workloads().values())
    records = explorer.explore(workloads, [mhz(500), ghz(1), ghz(2)])
    assert len(records) == len(workloads) * 3


def test_summary_contains_optima_and_floor(explorer):
    summary = explorer.summarize(DATA_SERVING)
    assert summary.qos_floor_hz is not None
    assert set(summary.optimal_frequency_by_scope) == {"cores", "soc", "server"}
    assert summary.best_qos_respecting_frequency is not None
    assert summary.best_qos_respecting_frequency >= summary.qos_floor_hz


def test_best_qos_respecting_point_meets_qos(explorer):
    summary = explorer.summarize(WEB_SEARCH)
    record = explorer.evaluate(WEB_SEARCH, summary.best_qos_respecting_frequency)
    assert record.meets_qos


def test_summarize_all(explorer):
    summaries = explorer.summarize_all(scale_out_workloads().values())
    assert len(summaries) == 4


def test_compare_technologies_orders_power(explorer):
    configurations = {
        "bulk": default_server().with_technology(BULK_28NM),
        "fdsoi": default_server(),
        "fdsoi-fbb": default_server().with_technology(
            FDSOI_28NM_FBB, BodyBiasPolicy.OPTIMAL
        ),
    }
    results = explorer.compare_technologies(WEB_SEARCH, configurations, ghz(1))
    assert set(results) == {"bulk", "fdsoi", "fdsoi-fbb"}
    assert results["bulk"].core_power > results["fdsoi"].core_power
    assert results["fdsoi"].core_power >= results["fdsoi-fbb"].core_power
    # Throughput is technology independent (same frequency).
    assert results["bulk"].chip_uips == pytest.approx(results["fdsoi"].chip_uips)


def test_compare_technologies_skips_unreachable(explorer):
    configurations = {"bulk": default_server().with_technology(BULK_28NM)}
    results = explorer.compare_technologies(WEB_SEARCH, configurations, 3.4e9)
    assert results == {}


def test_meets_qos_flag_false_at_very_low_frequency(explorer):
    record = explorer.evaluate(DATA_SERVING, mhz(100))
    assert not record.meets_qos


def test_render_operating_points_table(explorer):
    records = [explorer.evaluate(WEB_SEARCH, ghz(1)), explorer.evaluate(WEB_SEARCH, ghz(2))]
    text = render_operating_points(records)
    assert "Web Search" in text
    assert "1000" in text and "2000" in text


def test_render_summary_table(explorer):
    text = render_summary([explorer.summarize(DATA_SERVING)])
    assert "Data Serving" in text
    assert "QoS floor" in text
