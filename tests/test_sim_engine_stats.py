"""Tests for the event engine, statistics and SMARTS sampling."""

import pytest

from repro.sim.engine import EventQueue, Simulator
from repro.sim.sampling import SmartsSampler
from repro.sim.statistics import SampleStatistics, UipsMeasurement, confidence_interval


# -- event engine -------------------------------------------------------------------


def test_events_processed_in_time_order():
    simulator = Simulator()
    order = []
    simulator.schedule(5.0, lambda s: order.append("late"))
    simulator.schedule(1.0, lambda s: order.append("early"))
    simulator.run()
    assert order == ["early", "late"]


def test_simultaneous_events_preserve_insertion_order():
    simulator = Simulator()
    order = []
    simulator.schedule(1.0, lambda s: order.append("first"))
    simulator.schedule(1.0, lambda s: order.append("second"))
    simulator.run()
    assert order == ["first", "second"]


def test_callbacks_can_schedule_followups():
    simulator = Simulator()
    seen = []

    def first(sim):
        seen.append(sim.now)
        sim.schedule(2.0, lambda s: seen.append(s.now))

    simulator.schedule(1.0, first)
    simulator.run()
    assert seen == [1.0, 3.0]


def test_run_until_stops_early():
    simulator = Simulator()
    seen = []
    simulator.schedule(1.0, lambda s: seen.append(1))
    simulator.schedule(10.0, lambda s: seen.append(10))
    simulator.run(until=5.0)
    assert seen == [1]
    assert simulator.now == 5.0


def test_cannot_schedule_in_the_past():
    simulator = Simulator()
    simulator.schedule(1.0, lambda s: None)
    simulator.run()
    with pytest.raises(ValueError):
        simulator.schedule_at(0.5, lambda s: None)


def test_non_finite_event_times_are_rejected():
    """NaN/inf times would corrupt heap ordering nondeterministically."""
    queue = EventQueue()
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError):
            queue.push(bad, lambda s: None)
    simulator = Simulator()
    with pytest.raises(ValueError):
        simulator.schedule(float("nan"), lambda s: None)
    with pytest.raises(ValueError):
        simulator.schedule_at(float("inf"), lambda s: None)


def test_tie_breaking_is_fifo_across_interleaved_pushes_and_pops():
    """Same-time events run in insertion order, even when scheduled mid-run."""
    simulator = Simulator()
    order = []

    def spawner(sim):
        order.append("spawner")
        # Scheduled at the same time as the already-queued "sibling"
        # events; FIFO tie-breaking must run them after the siblings.
        sim.schedule(0.0, lambda s: order.append("child-a"))
        sim.schedule(0.0, lambda s: order.append("child-b"))

    simulator.schedule(1.0, spawner)
    simulator.schedule(1.0, lambda s: order.append("sibling-1"))
    simulator.schedule(1.0, lambda s: order.append("sibling-2"))
    simulator.run()
    assert order == ["spawner", "sibling-1", "sibling-2", "child-a", "child-b"]


def test_event_order_reproducible_across_runs():
    """Two identical schedules drain in the identical order."""

    def drain():
        simulator = Simulator()
        order = []
        for index in range(20):
            time = float(index % 5)
            simulator.schedule(
                time, lambda s, i=index: order.append(i), label=f"e{index}"
            )
        simulator.run()
        return order

    assert drain() == drain()


def test_empty_queue_pop_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()


# -- statistics ---------------------------------------------------------------------


def test_confidence_interval_of_constant_sample_is_zero_width():
    mean, half_width = confidence_interval([2.0, 2.0, 2.0, 2.0])
    assert mean == pytest.approx(2.0)
    assert half_width == pytest.approx(0.0)


def test_confidence_interval_single_value():
    mean, half_width = confidence_interval([3.0])
    assert mean == 3.0
    assert half_width == 0.0


def test_confidence_interval_empty_rejected():
    with pytest.raises(ValueError):
        confidence_interval([])


def test_sample_statistics_relative_error():
    statistics = SampleStatistics.from_values([1.0, 1.02, 0.98, 1.01, 0.99] * 10)
    assert statistics.relative_error < 0.02
    assert statistics.meets_error_target()


def test_uips_measurement_scaling():
    measurement = UipsMeasurement(frequency_hz=1.0e9, uipc=0.5, core_count=36)
    assert measurement.core_uips == pytest.approx(0.5e9)
    assert measurement.chip_uips == pytest.approx(18e9)


# -- SMARTS sampling -----------------------------------------------------------------


def test_sampler_converges_quickly_on_low_variance():
    sampler = SmartsSampler(initial_units=8, max_units=50)
    result = sampler.run(lambda index: 1.0 + 0.001 * (index % 2))
    assert result.converged
    assert len(result.values) == 8


def test_sampler_adds_units_for_high_variance():
    sampler = SmartsSampler(initial_units=8, max_units=40, error_target=0.01)
    values = [1.0, 5.0, 0.2, 3.0, 7.0, 0.5, 2.0, 9.0]
    result = sampler.run(lambda index: values[index % len(values)])
    assert len(result.values) > 8


def test_sampler_respects_max_units():
    sampler = SmartsSampler(initial_units=4, max_units=10, error_target=0.0001)
    result = sampler.run(lambda index: float(index % 7))
    assert len(result.values) <= 10
    assert not result.converged


def test_sampler_rejects_bad_budget():
    with pytest.raises(ValueError):
        SmartsSampler(initial_units=10, max_units=5)
