"""Tests for the fleet routing policies."""

import pytest

from repro.fleet import (
    ROUTERS,
    LeastLoadedRouting,
    NodeView,
    PackRouting,
    RoundRobinRouting,
    SpreadRouting,
    router_by_name,
)

CAP = 1.0e10


def make_view(node_id, serving=True, booting=False, previous_capacity=CAP):
    return NodeView(
        node_id=node_id,
        serving=serving,
        booting=booting,
        nominal_capacity_uips=CAP,
        previous_capacity_uips=previous_capacity,
    )


def fleet(*states):
    """Node views from state letters: s=serving, b=booting, o=off."""
    return [
        make_view(i, serving=state == "s", booting=state == "b")
        for i, state in enumerate(states)
    ]


# -- registry ---------------------------------------------------------------------------


def test_registry_order_and_names():
    assert list(ROUTERS) == ["round_robin", "least_loaded", "pack", "spread"]
    for name in ROUTERS:
        assert router_by_name(name).name == name


def test_unknown_routing_lists_known_ones():
    with pytest.raises(ValueError, match="unknown routing policy 'random'") as error:
        router_by_name("random")
    for known in ROUTERS:
        assert known in str(error.value)


# -- conservation (every policy) --------------------------------------------------------


@pytest.mark.parametrize("name", list(ROUTERS))
@pytest.mark.parametrize("mass", [0.0, 0.4, 1.7, 3.0])
def test_every_policy_conserves_mass(name, mass):
    nodes = fleet("s", "s", "s", "o")
    shares = router_by_name(name).assign(mass, nodes)
    assert len(shares) == len(nodes)
    assert sum(shares) == pytest.approx(mass, abs=1e-12)
    assert all(share >= 0.0 for share in shares)
    assert shares[3] == 0.0  # off nodes never receive load


# -- round robin ------------------------------------------------------------------------


def test_round_robin_splits_evenly_over_active_nodes():
    shares = RoundRobinRouting().assign(1.2, fleet("s", "s", "s"))
    assert shares == (pytest.approx(0.4), pytest.approx(0.4), pytest.approx(0.4))


def test_round_robin_is_oblivious_to_booting():
    # The DNS-style baseline routes to powered-on nodes whether or not
    # they can serve yet; the booting node's share is lost load.
    shares = RoundRobinRouting().assign(0.9, fleet("s", "s", "b"))
    assert shares == (0.3, 0.3, 0.3)


# -- least loaded -----------------------------------------------------------------------


def test_least_loaded_weights_by_previous_capacity():
    nodes = [
        make_view(0, previous_capacity=0.25 * CAP),
        make_view(1, previous_capacity=0.75 * CAP),
    ]
    shares = LeastLoadedRouting().assign(1.0, nodes)
    assert shares[0] == pytest.approx(0.25)
    assert shares[1] == pytest.approx(0.75)


def test_least_loaded_skips_booting_nodes():
    shares = LeastLoadedRouting().assign(1.0, fleet("s", "b", "s"))
    assert shares[1] == 0.0
    assert shares[0] == shares[2] == pytest.approx(0.5)


def test_least_loaded_even_split_on_degenerate_previous_capacity():
    nodes = [
        make_view(0, previous_capacity=0.0),
        make_view(1, previous_capacity=0.0),
    ]
    shares = LeastLoadedRouting().assign(0.8, nodes)
    assert shares == (0.4, 0.4)


# -- pack -------------------------------------------------------------------------------


def test_pack_fills_in_index_order():
    shares = PackRouting(fill_fraction=0.5).assign(1.2, fleet("s", "s", "s", "s"))
    assert shares[0] == pytest.approx(0.5)
    assert shares[1] == pytest.approx(0.5)
    assert shares[2] == pytest.approx(0.2)
    assert shares[3] == 0.0


def test_pack_distributes_overflow_beyond_fill_evenly():
    shares = PackRouting(fill_fraction=0.75).assign(2.0, fleet("s", "s"))
    # 0.75 + 0.75 packed, 0.5 overflow split evenly.
    assert shares[0] == pytest.approx(1.0)
    assert shares[1] == pytest.approx(1.0)


def test_pack_skips_booting_and_off_nodes():
    shares = PackRouting(fill_fraction=0.75).assign(0.6, fleet("b", "s", "o"))
    assert shares == (0.0, 0.6, 0.0)


@pytest.mark.parametrize("fill", [0.0, -0.1, 1.5])
def test_pack_rejects_bad_fill_fraction(fill):
    with pytest.raises(ValueError):
        PackRouting(fill_fraction=fill)


# -- spread -----------------------------------------------------------------------------


def test_spread_splits_evenly_over_serving_nodes_only():
    shares = SpreadRouting().assign(0.9, fleet("s", "b", "s"))
    assert shares == (0.45, 0.0, 0.45)


def test_pack_never_uses_more_nodes_than_spread():
    nodes = fleet("s", "s", "s", "s", "s")
    pack, spread = PackRouting(), SpreadRouting()
    for mass in (0.1, 0.5, 1.0, 2.2, 3.75, 5.0):
        packed = pack.assign(mass, nodes)
        spread_shares = spread.assign(mass, nodes)
        assert sum(packed) == pytest.approx(sum(spread_shares))
        used_pack = sum(1 for share in packed if share > 0)
        used_spread = sum(1 for share in spread_shares if share > 0)
        assert used_pack <= used_spread


# -- degenerate fleets ------------------------------------------------------------------


@pytest.mark.parametrize("name", list(ROUTERS))
def test_all_booting_falls_back_to_active_nodes(name):
    # Load must go somewhere; with no serving node the active set is
    # the only honest target (round_robin lands there anyway).
    shares = router_by_name(name).assign(1.0, fleet("b", "b"))
    assert sum(shares) == pytest.approx(1.0)


@pytest.mark.parametrize("name", list(ROUTERS))
def test_no_active_node_is_an_error(name):
    with pytest.raises(ValueError, match="no active node"):
        router_by_name(name).assign(1.0, fleet("o", "o"))
