"""Tests for nodes, autoscaling, economics and the fleet simulator."""

import json
import math

import numpy as np
import pytest

from repro.dvfs import LoadTrace, governor_by_name
from repro.fleet import (
    Autoscaler,
    CostModel,
    FleetResult,
    FleetSimulator,
    NodeState,
    ServerNode,
)
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import WEB_SEARCH


@pytest.fixture(scope="module")
def websearch_fleet(default_context):
    """A 4-server always-on Web Search fleet on the shared context."""
    return FleetSimulator(default_context, WEB_SEARCH, fleet_size=4)


# -- server node ------------------------------------------------------------------------


def test_node_state_transitions(websearch_simulator):
    node = ServerNode(
        node_id=0,
        governor=governor_by_name("qos_tracker"),
        simulator=websearch_simulator,
        serving=False,
    )
    assert node.state is NodeState.OFF
    node.wake(boot_steps=2)
    assert node.state is NodeState.BOOTING
    node.advance_boot()
    assert node.state is NodeState.BOOTING
    node.advance_boot()
    assert node.state is NodeState.SERVING
    node.shut_down()
    assert node.state is NodeState.OFF


def test_node_instant_wake(websearch_simulator):
    node = ServerNode(
        node_id=0,
        governor=governor_by_name("qos_tracker"),
        simulator=websearch_simulator,
        serving=False,
    )
    node.wake(boot_steps=0)
    assert node.state is NodeState.SERVING


def test_node_wake_resets_dvfs_history(websearch_simulator):
    node = ServerNode(
        node_id=0,
        governor=governor_by_name("powersave"),
        simulator=websearch_simulator,
    )
    node.step(utilization=0.1, step_seconds=60.0, off_power_w=0.0)
    platform = websearch_simulator.platform
    assert node.previous_frequency_hz == platform.min_frequency_hz
    node.shut_down()
    node.wake(boot_steps=0)
    assert node.previous_frequency_hz == platform.nominal_frequency_hz


def test_node_invalid_transitions(websearch_simulator):
    node = ServerNode(
        node_id=3,
        governor=governor_by_name("qos_tracker"),
        simulator=websearch_simulator,
    )
    with pytest.raises(ValueError, match="not off"):
        node.wake(boot_steps=1)
    node.shut_down()
    with pytest.raises(ValueError, match="already off"):
        node.shut_down()


def test_off_node_draws_off_power_and_drops_load(websearch_simulator):
    node = ServerNode(
        node_id=0,
        governor=governor_by_name("qos_tracker"),
        simulator=websearch_simulator,
        serving=False,
    )
    step = node.step(utilization=0.2, step_seconds=60.0, off_power_w=5.0)
    assert step.power_w == 5.0
    assert step.energy_j == pytest.approx(300.0)
    assert step.served_uips == 0.0
    assert step.violation  # routed load was dropped
    idle = node.step(utilization=0.0, step_seconds=60.0, off_power_w=5.0)
    assert not idle.violation


def test_booting_node_draws_lowest_vf_power(websearch_simulator):
    node = ServerNode(
        node_id=0,
        governor=governor_by_name("qos_tracker"),
        simulator=websearch_simulator,
        serving=False,
    )
    node.wake(boot_steps=3)
    step = node.step(utilization=0.0, step_seconds=60.0, off_power_w=0.0)
    platform = websearch_simulator.platform
    expected = websearch_simulator.record(platform.min_frequency_hz).server_power
    assert step.power_w == expected
    assert math.isnan(step.frequency_hz)
    assert step.served_uips == 0.0


# -- autoscaler -------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"low": 0.0, "high": 0.8},
        {"low": 0.8, "high": 0.8},
        {"low": 0.3, "high": 1.2},
        {"min_servers": 0},
        {"wake_steps": -1},
        {"wake_energy_j": -1.0},
    ],
)
def test_autoscaler_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        Autoscaler(**kwargs)


def test_desired_active_targets_band_midpoint():
    scaler = Autoscaler(low=0.4, high=0.8, min_servers=1)
    assert scaler.target == pytest.approx(0.6)
    assert scaler.desired_active(0.0, fleet_size=8) == 1
    assert scaler.desired_active(1.2, fleet_size=8) == 2
    assert scaler.desired_active(3.0, fleet_size=8) == 5
    assert scaler.desired_active(100.0, fleet_size=8) == 8  # clamped


def make_nodes(simulator, states):
    nodes = [
        ServerNode(
            node_id=i,
            governor=governor_by_name("qos_tracker"),
            simulator=simulator,
            serving=state == "s",
        )
        for i, state in enumerate(states)
    ]
    for node, state in zip(nodes, states):
        if state == "b":
            node.wake(boot_steps=2)
    return nodes


def test_autoscaler_wakes_lowest_id_off_nodes(websearch_simulator):
    scaler = Autoscaler(low=0.35, high=0.75, wake_steps=1)
    nodes = make_nodes(websearch_simulator, "sooo")
    decision = scaler.scale(mass=1.5, nodes=nodes)  # util 1.5 > high
    assert decision.woken == (1, 2)  # ceil(1.5 / 0.55) = 3 active
    assert decision.wake_count == 2
    assert nodes[1].state is NodeState.BOOTING
    assert nodes[3].state is NodeState.OFF


def test_autoscaler_parks_highest_id_serving_nodes(websearch_simulator):
    scaler = Autoscaler(low=0.35, high=0.75)
    nodes = make_nodes(websearch_simulator, "ssss")
    decision = scaler.scale(mass=0.5, nodes=nodes)  # util 0.125 < low
    assert decision.woken == ()
    assert decision.parked == (3, 2, 1)  # down to ceil(0.5/0.55) = 1
    assert nodes[0].state is NodeState.SERVING


def test_autoscaler_boot_grace_keeps_in_flight_boots(websearch_simulator):
    scaler = Autoscaler(low=0.35, high=0.75)
    nodes = make_nodes(websearch_simulator, "ssb")
    decision = scaler.scale(mass=0.6, nodes=nodes)  # util 0.3 < low
    # desired = ceil(0.6 / 0.55) = 2 of 3 active, but desired still
    # covers the 2 serving nodes: the in-flight boot is left alone
    # instead of being parked (and re-woken, double-charging wake
    # energy) on a one-step dip.
    assert decision.parked == ()
    assert nodes[2].state is NodeState.BOOTING
    assert nodes[1].state is NodeState.SERVING
    assert nodes[0].state is NodeState.SERVING


def test_autoscaler_parks_booting_nodes_first_on_a_deep_dip(
    websearch_simulator,
):
    scaler = Autoscaler(low=0.35, high=0.75)
    nodes = make_nodes(websearch_simulator, "ssb")
    decision = scaler.scale(mass=0.2, nodes=nodes)  # util 0.1 < low
    # desired = ceil(0.2 / 0.55) = 1 < 2 serving: a real scale-down.
    # The booting node goes first (it serves nothing yet), then the
    # highest-id serving node; node 0 stays up.
    assert decision.parked == (2, 1)
    assert nodes[2].state is NodeState.OFF
    assert nodes[1].state is NodeState.OFF
    assert nodes[0].state is NodeState.SERVING


def test_autoscaler_holds_inside_the_band(websearch_simulator):
    scaler = Autoscaler(low=0.35, high=0.75)
    nodes = make_nodes(websearch_simulator, "sso")
    decision = scaler.scale(mass=1.0, nodes=nodes)  # util 0.5 in band
    assert decision.woken == () and decision.parked == ()


def test_autoscaler_respects_min_servers(websearch_simulator):
    scaler = Autoscaler(low=0.35, high=0.75, min_servers=2)
    nodes = make_nodes(websearch_simulator, "sss")
    scaler.scale(mass=0.0, nodes=nodes)
    assert sum(1 for n in nodes if n.state is NodeState.SERVING) == 2


# -- fleet simulator --------------------------------------------------------------------


def test_fleet_rejects_bad_construction(default_context):
    with pytest.raises(ValueError, match="fleet_size"):
        FleetSimulator(default_context, WEB_SEARCH, fleet_size=0)
    with pytest.raises(ValueError, match="min_servers"):
        FleetSimulator(
            default_context,
            WEB_SEARCH,
            fleet_size=2,
            autoscaler=Autoscaler(min_servers=3),
        )
    with pytest.raises(ValueError, match="off_power_w"):
        FleetSimulator(
            default_context, WEB_SEARCH, fleet_size=2, off_power_w=-1.0
        )


def test_fleet_energy_column_is_sum_of_node_energies(websearch_fleet, diurnal_trace):
    result = websearch_fleet.run(diurnal_trace, "spread")
    total = sum(
        result.node_column(node_id, "energy_j") for node_id in result.node_ids
    )
    np.testing.assert_array_equal(result.column("energy_j"), total)
    assert result.total_energy_j == pytest.approx(
        sum(result.node_energy_j(node_id) for node_id in result.node_ids),
        rel=1e-12,
    )


def test_wake_energy_is_charged_to_the_woken_node(default_context, diurnal_trace):
    base = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=4,
        autoscaler=Autoscaler(wake_energy_j=0.0),
    ).run(diurnal_trace, "pack")
    charged = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=4,
        autoscaler=Autoscaler(wake_energy_j=1000.0),
    ).run(diurnal_trace, "pack")
    assert charged.wake_count == base.wake_count
    assert charged.wake_count > 0
    assert charged.total_energy_j == pytest.approx(
        base.total_energy_j + 1000.0 * charged.wake_count, rel=1e-12
    )


def test_off_power_accrues_to_parked_nodes(default_context, diurnal_trace):
    dark = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=4, autoscaler=Autoscaler()
    ).run(diurnal_trace, "pack")
    trickle = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=4,
        autoscaler=Autoscaler(),
        off_power_w=10.0,
    ).run(diurnal_trace, "pack")
    off_steps = int(
        (4 - dark.column("active_servers")).sum()
    )  # node-steps spent off
    assert off_steps > 0
    assert trickle.total_energy_j == pytest.approx(
        dark.total_energy_j + 10.0 * off_steps * diurnal_trace.step_seconds,
        rel=1e-12,
    )


def test_autoscaled_fleet_parks_the_night_trough(default_context, diurnal_trace):
    result = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=8, autoscaler=Autoscaler()
    ).run(diurnal_trace, "pack")
    serving = result.column("serving_servers")
    assert serving.min() < serving.max() <= 8
    assert result.wake_count > 0
    assert result.mean_active_servers < 8.0


def test_always_on_fleet_never_scales(websearch_fleet, diurnal_trace):
    result = websearch_fleet.run(diurnal_trace, "round_robin")
    assert not result.autoscaled
    assert result.wake_count == 0
    np.testing.assert_array_equal(
        result.column("serving_servers"), np.full(len(result), 4)
    )


def test_compare_rejects_duplicate_routings(websearch_fleet, diurnal_trace):
    with pytest.raises(ValueError, match="duplicate routing"):
        websearch_fleet.compare(diurnal_trace, ["pack", "pack"])


def test_run_rejects_unknown_routing(websearch_fleet, diurnal_trace):
    with pytest.raises(ValueError, match="unknown routing policy"):
        websearch_fleet.run(diurnal_trace, "random")


def test_compare_defaults_to_every_registered_routing(
    websearch_fleet, bursty_trace
):
    results = websearch_fleet.compare(bursty_trace.head(8))
    assert list(results) == ["round_robin", "least_loaded", "pack", "spread"]


# -- queueing tails ---------------------------------------------------------------------


def test_tail_latency_exceeds_base_latency(websearch_fleet, diurnal_trace):
    result = websearch_fleet.run(diurnal_trace, "spread")
    tails = result.column("tail_latency_s")
    finite = tails[np.isfinite(tails)]
    assert finite.size > 0
    # The queueing model only ever adds contention on top of the
    # operating point's near-zero-contention 99th percentile.
    assert (finite > 0.0).all()
    assert result.max_tail_latency_s == pytest.approx(float(finite.max()))


def test_vm_fleet_has_no_queueing_tail(default_context, diurnal_trace):
    result = FleetSimulator(
        default_context, VMS_LOW_MEM, fleet_size=2
    ).run(diurnal_trace, "spread")
    assert np.isnan(result.column("tail_latency_s")).all()
    assert result.queue_violation_count == 0
    assert result.max_tail_latency_s is None
    assert result.total_requests is None
    assert result.energy_per_request_j is None
    assert result.mean_qps is None


def test_saturated_queue_is_reported(default_context):
    # A full-throttle step leaves zero queueing headroom at the chosen
    # operating point: the M/M/1 layer flags it as saturated.
    trace = LoadTrace.constant(1.0, steps=3, step_seconds=60.0)
    result = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=2, governor="performance"
    ).run(trace, "spread")
    assert result.saturated_step_count == len(trace)
    rows = result.to_dicts()
    assert rows[0]["tail_latency_s"] == "saturated"
    json.dumps(rows)  # strict-JSON serialisable


# -- fleet result validation ------------------------------------------------------------


def test_result_accessors_and_errors(websearch_fleet, diurnal_trace):
    result = websearch_fleet.run(diurnal_trace, "pack")
    assert len(result) == len(diurnal_trace)
    assert result.node_ids == [0, 1, 2, 3]
    assert result.duration_seconds == pytest.approx(
        diurnal_trace.duration_seconds
    )
    with pytest.raises(KeyError, match="unknown fleet column"):
        result.column("nope")
    with pytest.raises(KeyError, match="unknown node 9"):
        result.node_column(9, "energy_j")
    with pytest.raises(KeyError, match="unknown node column"):
        result.node_column(0, "nope")
    summary = result.summary()
    assert summary["routing"] == "pack"
    assert summary["fleet_size"] == 4
    json.dumps(summary)


def test_result_validates_column_shapes(websearch_fleet, diurnal_trace):
    result = websearch_fleet.run(diurnal_trace, "pack")
    columns = {name: result.column(name) for name in result._columns}
    nodes = {
        node_id: {
            name: result.node_column(node_id, name)
            for name in result._node_columns[node_id]
        }
        for node_id in result.node_ids
    }

    def build(columns=columns, nodes=nodes, fleet_size=4):
        return FleetResult(
            routing_name="pack",
            governor_name="qos_tracker",
            workload_name="Web Search",
            trace_name="diurnal",
            fleet_size=fleet_size,
            step_seconds=1800.0,
            instructions_per_request=WEB_SEARCH.instructions_per_request,
            autoscaled=False,
            columns=columns,
            node_columns=nodes,
        )

    with pytest.raises(ValueError, match="missing fleet columns"):
        build(columns={k: v for k, v in columns.items() if k != "energy_j"})
    with pytest.raises(ValueError, match="unequal lengths"):
        build(columns={**columns, "energy_j": columns["energy_j"][:-1]})
    with pytest.raises(ValueError, match="node tables for 5 nodes"):
        build(fleet_size=5)
    with pytest.raises(ValueError, match="missing columns"):
        build(
            nodes={
                **nodes,
                0: {k: v for k, v in nodes[0].items() if k != "power_w"},
            }
        )
    with pytest.raises(ValueError, match="do not match"):
        build(
            nodes={**nodes, 0: {**nodes[0], "power_w": nodes[0]["power_w"][:-1]}}
        )


# -- cost model -------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"energy_price_per_kwh": 0.0},
        {"server_capex": -1.0},
        {"amortization_years": 0.0},
        {"pue": 0.9},
    ],
)
def test_cost_model_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        CostModel(**kwargs)


def test_energy_cost_arithmetic():
    model = CostModel(energy_price_per_kwh=0.10, pue=1.5)
    # 1 kWh of IT energy at PUE 1.5 meters 1.5 kWh.
    assert model.energy_cost(3.6e6) == pytest.approx(0.15)


def test_rollup_capex_covers_owned_servers(websearch_fleet, diurnal_trace):
    model = CostModel()
    result = websearch_fleet.run(diurnal_trace, "spread")
    rollup = model.rollup(result)
    expected_capex = (
        4 * model.capex_rate_per_server_second * result.duration_seconds
    )
    assert rollup["capex_cost"] == pytest.approx(expected_capex)
    assert rollup["total_cost"] == pytest.approx(
        rollup["energy_cost"] + rollup["capex_cost"]
    )
    assert rollup["mean_qps"] == pytest.approx(result.mean_qps)
    assert rollup["joules_per_request"] == pytest.approx(
        result.energy_per_request_j
    )
    assert rollup["cost_per_qps_year"] == pytest.approx(
        rollup["annual_tco"] / rollup["mean_qps"]
    )
    json.dumps(rollup)


def test_rollup_request_economics_undefined_for_vms(default_context, diurnal_trace):
    result = FleetSimulator(default_context, VMS_LOW_MEM, fleet_size=2).run(
        diurnal_trace, "spread"
    )
    rollup = CostModel().rollup(result)
    assert rollup["mean_qps"] is None
    assert rollup["cost_per_qps_year"] is None
    assert rollup["cost_per_million_requests"] is None
    assert rollup["joules_per_request"] is None
    assert rollup["joules_per_giga_instruction"] > 0


# -- simulator guard rails --------------------------------------------------------------


def test_run_accepts_policy_and_governor_instances(default_context, diurnal_trace):
    from repro.fleet import SpreadRouting

    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=2,
        governor=governor_by_name("powersave"),
    )
    assert simulator.governor_name == "powersave"
    result = simulator.run(diurnal_trace.head(4), SpreadRouting())
    assert result.routing_name == "spread"
    assert result.governor_name == "powersave"


def test_non_conserving_routing_is_rejected(websearch_fleet, diurnal_trace):
    from repro.fleet import RoutingPolicy

    class Lossy(RoutingPolicy):
        name = "lossy"

        def assign(self, mass, nodes):
            return tuple(0.0 for _ in nodes)

    with pytest.raises(ValueError, match="does not conserve load"):
        websearch_fleet.run(diurnal_trace, Lossy())


def test_wrong_share_count_is_rejected(websearch_fleet, diurnal_trace):
    from repro.fleet import RoutingPolicy

    class Short(RoutingPolicy):
        name = "short"

        def assign(self, mass, nodes):
            return (mass,)

    with pytest.raises(ValueError, match="returned 1 shares for 4 nodes"):
        websearch_fleet.run(diurnal_trace, Short())


def test_mm1_tail_is_used_for_cv_one_services(default_context, diurnal_trace):
    import dataclasses

    smooth = dataclasses.replace(
        WEB_SEARCH, name="Web Search (smooth)", service_time_cv=1.0
    )
    result = FleetSimulator(default_context, smooth, fleet_size=2).run(
        diurnal_trace, "spread"
    )
    tails = result.column("tail_latency_s")
    assert np.isfinite(tails).any()
