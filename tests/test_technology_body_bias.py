"""Tests for the body-bias model."""

import pytest

from repro.technology.body_bias import (
    BodyBiasModel,
    RBB_SLEEP_LEAKAGE_REDUCTION,
)
from repro.technology.process import BULK_28NM, FDSOI_28NM


@pytest.fixture
def model():
    return BodyBiasModel(FDSOI_28NM)


def test_threshold_shift_is_85mv_per_volt(model):
    assert model.threshold_shift(1.0) == pytest.approx(-0.085)
    assert model.threshold_shift(-1.0) == pytest.approx(0.085)


def test_effective_threshold_under_forward_bias(model):
    assert model.effective_threshold(2.0) == pytest.approx(
        FDSOI_28NM.threshold_voltage - 0.17
    )


def test_bias_outside_range_rejected(model):
    with pytest.raises(ValueError):
        model.threshold_shift(3.5)


def test_usable_range_respects_variation_reserve(model):
    assert model.usable_forward_bias == pytest.approx(3.0 * 0.85)
    assert model.usable_reverse_bias == pytest.approx(3.0 * 0.85)


def test_clamp_limits_bias(model):
    assert model.clamp(10.0) == pytest.approx(model.usable_forward_bias)
    assert model.clamp(-10.0) == pytest.approx(-model.usable_reverse_bias)
    assert model.clamp(0.5) == pytest.approx(0.5)


def test_transition_time_calibrated_to_a9_datapoint(model):
    # 5mm^2 Cortex-A9 switching 0V -> 1.3V in under 1us.
    assert model.transition_time(area_mm2=5.0, bias_swing=1.3) < 1.0e-6


def test_transition_time_scales_with_area(model):
    small = model.transition_time(area_mm2=1.0, bias_swing=1.0)
    large = model.transition_time(area_mm2=10.0, bias_swing=1.0)
    assert large == pytest.approx(10.0 * small)


def test_sleep_leakage_reduction_order_of_magnitude(model):
    assert model.sleep_leakage_fraction() == pytest.approx(
        1.0 / RBB_SLEEP_LEAKAGE_REDUCTION
    )


def test_partial_rbb_gives_partial_reduction(model):
    half = model.sleep_leakage_fraction(model.usable_reverse_bias / 2.0)
    assert 1.0 / RBB_SLEEP_LEAKAGE_REDUCTION < half < 1.0


def test_bulk_has_no_useful_sleep_mode():
    bulk = BodyBiasModel(BULK_28NM)
    assert bulk.sleep_leakage_fraction() > 0.4


def test_variation_reserve_must_be_fraction():
    with pytest.raises(ValueError):
        BodyBiasModel(FDSOI_28NM, variation_reserve=1.5)
