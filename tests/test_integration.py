"""End-to-end integration tests across the library's layers."""

import pytest

from repro.core.config import default_server
from repro.core.efficiency import EfficiencyScope
from repro.core.performance import ServerPerformanceModel
from repro.sim.cluster import ClusterSimConfig, ClusterSimulator
from repro.utils.units import ghz, mhz
from repro.workloads.cloudsuite import DATA_SERVING, WEB_SEARCH


def test_detailed_simulator_and_interval_model_agree_on_frequency_trend():
    """Both performance paths must show UIPC rising as frequency falls."""
    analytical = ServerPerformanceModel(default_server())
    ratios = {}
    for label, frequency in (("low", mhz(300)), ("high", ghz(2))):
        config = ClusterSimConfig(
            workload=DATA_SERVING, frequency_hz=frequency, records_per_core=1200
        )
        detailed = ClusterSimulator(config).run()
        interval = analytical.performance(DATA_SERVING, frequency)
        ratios[label] = (detailed.uipc / 4.0, interval.uipc)
    detailed_gain = ratios["low"][0] / ratios["high"][0]
    interval_gain = ratios["low"][1] / ratios["high"][1]
    assert detailed_gain > 1.0
    assert interval_gain > 1.0


def test_detailed_simulator_uipc_within_factor_two_of_interval_model():
    analytical = ServerPerformanceModel(default_server())
    config = ClusterSimConfig(
        workload=WEB_SEARCH, frequency_hz=ghz(1), records_per_core=1500
    )
    detailed_uipc = ClusterSimulator(config).run().uipc / 4.0
    interval_uipc = analytical.performance(WEB_SEARCH, ghz(1)).uipc
    assert 0.4 <= detailed_uipc / interval_uipc <= 2.5


def test_qos_constrained_best_point_is_more_efficient_than_nominal(default_explorer):
    """Running at the QoS-respecting efficiency optimum beats 2GHz."""
    summary = default_explorer.summarize(WEB_SEARCH)
    best = default_explorer.evaluate(WEB_SEARCH, summary.best_qos_respecting_frequency)
    nominal = default_explorer.evaluate(WEB_SEARCH, ghz(2))
    assert best.server_efficiency > nominal.server_efficiency
    assert best.meets_qos


def test_full_stack_power_budget_respected_at_nominal(
    default_explorer, default_configuration
):
    for workload in (DATA_SERVING, WEB_SEARCH):
        record = default_explorer.evaluate(workload, ghz(2))
        assert record.soc_power < default_configuration.power_budget_watts


def test_qos_floor_below_soc_optimum(default_explorer, qos_analyzer):
    """The QoS floor never forces operation above the efficiency optimum."""
    for workload in (DATA_SERVING, WEB_SEARCH):
        floor = qos_analyzer.qos_frequency_floor(workload)
        summary = default_explorer.summarize(workload)
        assert floor <= summary.optimal_frequency_by_scope[EfficiencyScope.SOC.value]


def test_uncore_voltage_scaling_ablation_moves_soc_optimum_down():
    """If the uncore scaled with core voltage, low frequencies get better."""
    from dataclasses import replace

    from repro.core.efficiency import EfficiencyAnalyzer

    baseline = EfficiencyAnalyzer(default_server())
    scaled = EfficiencyAnalyzer(
        replace(default_server(), uncore_voltage_scales_with_core=True)
    )
    baseline_opt = baseline.optimal_frequency(WEB_SEARCH, EfficiencyScope.SOC)
    scaled_opt = scaled.optimal_frequency(WEB_SEARCH, EfficiencyScope.SOC)
    assert scaled_opt.frequency_hz <= baseline_opt.frequency_hz
