"""Property-based tests of cross-model invariants.

These check the physical invariants the study relies on, over randomly
drawn operating points and workload characteristics, with hypothesis.
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.core.config import default_server
from repro.core.efficiency import EfficiencyAnalyzer, EfficiencyScope
from repro.core.performance import ServerPerformanceModel
from repro.technology.a57_model import CortexA57PowerModel
from repro.technology.process import FDSOI_28NM
from repro.uarch.core_model import IntervalCoreModel
from repro.workloads.base import WorkloadCharacteristics, WorkloadClass


frequencies = st.floats(min_value=1.5e8, max_value=2.0e9)


def _workload(base_cpi, l1_mpki, llc_fraction, mlp, activity):
    return WorkloadCharacteristics(
        name="random-workload",
        workload_class=WorkloadClass.VIRTUALIZED,
        base_cpi=base_cpi,
        branch_fraction=0.15,
        branch_predictability=0.9,
        l1_mpki=l1_mpki,
        llc_mpki=l1_mpki * llc_fraction,
        memory_level_parallelism=mlp,
        activity_factor=activity,
        write_fraction=0.3,
    )


workloads = st.builds(
    _workload,
    base_cpi=st.floats(min_value=0.4, max_value=1.5),
    l1_mpki=st.floats(min_value=1.0, max_value=60.0),
    llc_fraction=st.floats(min_value=0.05, max_value=1.0),
    mlp=st.floats(min_value=1.0, max_value=6.0),
    activity=st.floats(min_value=0.3, max_value=1.0),
)


@settings(max_examples=25, deadline=None)
@given(frequency=frequencies)
def test_core_power_components_non_negative(frequency):
    model = CortexA57PowerModel(technology=FDSOI_28NM)
    point = model.operating_point(frequency)
    assert point.dynamic_power >= 0.0
    assert point.leakage_power > 0.0
    assert point.vdd >= FDSOI_28NM.min_functional_vdd - 1e-9
    assert point.vdd <= FDSOI_28NM.nominal_vdd + 1e-9


@settings(max_examples=25, deadline=None)
@given(workload=workloads, frequency=frequencies)
def test_uips_never_exceeds_issue_width_times_frequency(workload, frequency):
    model = IntervalCoreModel()
    stack = model.cpi_stack(
        frequency,
        base_cpi=workload.base_cpi,
        branch_fraction=workload.branch_fraction,
        branch_predictability=workload.branch_predictability,
        l1_mpki=workload.l1_mpki,
        llc_mpki=workload.llc_mpki,
        memory_level_parallelism=workload.memory_level_parallelism,
    )
    assert 0.0 < stack.uipc <= model.config.issue_width
    assert stack.total >= workload.base_cpi


@settings(max_examples=20, deadline=None)
@given(workload=workloads, frequency=frequencies)
@example(
    # Regression: a memory-hungry workload whose DRAM demand exceeded the
    # 102.4GB/s channel peak made the server-power scope raise instead of
    # saturating the bandwidth (hypothesis-discovered seed failure).
    workload=_workload(
        base_cpi=0.400390625,
        l1_mpki=42.0,
        llc_fraction=1.0,
        mlp=6.0,
        activity=1.0,
    ),
    frequency=913990701.0,
)
def test_scope_power_ordering_holds_for_random_workloads(workload, frequency):
    analyzer = EfficiencyAnalyzer(default_server())
    cores = analyzer.power(workload, frequency, EfficiencyScope.CORES)
    soc = analyzer.power(workload, frequency, EfficiencyScope.SOC)
    server = analyzer.power(workload, frequency, EfficiencyScope.SERVER)
    assert 0.0 < cores < soc < server


@settings(max_examples=20, deadline=None)
@given(workload=workloads)
def test_throughput_ratio_to_nominal_at_least_frequency_ratio_inverse(workload):
    """Memory latency hiding means slowdown <= frequency ratio."""
    performance = ServerPerformanceModel(default_server())
    slow = 0.25e9
    ratio = performance.throughput_ratio_to_nominal(workload, slow)
    frequency_ratio = default_server().nominal_frequency_hz / slow
    assert 1.0 <= ratio <= frequency_ratio + 1e-9


@settings(max_examples=20, deadline=None)
@given(workload=workloads, frequency=frequencies)
def test_memory_bandwidth_consistent_with_uips(workload, frequency):
    performance = ServerPerformanceModel(default_server())
    point = performance.performance(workload, frequency)
    read_bandwidth = performance.memory_read_bandwidth(workload, frequency)
    expected = workload.llc_mpki / 1000.0 * point.chip_uips * 64
    # The DDR channels saturate: demand beyond the aggregate peak is
    # capped with the read/write mix preserved.
    peak = default_server().memory_organization.peak_bandwidth
    demand = expected * (1.0 + workload.write_fraction)
    if demand > peak:
        expected *= peak / demand
    assert read_bandwidth == pytest.approx(expected)
    write_bandwidth = performance.memory_write_bandwidth(workload, frequency)
    assert read_bandwidth + write_bandwidth <= peak * (1.0 + 1e-9)
