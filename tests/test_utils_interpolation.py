"""Tests for piecewise-linear interpolation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.interpolation import PiecewiseLinear, linspace, monotone_increasing


def test_monotone_increasing_true():
    assert monotone_increasing([1, 2, 2, 3])


def test_monotone_increasing_strict_rejects_equal():
    assert not monotone_increasing([1, 2, 2, 3], strict=True)


def test_monotone_increasing_false():
    assert not monotone_increasing([3, 2, 1])


def test_piecewise_linear_at_knots():
    curve = PiecewiseLinear([0.0, 1.0, 2.0], [0.0, 10.0, 40.0])
    assert curve(0.0) == pytest.approx(0.0)
    assert curve(1.0) == pytest.approx(10.0)
    assert curve(2.0) == pytest.approx(40.0)


def test_piecewise_linear_between_knots():
    curve = PiecewiseLinear([0.0, 1.0], [0.0, 10.0])
    assert curve(0.25) == pytest.approx(2.5)


def test_piecewise_linear_extrapolates():
    curve = PiecewiseLinear([0.0, 1.0], [0.0, 10.0])
    assert curve(2.0) == pytest.approx(20.0)
    assert curve(-1.0) == pytest.approx(-10.0)


def test_piecewise_linear_inverse():
    curve = PiecewiseLinear([0.0, 1.0, 2.0], [0.0, 5.0, 20.0])
    assert curve.inverse(5.0) == pytest.approx(1.0)
    assert curve.inverse(12.5) == pytest.approx(1.5)


def test_piecewise_linear_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        PiecewiseLinear([0.0, 1.0], [1.0])


def test_piecewise_linear_rejects_non_monotone_x():
    with pytest.raises(ValueError):
        PiecewiseLinear([0.0, 0.0, 1.0], [1.0, 2.0, 3.0])


def test_piecewise_linear_domain():
    curve = PiecewiseLinear([1.0, 4.0], [2.0, 3.0])
    assert curve.domain == (1.0, 4.0)


def test_linspace_endpoints():
    values = linspace(0.0, 1.0, 5)
    assert values[0] == 0.0
    assert values[-1] == pytest.approx(1.0)
    assert len(values) == 5


def test_linspace_rejects_single_point():
    with pytest.raises(ValueError):
        linspace(0.0, 1.0, 1)


@given(st.floats(min_value=-5.0, max_value=5.0))
def test_piecewise_linear_is_monotone_for_monotone_knots(x):
    curve = PiecewiseLinear([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 4.0, 9.0])
    # For a curve with increasing knots, evaluating at x and x + delta
    # must preserve ordering.
    assert curve(x) <= curve(x + 0.5) + 1e-12
