"""Tests for plain-text table rendering."""

import pytest

from repro.utils.tables import format_series, format_table


def test_format_table_contains_headers_and_rows():
    text = format_table(("a", "b"), [(1, 2), (3, 4)])
    assert "a" in text and "b" in text
    assert "1" in text and "4" in text


def test_format_table_alignment_consistent_line_lengths():
    text = format_table(("name", "value"), [("x", 1.0), ("longer-name", 123456.0)])
    lines = text.splitlines()
    assert len(lines) == 4
    # Header and separator lines have the same width.
    assert len(lines[0]) == len(lines[1])


def test_format_table_rejects_mismatched_row():
    with pytest.raises(ValueError):
        format_table(("a", "b"), [(1,)])


def test_format_table_formats_floats_compactly():
    text = format_table(("v",), [(0.123456789,)])
    assert "0.1235" in text


def test_format_series_includes_name():
    text = format_series("efficiency", [1, 2], [3.0, 4.0])
    assert text.startswith("efficiency")
    assert "3" in text
