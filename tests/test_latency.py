"""Tests for the queueing, tail-latency and degradation models."""

import pytest
from hypothesis import given, strategies as st

from repro.latency.degradation import BatchDegradationModel
from repro.latency.queueing import MG1Queue, MM1Queue
from repro.latency.tail import TailLatencyModel
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import DATA_SERVING, WEB_SEARCH


# -- queueing -----------------------------------------------------------------------


def test_mm1_utilization():
    queue = MM1Queue(arrival_rate=50.0, service_rate=100.0)
    assert queue.utilization == pytest.approx(0.5)


def test_mm1_mean_response_time():
    queue = MM1Queue(arrival_rate=50.0, service_rate=100.0)
    assert queue.mean_response_time == pytest.approx(1.0 / 50.0)


def test_mm1_unstable_rejected():
    with pytest.raises(ValueError, match="unstable"):
        MM1Queue(arrival_rate=100.0, service_rate=100.0)


def test_mm1_percentile_above_mean():
    queue = MM1Queue(arrival_rate=30.0, service_rate=100.0)
    assert queue.response_time_percentile(99.0) > queue.mean_response_time


def test_mm1_waiting_plus_service_equals_response():
    queue = MM1Queue(arrival_rate=40.0, service_rate=100.0)
    assert queue.mean_waiting_time + 1.0 / 100.0 == pytest.approx(
        queue.mean_response_time
    )


def test_mg1_matches_mm1_for_cv_one():
    mm1 = MM1Queue(arrival_rate=40.0, service_rate=100.0)
    mg1 = MG1Queue(arrival_rate=40.0, mean_service_time=0.01, service_time_cv=1.0)
    assert mg1.mean_waiting_time == pytest.approx(mm1.mean_waiting_time, rel=1e-9)


def test_mg1_higher_variance_means_longer_waits():
    low = MG1Queue(arrival_rate=40.0, mean_service_time=0.01, service_time_cv=0.5)
    high = MG1Queue(arrival_rate=40.0, mean_service_time=0.01, service_time_cv=2.0)
    assert high.mean_waiting_time > low.mean_waiting_time


def test_mg1_unstable_rejected():
    with pytest.raises(ValueError):
        MG1Queue(arrival_rate=200.0, mean_service_time=0.01)


def test_mg1_max_stable_arrival_rate():
    queue = MG1Queue(arrival_rate=10.0, mean_service_time=0.01)
    assert queue.max_stable_arrival_rate(0.05) == pytest.approx(95.0)


# -- M/G/1 two-moment (Marchal-style) tail correction -----------------------------------


def test_corrected_percentile_defaults_to_current_behaviour():
    queue = MG1Queue(arrival_rate=40.0, mean_service_time=0.01, service_time_cv=2.0)
    import math

    expected = -math.log(0.01) * queue.mean_response_time
    assert queue.response_time_percentile(99.0) == pytest.approx(expected)
    assert queue.response_time_percentile(
        99.0, corrected=False
    ) == pytest.approx(expected)


def test_corrected_percentile_approaches_exact_mm1_at_heavy_load():
    # For CV=1 the corrected approximation converges to the exact
    # M/M/1 percentile as rho -> 1.
    mm1 = MM1Queue(arrival_rate=95.0, service_rate=100.0)
    mg1 = MG1Queue(arrival_rate=95.0, mean_service_time=0.01, service_time_cv=1.0)
    exact = mm1.response_time_percentile(99.0)
    corrected = mg1.response_time_percentile(99.0, corrected=True)
    assert corrected == pytest.approx(exact, rel=2e-3)


def test_corrected_tail_is_heavier_for_high_cv_services():
    # The uncorrected tail only sees the CV through the P-K mean; the
    # corrected one scales the tail itself, so a bursty (CV=3) service
    # at heavy load gets a strictly heavier 99th percentile.
    queue = MG1Queue(arrival_rate=90.0, mean_service_time=0.01, service_time_cv=3.0)
    assert queue.response_time_percentile(
        99.0, corrected=True
    ) > queue.response_time_percentile(99.0)


def test_corrected_tail_is_lighter_for_smooth_light_load():
    # At low utilisation most requests never wait (the 1 - rho idle
    # atom), which the mean-fitted exponential cannot represent.
    queue = MG1Queue(arrival_rate=30.0, mean_service_time=0.01, service_time_cv=0.3)
    assert queue.response_time_percentile(
        99.0, corrected=True
    ) < queue.response_time_percentile(99.0)


def test_corrected_percentile_inside_idle_atom_is_pure_service():
    # rho = 0.2: more than 80% of requests find the server idle, so the
    # 50th percentile is a no-wait service time.
    queue = MG1Queue(arrival_rate=20.0, mean_service_time=0.01, service_time_cv=2.0)
    assert queue.response_time_percentile(
        50.0, corrected=True
    ) == pytest.approx(queue.mean_service_time)


def test_corrected_percentile_grows_with_cv_at_fixed_load():
    percentiles = [
        MG1Queue(
            arrival_rate=80.0, mean_service_time=0.01, service_time_cv=cv
        ).response_time_percentile(99.0, corrected=True)
        for cv in (0.5, 1.0, 2.0, 4.0)
    ]
    assert percentiles == sorted(percentiles)
    assert percentiles[-1] > 3.0 * percentiles[0]


@pytest.mark.parametrize("percentile", [0.0, 100.0, -5.0, 120.0])
def test_corrected_percentile_validates_range(percentile):
    queue = MG1Queue(arrival_rate=40.0, mean_service_time=0.01)
    with pytest.raises(ValueError, match="percentile"):
        queue.response_time_percentile(percentile, corrected=True)


# -- queueing edge coverage -------------------------------------------------------------


@pytest.mark.parametrize("margin", [-0.1, 1.0, 1.5])
def test_max_stable_arrival_rate_rejects_bad_margins(margin):
    queue = MG1Queue(arrival_rate=10.0, mean_service_time=0.01)
    with pytest.raises(ValueError, match="safety_margin"):
        queue.max_stable_arrival_rate(margin)


def test_max_stable_arrival_rate_margin_bounds():
    queue = MG1Queue(arrival_rate=10.0, mean_service_time=0.01)
    # Zero margin is the stability boundary itself ...
    assert queue.max_stable_arrival_rate(0.0) == pytest.approx(100.0)
    # ... and any positive margin admits a constructible stable queue.
    for margin in (0.01, 0.5, 0.99):
        rate = queue.max_stable_arrival_rate(margin)
        stable = MG1Queue(arrival_rate=rate, mean_service_time=0.01)
        assert stable.utilization == pytest.approx(1.0 - margin)
        assert stable.utilization < 1.0


def test_mm1_near_saturation_blows_up_monotonically():
    responses = [
        MM1Queue(arrival_rate=rho * 100.0, service_rate=100.0).mean_response_time
        for rho in (0.99, 0.999, 0.9999)
    ]
    assert responses == sorted(responses)
    # 1 / (mu - lambda): at rho = 0.9999 the mean response is 10^4
    # service times -- finite, but four orders above the unloaded value.
    assert responses[-1] == pytest.approx(100.0, rel=1e-6)
    percentile = MM1Queue(
        arrival_rate=99.99, service_rate=100.0
    ).response_time_percentile(99.0)
    assert percentile > responses[-1]


def test_mm1_rejects_saturation_exactly_at_capacity():
    with pytest.raises(ValueError, match="unstable"):
        MM1Queue(arrival_rate=100.0 + 1e-9, service_rate=100.0)


@given(st.floats(min_value=0.01, max_value=0.95))
def test_mm1_response_grows_with_utilization(rho):
    base = MM1Queue(arrival_rate=rho * 100.0, service_rate=100.0)
    higher = MM1Queue(arrival_rate=min(0.99, rho * 1.02) * 100.0, service_rate=100.0)
    assert higher.mean_response_time >= base.mean_response_time - 1e-12


# -- tail latency ----------------------------------------------------------------------


def test_latency_scales_inversely_with_throughput():
    model = TailLatencyModel(DATA_SERVING)
    nominal = model.latency(2.0e9, core_uips=1.0e9, core_uips_nominal=1.0e9)
    half = model.latency(1.0e9, core_uips=0.5e9, core_uips_nominal=1.0e9)
    assert half.latency_seconds == pytest.approx(2.0 * nominal.latency_seconds)


def test_latency_at_nominal_equals_baseline():
    model = TailLatencyModel(WEB_SEARCH)
    point = model.latency(2.0e9, core_uips=1.2e9, core_uips_nominal=1.2e9)
    assert point.latency_seconds == pytest.approx(
        WEB_SEARCH.minimum_latency_99th_seconds
    )
    assert point.meets_qos


def test_normalized_latency_uses_qos_limit():
    model = TailLatencyModel(DATA_SERVING)
    point = model.latency(2.0e9, core_uips=1.0e9, core_uips_nominal=1.0e9)
    assert point.normalized_to_qos == pytest.approx(
        DATA_SERVING.minimum_latency_99th_seconds / DATA_SERVING.qos_limit_seconds
    )


def test_qos_violation_detected_for_large_slowdown():
    model = TailLatencyModel(DATA_SERVING)
    slow = model.latency(0.1e9, core_uips=0.05e9, core_uips_nominal=1.0e9)
    assert not slow.meets_qos
    assert slow.normalized_to_qos > 1.0


def test_slowdown_budget_is_qos_headroom():
    model = TailLatencyModel(WEB_SEARCH)
    assert model.slowdown_budget() == pytest.approx(WEB_SEARCH.qos_headroom_at_nominal)


def test_tail_model_rejects_vm_workload():
    with pytest.raises(ValueError):
        TailLatencyModel(VMS_LOW_MEM)


# -- degradation ------------------------------------------------------------------------


def test_degradation_is_throughput_ratio():
    model = BatchDegradationModel(VMS_LOW_MEM)
    assert model.degradation(core_uips=0.5e9, core_uips_nominal=2.0e9) == pytest.approx(4.0)


def test_degradation_bounds_dictionary():
    bounds = BatchDegradationModel.bounds()
    assert bounds["strict"] == 2.0
    assert bounds["relaxed"] == 4.0


def test_meets_bound():
    model = BatchDegradationModel(VMS_LOW_MEM)
    assert model.meets_bound(1.0e9, 2.0e9, bound=2.0)
    assert not model.meets_bound(0.4e9, 2.0e9, bound=2.0)


def test_degradation_model_rejects_scale_out_workload():
    with pytest.raises(ValueError):
        BatchDegradationModel(DATA_SERVING)
