"""Tests for the load-trace abstraction and its generators."""

import numpy as np
import pytest

from repro.dvfs import LOAD_TRACES, LoadTrace, load_trace_by_name
from repro.workloads.bitbrains import BitbrainsTraceModel


# -- validation / failure modes --------------------------------------------------------


def test_empty_trace_is_rejected():
    with pytest.raises(ValueError, match="at least one step"):
        LoadTrace(name="empty", step_seconds=60.0, utilization=())


@pytest.mark.parametrize("duration", [0.0, -60.0, float("nan"), float("inf")])
def test_non_positive_or_non_finite_duration_is_rejected(duration):
    with pytest.raises(ValueError, match="step duration"):
        LoadTrace(name="bad", step_seconds=duration, utilization=(0.5,))


def test_utilization_above_one_is_rejected():
    with pytest.raises(ValueError, match="exceeds 1"):
        LoadTrace(name="over", step_seconds=60.0, utilization=(0.5, 1.2))


@pytest.mark.parametrize("value", [-0.1, float("nan")])
def test_negative_or_nan_utilization_is_rejected(value):
    with pytest.raises(ValueError, match="finite and non-negative"):
        LoadTrace(name="bad", step_seconds=60.0, utilization=(value,))


def test_unknown_named_trace_lists_known_ones():
    with pytest.raises(ValueError, match="unknown load trace") as error:
        load_trace_by_name("tidal")
    for known in LOAD_TRACES:
        assert known in str(error.value)


# -- views ------------------------------------------------------------------------------


def test_trace_views():
    trace = LoadTrace(name="t", step_seconds=30.0, utilization=(0.2, 0.4, 0.9))
    assert len(trace) == trace.steps == 3
    assert trace.duration_seconds == 90.0
    assert list(trace.times()) == [0.0, 30.0, 60.0]
    assert trace.mean_utilization == pytest.approx(0.5)
    assert trace.peak_utilization == 0.9
    assert trace.head(2).utilization == (0.2, 0.4)
    summary = trace.summary()
    assert summary["steps"] == 3 and summary["duration_seconds"] == 90.0


def test_head_needs_at_least_one_step():
    trace = LoadTrace.constant(0.5, steps=4)
    with pytest.raises(ValueError):
        trace.head(0)


def test_permuted_reorders_steps_and_validates():
    trace = LoadTrace(name="t", step_seconds=10.0, utilization=(0.1, 0.2, 0.3))
    swapped = trace.permuted([2, 0, 1])
    assert swapped.utilization == (0.3, 0.1, 0.2)
    with pytest.raises(ValueError, match="permutation"):
        trace.permuted([0, 0, 1])


# -- composition ------------------------------------------------------------------------


def test_surge_step_multiplies_the_window():
    trace = LoadTrace(
        name="t", step_seconds=60.0, utilization=(0.1, 0.2, 0.3, 0.4)
    )
    surged = trace.with_surge(start=1, steps=2, factor=2.0)
    assert surged.name == "t+surge"
    assert surged.step_seconds == 60.0
    assert surged.utilization == (0.1, 0.4, 0.6, 0.4)


def test_surge_window_is_clamped_to_the_trace_bounds():
    trace = LoadTrace(name="t", step_seconds=60.0, utilization=(0.2, 0.2, 0.2))
    # A window starting before the trace and running past its end only
    # touches the steps that exist.
    surged = trace.with_surge(start=-2, steps=10, factor=2.0)
    assert surged.utilization == (0.4, 0.4, 0.4)
    # A window entirely beyond the end is a no-op.
    assert trace.with_surge(start=7, steps=3, factor=2.0).utilization == (
        trace.utilization
    )


def test_saturated_surge_clips_at_one():
    trace = LoadTrace(name="t", step_seconds=60.0, utilization=(0.6, 0.9))
    surged = trace.with_surge(start=0, steps=2, factor=3.0)
    assert surged.utilization == (1.0, 1.0)


def test_ramp_surge_builds_linearly_to_the_factor():
    trace = LoadTrace(
        name="t", step_seconds=60.0, utilization=(0.1, 0.1, 0.1, 0.1)
    )
    surged = trace.with_surge(start=0, steps=4, factor=3.0, shape="ramp")
    assert surged.utilization == pytest.approx((0.15, 0.2, 0.25, 0.3))


def test_surge_rejects_bad_parameters():
    trace = LoadTrace.constant(0.5, steps=4)
    with pytest.raises(ValueError, match="at least one step"):
        trace.with_surge(start=0, steps=0, factor=2.0)
    with pytest.raises(ValueError, match="positive and finite"):
        trace.with_surge(start=0, steps=2, factor=-1.0)
    with pytest.raises(ValueError, match="unknown surge shape"):
        trace.with_surge(start=0, steps=2, factor=2.0, shape="cliff")


def test_concat_appends_and_checks_resolution():
    left = LoadTrace(name="l", step_seconds=60.0, utilization=(0.1, 0.2))
    right = LoadTrace(name="r", step_seconds=60.0, utilization=(0.3,))
    joined = left.concat(right)
    assert joined.name == "l+r"
    assert joined.utilization == (0.1, 0.2, 0.3)
    mismatched = LoadTrace(name="m", step_seconds=30.0, utilization=(0.3,))
    with pytest.raises(ValueError, match="mismatched step_seconds"):
        left.concat(mismatched)


def test_scale_multiplies_and_clips():
    trace = LoadTrace(name="t", step_seconds=60.0, utilization=(0.3, 0.8))
    scaled = trace.scale(1.5)
    assert scaled.name == "tx1.5"
    assert scaled.utilization == pytest.approx((0.45, 1.0))
    with pytest.raises(ValueError, match="positive and finite"):
        trace.scale(0.0)


def test_composed_traces_are_deterministic_in_the_seed():
    def build(seed):
        return (
            LoadTrace.diurnal(seed=seed)
            .with_surge(start=10, steps=6, factor=2.0, shape="ramp")
            .concat(LoadTrace.diurnal(seed=seed).scale(1.3))
        )

    assert build(7) == build(7)
    assert build(7) != build(8)


def test_bitbrains_all_idle_population_raises_a_precise_error():
    class AllIdleModel:
        def samples(self):
            return [type("VM", (), {"cpu_utilization": 0.0})()] * 16

    with pytest.raises(ValueError, match="all-idle"):
        LoadTrace.from_bitbrains(steps=4, model=AllIdleModel(), seed=1)


# -- generators -------------------------------------------------------------------------


def test_constant_trace_is_flat():
    trace = LoadTrace.constant(0.6, steps=10, step_seconds=5.0)
    assert trace.utilization == (0.6,) * 10


@pytest.mark.parametrize("name", sorted(LOAD_TRACES))
def test_named_generators_produce_valid_traces(name):
    trace = load_trace_by_name(name)
    assert len(trace) >= 1
    assert all(0.0 <= value <= 1.0 for value in trace.utilization)


@pytest.mark.parametrize(
    "factory",
    [LoadTrace.diurnal, LoadTrace.bursty, LoadTrace.from_bitbrains],
    ids=["diurnal", "bursty", "bitbrains"],
)
def test_generators_are_deterministic_in_the_seed(factory):
    """Same seed -> identical trace; different seed -> different trace."""
    assert factory(seed=7) == factory(seed=7)
    assert factory(seed=7) != factory(seed=8)


def test_diurnal_shape_peaks_mid_trace():
    trace = LoadTrace.diurnal(noise=0.0)
    values = np.array(trace.utilization)
    mid = len(values) // 2
    assert values[mid] > values[0]
    assert values.max() <= 0.9 + 1e-9
    assert values.min() >= 0.15 - 1e-9


def test_bursty_visits_both_states():
    trace = LoadTrace.bursty(steps=300, noise=0.0, seed=3)
    values = set(trace.utilization)
    assert values == {0.2, 0.95}


def test_bitbrains_trace_follows_population_seed():
    model = BitbrainsTraceModel(vm_count=200, seed=11)
    left = LoadTrace.from_bitbrains(steps=24, model=model, seed=5)
    right = LoadTrace.from_bitbrains(steps=24, model=model, seed=5)
    assert left == right
    other_population = LoadTrace.from_bitbrains(
        steps=24, model=BitbrainsTraceModel(vm_count=200, seed=12), seed=5
    )
    assert left != other_population
