"""The run command's fault-tolerance surface.

Exit-code contract: 0 = every requested scenario produced output,
3 = ``--keep-going`` quarantined some but at least one succeeded,
2 = a hard error or nothing succeeded.  Checkpointed runs resume
completed scenarios byte for byte; ``--inject-fault`` drives the chaos
harness end to end through the real CLI; ``--retries`` absorbs
transient analysis faults.
"""

import json

import pytest

from repro.resilience import InjectedFault
from repro.scenarios.cli import main as cli_main


def test_keep_going_quarantines_and_exits_3(tmp_path, capsys):
    code = cli_main(
        [
            "run",
            "fig2_qos",
            "table1_ddr4",
            "--keep-going",
            "--inject-fault",
            "scenario.run:1:raise",
            "--outdir",
            str(tmp_path),
        ]
    )
    assert code == 3
    captured = capsys.readouterr()
    assert "error (quarantined): scenario 'fig2_qos'" in captured.err
    assert "quarantined 1 of 2 scenarios: fig2_qos" in captured.err
    # The survivor's artifact landed; the quarantined one has none.
    assert (tmp_path / "table1_ddr4.txt").exists()
    assert not (tmp_path / "fig2_qos.txt").exists()


def test_keep_going_with_nothing_succeeding_exits_2(capsys):
    code = cli_main(
        [
            "run",
            "fig2_qos",
            "--keep-going",
            "--inject-fault",
            "scenario.run:1:raise",
        ]
    )
    assert code == 2
    assert "quarantined 1 of 1" in capsys.readouterr().err


def test_without_keep_going_the_fault_propagates(capsys):
    with pytest.raises(InjectedFault):
        cli_main(
            ["run", "fig2_qos", "--inject-fault", "scenario.run:1:raise"]
        )


def test_bad_inject_fault_syntax_exits_2(capsys):
    assert cli_main(["run", "fig2_qos", "--inject-fault", "nonsense"]) == 2
    assert "error:" in capsys.readouterr().err


def test_retries_absorb_transient_analysis_faults(capsys):
    code = cli_main(
        [
            "run",
            "fig2_qos",
            "--retries",
            "1",
            "--inject-fault",
            "scenario.analysis:1:raise",
        ]
    )
    assert code == 0
    assert "scenario: fig2_qos" in capsys.readouterr().out


def test_checkpointed_rerun_resumes_byte_for_byte(tmp_path, capsys):
    checkpoints = tmp_path / "ckpt"
    argv = [
        "run",
        "table1_ddr4",
        "--format",
        "json",
        "--checkpoint-dir",
        str(checkpoints),
    ]
    assert cli_main(argv) == 0
    first = capsys.readouterr()
    assert "resumed" not in first.err

    assert cli_main(argv) == 0
    second = capsys.readouterr()
    assert "note: table1_ddr4 resumed from checkpoint" in second.err
    assert second.out == first.out  # byte-identical rendered output
    assert json.loads(second.out)["scenario"] == "table1_ddr4"


def test_checkpoint_fingerprint_binds_the_output_format(tmp_path, capsys):
    checkpoints = tmp_path / "ckpt"
    base = ["run", "table1_ddr4", "--checkpoint-dir", str(checkpoints)]
    assert cli_main(base + ["--format", "json"]) == 0
    capsys.readouterr()
    # A different format must not resume the JSON bytes.
    assert cli_main(base + ["--format", "table"]) == 0
    captured = capsys.readouterr()
    assert "resumed" not in captured.err
    assert "scenario: table1_ddr4" in captured.out


def test_report_out_skipped_when_everything_resumed(tmp_path, capsys):
    checkpoints = tmp_path / "ckpt"
    report = tmp_path / "report.json"
    argv = [
        "run",
        "table1_ddr4",
        "--checkpoint-dir",
        str(checkpoints),
        "--report-out",
        str(report),
    ]
    assert cli_main(argv) == 0
    capsys.readouterr()
    report_bytes = report.read_bytes()
    report.unlink()

    # Fully resumed: nothing was instrumented, so no report -- and no
    # stale file overwriting a previous run's data.
    assert cli_main(argv) == 0
    captured = capsys.readouterr()
    assert f"note: no scenarios executed; {report} not written" in captured.err
    assert not report.exists()
    assert json.loads(report_bytes)["meta"]["scenarios"] == ["table1_ddr4"]


def test_outdir_and_output_write_complete_artifacts(tmp_path, capsys):
    out = tmp_path / "nested" / "table1.json"
    code = cli_main(
        ["run", "table1_ddr4", "--format", "json", "--output", str(out)]
    )
    assert code == 0
    assert f"wrote {out}" in capsys.readouterr().out
    assert json.loads(out.read_text())["scenario"] == "table1_ddr4"
