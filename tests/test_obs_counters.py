"""Counter-correctness tests: obs counters vs ground-truth work counts.

The instrumentation is only useful if its numbers are exact, so each
test pins a counter against an independently observable quantity: the
context's memoisation counters against ``evaluated_points`` (every
distinct design point is a miss exactly once, every repeat a hit), the
batch engine's batched/fallback split against a batch with a known
mix, and the replay/tuner counters against the work the call visibly
performed.
"""

import dataclasses

import pytest

from repro import obs
from repro.core.config import default_server
from repro.dvfs import GovernorSimulator, LoadTrace
from repro.dvfs.governors import PerformanceGovernor
from repro.fleet import FleetSimulator
from repro.kernels import BatchReplayRunner, ReplaySpec
from repro.opt import PolicyConfig, PolicyTuner
from repro.sweep.context import ModelContext
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import WEB_SEARCH


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.reset()
    yield
    assert not obs.is_enabled(), "a test leaked an open capture/enable"
    obs.reset()


# -- context memoisation ---------------------------------------------------------------


def test_memo_misses_match_evaluated_points_exactly_once():
    """Each distinct point is a miss exactly once; repeats are hits."""
    context = ModelContext(default_server())
    grid = context.configuration.frequency_grid
    with obs.capture() as cap:
        for frequency_hz in grid:
            context.evaluate(WEB_SEARCH, frequency_hz)
        for frequency_hz in grid:
            context.evaluate(WEB_SEARCH, frequency_hz)
    deltas = cap.counter_deltas()
    assert deltas["context.memo_misses"] == len(grid)
    assert deltas["context.memo_hits"] == len(grid)
    assert context.evaluated_points == len(grid)
    assert deltas["context.memo_misses"] == context.evaluated_points


def test_memo_counters_key_by_workload_and_frequency():
    context = ModelContext(default_server())
    frequency_hz = context.configuration.frequency_grid[0]
    with obs.capture() as cap:
        context.evaluate(WEB_SEARCH, frequency_hz)
        context.evaluate(VMS_LOW_MEM, frequency_hz)  # new point: same f
        context.evaluate(WEB_SEARCH, frequency_hz)  # repeat: a hit
    deltas = cap.counter_deltas()
    assert deltas["context.memo_misses"] == 2 == context.evaluated_points
    assert deltas["context.memo_hits"] == 1


def test_frequency_table_built_once_then_cache_hits():
    context = ModelContext(default_server())
    with obs.capture() as cap:
        context.frequency_table(WEB_SEARCH)
        context.frequency_table(WEB_SEARCH)
        context.frequency_table(WEB_SEARCH)
    deltas = cap.counter_deltas()
    assert deltas["context.table_builds"] == 1
    assert deltas["context.table_cache_hits"] == 2
    (span,) = [s for s in cap.spans if s.name == "context.table_build"]
    assert span.attributes["workload"] == WEB_SEARCH.name
    assert span.attributes["grid_points"] == len(
        context.configuration.frequency_grid
    )


# -- batched vs fallback ---------------------------------------------------------------


def test_mixed_batch_counts_batched_and_fallback_exactly(default_context):
    """A known 2-kernel/1-fallback batch splits the counters exactly."""

    @dataclasses.dataclass(frozen=True)
    class FloorGovernor(PerformanceGovernor):
        def select(self, observation, platform):
            return platform.frequencies[0]

    trace = LoadTrace.constant(utilization=0.5, steps=8)
    specs = [
        ReplaySpec(workload=WEB_SEARCH, trace=trace, governor=FloorGovernor()),
        ReplaySpec(workload=WEB_SEARCH, trace=trace, governor="performance"),
        ReplaySpec(workload=VMS_LOW_MEM, trace=trace, governor="ondemand"),
    ]
    with obs.capture() as cap:
        result = BatchReplayRunner(default_context).run(specs)
    assert result.batched_count == 2 and result.fallback_count == 1
    deltas = cap.counter_deltas()
    assert deltas["batch.batched_replays"] == 2
    assert deltas["batch.fallback_replays"] == 1
    (span,) = [s for s in cap.spans if s.name == "batch.run"]
    assert span.attributes == {"batch_size": 3, "batched": 2, "fallback": 1}


def test_all_kernel_batch_counts_no_fallbacks(default_context):
    trace = LoadTrace.constant(utilization=0.4, steps=6)
    specs = [
        ReplaySpec(workload=WEB_SEARCH, trace=trace, governor=name)
        for name in ("performance", "ondemand", "powersave")
    ]
    with obs.capture() as cap:
        result = BatchReplayRunner(default_context).run(specs)
    assert result.batched_count == 3
    deltas = cap.counter_deltas()
    assert deltas["batch.batched_replays"] == 3
    assert "batch.fallback_replays" not in deltas


# -- replay paths ----------------------------------------------------------------------


def test_dvfs_counters_distinguish_kernel_and_reference(default_context):
    simulator = GovernorSimulator(default_context, WEB_SEARCH)
    trace = LoadTrace.bursty(steps=30, seed=3)
    with obs.capture() as cap:
        simulator.replay(trace, "ondemand")
        simulator.replay(trace, "ondemand", reference=True)
    deltas = cap.counter_deltas()
    assert deltas["dvfs.kernel_replays"] == 1
    assert deltas["dvfs.reference_replays"] == 1
    spans = [s for s in cap.spans if s.name == "dvfs.replay"]
    assert [s.attributes["kernel"] for s in spans] == [True, False]
    assert all(s.attributes["governor"] == "ondemand" for s in spans)


def test_fleet_replay_span_and_tail_dedup_counters(default_context):
    simulator = FleetSimulator(default_context, WEB_SEARCH, fleet_size=2)
    trace = LoadTrace.bursty(steps=20, seed=4)
    with obs.capture() as cap:
        simulator.run(trace, "pack")
    deltas = cap.counter_deltas()
    assert deltas["fleet.kernel_replays"] == 1
    # The queueing-tail dedup only ever shrinks the pair set.
    assert deltas["fleet.tail_pairs"] >= deltas["fleet.tail_unique_pairs"] > 0
    (span,) = [s for s in cap.spans if s.name == "fleet.replay"]
    assert span.attributes["routing"] == "pack"
    assert span.attributes["fleet_size"] == 2
    assert span.attributes["steps"] == len(trace)
    assert span.attributes["kernel"] is True
    assert span.attributes["disturbed"] is False


def test_tuner_rung_span_counts_evaluations_and_duplicates(default_context):
    config = PolicyConfig(
        governor="qos_tracker",
        routing="pack",
        fleet_size=2,
        fill_fraction=0.75,
        band=None,
        wake_steps=1,
    )
    tuner = PolicyTuner(default_context, WEB_SEARCH, LoadTrace.diurnal())
    with obs.capture() as cap:
        tuner.evaluate([config, config])
    deltas = cap.counter_deltas()
    assert deltas["opt.evaluations"] == 1  # the duplicate deduplicates
    assert deltas["opt.duplicate_trials"] == 1
    (span,) = [s for s in cap.spans if s.name == "opt.rung"]
    assert span.attributes["configs"] == 2
    assert span.attributes["evaluations"] == 1
    assert span.attributes["duplicates"] == 1


def test_counters_stay_silent_while_disabled(default_context):
    trace = LoadTrace.constant(utilization=0.5, steps=6)
    BatchReplayRunner(default_context).run(
        [ReplaySpec(workload=WEB_SEARCH, trace=trace)]
    )
    assert obs.counters_snapshot() == {}
