"""Tests for DDR4 timing parameters and address mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.address_map import AddressMapping
from repro.dram.timing import DDR4_1600_4GBIT, DDR4Timing


# -- timing -----------------------------------------------------------------------


def test_ddr4_1600_clock():
    assert DDR4_1600_4GBIT.clock_hz == pytest.approx(800e6)


def test_banks_per_rank_is_16():
    assert DDR4_1600_4GBIT.banks == 16


def test_burst_cycles_for_bl8():
    assert DDR4_1600_4GBIT.burst_cycles == 4


def test_latency_ordering_hit_closed_conflict():
    timing = DDR4_1600_4GBIT
    assert timing.row_hit_latency < timing.row_closed_latency < timing.row_conflict_latency


def test_cycles_to_seconds():
    assert DDR4_1600_4GBIT.cycles_to_seconds(800e6) == pytest.approx(1.0)


def test_inconsistent_timing_rejected():
    with pytest.raises(ValueError, match="tRAS"):
        DDR4Timing(
            name="broken",
            clock_hz=800e6,
            tCL=11,
            tRCD=11,
            tRP=11,
            tRAS=40,
            tRC=39,
            tCCD=4,
            tRRD=5,
            tFAW=20,
            tWR=12,
            tWTR=6,
            tRTP=6,
            tCWL=9,
            tREFI=6240,
            tRFC=208,
        )


# -- address mapping ----------------------------------------------------------------


def test_consecutive_lines_interleave_across_channels():
    mapping = AddressMapping()
    channels = [mapping.decode(line * 64).channel for line in range(8)]
    assert channels[:4] == [0, 1, 2, 3]


def test_same_line_same_coordinates():
    mapping = AddressMapping()
    assert mapping.decode(100) == mapping.decode(70)


def test_row_size_columns():
    mapping = AddressMapping(row_bytes=8192, line_bytes=64)
    assert mapping.columns_per_row == 128


def test_banks_per_channel():
    mapping = AddressMapping()
    assert mapping.banks_per_channel == 4 * 4 * 4


def test_flat_bank_index_unique_per_bank():
    mapping = AddressMapping()
    seen = set()
    for address in range(0, 64 * 4 * 128 * 16 * 4, 64 * 4 * 128):
        decoded = mapping.decode(address)
        seen.add((decoded.channel, mapping.flat_bank_index(decoded)))
    assert len(seen) > 1


def test_non_power_of_two_rejected():
    with pytest.raises(ValueError):
        AddressMapping(channels=3)


def test_negative_address_rejected():
    with pytest.raises(ValueError):
        AddressMapping().decode(-1)


@given(st.integers(min_value=0, max_value=2**36))
def test_decode_fields_within_bounds(address):
    mapping = AddressMapping()
    decoded = mapping.decode(address)
    assert 0 <= decoded.channel < mapping.channels
    assert 0 <= decoded.rank < mapping.ranks
    assert 0 <= decoded.bank_group < mapping.bank_groups
    assert 0 <= decoded.bank < mapping.banks_per_group
    assert 0 <= decoded.column < mapping.columns_per_row
    assert decoded.row >= 0
