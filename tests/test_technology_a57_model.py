"""Tests for the calibrated Cortex-A57 power model (Figure 1 anchors)."""

import pytest

from repro.technology.a57_model import (
    BodyBiasPolicy,
    CortexA57PowerModel,
    default_flavour_models,
)
from repro.technology.process import BULK_28NM, FDSOI_28NM, FDSOI_28NM_FBB
from repro.utils.units import ghz, mhz


@pytest.fixture(scope="module")
def models():
    return default_flavour_models()


def test_default_flavours_present(models):
    assert set(models) == {"bulk", "fdsoi", "fdsoi-fbb"}


def test_fdsoi_max_frequency_about_3_5ghz(models):
    assert models["fdsoi"].max_frequency() == pytest.approx(3.5e9, rel=0.05)


def test_fdsoi_min_voltage_frequency_near_100mhz(models):
    assert 50e6 <= models["fdsoi"].min_voltage_frequency() <= 250e6


def test_fbb_min_voltage_frequency_exceeds_500mhz(models):
    assert models["fdsoi-fbb"].min_voltage_frequency() > 500e6


def test_bulk_max_frequency_lower_than_fdsoi(models):
    assert models["bulk"].max_frequency() < models["fdsoi"].max_frequency()


def test_power_ordering_bulk_fdsoi_fbb(models):
    for frequency in (mhz(300), mhz(500), ghz(1), ghz(2)):
        p_bulk = models["bulk"].core_power(frequency)
        p_fdsoi = models["fdsoi"].core_power(frequency)
        p_fbb = models["fdsoi-fbb"].core_power(frequency)
        assert p_bulk > p_fdsoi
        assert p_fdsoi >= p_fbb - 1e-12


def test_fdsoi_gain_over_bulk_grows_toward_low_frequency(models):
    gain_low = 1 - models["fdsoi"].core_power(mhz(300)) / models["bulk"].core_power(mhz(300))
    gain_high = 1 - models["fdsoi"].core_power(ghz(2)) / models["bulk"].core_power(ghz(2))
    assert gain_low > gain_high


def test_voltage_ordering_at_iso_frequency(models):
    for frequency in (mhz(500), ghz(1), ghz(2)):
        v_bulk = models["bulk"].operating_point(frequency).vdd
        v_fdsoi = models["fdsoi"].operating_point(frequency).vdd
        v_fbb = models["fdsoi-fbb"].operating_point(frequency).vdd
        assert v_bulk > v_fdsoi >= v_fbb


def test_chip_power_within_budget_at_2ghz(models):
    # 36 FD-SOI cores at the nominal 2GHz point leave room for the
    # ~22W uncore inside the 100W chip budget.
    assert models["fdsoi"].chip_core_power(ghz(2), 36) < 80.0


def test_chip_power_near_175w_at_top_frequency(models):
    power = models["fdsoi"].chip_core_power(3.4e9, 36)
    assert 120.0 < power < 200.0


def test_voltage_clamped_at_min_functional(models):
    operating_point = models["fdsoi"].operating_point(mhz(100))
    assert operating_point.vdd >= FDSOI_28NM.min_functional_vdd - 1e-9


def test_power_monotone_in_frequency(models):
    frequencies = [mhz(value) for value in (200, 400, 800, 1200, 1600, 2000)]
    for model in models.values():
        powers = [model.core_power(frequency) for frequency in frequencies]
        assert powers == sorted(powers)


def test_unreachable_frequency_raises(models):
    with pytest.raises(ValueError, match="cannot reach"):
        models["bulk"].operating_point(5e9)


def test_is_reachable(models):
    assert models["fdsoi"].is_reachable(ghz(2))
    assert not models["bulk"].is_reachable(ghz(4))


def test_activity_reduces_dynamic_power(models):
    busy = models["fdsoi"].operating_point(ghz(1), activity=1.0)
    light = models["fdsoi"].operating_point(ghz(1), activity=0.3)
    assert light.dynamic_power < busy.dynamic_power
    assert light.leakage_power == pytest.approx(busy.leakage_power)


def test_operating_point_properties(models):
    point = models["fdsoi"].operating_point(ghz(1))
    assert point.total_power == pytest.approx(point.dynamic_power + point.leakage_power)
    assert 0.0 < point.leakage_fraction < 1.0
    assert point.energy_per_cycle == pytest.approx(point.total_power / ghz(1))


def test_optimal_policy_never_worse_than_none():
    plain = CortexA57PowerModel(technology=FDSOI_28NM, bias_policy=BodyBiasPolicy.NONE)
    optimal = CortexA57PowerModel(
        technology=FDSOI_28NM_FBB, bias_policy=BodyBiasPolicy.OPTIMAL
    )
    for frequency in (mhz(200), mhz(500), ghz(1), ghz(2)):
        assert optimal.core_power(frequency) <= plain.core_power(frequency) + 1e-12


def test_fixed_policy_uses_requested_bias():
    fixed = CortexA57PowerModel(
        technology=FDSOI_28NM_FBB,
        bias_policy=BodyBiasPolicy.FIXED,
        fixed_body_bias=1.5,
    )
    point = fixed.operating_point(ghz(1))
    assert point.body_bias == pytest.approx(1.5)


def test_fixed_policy_bias_outside_range_rejected():
    with pytest.raises(ValueError):
        CortexA57PowerModel(
            technology=BULK_28NM,
            bias_policy=BodyBiasPolicy.FIXED,
            fixed_body_bias=2.0,
        )


def test_chip_core_power_requires_positive_core_count(models):
    with pytest.raises(ValueError):
        models["fdsoi"].chip_core_power(ghz(1), 0)
