"""Tests for the multi-channel memory system and its energy accounting."""

import pytest

from repro.dram.power_counters import DramEnergyAccountant
from repro.dram.system import MemorySystem
from repro.dram.timing import DDR4_1600_4GBIT
from repro.power.dram_power import LPDDR4_4GBIT_X8, MemoryPowerModel


def test_system_has_four_channels():
    assert MemorySystem().channels == 4


def test_single_read_latency_matches_closed_row():
    system = MemorySystem()
    assert system.read(0, 0) == DDR4_1600_4GBIT.row_closed_latency


def test_requests_distributed_across_channels():
    system = MemorySystem()
    requests = [MemorySystem.make_request(line * 64, False, line) for line in range(400)]
    system.run(requests)
    per_channel_reads = [stats.reads for stats in system.channel_stats()]
    assert all(reads == 100 for reads in per_channel_reads)


def test_sequential_stream_has_high_row_hit_rate():
    system = MemorySystem()
    requests = [MemorySystem.make_request(line * 64, False, line * 2) for line in range(2000)]
    system.run(requests)
    assert system.stats().row_hit_rate > 0.9


def test_random_stream_has_low_row_hit_rate():
    import random

    random.seed(7)
    system = MemorySystem()
    requests = [
        MemorySystem.make_request(random.randrange(0, 1 << 32) & ~63, False, index * 4)
        for index in range(2000)
    ]
    system.run(requests)
    assert system.stats().row_hit_rate < 0.2


def test_stats_aggregate_reads_and_bytes():
    system = MemorySystem()
    requests = [MemorySystem.make_request(line * 64, line % 3 == 0, line) for line in range(300)]
    system.run(requests)
    stats = system.stats()
    assert stats.accesses == 300
    assert stats.bytes_read + stats.bytes_written == 300 * 64


def test_average_read_latency_positive_and_bounded():
    system = MemorySystem()
    requests = [MemorySystem.make_request(line * 64, False, line * 4) for line in range(500)]
    system.run(requests)
    latency = system.stats().average_read_latency_cycles
    assert DDR4_1600_4GBIT.row_hit_latency <= latency <= 10 * DDR4_1600_4GBIT.row_conflict_latency


def test_energy_accountant_matches_power_model_coefficients():
    accountant = DramEnergyAccountant()
    report = accountant.report_from_counters(
        interval_seconds=1.0, bytes_read=10_000_000_000, bytes_written=4_000_000_000
    )
    model = MemoryPowerModel()
    assert report.background_energy == pytest.approx(model.background_power())
    assert report.dynamic_energy == pytest.approx(model.dynamic_power(10e9, 4e9))
    assert report.average_power == pytest.approx(model.total_power(10e9, 4e9))


def test_energy_accountant_from_simulated_system():
    system = MemorySystem()
    requests = [MemorySystem.make_request(line * 64, False, line) for line in range(100)]
    system.run(requests)
    report = DramEnergyAccountant().report(system, interval_seconds=1e-6)
    assert report.read_energy == pytest.approx(100 * 64 * 0.2566e-9)
    assert report.total_energy > report.read_energy


def test_energy_accountant_lpddr4_lowers_background():
    ddr4 = DramEnergyAccountant().report_from_counters(1.0, 0, 0)
    lpddr4 = DramEnergyAccountant(chip=LPDDR4_4GBIT_X8).report_from_counters(1.0, 0, 0)
    assert lpddr4.background_energy < ddr4.background_energy


def test_energy_accountant_rejects_negative_counters():
    with pytest.raises(ValueError):
        DramEnergyAccountant().report_from_counters(1.0, -1, 0)
