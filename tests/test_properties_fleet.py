"""Property tests over the fleet simulation layer.

The three invariants the tentpole locks down:

* a 1-server always-on fleet reproduces the single-server
  :class:`GovernorSimulator` replay **bit for bit** -- same frequency,
  power, energy, served-work and violation columns -- for every
  routing policy and governor (the fleet layer adds structure, never
  drift);
* the fleet energy ledger is exact: the fleet ``energy_j`` column is,
  step by step, the sum of the per-node columns, wake penalties and
  idle draws included;
* ``pack`` never uses more servers than ``spread`` at equal served
  load (consolidation dominates balancing on server count, always).

Traces are hypothesis-sampled; the fleets run on the shared session
context, so the many examples reuse one set of memoized operating
points.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvfs import GOVERNORS, LoadTrace
from repro.fleet import ROUTERS, Autoscaler, FleetSimulator
from repro.workloads.cloudsuite import WEB_SEARCH

utilizations = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=16,
)

# The node columns that must match the single-server replay exactly.
_REPLAY_COLUMNS = (
    "frequency_hz",
    "power_w",
    "energy_j",
    "demand_uips",
    "capacity_uips",
    "served_uips",
    "qos_metric",
    "qos_ok",
    "demand_met",
    "violation",
)


def make_trace(values, step_seconds=60.0) -> LoadTrace:
    return LoadTrace(
        name="sampled", step_seconds=step_seconds, utilization=tuple(values)
    )


@settings(max_examples=20, deadline=None)
@given(values=utilizations, governor=st.sampled_from(sorted(GOVERNORS)))
def test_one_server_fleet_is_bit_identical_to_replay(
    values, governor, default_context, websearch_simulator
):
    trace = make_trace(values)
    replay = websearch_simulator.replay(trace, governor)
    fleet = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=1, governor=governor
    )
    # pack's fill threshold re-derives the share as fill + overflow for
    # high loads, which is only float-identical below the threshold, so
    # the bit-for-bit claim covers the exact-passthrough policies.
    for routing in ("round_robin", "least_loaded", "spread"):
        result = fleet.run(trace, routing)
        for column in _REPLAY_COLUMNS:
            np.testing.assert_array_equal(
                result.node_column(0, column),
                replay.column(column),
                err_msg=f"{routing}/{governor}/{column}",
            )
        # The fleet-level ledger collapses to the node for N=1.
        np.testing.assert_array_equal(
            result.column("violation"), replay.column("violation")
        )
        np.testing.assert_array_equal(
            result.column("energy_j"), replay.column("energy_j")
        )
        assert result.total_energy_j == replay.total_energy_j


@settings(max_examples=20, deadline=None)
@given(values=utilizations)
def test_pack_matches_replay_below_fill_threshold(
    values, default_context, websearch_simulator
):
    # Below the fill threshold pack is an exact passthrough too.
    trace = make_trace([0.7 * value for value in values])
    replay = websearch_simulator.replay(trace, "qos_tracker")
    result = FleetSimulator(default_context, WEB_SEARCH, fleet_size=1).run(
        trace, "pack"
    )
    for column in _REPLAY_COLUMNS:
        np.testing.assert_array_equal(
            result.node_column(0, column), replay.column(column), err_msg=column
        )


@settings(max_examples=15, deadline=None)
@given(
    values=utilizations,
    fleet_size=st.integers(min_value=2, max_value=6),
    routing=st.sampled_from(sorted(ROUTERS)),
    autoscaled=st.booleans(),
)
def test_fleet_energy_equals_sum_of_node_energies(
    values, fleet_size, routing, autoscaled, default_context
):
    trace = make_trace(values)
    simulator = FleetSimulator(
        default_context,
        WEB_SEARCH,
        fleet_size=fleet_size,
        autoscaler=Autoscaler() if autoscaled else None,
        off_power_w=7.5,
    )
    result = simulator.run(trace, routing)
    # Exact, step by step: node energies (wake penalties included) are
    # accumulated in node order, which is how the fleet column is built.
    total = sum(
        result.node_column(node_id, "energy_j") for node_id in result.node_ids
    )
    np.testing.assert_array_equal(result.column("energy_j"), total)
    assert result.total_energy_j == pytest.approx(
        sum(result.node_energy_j(node_id) for node_id in result.node_ids),
        rel=1e-12,
    )
    # Power books the same ledger: energy is power times the step length
    # plus the one-shot wake penalties.
    expected = result.column("total_power_w") * trace.step_seconds
    if autoscaled:
        expected = expected + (
            result.column("wake_events") * simulator.autoscaler.wake_energy_j
        )
    np.testing.assert_allclose(expected, result.column("energy_j"), rtol=1e-12)


@settings(max_examples=20, deadline=None)
@given(values=utilizations, fleet_size=st.integers(min_value=2, max_value=8))
def test_pack_never_uses_more_servers_than_spread(
    values, fleet_size, default_context
):
    trace = make_trace(values)
    simulator = FleetSimulator(default_context, WEB_SEARCH, fleet_size=fleet_size)
    packed = simulator.run(trace, "pack")
    spread = simulator.run(trace, "spread")
    # Equal served load, step by step ...
    np.testing.assert_allclose(
        packed.column("served_uips"), spread.column("served_uips"), rtol=1e-9
    )
    # ... with pack never touching more servers than spread.
    assert np.all(
        packed.column("used_servers") <= spread.column("used_servers")
    )
    assert packed.mean_used_servers <= spread.mean_used_servers


@settings(max_examples=10, deadline=None)
@given(values=utilizations)
def test_fleet_replay_is_deterministic(values, default_context):
    trace = make_trace(values)
    simulator = FleetSimulator(
        default_context, WEB_SEARCH, fleet_size=3, autoscaler=Autoscaler()
    )
    first = simulator.run(trace, "pack")
    second = simulator.run(trace, "pack")
    for column in ("energy_j", "serving_servers", "tail_latency_s", "violation"):
        np.testing.assert_array_equal(
            first.column(column), second.column(column), err_msg=column
        )
