"""Tests for the leakage and dynamic power models."""

import pytest
from hypothesis import given, strategies as st

from repro.technology.dynamic_power import DynamicPowerModel
from repro.technology.leakage import LeakageModel
from repro.technology.process import FDSOI_28NM


# -- leakage ---------------------------------------------------------------------


def test_leakage_zero_when_power_gated():
    model = LeakageModel(FDSOI_28NM)
    assert model.power(0.0) == 0.0


def test_leakage_at_nominal_matches_technology_value():
    model = LeakageModel(FDSOI_28NM)
    assert model.power(FDSOI_28NM.nominal_vdd) == pytest.approx(
        FDSOI_28NM.leakage_nominal, rel=1e-6
    )


def test_leakage_decreases_with_voltage():
    model = LeakageModel(FDSOI_28NM)
    assert model.power(0.6) < model.power(1.0) < model.power(1.3)


def test_forward_bias_increases_leakage():
    model = LeakageModel(FDSOI_28NM)
    nominal_vth = FDSOI_28NM.threshold_voltage
    assert model.power(0.8, vth_eff=nominal_vth - 0.1) > model.power(0.8)


def test_reverse_bias_decreases_leakage():
    model = LeakageModel(FDSOI_28NM)
    nominal_vth = FDSOI_28NM.threshold_voltage
    assert model.power(0.8, vth_eff=nominal_vth + 0.1) < model.power(0.8)


def test_temperature_doubles_leakage_per_step():
    model = LeakageModel(FDSOI_28NM, temperature_doubling_kelvin=25.0)
    cold = model.power(1.0, temperature_kelvin=330.0)
    hot = model.power(1.0, temperature_kelvin=355.0)
    assert hot == pytest.approx(2.0 * cold, rel=1e-6)


def test_sleep_power_applies_fraction():
    model = LeakageModel(FDSOI_28NM)
    awake = model.power(0.8)
    assert model.sleep_power(0.8, 0.1) == pytest.approx(0.1 * awake)


# -- dynamic ----------------------------------------------------------------------


def test_dynamic_power_scales_linearly_with_frequency():
    model = DynamicPowerModel()
    p1 = model.power(1.0, 1.0e9)
    p2 = model.power(1.0, 2.0e9)
    assert p2 == pytest.approx(2.0 * p1)


def test_dynamic_power_scales_quadratically_with_voltage():
    model = DynamicPowerModel()
    p1 = model.power(0.5, 1.0e9)
    p2 = model.power(1.0, 1.0e9)
    assert p2 == pytest.approx(4.0 * p1)


def test_activity_reduces_power_but_not_below_clock_tree():
    model = DynamicPowerModel(clock_tree_fraction=0.25)
    full = model.power(1.0, 1.0e9, activity=1.0)
    idle = model.power(1.0, 1.0e9, activity=0.0)
    assert idle == pytest.approx(0.25 * full)


def test_energy_per_cycle_times_frequency_equals_power():
    model = DynamicPowerModel()
    energy = model.energy_per_cycle(0.9, activity=0.7)
    assert energy * 1.5e9 == pytest.approx(model.power(0.9, 1.5e9, activity=0.7))


def test_zero_frequency_gives_zero_power():
    model = DynamicPowerModel()
    assert model.power(1.0, 0.0) == 0.0


def test_invalid_activity_rejected():
    model = DynamicPowerModel()
    with pytest.raises(ValueError):
        model.power(1.0, 1e9, activity=1.2)


@given(
    st.floats(min_value=0.4, max_value=1.3),
    st.floats(min_value=1e8, max_value=3.5e9),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_dynamic_power_is_non_negative(vdd, frequency, activity):
    model = DynamicPowerModel()
    assert model.power(vdd, frequency, activity) >= 0.0
