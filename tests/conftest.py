"""Shared fixtures for the test suite.

Model stacks (configurations, contexts, scenario runs) are expensive
relative to the assertions made on them, and most test modules probe
the same default server.  The session-scoped fixtures here build each
stack once per pytest run; ``scenario_results`` memoises one
:class:`~repro.scenarios.runner.ScenarioResult` per registered scenario
so the golden-regression and property tests share a single execution.

``--update-golden`` regenerates the golden JSON fixtures under
``tests/golden/`` from the current model outputs (see
``tests/test_golden_scenarios.py``).
"""

from pathlib import Path

import pytest

from repro.core.config import default_server
from repro.core.dse import DesignSpaceExplorer
from repro.core.efficiency import EfficiencyAnalyzer
from repro.core.qos import QosAnalyzer
from repro.dvfs import GovernorSimulator, LoadTrace
from repro.scenarios import REGISTRY, ScenarioRunner
from repro.sweep.context import ModelContext
from repro.workloads.banking_vm import VMS_LOW_MEM
from repro.workloads.cloudsuite import WEB_SEARCH

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden scenario fixtures in tests/golden/",
    )
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked @pytest.mark.slow (long trace replays)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    """True when the run should rewrite the golden fixtures."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def golden_dir() -> Path:
    """Directory of the golden scenario fixtures."""
    return GOLDEN_DIR


@pytest.fixture(scope="session")
def default_configuration():
    """The paper's default FD-SOI server configuration."""
    return default_server()


@pytest.fixture(scope="session")
def default_context(default_configuration):
    """A shared model context for the default configuration.

    The context memoises models and operating points; tests must treat
    it as read-only shared state (evaluate/query, never mutate).
    """
    return ModelContext(default_configuration)


@pytest.fixture(scope="session")
def default_explorer(default_configuration):
    """A shared DSE facade over the default configuration (read-only)."""
    return DesignSpaceExplorer(default_configuration)


@pytest.fixture(scope="session")
def efficiency_analyzer(default_configuration):
    """A shared efficiency analyzer for the default configuration."""
    return EfficiencyAnalyzer(default_configuration)


@pytest.fixture(scope="session")
def qos_analyzer(default_configuration):
    """A shared QoS analyzer for the default configuration."""
    return QosAnalyzer(default_configuration)


@pytest.fixture(scope="session")
def diurnal_trace():
    """The default one-day diurnal load trace (48 half-hour steps)."""
    return LoadTrace.diurnal()


@pytest.fixture(scope="session")
def bursty_trace():
    """The default two-hour bursty load trace (120 one-minute steps)."""
    return LoadTrace.bursty()


@pytest.fixture(scope="session")
def websearch_simulator(default_context):
    """A governor simulator for Web Search on the shared default context.

    The simulator memoises its platform view and the context memoises
    the operating points, so every dvfs test shares one set of model
    evaluations.  Treat as read-only shared state (replay, never mutate).
    """
    return GovernorSimulator(default_context, WEB_SEARCH)


@pytest.fixture(scope="session")
def vm_simulator(default_context):
    """A governor simulator for the low-memory VM class (read-only)."""
    return GovernorSimulator(default_context, VMS_LOW_MEM)


@pytest.fixture(scope="session")
def scenario_registry():
    """The built-in scenario registry."""
    return REGISTRY


@pytest.fixture(scope="session")
def scenario_results():
    """Memoised access to scenario runs: ``scenario_results(name)``.

    Each registered scenario is executed at most once per test session;
    golden, property and unit tests all share the same result objects.
    """
    runner = ScenarioRunner()
    cache = {}

    def get(name: str):
        if name not in cache:
            cache[name] = runner.run(name)
        return cache[name]

    return get
