"""Tests for the LLC, crossbar, peripheral and area power/area models."""

import pytest

from repro.power.area import ChipAreaModel
from repro.power.cache_power import CachePowerModel
from repro.power.interconnect_power import CrossbarPowerModel
from repro.power.peripherals import IOPeripheralPowerModel, PeripheralComponent
from repro.utils.units import MB


# -- LLC -------------------------------------------------------------------------


def test_llc_slice_power_about_500mw_per_mb():
    model = CachePowerModel(capacity_bytes=1 * MB)
    assert 0.4 <= model.power_per_mb() <= 0.6


def test_llc_power_mostly_leakage():
    model = CachePowerModel(capacity_bytes=4 * MB)
    assert model.leakage_power() > model.dynamic_power(1.0e8)


def test_llc_power_scales_with_capacity():
    small = CachePowerModel(capacity_bytes=1 * MB)
    large = CachePowerModel(capacity_bytes=4 * MB)
    assert large.leakage_power() == pytest.approx(4.0 * small.leakage_power())


def test_llc_leakage_reduction_lowers_power():
    baseline = CachePowerModel(capacity_bytes=4 * MB)
    reduced = CachePowerModel(capacity_bytes=4 * MB, leakage_reduction=0.5)
    assert reduced.leakage_power() == pytest.approx(0.5 * baseline.leakage_power())


def test_llc_dynamic_power_scales_with_access_rate():
    model = CachePowerModel()
    assert model.dynamic_power(2.0e8) == pytest.approx(2.0 * model.dynamic_power(1.0e8))


def test_llc_rejects_negative_access_rate():
    with pytest.raises(ValueError):
        CachePowerModel().dynamic_power(-1.0)


# -- crossbar ---------------------------------------------------------------------


def test_crossbar_static_power_25mw():
    assert CrossbarPowerModel().total_power() == pytest.approx(0.025)


def test_crossbar_dynamic_power_scales_with_traffic():
    model = CrossbarPowerModel()
    assert model.dynamic_power(2.0e9) == pytest.approx(2.0 * model.dynamic_power(1.0e9))


def test_crossbar_total_is_static_plus_dynamic():
    model = CrossbarPowerModel()
    assert model.total_power(1.0e9) == pytest.approx(
        model.static_power + model.dynamic_power(1.0e9)
    )


# -- peripherals ---------------------------------------------------------------------


def test_peripherals_sum_to_5w():
    assert IOPeripheralPowerModel().peak_power == pytest.approx(5.0)


def test_peripherals_power_nearly_constant_with_utilization():
    model = IOPeripheralPowerModel()
    assert model.power(0.0) >= 0.85 * model.power(1.0)


def test_peripherals_breakdown_matches_total():
    model = IOPeripheralPowerModel()
    assert sum(model.breakdown(1.0).values()) == pytest.approx(model.power(1.0))


def test_peripherals_scaled_copy():
    half = IOPeripheralPowerModel().scaled(0.5)
    assert half.peak_power == pytest.approx(2.5)


def test_peripheral_component_idle_floor():
    component = PeripheralComponent("x", peak_power=2.0, idle_fraction=0.5)
    assert component.power(0.0) == pytest.approx(1.0)
    assert component.power(1.0) == pytest.approx(2.0)


def test_peripheral_component_rejects_bad_utilization():
    component = PeripheralComponent("x", peak_power=2.0)
    with pytest.raises(ValueError):
        component.power(1.5)


# -- area ------------------------------------------------------------------------------


def test_nine_four_core_clusters_fit_300mm2():
    model = ChipAreaModel()
    assert model.max_clusters(cores_per_cluster=4, llc_bytes=4 * MB) == 9


def test_ten_clusters_do_not_fit():
    model = ChipAreaModel()
    assert not model.fits(10, 4, 4 * MB)


def test_chip_area_below_budget_for_paper_organisation():
    model = ChipAreaModel()
    area = model.chip_area(9, 4, 4 * MB)
    assert area <= 300.0


def test_sixteen_core_cluster_is_larger():
    model = ChipAreaModel()
    assert model.cluster_area(16, 4 * MB) > model.cluster_area(4, 4 * MB)


def test_cluster_area_rejects_non_positive_cores():
    with pytest.raises(ValueError):
        ChipAreaModel().cluster_area(0, 4 * MB)
