"""Tests for uncore / SoC / server power aggregation."""

import pytest

from repro.power.server import ServerPowerModel
from repro.power.soc import SoCPowerModel
from repro.power.uncore import UncorePowerModel
from repro.utils.units import ghz


def test_uncore_power_around_22w():
    # 9 clusters x (4MB LLC + crossbar) + 5W peripherals.
    assert 18.0 <= UncorePowerModel().power() <= 26.0


def test_uncore_breakdown_sums_to_total():
    model = UncorePowerModel()
    assert sum(model.breakdown().values()) == pytest.approx(model.power())


def test_uncore_constant_with_core_voltage_by_default():
    model = UncorePowerModel()
    assert model.power(core_voltage_ratio=0.4) == pytest.approx(
        model.power(core_voltage_ratio=1.0)
    )


def test_uncore_voltage_scaling_ablation():
    model = UncorePowerModel(voltage_scales_with_core=True)
    assert model.power(core_voltage_ratio=0.5) == pytest.approx(
        0.25 * model.power(core_voltage_ratio=1.0)
    )


def test_soc_power_breakdown_consistency():
    model = SoCPowerModel()
    breakdown = model.breakdown(ghz(1))
    assert breakdown.total == pytest.approx(
        breakdown.core_power + breakdown.uncore_power
    )
    assert breakdown.uncore_power == pytest.approx(
        breakdown.llc_power + breakdown.crossbar_power + breakdown.peripheral_power
    )


def test_soc_core_power_scales_with_frequency():
    model = SoCPowerModel()
    assert model.core_power(ghz(2)) > model.core_power(ghz(0.5))


def test_soc_uncore_floor_does_not_scale_with_frequency():
    model = SoCPowerModel()
    low = model.breakdown(ghz(0.2))
    high = model.breakdown(ghz(2))
    assert low.uncore_power == pytest.approx(high.uncore_power)


def test_soc_total_under_100w_budget_at_nominal():
    model = SoCPowerModel()
    assert model.total_power(ghz(2), activity=0.8) < 100.0


def test_server_breakdown_adds_memory():
    model = ServerPowerModel()
    breakdown = model.breakdown(ghz(1), memory_read_bandwidth=5e9)
    assert breakdown.total == pytest.approx(
        breakdown.soc.total + breakdown.memory_power
    )
    assert breakdown.memory_background_power > 10.0


def test_server_memory_dynamic_power_scales_with_bandwidth():
    model = ServerPowerModel()
    low = model.breakdown(ghz(1), memory_read_bandwidth=1e9)
    high = model.breakdown(ghz(1), memory_read_bandwidth=10e9)
    assert high.memory_dynamic_power > low.memory_dynamic_power
    assert high.memory_background_power == pytest.approx(low.memory_background_power)


def test_server_total_power_helper_matches_breakdown():
    model = ServerPowerModel()
    assert model.total_power(ghz(1.2), memory_read_bandwidth=3e9) == pytest.approx(
        model.breakdown(ghz(1.2), memory_read_bandwidth=3e9).total
    )


def test_invalid_core_count_rejected():
    with pytest.raises(ValueError):
        SoCPowerModel(core_count=0)
