"""Tests for energy-proportionality analysis and consolidation planning."""

import pytest

from repro.core.config import default_server
from repro.core.consolidation import ConsolidationAnalyzer
from repro.core.energy_proportionality import EnergyProportionalityAnalyzer
from repro.power.dram_power import LPDDR4_4GBIT_X8
from repro.utils.units import ghz, mhz
from repro.workloads.banking_vm import VMS_HIGH_MEM, VMS_LOW_MEM
from repro.workloads.cloudsuite import DATA_SERVING, WEB_SEARCH


# -- energy proportionality -----------------------------------------------------------


@pytest.fixture(scope="module")
def ep(default_configuration):
    return EnergyProportionalityAnalyzer(default_configuration)


def test_proportionality_index_between_zero_and_one(ep):
    index = ep.proportionality_index(DATA_SERVING)
    assert 0.0 <= index <= 1.0


def test_fixed_power_fraction_grows_at_low_frequency(ep):
    low = ep.fixed_power_fraction(DATA_SERVING, mhz(200))
    high = ep.fixed_power_fraction(DATA_SERVING, ghz(2))
    assert low > high


def test_report_fields(ep):
    report = ep.report(WEB_SEARCH)
    assert report.workload_name == "Web Search"
    assert 0.0 <= report.proportionality_index <= 1.0
    assert report.fixed_power_fraction_at_floor > report.fixed_power_fraction_at_nominal
    assert report.server_optimum_hz >= mhz(800)


def test_lpddr4_improves_proportionality(ep):
    comparison = ep.memory_technology_comparison(DATA_SERVING)
    ddr4 = comparison["ddr4-4gbit-x8"]
    lpddr4 = comparison["lpddr4-4gbit-x8"]
    assert lpddr4.proportionality_index > ddr4.proportionality_index


def test_lpddr4_moves_server_optimum_down_or_equal(ep):
    comparison = ep.memory_technology_comparison(DATA_SERVING)
    assert (
        comparison["lpddr4-4gbit-x8"].server_optimum_hz
        <= comparison["ddr4-4gbit-x8"].server_optimum_hz
    )


def test_custom_alternative_chip(ep):
    comparison = ep.memory_technology_comparison(WEB_SEARCH, LPDDR4_4GBIT_X8)
    assert set(comparison) == {"ddr4-4gbit-x8", "lpddr4-4gbit-x8"}


# -- consolidation -----------------------------------------------------------------------


@pytest.fixture(scope="module")
def consolidation(default_configuration):
    return ConsolidationAnalyzer(default_configuration)


def test_plan_counts_vms_and_power(consolidation):
    plan = consolidation.plan(VMS_LOW_MEM, ghz(1), vms_per_core=1)
    assert plan.vm_count == 36
    assert plan.server_power > 0
    assert plan.energy_per_giga_instructions > 0
    assert not plan.memory_capacity_limited


def test_high_mem_vms_limited_by_memory_capacity(consolidation):
    plan = consolidation.plan(VMS_HIGH_MEM, ghz(1), vms_per_core=3)
    # 108 VMs x 700MB = ~74GB exceeds the 64GB server.
    assert plan.memory_capacity_limited
    assert plan.vm_count < 108


def test_max_vms_per_core_grows_at_high_frequency(consolidation):
    low = consolidation.max_vms_per_core(VMS_LOW_MEM, mhz(500))
    high = consolidation.max_vms_per_core(VMS_LOW_MEM, ghz(2))
    assert high >= low
    assert high >= 3


def test_max_vms_per_core_zero_when_bound_already_violated():
    analyzer = ConsolidationAnalyzer(default_server(), degradation_bound=1.05)
    assert analyzer.max_vms_per_core(VMS_LOW_MEM, mhz(200)) == 0


def test_best_plan_meets_degradation_bound(consolidation):
    plan = consolidation.best_plan(VMS_LOW_MEM)
    assert plan.degradation <= 4.0 + 1e-9
    assert plan.vm_count >= 36


def test_best_plan_beats_naive_nominal_plan(consolidation):
    best = consolidation.best_plan(VMS_LOW_MEM)
    naive = consolidation.plan(VMS_LOW_MEM, ghz(2), vms_per_core=1)
    assert best.energy_per_giga_instructions <= naive.energy_per_giga_instructions


def test_plan_rejects_zero_vms_per_core(consolidation):
    with pytest.raises(ValueError):
        consolidation.plan(VMS_LOW_MEM, ghz(1), vms_per_core=0)


def test_qos_floor_for_scale_out_via_consolidation(consolidation):
    floor = consolidation.qos_floor(DATA_SERVING)
    assert floor is not None
    assert floor <= mhz(500)
