"""Kernel-vs-reference equivalence for single-server governor replays.

The contract the tentpole rests on: the vectorized kernel path and the
object-based reference path produce **bit-for-bit identical** replay
tables -- every column, every governor, scale-out and VM workloads,
smooth and bursty traces.  Nothing here uses tolerances: equality is
``np.array_equal`` on the raw arrays.
"""

import numpy as np
import pytest

from repro.dvfs import GOVERNORS, GovernorSimulator, LoadTrace
from repro.dvfs.governors import PerformanceGovernor
from repro.dvfs.replay import REPLAY_COLUMNS
from repro.kernels import has_kernel, select_trace_indices
from repro.workloads.cloudsuite import WEB_SEARCH


def assert_bit_identical(kernel, reference) -> None:
    assert len(kernel) == len(reference)
    for name in REPLAY_COLUMNS:
        assert np.array_equal(
            kernel.column(name), reference.column(name), equal_nan=True
        ), f"column {name} differs between kernel and reference"


@pytest.mark.parametrize("governor", sorted(GOVERNORS))
@pytest.mark.parametrize("trace_name", ["diurnal", "bursty"])
def test_websearch_replay_bit_identical(
    governor, trace_name, websearch_simulator, diurnal_trace, bursty_trace
):
    trace = diurnal_trace if trace_name == "diurnal" else bursty_trace
    kernel = websearch_simulator.replay(trace, governor)
    reference = websearch_simulator.replay(trace, governor, reference=True)
    assert_bit_identical(kernel, reference)
    assert kernel.summary() == reference.summary()


@pytest.mark.parametrize("governor", sorted(GOVERNORS))
def test_vm_replay_bit_identical(governor, vm_simulator, bursty_trace):
    kernel = vm_simulator.replay(bursty_trace, governor)
    reference = vm_simulator.replay(bursty_trace, governor, reference=True)
    assert_bit_identical(kernel, reference)


def test_extreme_loads_bit_identical(websearch_simulator):
    """Zero, saturating and beyond-coverage loads hit every fallback."""
    trace = LoadTrace(
        name="edges",
        step_seconds=60.0,
        utilization=(0.0, 1.0, 0.01, 0.999, 0.5, 0.0, 1.0),
    )
    for governor in GOVERNORS:
        assert_bit_identical(
            websearch_simulator.replay(trace, governor),
            websearch_simulator.replay(trace, governor, reference=True),
        )


def test_compare_supports_reference_flag(websearch_simulator, bursty_trace):
    kernel = websearch_simulator.compare(bursty_trace)
    reference = websearch_simulator.compare(bursty_trace, reference=True)
    assert list(kernel) == list(reference) == list(GOVERNORS)
    for name in GOVERNORS:
        assert_bit_identical(kernel[name], reference[name])


def test_custom_governor_subclass_takes_the_reference_path(
    default_context, bursty_trace
):
    """Exact-type dispatch: overridden policies are never hijacked."""

    class FloorGovernor(PerformanceGovernor):
        name = "floor"

        def select(self, observation, platform):
            return platform.min_frequency_hz

    governor = FloorGovernor()
    assert not has_kernel(governor)
    simulator = GovernorSimulator(default_context, WEB_SEARCH)
    replay = simulator.replay(bursty_trace, governor)
    # The subclass's select ran: everything at the minimum frequency,
    # not the base class's kernel answer (the nominal maximum).
    assert set(replay.column("frequency_hz")) == {
        simulator.platform.min_frequency_hz
    }


def test_conservative_indices_move_one_notch_at_most(
    websearch_simulator, bursty_trace
):
    from repro.dvfs.governors import governor_by_name

    table = websearch_simulator.table
    indices = select_trace_indices(
        governor_by_name("conservative"),
        table,
        np.asarray(bursty_trace.utilization),
    )
    assert np.all(indices >= 0)
    assert np.all(indices < len(table))
    assert np.all(np.abs(np.diff(indices)) <= 1)
