"""Atomic writes and digest-validated checkpoints.

The kill-mid-write regression is the satellite this file exists for:
an interrupted :func:`atomic_write_text` must leave either the old
complete file or the new complete file on disk, never truncated bytes.
The checkpoint tests pin that every damaged-file mode (truncated,
bit-rotted, wrong schema, wrong format, stale fingerprint) is rejected
with a precise :class:`CheckpointError` and treated as absent by
:meth:`CheckpointStore.load_valid` so callers rebuild.
"""

import json
import math
import os
from unittest import mock

import pytest

from repro.resilience import (
    CheckpointError,
    CheckpointStore,
    atomic_write_text,
    decode_floats,
    encode_floats,
    read_checkpoint,
    write_checkpoint,
)


# -- atomic writes ---------------------------------------------------------------------


def test_atomic_write_creates_parents_and_content(tmp_path):
    target = tmp_path / "deep" / "nested" / "out.json"
    atomic_write_text(target, '{"ok": true}\n')
    assert target.read_text() == '{"ok": true}\n'
    # No temporary litter left behind.
    assert os.listdir(target.parent) == ["out.json"]


def test_kill_mid_write_never_leaves_a_truncated_file(tmp_path):
    """Regression: a crash during the write leaves the old file intact."""
    target = tmp_path / "artifact.json"
    atomic_write_text(target, "old complete contents\n")

    class Killed(BaseException):
        """Simulates SIGKILL-like interruption inside the write."""

    real_replace = os.replace
    with mock.patch("os.replace", side_effect=Killed):
        with pytest.raises(Killed):
            atomic_write_text(target, "new contents that never landed\n")
    # The old artifact is still complete, byte for byte...
    assert target.read_text() == "old complete contents\n"
    # ...and the aborted temp file was cleaned up.
    assert os.listdir(tmp_path) == ["artifact.json"]
    atomic_write_text(target, "second attempt\n")
    assert target.read_text() == "second attempt\n"
    assert os.replace is real_replace


# -- float sentinels -------------------------------------------------------------------


def test_nonfinite_floats_round_trip_through_sentinels():
    payload = {
        "objective": math.inf,
        "neg": -math.inf,
        "nan": math.nan,
        "plain": 0.1 + 0.2,
        "nested": [1, {"x": math.inf}, None, True],
    }
    encoded = encode_floats(payload)
    text = json.dumps(encoded, allow_nan=False)  # strict JSON accepts it
    decoded = decode_floats(json.loads(text))
    assert decoded["objective"] == math.inf
    assert decoded["neg"] == -math.inf
    assert math.isnan(decoded["nan"])
    assert decoded["plain"] == payload["plain"]  # bit-exact round trip
    assert decoded["nested"] == [1, {"x": math.inf}, None, True]


def test_unknown_sentinel_is_rejected():
    with pytest.raises(CheckpointError, match="sentinel"):
        decode_floats({"__nonfinite__": "huge"})


# -- checkpoint envelopes --------------------------------------------------------------


def test_checkpoint_round_trip(tmp_path):
    path = tmp_path / "rung_000.json"
    payload = {"trials": [1, 2, 3], "value": 0.25}
    write_checkpoint(path, payload)
    assert read_checkpoint(path) == payload


def test_missing_checkpoint_is_a_precise_error(tmp_path):
    with pytest.raises(CheckpointError, match="does not exist"):
        read_checkpoint(tmp_path / "absent.json")


def test_truncated_checkpoint_is_rejected(tmp_path):
    path = tmp_path / "rung_000.json"
    write_checkpoint(path, {"trials": list(range(50))})
    text = path.read_text()
    path.write_text(text[: len(text) // 2])
    with pytest.raises(CheckpointError, match="truncated or corrupt"):
        read_checkpoint(path)


def test_bit_rot_fails_the_digest(tmp_path):
    path = tmp_path / "rung_000.json"
    write_checkpoint(path, {"value": 123})
    damaged = path.read_text().replace("123", "124")
    path.write_text(damaged)
    with pytest.raises(CheckpointError, match="digest mismatch"):
        read_checkpoint(path)


def test_wrong_shape_and_format_are_rejected(tmp_path):
    path = tmp_path / "x.json"
    path.write_text('{"not": "an envelope"}')
    with pytest.raises(CheckpointError, match="envelope"):
        read_checkpoint(path)
    path.write_text(
        json.dumps({"format": "future.v9", "digest": "0" * 64, "payload": {}})
    )
    with pytest.raises(CheckpointError, match="unknown format"):
        read_checkpoint(path)


def test_non_serializable_payload_is_rejected_up_front(tmp_path):
    with pytest.raises(CheckpointError, match="not strict-JSON"):
        write_checkpoint(tmp_path / "bad.json", {"objective": math.inf})


# -- the store -------------------------------------------------------------------------


def test_store_fingerprint_gates_resume(tmp_path):
    store = CheckpointStore(tmp_path, fingerprint="run-a")
    store.save("rung_000", {"trials": [1]})
    assert store.load("rung_000")["trials"] == [1]
    assert store.load_valid("rung_000")["trials"] == [1]

    # A different run configuration must not resume these bytes.
    other = CheckpointStore(tmp_path, fingerprint="run-b")
    with pytest.raises(CheckpointError, match="fingerprint"):
        other.load("rung_000")
    assert other.load_valid("rung_000") is None


def test_store_rejects_non_object_payloads(tmp_path):
    store = CheckpointStore(tmp_path, fingerprint="f")
    write_checkpoint(store.path("rung_000"), [1, 2, 3])
    with pytest.raises(CheckpointError, match="expected an object"):
        store.load("rung_000")
    assert store.load_valid("rung_000") is None


def test_store_treats_damage_as_absent(tmp_path):
    store = CheckpointStore(tmp_path, fingerprint="f")
    assert store.load_valid("rung_000") is None
    store.save("rung_000", {"trials": [1]})
    path = store.path("rung_000")
    path.write_text(path.read_text()[:30])
    assert store.load_valid("rung_000") is None
    # Rebuild over the damage works.
    store.save("rung_000", {"trials": [2]})
    assert store.load_valid("rung_000")["trials"] == [2]
