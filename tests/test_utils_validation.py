"""Tests for argument validation helpers."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability_sum,
)


def test_check_positive_accepts_positive():
    assert check_positive("x", 0.1) == 0.1


def test_check_positive_rejects_zero():
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive("x", 0.0)


def test_check_positive_rejects_negative():
    with pytest.raises(ValueError):
        check_positive("x", -1.0)


def test_check_non_negative_accepts_zero():
    assert check_non_negative("x", 0.0) == 0.0


def test_check_non_negative_rejects_negative():
    with pytest.raises(ValueError):
        check_non_negative("x", -0.001)


def test_check_in_range_bounds_inclusive():
    assert check_in_range("x", 0.5, 0.5, 1.0) == 0.5
    assert check_in_range("x", 1.0, 0.5, 1.0) == 1.0


def test_check_in_range_rejects_outside():
    with pytest.raises(ValueError):
        check_in_range("x", 1.01, 0.0, 1.0)


def test_check_fraction_accepts_half():
    assert check_fraction("x", 0.5) == 0.5


def test_check_fraction_rejects_above_one():
    with pytest.raises(ValueError):
        check_fraction("x", 1.5)


def test_check_probability_sum_accepts_valid():
    values = [0.2, 0.3, 0.5]
    assert check_probability_sum("mix", values) == values


def test_check_probability_sum_rejects_invalid():
    with pytest.raises(ValueError):
        check_probability_sum("mix", [0.2, 0.2])
