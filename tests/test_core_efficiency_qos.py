"""Tests for the efficiency and QoS analyzers (Figures 2-4 behaviour)."""

import pytest

from repro.core.efficiency import EfficiencyScope
from repro.utils.units import ghz, mhz
from repro.workloads.banking_vm import (
    DEGRADATION_LIMIT_RELAXED,
    DEGRADATION_LIMIT_STRICT,
    VMS_HIGH_MEM,
    VMS_LOW_MEM,
)
from repro.workloads.cloudsuite import DATA_SERVING, WEB_SEARCH, scale_out_workloads


# The analyzers are session-scoped in tests/conftest.py so every module
# probing the default server shares one model stack.


@pytest.fixture
def efficiency(efficiency_analyzer):
    return efficiency_analyzer


@pytest.fixture
def qos(qos_analyzer):
    return qos_analyzer


# -- efficiency ---------------------------------------------------------------------


def test_power_ordering_cores_soc_server(efficiency):
    for frequency in (mhz(300), ghz(1), ghz(2)):
        cores = efficiency.power(WEB_SEARCH, frequency, EfficiencyScope.CORES)
        soc = efficiency.power(WEB_SEARCH, frequency, EfficiencyScope.SOC)
        server = efficiency.power(WEB_SEARCH, frequency, EfficiencyScope.SERVER)
        assert cores < soc < server


def test_cores_efficiency_monotonically_improves_toward_low_frequency(efficiency):
    curve = efficiency.curve(DATA_SERVING, EfficiencyScope.CORES)
    values = [point.efficiency for point in curve]
    # The curve is ordered by increasing frequency; efficiency must fall.
    assert all(earlier >= later for earlier, later in zip(values, values[1:]))


def test_cores_optimum_at_lowest_reachable_frequency(efficiency):
    optimum = efficiency.optimal_frequency(DATA_SERVING, EfficiencyScope.CORES)
    grid = efficiency.reachable_frequencies()
    assert optimum.frequency_hz == pytest.approx(grid[0])


def test_soc_optimum_near_1ghz(efficiency):
    for workload in scale_out_workloads().values():
        optimum = efficiency.optimal_frequency(workload, EfficiencyScope.SOC)
        assert mhz(600) <= optimum.frequency_hz <= mhz(1400)


def test_server_optimum_at_or_above_soc_optimum(efficiency):
    for workload in list(scale_out_workloads().values()) + [VMS_LOW_MEM, VMS_HIGH_MEM]:
        soc = efficiency.optimal_frequency(workload, EfficiencyScope.SOC)
        server = efficiency.optimal_frequency(workload, EfficiencyScope.SERVER)
        assert server.frequency_hz >= soc.frequency_hz


def test_server_optimum_for_scale_out_near_1_2ghz(efficiency):
    optimum = efficiency.optimal_frequency(DATA_SERVING, EfficiencyScope.SERVER)
    assert mhz(900) <= optimum.frequency_hz <= mhz(1500)


def test_efficiency_point_units(efficiency):
    point = efficiency.efficiency(WEB_SEARCH, ghz(1), EfficiencyScope.SERVER)
    assert point.efficiency == pytest.approx(point.chip_uips / point.power_watts)
    assert point.efficiency_guips_per_watt == pytest.approx(point.efficiency / 1e9)


def test_optimal_frequencies_all_scopes_keys(efficiency):
    optima = efficiency.optimal_frequencies_all_scopes(WEB_SEARCH)
    assert set(optima) == {"cores", "soc", "server"}


def test_reachable_frequencies_sorted_and_within_grid(efficiency):
    grid = efficiency.reachable_frequencies()
    assert grid == sorted(grid)
    assert min(grid) >= mhz(100)
    assert max(grid) <= ghz(2)


def test_curve_with_custom_grid(efficiency):
    points = efficiency.curve(WEB_SEARCH, EfficiencyScope.SOC, [mhz(500), ghz(1)])
    assert len(points) == 2


# -- QoS -------------------------------------------------------------------------------


def test_all_scale_out_floors_in_200_to_500mhz(qos):
    for workload in scale_out_workloads().values():
        floor = qos.qos_frequency_floor(workload)
        assert floor is not None
        assert mhz(200) <= floor <= mhz(500)


def test_latency_curve_monotone_decreasing_with_frequency(qos):
    result = qos.latency_curve(DATA_SERVING)
    latencies = [point.latency_seconds for point in result.points]
    assert all(earlier >= later for earlier, later in zip(latencies, latencies[1:]))


def test_latency_normalized_below_one_at_nominal(qos):
    result = qos.latency_curve(WEB_SEARCH)
    assert result.points[-1].normalized_to_qos < 1.0


def test_latency_violates_qos_at_100mhz(qos):
    result = qos.latency_curve(DATA_SERVING)
    assert result.points[0].normalized_to_qos > 1.0


def test_qos_floor_consistent_with_meets_qos_list(qos):
    result = qos.latency_curve(WEB_SEARCH)
    assert result.qos_floor_hz == min(result.meets_qos_at)


def test_vm_relaxed_floor_at_or_below_500mhz(qos):
    for workload in (VMS_LOW_MEM, VMS_HIGH_MEM):
        floor = qos.degradation_frequency_floor(workload, DEGRADATION_LIMIT_RELAXED)
        assert floor is not None
        assert floor <= mhz(500)


def test_vm_strict_floor_at_or_below_1ghz(qos):
    for workload in (VMS_LOW_MEM, VMS_HIGH_MEM):
        floor = qos.degradation_frequency_floor(workload, DEGRADATION_LIMIT_STRICT)
        assert floor is not None
        assert floor <= ghz(1)


def test_strict_floor_above_relaxed_floor(qos):
    relaxed = qos.degradation_frequency_floor(VMS_LOW_MEM, DEGRADATION_LIMIT_RELAXED)
    strict = qos.degradation_frequency_floor(VMS_LOW_MEM, DEGRADATION_LIMIT_STRICT)
    assert strict >= relaxed


def test_degradation_curve_monotone(qos):
    result = qos.degradation_curve(VMS_LOW_MEM)
    assert list(result.degradations) == sorted(result.degradations, reverse=True)
    assert result.floor_strict_hz >= result.floor_relaxed_hz


def test_degradation_at_nominal_is_one(qos):
    result = qos.degradation_curve(VMS_HIGH_MEM)
    assert result.degradations[-1] == pytest.approx(1.0)


def test_frequency_floor_dispatches_by_class(qos):
    assert qos.frequency_floor(DATA_SERVING) == qos.qos_frequency_floor(DATA_SERVING)
    assert qos.frequency_floor(VMS_LOW_MEM) == qos.degradation_frequency_floor(
        VMS_LOW_MEM, DEGRADATION_LIMIT_RELAXED
    )
