"""Property tests over the DVFS governor replay layer.

The four invariants the satellite layer locks down:

* the ``performance`` governor's energy bounds every other governor's
  from above on the same trace (server power is monotone in frequency
  and performance pins the top, so the bound holds per step);
* ``qos_tracker`` never exceeds the degradation bound on virtualized
  workloads (its fallback, the nominal point, has degradation 1);
* a constant-load replay equals the corresponding single-point
  :class:`ModelContext` evaluation repeated;
* step-energy sums of memoryless governors are invariant under trace
  reordering (each step's energy depends only on its own load).

Traces are hypothesis-sampled; the simulators come from the shared
session fixtures, so hypothesis' many examples reuse one set of
memoized operating points.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvfs import GOVERNORS, MEMORYLESS_GOVERNORS, LoadTrace

utilizations = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=24,
)


def make_trace(values, step_seconds=60.0) -> LoadTrace:
    return LoadTrace(
        name="sampled", step_seconds=step_seconds, utilization=tuple(values)
    )


@settings(max_examples=25, deadline=None)
@given(values=utilizations)
def test_performance_energy_bounds_every_governor(
    values, websearch_simulator
):
    trace = make_trace(values)
    replays = websearch_simulator.compare(trace)
    performance = replays["performance"]
    for name, replay in replays.items():
        # The bound holds step by step, hence also in total.
        assert np.all(
            replay.column("energy_j")
            <= performance.column("energy_j") * (1 + 1e-12)
        ), name
        assert replay.total_energy_j <= performance.total_energy_j * (
            1 + 1e-12
        ), name


@settings(max_examples=25, deadline=None)
@given(values=utilizations)
def test_qos_tracker_never_exceeds_the_degradation_bound(
    values, vm_simulator
):
    trace = make_trace(values)
    replay = vm_simulator.replay(trace, "qos_tracker")
    degradation = replay.column("qos_metric")
    bound = vm_simulator.context.degradation_bound
    assert np.all(degradation <= bound + 1e-9)
    assert replay.violation_count == 0


@settings(max_examples=15, deadline=None)
@given(
    utilization=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    steps=st.integers(min_value=1, max_value=12),
)
def test_constant_load_equals_point_evaluation(
    utilization, steps, websearch_simulator, default_context
):
    from repro.workloads.cloudsuite import WEB_SEARCH

    trace = LoadTrace.constant(utilization, steps=steps, step_seconds=30.0)
    for name in MEMORYLESS_GOVERNORS:
        replay = websearch_simulator.replay(trace, name)
        frequencies = set(replay.column("frequency_hz"))
        assert len(frequencies) == 1, f"{name} moved at constant load"
        record = default_context.evaluate(WEB_SEARCH, frequencies.pop())
        assert np.all(replay.column("power_w") == record.server_power)
        assert np.all(replay.column("qos_ok") == record.meets_qos)
    # Conservative ramps through a transient at constant load, but every
    # step still equals the point evaluation at that step's frequency.
    replay = websearch_simulator.replay(trace, "conservative")
    for frequency, power, capacity in zip(
        replay.column("frequency_hz"),
        replay.column("power_w"),
        replay.column("capacity_uips"),
    ):
        record = default_context.evaluate(WEB_SEARCH, float(frequency))
        assert power == record.server_power
        assert capacity == record.chip_uips


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_step_energy_sums_are_order_independent(data, websearch_simulator):
    values = data.draw(utilizations)
    order = data.draw(st.permutations(range(len(values))))
    trace = make_trace(values)
    shuffled = trace.permuted(order)
    for name in MEMORYLESS_GOVERNORS:
        original = websearch_simulator.replay(trace, name)
        permuted = websearch_simulator.replay(shuffled, name)
        # A memoryless policy maps each step independently, so the
        # energy column is permuted with the trace ...
        assert np.array_equal(
            original.column("energy_j")[list(order)],
            permuted.column("energy_j"),
        ), name
        # ... and the total is exactly invariant (same multiset of
        # float addends in a different order is summed pairwise by
        # numpy; compare via the sorted columns to stay exact).
        assert np.array_equal(
            np.sort(original.column("energy_j")),
            np.sort(permuted.column("energy_j")),
        ), name
        assert permuted.total_energy_j == pytest.approx(
            original.total_energy_j, rel=1e-12
        ), name


@settings(max_examples=10, deadline=None)
@given(values=utilizations)
def test_replay_is_deterministic_for_every_governor(
    values, websearch_simulator
):
    trace = make_trace(values)
    for name in GOVERNORS:
        first = websearch_simulator.replay(trace, name)
        second = websearch_simulator.replay(trace, name)
        for column in ("frequency_hz", "energy_j", "violation"):
            assert np.array_equal(
                first.column(column), second.column(column)
            ), (name, column)
