"""Tests for the batched sweep engine (context, columnar result, runner).

The central guarantee: the batched :class:`SweepRunner` -- serial or
thread-parallel -- produces records numerically identical to evaluating
every point through a fresh per-point :class:`DesignSpaceExplorer`, and
``summarize_all`` resolves each (workload, frequency) point exactly
once.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import default_server
from repro.core.dse import DesignSpaceExplorer
from repro.core.efficiency import EfficiencyScope
from repro.sweep import ModelContext, SweepResult, SweepRunner
from repro.utils.units import ghz, mhz
from repro.workloads.banking_vm import virtualized_workloads
from repro.workloads.base import WorkloadCharacteristics, WorkloadClass
from repro.workloads.cloudsuite import scale_out_workloads


def _scale_out(name, base_cpi, l1_mpki, llc_fraction, mlp, activity, headroom):
    return WorkloadCharacteristics(
        name=name,
        workload_class=WorkloadClass.SCALE_OUT,
        base_cpi=base_cpi,
        branch_fraction=0.15,
        branch_predictability=0.9,
        l1_mpki=l1_mpki,
        llc_mpki=l1_mpki * llc_fraction,
        memory_level_parallelism=mlp,
        activity_factor=activity,
        write_fraction=0.3,
        instructions_per_request=1.0e6,
        minimum_latency_99th_seconds=0.001,
        qos_limit_seconds=0.001 * headroom,
    )


def _virtualized(name, base_cpi, l1_mpki, llc_fraction, mlp, activity, _headroom):
    return WorkloadCharacteristics(
        name=name,
        workload_class=WorkloadClass.VIRTUALIZED,
        base_cpi=base_cpi,
        branch_fraction=0.15,
        branch_predictability=0.9,
        l1_mpki=l1_mpki,
        llc_mpki=l1_mpki * llc_fraction,
        memory_level_parallelism=mlp,
        activity_factor=activity,
        write_fraction=0.3,
    )


workload_params = st.tuples(
    st.booleans(),
    st.floats(min_value=0.4, max_value=1.5),
    st.floats(min_value=1.0, max_value=60.0),
    st.floats(min_value=0.05, max_value=1.0),
    st.floats(min_value=1.0, max_value=6.0),
    st.floats(min_value=0.3, max_value=1.0),
    st.floats(min_value=2.0, max_value=20.0),
)


def _build_workload(index, params):
    scale_out, base_cpi, l1_mpki, llc_fraction, mlp, activity, headroom = params
    builder = _scale_out if scale_out else _virtualized
    return builder(
        f"random-{index}", base_cpi, l1_mpki, llc_fraction, mlp, activity, headroom
    )


grids = st.lists(
    st.sampled_from(
        [mhz(150), mhz(300), mhz(500), mhz(900), ghz(1.3), ghz(1.7), ghz(2.0)]
    ),
    min_size=1,
    max_size=4,
    unique=True,
)


@settings(max_examples=15, deadline=None)
@given(params_list=st.lists(workload_params, min_size=1, max_size=3), grid=grids)
def test_sweep_runner_matches_per_point_explorer(params_list, grid):
    """Batched serial and parallel sweeps == fresh per-point evaluation."""
    configuration = default_server()
    workloads = [
        _build_workload(index, params) for index, params in enumerate(params_list)
    ]

    serial = SweepRunner.for_configuration(configuration).run(workloads, grid)
    parallel = SweepRunner.for_configuration(configuration, parallel=True).run(
        workloads, grid
    )

    expected = []
    for workload in workloads:
        for frequency in grid:
            # A fresh explorer per point: no state shared with the runner.
            explorer = DesignSpaceExplorer(configuration)
            if not explorer.context.is_reachable(frequency):
                continue
            expected.append(explorer.evaluate(workload, frequency))

    assert len(serial) == len(expected)
    assert serial.to_records() == expected
    assert parallel.to_records() == expected


def test_parallel_sweep_orders_rows_deterministically():
    configuration = default_server()
    workloads = list(scale_out_workloads().values()) + list(
        virtualized_workloads().values()
    )
    serial = SweepRunner.for_configuration(configuration).run(workloads)
    parallel = SweepRunner.for_configuration(
        configuration, parallel=True, max_workers=3
    ).run(workloads)
    assert serial.to_records() == parallel.to_records()


def test_summarize_all_evaluates_each_point_exactly_once():
    explorer = DesignSpaceExplorer(default_server())
    workloads = list(scale_out_workloads().values()) + list(
        virtualized_workloads().values()
    )
    summaries = explorer.summarize_all(workloads)
    grid = explorer.context.reachable_frequencies()
    assert explorer.context.evaluated_points == len(workloads) * len(grid)
    assert [summary.workload_name for summary in summaries] == [
        workload.name for workload in workloads
    ]
    # Re-summarising hits the record cache: no new evaluations.
    explorer.summarize_all(workloads)
    assert explorer.context.evaluated_points == len(workloads) * len(grid)


def test_summarize_workload_matches_batched_summaries():
    configuration = default_server()
    workloads = list(scale_out_workloads().values())
    runner = SweepRunner.for_configuration(configuration)
    result = runner.run(workloads)
    batched = runner.summarize(workloads)
    assert [
        SweepRunner.summarize_workload(result, workload.name)
        for workload in workloads
    ] == batched
    with pytest.raises(ValueError, match="no rows"):
        SweepRunner.summarize_workload(result, "no-such-workload")


def test_summarize_matches_per_workload_summaries():
    explorer = DesignSpaceExplorer(default_server())
    workloads = list(scale_out_workloads().values())
    batched = explorer.summarize_all(workloads)
    individual = [explorer.summarize(workload) for workload in workloads]
    assert batched == individual


# -- ModelContext -----------------------------------------------------------------------


def test_context_caches_operating_points_and_models():
    context = ModelContext(default_server())
    assert context.performance_model is context.performance_model
    assert context.soc_power_model is context.soc_power_model
    first = context.operating_point(ghz(1.0), 0.7)
    assert context.operating_point(ghz(1.0), 0.7) is first
    assert context.is_reachable(ghz(1.0))
    assert not context.is_reachable(ghz(10.0))


def test_context_reachable_frequencies_preserve_order():
    context = ModelContext(default_server())
    grid = [ghz(2.0), mhz(500), ghz(1.0)]
    assert context.reachable_frequencies(grid) == (ghz(2.0), mhz(500), ghz(1.0))


# -- SweepResult ------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sweep():
    explorer = DesignSpaceExplorer(default_server())
    workloads = list(scale_out_workloads().values()) + list(
        virtualized_workloads().values()
    )
    return explorer.explore(workloads, [mhz(500), ghz(1.0), ghz(2.0)])


def test_result_roundtrips_records(sweep):
    records = sweep.to_records()
    rebuilt = SweepResult.from_records(records)
    assert rebuilt.to_records() == records


def test_result_concat_preserves_order(sweep):
    rebuilt = SweepResult.concat(
        sweep.filter(workload_name=name)
        for name in dict.fromkeys(sweep.column("workload_name"))
    )
    assert rebuilt.to_records() == sweep.to_records()
    assert len(SweepResult.concat([])) == 0


def test_result_filter_by_equality(sweep):
    web = sweep.filter(workload_name="Web Search")
    assert len(web) == 3
    assert set(web.column("workload_name")) == {"Web Search"}
    ok = sweep.filter(workload_name="Web Search", meets_qos=True)
    assert all(record.meets_qos for record in ok)


def test_result_filter_with_mask_and_callable(sweep):
    fast = sweep.filter(sweep.column("frequency_hz") >= ghz(1.0))
    assert set(fast.column("frequency_hz")) == {ghz(1.0), ghz(2.0)}
    same = sweep.filter(lambda table: table.column("frequency_hz") >= ghz(1.0))
    assert same.to_records() == fast.to_records()


def test_result_group_by_preserves_order(sweep):
    groups = sweep.group_by("workload_name")
    assert list(groups) == list(dict.fromkeys(sweep.column("workload_name")))
    assert sum(len(group) for group in groups.values()) == len(sweep)


def test_result_argmax_and_best(sweep):
    index = sweep.argmax("chip_uips")
    assert sweep.column("chip_uips")[index] == sweep.column("chip_uips").max()
    best = sweep.best(sweep.efficiency(EfficiencyScope.SERVER))
    manual = max(sweep.to_records(), key=lambda record: record.server_efficiency)
    assert best == manual


def test_result_qos_floor(sweep):
    web = sweep.filter(workload_name="Web Search")
    assert web.qos_floor() == min(
        record.frequency_hz for record in web if record.meets_qos
    )
    none_meet = web.filter(web.column("frequency_hz") < 0)
    assert none_meet.qos_floor() is None
    vms = sweep.filter(workload_name="VMs low-mem")
    strict = vms.qos_floor(degradation_bound=2.0)
    relaxed = vms.qos_floor(degradation_bound=4.0)
    assert strict is not None and relaxed is not None
    assert relaxed <= strict
    assert vms.qos_floor(degradation_bound=0.0) is None


def test_result_argmax_empty_raises(sweep):
    empty = sweep.filter(workload_name="no-such-workload")
    with pytest.raises(ValueError, match="empty"):
        empty.argmax("chip_uips")


def test_result_efficiency_matches_record_properties(sweep):
    for scope in EfficiencyScope:
        column = sweep.efficiency(scope)
        for index, record in enumerate(sweep):
            assert column[index] == pytest.approx(record.efficiency(scope))


def test_result_slicing_and_negative_index(sweep):
    head = sweep[:4]
    assert isinstance(head, SweepResult)
    assert len(head) == 4
    assert head.record(0) == sweep.record(0)
    assert sweep[-1] == sweep.record(len(sweep) - 1)
    with pytest.raises(IndexError):
        sweep.record(len(sweep))


def test_result_unknown_column_raises(sweep):
    with pytest.raises(KeyError, match="unknown sweep column"):
        sweep.column("no_such_column")


def test_result_optional_columns_round_trip_none(sweep):
    scale_out = sweep.filter(workload_class="scale-out")
    virtualized = sweep.filter(workload_class="virtualized")
    assert np.isnan(scale_out.column("degradation")).all()
    assert np.isnan(virtualized.column("latency_seconds")).all()
    assert scale_out.record(0).degradation is None
    assert virtualized.record(0).latency_seconds is None
    assert virtualized.record(0).degradation is not None


def test_group_by_nan_keys_form_one_group(sweep):
    """Grouping by an optional column must not lose NaN rows (mixed sweep)."""
    import math

    groups = sweep.group_by("degradation")
    grouped_rows = sum(len(rows) for rows in groups.values())
    assert grouped_rows == len(sweep)
    nan_keys = [key for key in groups if isinstance(key, float) and math.isnan(key)]
    assert len(nan_keys) == 1
    nan_group = groups[nan_keys[0]]
    # Exactly the scale-out rows (no degradation) land in the NaN group.
    assert set(nan_group.column("workload_class")) == {"scale-out"}
    assert len(nan_group) == len(sweep.filter(workload_class="scale-out"))
