"""Public-cloud scenario: virtualized banking VMs and consolidation.

Reproduces the virtualized-application part of the study by running the
registered ``consolidation_oversubscribe`` scenario: the Bitbrains
derived VM classes, their execution-time degradation versus frequency
(Section V-A), the Figure 4c server-scope optima, and the co-allocation
analysis the discussion section proposes -- how many VMs fit on the
near-threshold server under the relaxed 4x degradation bound and how
much energy per unit of work that saves.

The degradation floors and efficiency optima are reductions over the
scenario's one batched sweep (the degradation column of the sweep
serves both the strict 2x and relaxed 4x bounds).

Run with:  python examples/virtualized_consolidation.py
"""

from repro.core import EfficiencyScope
from repro.scenarios import ScenarioRunner
from repro.utils.tables import format_table
from repro.utils.units import to_mhz
from repro.workloads import BitbrainsTraceModel
from repro.workloads.banking_vm import (
    DEGRADATION_LIMIT_RELAXED,
    DEGRADATION_LIMIT_STRICT,
)


def main() -> None:
    result = ScenarioRunner().run("consolidation_oversubscribe")
    sweep = result.sweep

    print("Bitbrains-derived VM memory provisioning classes")
    classes = BitbrainsTraceModel().representative_classes()
    print(
        format_table(
            ("class", "provisioning (MB)"),
            [(name, round(value / 2**20)) for name, value in classes.items()],
        )
    )

    print("\nExecution-time degradation floors (Section V-A)")
    rows = []
    for name, points in sweep.group_by("workload_name").items():
        floors = {
            bound: points.qos_floor(bound)
            for bound in (DEGRADATION_LIMIT_STRICT, DEGRADATION_LIMIT_RELAXED)
        }
        rows.append(
            (
                name,
                f"{to_mhz(floors[DEGRADATION_LIMIT_STRICT]):.0f}",
                f"{to_mhz(floors[DEGRADATION_LIMIT_RELAXED]):.0f}",
            )
        )
    print(format_table(("VM class", "floor @2x (MHz)", "floor @4x (MHz)"), rows))

    print("\nServer-scope efficiency optima (Figure 4c)")
    rows = []
    for name, points in sweep.group_by("workload_name").items():
        efficiency = points.efficiency(EfficiencyScope.SERVER)
        index = points.argmax(efficiency)
        rows.append(
            (
                name,
                f"{to_mhz(points.column('frequency_hz')[index]):.0f}",
                f"{efficiency[index] / 1e9:.2f}",
            )
        )
    print(format_table(("VM class", "optimum (MHz)", "GUIPS/W"), rows))

    print("\nConsolidation under the relaxed (4x) degradation bound")
    rows = []
    for name, plans in result.extras["consolidation"].items():
        best = plans["best"]
        rows.append(
            (
                name,
                f"{to_mhz(best['frequency_hz']):.0f}",
                best["vm_count"],
                f"{best['degradation']:.2f}x",
                f"{best['energy_per_giga_instructions']:.2f}",
                f"{plans['energy_saving_fraction']:.0%}",
            )
        )
    print(
        format_table(
            ("VM class", "f (MHz)", "VMs", "degradation", "J / 10^9 instr", "saving vs 2GHz"),
            rows,
        )
    )


if __name__ == "__main__":
    main()
