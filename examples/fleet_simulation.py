"""Multi-server fleet simulation (beyond the paper).

The paper sizes one near-threshold server; this example closes the
datacenter loop: eight of them share a diurnal Web Search day and
twelve host the Bitbrains-derived VM consolidation replay, under the
four routing policies with per-server ``qos_tracker`` governors and
the autoscaler parking the night trough.  Both runs use the registered
``fleet_*`` scenarios, so the numbers match the golden fixtures and
the CLI output exactly; the cost model then prices each policy in
dollars per million requests.

Run with:  python examples/fleet_simulation.py
"""

from repro.scenarios import ScenarioRunner
from repro.utils.tables import format_table


def print_routing_comparison(result) -> None:
    replay = result.extras["fleet_replay"]
    trace = replay["trace"]
    print(
        f"\n{replay['fleet_size']} servers, per-server "
        f"{replay['governor']!r} governors, autoscale="
        f"{replay['autoscaled']}; trace {trace['name']!r}: "
        f"{trace['steps']} steps of {trace['step_seconds']:.0f}s, "
        f"mean load {trace['mean_utilization']:.0%}"
    )
    for workload, routings in replay["replays"].items():
        rows = []
        for name, summary in routings.items():
            economics = replay["economics"][workload][name]
            per_request = summary["energy_per_request_j"]
            cost = economics["cost_per_million_requests"]
            rows.append(
                (
                    name,
                    f"{summary['mean_serving_servers']:.2f}",
                    f"{summary['wake_count']}",
                    f"{summary['total_energy_j'] / 1e6:.2f}",
                    f"{summary['energy_per_giga_instruction_j']:.2f}",
                    "-" if per_request is None else f"{per_request * 1e3:.2f}",
                    "-" if cost is None else f"{cost * 1e3:.2f}",
                    summary["violation_count"],
                )
            )
        print(f"\n{workload}")
        print(
            format_table(
                (
                    "routing",
                    "mean serving",
                    "wakes",
                    "energy (MJ)",
                    "J/Ginstr",
                    "mJ/request",
                    "m$/Mreq",
                    "violations",
                ),
                rows,
            )
        )
        best = replay["best_routing_at_zero_violations"][workload]
        print(f"best routing at zero violations: {best}")


def print_fleet_day(result) -> None:
    """How the autoscaled pack fleet follows the day."""
    steps = result.extras["fleet_replay"]["_steps"]["Web Search"]["pack"]
    rows = [
        (
            f"{row['time_s'] / 3600.0:.1f}",
            f"{row['utilization']:.2f}",
            row["serving_servers"],
            row["used_servers"],
            f"{row['total_power_w']:.0f}",
            "violated" if row["violation"] else "ok",
        )
        for row in steps[::4]  # every second hour
    ]
    print("\npack + autoscale over the Web Search day (2-hour samples)")
    print(
        format_table(
            ("hour", "fleet load", "serving", "used", "P (W)", "QoS"), rows
        )
    )


def main() -> None:
    runner = ScenarioRunner()

    websearch = runner.run("fleet_diurnal_websearch")
    print("== fleet_diurnal_websearch ==")
    print_routing_comparison(websearch)
    print_fleet_day(websearch)

    consolidation = runner.run("fleet_bitbrains_consolidation")
    print("\n== fleet_bitbrains_consolidation ==")
    print_routing_comparison(consolidation)


if __name__ == "__main__":
    main()
