"""Quickstart: explore the near-threshold server for one workload.

Describes the experiment as a declarative :class:`ScenarioSpec` (the
same object every registered experiment uses), runs it through the
:class:`ScenarioRunner`, and prints the operating-point table, the QoS
floor and the efficiency optima at the three scopes.

Run with:  python examples/quickstart.py
"""

from repro.core import EfficiencyScope, render_operating_points
from repro.scenarios import ScenarioRunner, ScenarioSpec
from repro.utils.units import mhz, to_mhz


def main() -> None:
    spec = ScenarioSpec(
        name="quickstart",
        title="Web Search on the default FD-SOI near-threshold server",
        workload_set="scale-out",
        workload_names=("Web Search",),
        frequency_grid_hz=tuple(
            mhz(value) for value in (200, 300, 500, 800, 1000, 1200, 1600, 2000)
        ),
    )
    result = ScenarioRunner().run(spec)

    print("Operating points for Web Search on the FD-SOI near-threshold server")
    print(render_operating_points(result.sweep))
    print()

    qos_ok = result.sweep.filter(meets_qos=True)
    best = qos_ok.best(qos_ok.efficiency(EfficiencyScope.SERVER))
    print(
        f"Best QoS-ok point from the columnar table: {to_mhz(best.frequency_hz):.0f} MHz"
    )

    summary = result.summary_by_workload()["Web Search"]
    print(f"QoS floor:                 {to_mhz(summary.qos_floor_hz):.0f} MHz")
    for scope, frequency in summary.optimal_frequency_by_scope.items():
        print(f"Efficiency optimum ({scope:6s}): {to_mhz(frequency):.0f} MHz")
    print(
        "Best QoS-respecting point: "
        f"{to_mhz(summary.best_qos_respecting_frequency):.0f} MHz "
        f"({summary.best_qos_respecting_efficiency / 1e9:.2f} GUIPS/W at server scope)"
    )


if __name__ == "__main__":
    main()
