"""Quickstart: explore the near-threshold server for one workload.

Builds the paper's default 36-core FD-SOI server, sweeps the core
frequency for the Web Search workload in one batched pass, and prints
the operating-point table, the QoS floor and the efficiency optima at
the three scopes.

Run with:  python examples/quickstart.py
"""

from repro.core import (
    DesignSpaceExplorer,
    EfficiencyScope,
    default_server,
    render_operating_points,
)
from repro.utils.units import mhz, to_mhz
from repro.workloads import WEB_SEARCH


def main() -> None:
    configuration = default_server()
    explorer = DesignSpaceExplorer(configuration)

    frequencies = [mhz(value) for value in (200, 300, 500, 800, 1000, 1200, 1600, 2000)]
    # One batched pass; the result is a columnar table that still
    # iterates as a sequence of operating-point records.
    records = explorer.explore([WEB_SEARCH], frequencies)
    print("Operating points for Web Search on the FD-SOI near-threshold server")
    print(render_operating_points(records))
    print()

    qos_ok = records.filter(meets_qos=True)
    best = qos_ok.best(qos_ok.efficiency(EfficiencyScope.SERVER))
    print(
        f"Best QoS-ok point from the columnar table: {to_mhz(best.frequency_hz):.0f} MHz"
    )

    summary = explorer.summarize(WEB_SEARCH, frequencies)
    print(f"QoS floor:                 {to_mhz(summary.qos_floor_hz):.0f} MHz")
    for scope, frequency in summary.optimal_frequency_by_scope.items():
        print(f"Efficiency optimum ({scope:6s}): {to_mhz(frequency):.0f} MHz")
    print(
        "Best QoS-respecting point: "
        f"{to_mhz(summary.best_qos_respecting_frequency):.0f} MHz "
        f"({summary.best_qos_respecting_efficiency / 1e9:.2f} GUIPS/W at server scope)"
    )


if __name__ == "__main__":
    main()
