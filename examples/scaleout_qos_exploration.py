"""Scale-out cloud scenario: QoS-constrained near-threshold operation.

Reproduces the private-cloud part of the study for all four CloudSuite
workloads: the latency-versus-frequency curves normalised to each QoS
limit (Figure 2), the QoS frequency floors, and the efficiency curves at
the cores / SoC / server scopes (Figure 3), ending with the operating
point a QoS-aware DVFS governor should pick.

Run with:  python examples/scaleout_qos_exploration.py
"""

from repro.core import (
    DesignSpaceExplorer,
    EfficiencyAnalyzer,
    EfficiencyScope,
    QosAnalyzer,
    default_server,
    render_summary,
)
from repro.utils.tables import format_table
from repro.utils.units import to_mhz
from repro.workloads import scale_out_workloads


def print_latency_curves(analyzer: QosAnalyzer) -> None:
    print("99th-percentile latency normalised to the QoS limit (Figure 2)")
    for name, workload in scale_out_workloads().items():
        result = analyzer.latency_curve(workload)
        rows = [
            (f"{point.frequency_hz / 1e6:.0f}", f"{point.normalized_to_qos:.2f}",
             "ok" if point.meets_qos else "violated")
            for point in result.points
        ]
        print(f"\n{name} (QoS floor {to_mhz(result.qos_floor_hz):.0f} MHz)")
        print(format_table(("f (MHz)", "latency / QoS", "status"), rows))


def print_efficiency_optima(analyzer: EfficiencyAnalyzer) -> None:
    print("\nEfficiency optima per scope (Figure 3)")
    rows = []
    for name, workload in scale_out_workloads().items():
        optima = analyzer.optimal_frequencies_all_scopes(workload)
        rows.append(
            (
                name,
                f"{to_mhz(optima['cores'].frequency_hz):.0f}",
                f"{to_mhz(optima['soc'].frequency_hz):.0f}",
                f"{to_mhz(optima['server'].frequency_hz):.0f}",
            )
        )
    print(format_table(("workload", "cores (MHz)", "SoC (MHz)", "server (MHz)"), rows))


def main() -> None:
    configuration = default_server()
    qos_analyzer = QosAnalyzer(configuration)
    efficiency_analyzer = EfficiencyAnalyzer(configuration)
    explorer = DesignSpaceExplorer(configuration)

    print_latency_curves(qos_analyzer)
    print_efficiency_optima(efficiency_analyzer)

    print("\nSweep summary (QoS floors and best QoS-respecting operating points)")
    print(render_summary(explorer.summarize_all(scale_out_workloads().values())))


if __name__ == "__main__":
    main()
