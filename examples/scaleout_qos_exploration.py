"""Scale-out cloud scenario: QoS-constrained near-threshold operation.

Reproduces the private-cloud part of the study for all four CloudSuite
workloads by running the registered ``fig3_scaleout`` scenario: the
latency-versus-frequency curves normalised to each QoS limit (Figure 2),
the QoS frequency floors, and the efficiency optima at the cores / SoC /
server scopes (Figure 3), ending with the operating point a QoS-aware
DVFS governor should pick.

Everything is derived from ONE batched sweep: the scenario runner
evaluates each (workload, frequency) point exactly once and the latency
curves, floors, optima and summaries are all reductions over the same
columnar table.

Run with:  python examples/scaleout_qos_exploration.py
"""

from repro.core import SweepResult, render_summary
from repro.scenarios import ScenarioRunner
from repro.utils.tables import format_table
from repro.utils.units import to_mhz


def print_latency_curves(sweep: SweepResult) -> None:
    print("99th-percentile latency normalised to the QoS limit (Figure 2)")
    for name, rows in sweep.group_by("workload_name").items():
        table = [
            (
                f"{frequency / 1e6:.0f}",
                f"{normalized:.2f}",
                "ok" if meets else "violated",
            )
            for frequency, normalized, meets in zip(
                rows.column("frequency_hz"),
                rows.column("latency_normalized_to_qos"),
                rows.column("meets_qos"),
            )
        ]
        floor = rows.qos_floor()
        print(f"\n{name} (QoS floor {to_mhz(floor):.0f} MHz)")
        print(format_table(("f (MHz)", "latency / QoS", "status"), table))


def print_efficiency_optima(optima: dict) -> None:
    print("\nEfficiency optima per scope (Figure 3)")
    rows = [
        (
            name,
            f"{to_mhz(points['cores']):.0f}",
            f"{to_mhz(points['soc']):.0f}",
            f"{to_mhz(points['server']):.0f}",
        )
        for name, points in optima.items()
    ]
    print(format_table(("workload", "cores (MHz)", "SoC (MHz)", "server (MHz)"), rows))


def main() -> None:
    # One registered scenario provides the sweep, the floors, the optima
    # and the summaries -- Figures 2 and 3 are views of the same table.
    result = ScenarioRunner().run("fig3_scaleout")

    print_latency_curves(result.sweep)
    print_efficiency_optima(result.extras["efficiency_optima"])

    print("\nSweep summary (QoS floors and best QoS-respecting operating points)")
    print(render_summary(result.summaries))


if __name__ == "__main__":
    main()
