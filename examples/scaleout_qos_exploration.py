"""Scale-out cloud scenario: QoS-constrained near-threshold operation.

Reproduces the private-cloud part of the study for all four CloudSuite
workloads: the latency-versus-frequency curves normalised to each QoS
limit (Figure 2), the QoS frequency floors, and the efficiency optima at
the cores / SoC / server scopes (Figure 3), ending with the operating
point a QoS-aware DVFS governor should pick.

Everything is derived from ONE batched sweep: the explorer evaluates
each (workload, frequency) point exactly once and the latency curves,
floors, optima and summary are all reductions over the same columnar
table.

Run with:  python examples/scaleout_qos_exploration.py
"""

from repro.analysis.tables import efficiency_optima_rows
from repro.core import (
    DesignSpaceExplorer,
    SweepResult,
    default_server,
    render_summary,
)
from repro.utils.tables import format_table
from repro.utils.units import to_mhz
from repro.workloads import scale_out_workloads


def print_latency_curves(sweep: SweepResult) -> None:
    print("99th-percentile latency normalised to the QoS limit (Figure 2)")
    for name, rows in sweep.group_by("workload_name").items():
        table = [
            (
                f"{frequency / 1e6:.0f}",
                f"{normalized:.2f}",
                "ok" if meets else "violated",
            )
            for frequency, normalized, meets in zip(
                rows.column("frequency_hz"),
                rows.column("latency_normalized_to_qos"),
                rows.column("meets_qos"),
            )
        ]
        floor = rows.qos_floor()
        print(f"\n{name} (QoS floor {to_mhz(floor):.0f} MHz)")
        print(format_table(("f (MHz)", "latency / QoS", "status"), table))


def print_efficiency_optima(sweep: SweepResult) -> None:
    print("\nEfficiency optima per scope (Figure 3)")
    rows = [
        (
            optima["workload"],
            f"{to_mhz(optima['cores']):.0f}",
            f"{to_mhz(optima['soc']):.0f}",
            f"{to_mhz(optima['server']):.0f}",
        )
        for optima in efficiency_optima_rows(sweep)
    ]
    print(format_table(("workload", "cores (MHz)", "SoC (MHz)", "server (MHz)"), rows))


def main() -> None:
    configuration = default_server()
    explorer = DesignSpaceExplorer(configuration)
    workloads = list(scale_out_workloads().values())

    sweep = explorer.explore(workloads)
    print_latency_curves(sweep)
    print_efficiency_optima(sweep)

    print("\nSweep summary (QoS floors and best QoS-respecting operating points)")
    print(render_summary(explorer.summarize_all(workloads)))


if __name__ == "__main__":
    main()
