"""Technology comparison: bulk vs FD-SOI vs FD-SOI + forward body bias.

Reproduces the Figure 1 comparison and the body-bias knobs of
Section II-A: the supply voltage and chip core power needed at each
frequency per flavour, the near-threshold frequencies reachable at 0.5V,
and the state-retentive sleep-mode leakage reduction offered by reverse
body bias.  The body-bias knob numbers come from the registered
``ablation_body_bias`` scenario, so this example and the benchmark
harness print the same experiment.

Run with:  python examples/technology_comparison.py
"""

from repro.analysis.figures import figure1_series
from repro.scenarios import ScenarioRunner
from repro.technology import BodyBiasModel, FDSOI_28NM, default_flavour_models
from repro.utils.tables import format_table
from repro.utils.units import mhz


def main() -> None:
    frequencies = [mhz(value) for value in (200, 500, 1000, 1500, 2000, 2500, 3000, 3500)]
    series = figure1_series(frequencies_hz=frequencies)

    print("Figure 1: supply voltage and 36-core power per technology flavour")
    rows = []
    for frequency in frequencies:
        row = [f"{frequency / 1e6:.0f}"]
        for flavour in ("bulk", "fdsoi", "fdsoi-fbb"):
            xs = series[flavour]["vdd"].x_values
            if frequency / 1e6 in xs:
                index = xs.index(frequency / 1e6)
                row.append(f"{series[flavour]['vdd'].y_values[index]:.2f}V")
                row.append(f"{series[flavour]['power'].y_values[index]:.0f}W")
            else:
                row.append("-")
                row.append("-")
        rows.append(row)
    print(
        format_table(
            (
                "f (MHz)",
                "bulk Vdd", "bulk P",
                "fdsoi Vdd", "fdsoi P",
                "fbb Vdd", "fbb P",
            ),
            rows,
        )
    )

    print("\nNear-threshold reach at the minimum functional voltage")
    rows = []
    for label, model in default_flavour_models().items():
        rows.append(
            (
                label,
                f"{model.technology.min_functional_vdd:.2f}V",
                f"{model.min_voltage_frequency() / 1e6:.0f} MHz",
            )
        )
    print(format_table(("flavour", "min Vdd", "max f at min Vdd"), rows))

    print("\nBody-bias knobs (UTBB FD-SOI, from the ablation_body_bias scenario)")
    ablation = ScenarioRunner().run("ablation_body_bias").extras["body_bias"]
    bias = BodyBiasModel(FDSOI_28NM)
    sleep = ablation["sleep"]
    print(f"  Vth shift per volt of bias:      {FDSOI_28NM.body_effect_coefficient * 1000:.0f} mV/V")
    print(f"  5mm^2 core 0V->1.3V bias switch: {bias.transition_time(5.0, 1.3) * 1e6:.2f} us")
    print(
        "  RBB sleep leakage at 0.8V:       "
        f"{sleep['rbb_sleep_leakage_at_0v8_w'] * 1000:.1f} mW "
        f"(active {sleep['active_leakage_at_0v8_w'] * 1000:.1f} mW)"
    )
    print(
        format_table(
            ("FBB (V)", "effective Vth (V)", "max f @0.5V (MHz)"),
            [
                (
                    row["forward_bias_v"],
                    round(row["effective_vth_v"], 3),
                    round(row["max_frequency_at_0v5_hz"] / 1e6),
                )
                for row in ablation["rows"]
            ],
        )
    )


if __name__ == "__main__":
    main()
