"""Detailed trace-driven simulation of one cluster with SMARTS sampling.

Exercises the Flexus-substitute path end to end: synthetic traces are
played through the L1s, the shared LLC, the crossbar and the DDR4 timing
simulator; the chip-level UIPS is estimated with SMARTS-style sampling
and compared against the fast analytical model used by the design
sweeps.

Run with:  python examples/detailed_simulation.py
"""

from repro.core import default_server
from repro.core.performance import ServerPerformanceModel
from repro.sim import ChipSimulator, ClusterSimConfig, SmartsSampler
from repro.utils.tables import format_table
from repro.utils.units import ghz
from repro.workloads import DATA_SERVING, WEB_SEARCH


def main() -> None:
    configuration = default_server()
    analytical = ServerPerformanceModel(configuration)
    frequency = ghz(1.0)

    rows = []
    for workload in (DATA_SERVING, WEB_SEARCH):
        simulator = ChipSimulator(
            cluster_config=ClusterSimConfig(
                workload=workload, frequency_hz=frequency, records_per_core=2000
            ),
            cluster_count=configuration.cluster_count,
            sampler=SmartsSampler(initial_units=4, max_units=8, error_target=0.03),
        )
        detailed = simulator.run()
        interval = analytical.performance(workload, frequency)
        rows.append(
            (
                workload.name,
                f"{detailed.measurement.uipc:.3f}",
                f"{interval.uipc:.3f}",
                f"{detailed.chip_uips / 1e9:.1f}",
                f"{interval.chip_uips / 1e9:.1f}",
                f"{detailed.total_memory_bandwidth / 1e9:.1f}",
                f"{detailed.sampling.statistics.relative_error:.1%}",
                "yes" if detailed.sampling.converged else "no",
            )
        )

    print(f"Detailed vs analytical performance at {frequency / 1e9:.1f} GHz (36 cores)")
    print(
        format_table(
            (
                "workload",
                "UIPC (detailed)",
                "UIPC (interval)",
                "chip GUIPS (detailed)",
                "chip GUIPS (interval)",
                "DRAM BW GB/s",
                "sampling error",
                "converged",
            ),
            rows,
        )
    )


if __name__ == "__main__":
    main()
