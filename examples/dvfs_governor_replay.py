"""DVFS governors over time-varying load (beyond the paper).

The paper's sweeps pick one fixed operating point per load level; this
example closes the loop: a diurnal Web Search day and a Bitbrains-derived
VM consolidation day are replayed under the four classic cpufreq
policies plus the paper-motivated ``qos_tracker`` (lowest frequency
that covers the load and holds the QoS bound).  Both use the registered
``dvfs_*`` scenarios, so the numbers match the golden fixtures and the
CLI output exactly.

Run with:  python examples/dvfs_governor_replay.py
"""

from repro.scenarios import ScenarioRunner
from repro.utils.tables import format_table


def print_governor_comparison(result) -> None:
    replay = result.extras["dvfs_replay"]
    trace = replay["trace"]
    print(
        f"\ntrace {trace['name']!r}: {trace['steps']} steps of "
        f"{trace['step_seconds']:.0f}s, mean load {trace['mean_utilization']:.0%}, "
        f"peak {trace['peak_utilization']:.0%}"
    )
    for workload, governors in replay["replays"].items():
        rows = []
        for name, summary in governors.items():
            per_request = summary["energy_per_request_j"]
            rows.append(
                (
                    name,
                    f"{summary['mean_frequency_hz'] / 1e6:.0f}",
                    f"{summary['total_energy_j'] / 1e6:.2f}",
                    f"{summary['energy_per_giga_instruction_j']:.2f}",
                    "-" if per_request is None else f"{per_request * 1e3:.2f}",
                    summary["violation_count"],
                )
            )
        print(f"\n{workload}")
        print(
            format_table(
                (
                    "governor",
                    "mean f (MHz)",
                    "energy (MJ)",
                    "J/Ginstr",
                    "mJ/request",
                    "QoS violations",
                ),
                rows,
            )
        )
        best = replay["best_governor_at_zero_violations"][workload]
        print(f"best governor at zero violations: {best}")


def print_qos_tracker_day(result) -> None:
    """How the winning policy rides the V/f curve over the day."""
    steps = result.extras["dvfs_replay"]["_steps"]["Web Search"]["qos_tracker"]
    rows = [
        (
            f"{row['time_s'] / 3600.0:.1f}",
            f"{row['utilization']:.2f}",
            f"{row['frequency_hz'] / 1e6:.0f}",
            f"{row['power_w']:.1f}",
            "violated" if row["violation"] else "ok",
        )
        for row in steps[::4]  # every second hour
    ]
    print("\nqos_tracker over the Web Search day (2-hour samples)")
    print(format_table(("hour", "load", "f (MHz)", "P (W)", "QoS"), rows))


def main() -> None:
    runner = ScenarioRunner()

    websearch = runner.run("dvfs_diurnal_websearch")
    print("== dvfs_diurnal_websearch ==")
    print_governor_comparison(websearch)
    print_qos_tracker_day(websearch)

    bitbrains = runner.run("dvfs_bitbrains_replay")
    print("\n== dvfs_bitbrains_replay ==")
    print_governor_comparison(bitbrains)


if __name__ == "__main__":
    main()
