"""Vectorized governor kernels over a :class:`FrequencyTable`.

Each kernel is the whole-array twin of one registered
:class:`~repro.dvfs.governors.Governor` policy: instead of one
``select`` call per trace step it maps an entire utilisation/demand
array to grid *indices* in a handful of NumPy operations.  The
arithmetic mirrors the scalar policies term for term (the same
tolerance-scaled coverage comparison, the same threshold tests, the
same nominal-frequency fallbacks), so kernel and reference replays are
bit-for-bit identical -- the property tests pin exactly that.

The memoryless policies (``performance``, ``powersave``, ``ondemand``,
``qos_tracker``) are pure batch selections, so a fleet stepper can run
them over every (node, step) pair at once.  The stateful
``conservative`` policy walks the grid one notch at a time; its
whole-trace kernel keeps a tight scalar loop over plain Python floats
(no per-step object or dict traffic), and its batch form advances many
nodes one step in parallel.

Dispatch is by *exact* governor type: a subclass with an overridden
``select`` falls back to the object-based reference path rather than
silently getting the base-class kernel.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.dvfs.governors import (
    ConservativeGovernor,
    Governor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    QosTrackerGovernor,
)
from repro.kernels.table import FrequencyTable

StepKernel = Callable[
    [Governor, FrequencyTable, np.ndarray, np.ndarray, np.ndarray], np.ndarray
]


def _performance_step(
    governor: Governor,
    table: FrequencyTable,
    utilization: np.ndarray,
    demand_uips: np.ndarray,
    previous_index: np.ndarray,
) -> np.ndarray:
    return np.full(utilization.shape, table.nominal_index, dtype=np.int64)


def _powersave_step(
    governor: Governor,
    table: FrequencyTable,
    utilization: np.ndarray,
    demand_uips: np.ndarray,
    previous_index: np.ndarray,
) -> np.ndarray:
    return np.zeros(utilization.shape, dtype=np.int64)


def _ondemand_step(
    governor: OndemandGovernor,
    table: FrequencyTable,
    utilization: np.ndarray,
    demand_uips: np.ndarray,
    previous_index: np.ndarray,
) -> np.ndarray:
    target = demand_uips / governor.up_threshold
    indices = table.lowest_covering_indices(target)
    indices = np.where(indices < 0, table.nominal_index, indices)
    return np.where(
        utilization > governor.up_threshold, table.nominal_index, indices
    )


def _qos_tracker_step(
    governor: QosTrackerGovernor,
    table: FrequencyTable,
    utilization: np.ndarray,
    demand_uips: np.ndarray,
    previous_index: np.ndarray,
) -> np.ndarray:
    indices = table.lowest_covering_indices(demand_uips, require_qos=True)
    return np.where(indices < 0, table.nominal_index, indices)


def _conservative_step(
    governor: ConservativeGovernor,
    table: FrequencyTable,
    utilization: np.ndarray,
    demand_uips: np.ndarray,
    previous_index: np.ndarray,
) -> np.ndarray:
    capacity = table.capacity_uips[previous_index]
    positive = capacity > 0.0
    load = np.where(
        positive,
        demand_uips / np.where(positive, capacity, 1.0),
        1.0,
    )
    notch = (load > governor.up_threshold).astype(np.int64) - (
        load < governor.down_threshold
    ).astype(np.int64)
    return np.clip(previous_index + notch, 0, len(table) - 1)


STEP_KERNELS: Dict[type, StepKernel] = {
    PerformanceGovernor: _performance_step,
    PowersaveGovernor: _powersave_step,
    OndemandGovernor: _ondemand_step,
    QosTrackerGovernor: _qos_tracker_step,
    ConservativeGovernor: _conservative_step,
}
"""One-step batch kernels by exact governor type (fleet stepping)."""

MEMORYLESS_KERNEL_TYPES = frozenset(
    (PerformanceGovernor, PowersaveGovernor, OndemandGovernor, QosTrackerGovernor)
)
"""Governor types whose kernel ignores the previous-frequency state."""


def has_kernel(governor: Governor) -> bool:
    """True when the exact governor type has a vectorized kernel."""
    return type(governor) in STEP_KERNELS


def is_memoryless_kernel(governor: Governor) -> bool:
    """True when the governor's kernel needs no previous-index state."""
    return type(governor) in MEMORYLESS_KERNEL_TYPES


def select_step_indices(
    governor: Governor,
    table: FrequencyTable,
    utilization: np.ndarray,
    demand_uips: np.ndarray,
    previous_index: np.ndarray,
) -> np.ndarray:
    """Grid indices for one batch of observations (one per element)."""
    kernel = STEP_KERNELS[type(governor)]
    return kernel(governor, table, utilization, demand_uips, previous_index)


def select_batch_trace_indices(
    governor: Governor, table: FrequencyTable, utilization2d: np.ndarray
) -> np.ndarray:
    """Grid indices for a ``(B, T)`` stack of single-server traces.

    Row ``b`` is bit-identical to
    ``select_trace_indices(governor, table, utilization2d[b])``: the
    memoryless policies select the whole tensor in one kernel call,
    and ``conservative`` walks the T axis once with all B rows
    advancing one notch per step in parallel (the same float
    comparisons as the scalar chain, batched across rows).
    """
    utilization2d = np.asarray(utilization2d, dtype=np.float64)
    demand2d = utilization2d * table.nominal_capacity_uips
    if is_memoryless_kernel(governor):
        previous = np.full(
            utilization2d.shape, table.nominal_index, dtype=np.int64
        )
        return select_step_indices(
            governor, table, utilization2d, demand2d, previous
        )
    rows, steps = utilization2d.shape
    out = np.empty((rows, steps), dtype=np.int64)
    previous = np.full(rows, table.nominal_index, dtype=np.int64)
    for step in range(steps):
        previous = select_step_indices(
            governor, table, utilization2d[:, step], demand2d[:, step], previous
        )
        out[:, step] = previous
    return out


def select_trace_indices(
    governor: Governor, table: FrequencyTable, utilization: np.ndarray
) -> np.ndarray:
    """Grid indices for a whole single-server trace.

    The first observation sees the nominal frequency as the previous
    one, exactly like :meth:`GovernorSimulator.replay`.
    """
    utilization = np.asarray(utilization, dtype=np.float64)
    demand = utilization * table.nominal_capacity_uips
    if is_memoryless_kernel(governor):
        previous = np.full(utilization.shape, table.nominal_index, dtype=np.int64)
        return select_step_indices(governor, table, utilization, demand, previous)
    # conservative: one notch per step off the previous choice -- a
    # scalar chain over plain floats (the table rows are plain lists
    # here, so the loop body is a few float ops, no array scalars).
    capacities = table.capacity_uips.tolist()
    top = len(capacities) - 1
    up = governor.up_threshold
    down = governor.down_threshold
    index = table.nominal_index
    out = np.empty(len(utilization), dtype=np.int64)
    for step, step_demand in enumerate(demand.tolist()):
        capacity = capacities[index]
        load = step_demand / capacity if capacity > 0 else 1.0
        if load > up:
            if index < top:
                index += 1
        elif load < down:
            if index > 0:
                index -= 1
        out[step] = index
    return out
