"""Vectorized replay kernels over frozen frequency tables.

The replay layer's hot path -- :meth:`GovernorSimulator.replay` and
:meth:`FleetSimulator.run` -- used to step Python objects one trace
step (and one node) at a time.  This package makes that path columnar:

* :mod:`repro.kernels.table` -- :class:`FrequencyTable`, one
  (context, workload) pair's reachable grid as frozen NumPy columns
  (power, capacity, QoS, latency), built once from the context's
  memoized records via
  :meth:`~repro.sweep.context.ModelContext.frequency_table`.
* :mod:`repro.kernels.governors` -- whole-array governor kernels
  (memoryless policies as batched ``searchsorted``-style index
  selections, ``conservative`` as a tight scalar chain).
* :mod:`repro.kernels.replay` -- the single-server whole-trace replay
  as index selection plus column gathers.
* :mod:`repro.kernels.fleet` -- the columnar fleet stepper: power-state
  timeline, vectorized routing shares, closed-form queueing tails and
  bulk per-node columns.
* :mod:`repro.kernels.batch` -- the batch axis on top: B replays
  stacked into ``(B, T)`` / ``(B, N, T)`` tensors and evaluated in
  single NumPy passes, driven by :class:`BatchReplayRunner`.

The simulators dispatch here by default and keep the object-based path
as a ``reference=`` fallback; kernel and reference columns are
bit-for-bit identical (pinned by the equivalence property tests), so
every golden fixture is byte-stable across the two paths.
"""

from repro.kernels.batch import (
    BatchReplayResult,
    BatchReplayRunner,
    FleetReplayBatch,
    GovernorReplayBatch,
    ReplaySpec,
    unique_specs,
)
from repro.kernels.fleet import fleet_replay_columns, tail_latencies
from repro.kernels.fleet import supports as fleet_kernel_supports
from repro.kernels.governors import (
    has_kernel,
    is_memoryless_kernel,
    select_batch_trace_indices,
    select_step_indices,
    select_trace_indices,
)
from repro.kernels.replay import governor_replay_columns
from repro.kernels.table import FrequencyTable

__all__ = [
    "BatchReplayResult",
    "BatchReplayRunner",
    "FleetReplayBatch",
    "FrequencyTable",
    "GovernorReplayBatch",
    "ReplaySpec",
    "fleet_kernel_supports",
    "fleet_replay_columns",
    "governor_replay_columns",
    "has_kernel",
    "is_memoryless_kernel",
    "select_batch_trace_indices",
    "select_step_indices",
    "select_trace_indices",
    "tail_latencies",
    "unique_specs",
]
