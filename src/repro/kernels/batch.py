"""Batched multi-replay tensor engine: one NumPy pass over B replays.

The design-space questions the paper asks (which governor, what fleet
size, which autoscaler band) are answered by sweeping *populations* of
replays.  A single-replay kernel call is already vectorized along the
trace axis; this module adds the batch axis:

* **Single-server stacks** -- B (governor, trace) replays become one
  ``(B, T)`` utilisation tensor (rows padded to the longest trace).
  Memoryless governors select the whole tensor in one cover-matrix
  pass; ``conservative`` walks the T axis once with all B rows
  advancing a notch per step in parallel
  (:func:`~repro.kernels.governors.select_batch_trace_indices`).
* **Fleet stacks** -- B fleet replays sharing one (workload, fleet
  size, governor, routing, autoscaler) configuration become
  ``(B, N, T)`` tensors.  The autoscaler's power-state machine,
  ``pack``'s sequential fill and ``least_loaded``'s frequency-coupled
  weights stay step-sequential *within* a replay but operate on
  length-B / ``(B, N)`` slices *across* the batch; queueing tails go
  through the deduplicating closed-form
  :func:`~repro.kernels.fleet.tail_latencies` kernel once for the
  whole batch.
* **Summaries** -- per-replay scalar summaries are axis-1 reductions
  over exact-length row blocks (rows grouped by trace length, because
  reducing a zero-padded row would change pairwise-summation order and
  break bit parity).

Everything is bit-for-bit identical to B independent single-replay
kernel calls -- same floats, same ints, same NaN/inf placement -- which
are themselves pinned against the object-based reference path, so the
batch engine inherits the golden fixtures' guarantees transitively.

:class:`BatchReplayRunner` is the user-facing entry point: a list of
:class:`ReplaySpec` in, columnar per-replay summaries (and lazily
materialized :class:`ReplayResult` / :class:`FleetResult` objects)
out.  Specs whose exact (governor, routing, autoscaler) types have no
kernel -- custom subclasses -- fall back to the per-replay simulator
path, exactly like the single-replay dispatch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.resilience import (
    FailedSummary,
    SpecError,
    check_on_error,
    classify,
    fault_point,
)
from repro.resilience.chaos import active_plan
from repro.dvfs.governors import Governor, governor_by_name
from repro.dvfs.replay import ReplayResult
from repro.dvfs.trace import LoadTrace
from repro.fleet.autoscaler import Autoscaler
from repro.fleet.disturbance import DisturbanceSchedule
from repro.fleet.node import NodeState
from repro.fleet.result import FleetResult
from repro.fleet.routing import (
    LeastLoadedRouting,
    RoundRobinRouting,
    RoutingPolicy,
    SpreadRouting,
    router_by_name,
)
from repro.kernels import fleet as fleet_kernel
from repro.kernels.governors import (
    has_kernel,
    is_memoryless_kernel,
    select_batch_trace_indices,
    select_step_indices,
)
from repro.kernels.table import FrequencyTable
from repro.utils.validation import check_non_negative
from repro.workloads.base import WorkloadCharacteristics

_OFF = int(NodeState.OFF)
_BOOTING = int(NodeState.BOOTING)
_SERVING = int(NodeState.SERVING)


# -- the spec ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplaySpec:
    """One replay of a batch: what to run, on what, with which policies.

    ``fleet_size=None`` is a single-server governor replay (routing,
    autoscaler and off-power must stay unset); a fleet replay needs an
    explicit routing.  Governors and routings accept registry names or
    policy instances, exactly like the simulators.
    """

    workload: WorkloadCharacteristics
    trace: LoadTrace
    governor: Union[Governor, str] = "qos_tracker"
    fleet_size: Optional[int] = None
    routing: Union[RoutingPolicy, str, None] = None
    autoscaler: Optional[Autoscaler] = None
    off_power_w: float = 0.0
    queueing: bool = True
    disturbances: Optional[DisturbanceSchedule] = None

    def __post_init__(self) -> None:
        if self.fleet_size is None:
            if self.routing is not None:
                raise SpecError(
                    "a routing policy needs a fleet_size; single-server "
                    "replays have no routing"
                )
            if self.autoscaler is not None:
                raise SpecError(
                    "an autoscaler needs a fleet_size; single-server "
                    "replays have no autoscaler"
                )
            if self.off_power_w != 0.0:
                raise SpecError(
                    "off_power_w needs a fleet_size; single-server "
                    "replays have no parked servers"
                )
            if self.disturbances is not None:
                raise SpecError(
                    "a disturbance schedule needs a fleet_size; "
                    "single-server replays have no fleet to disturb"
                )
            return
        if self.fleet_size < 1:
            raise SpecError(
                f"fleet_size must be >= 1, got {self.fleet_size}"
            )
        if self.routing is None:
            raise SpecError("a fleet replay needs a routing policy")
        # NaN slips through the < 0 comparison below, so reject
        # non-finite power explicitly before it reaches the kernels.
        if not math.isfinite(self.off_power_w):
            raise SpecError(
                f"replay spec: off_power_w must be finite, "
                f"got {self.off_power_w}"
            )
        check_non_negative("off_power_w", self.off_power_w)
        if (
            self.autoscaler is not None
            and self.autoscaler.min_servers > self.fleet_size
        ):
            raise SpecError(
                f"autoscaler min_servers ({self.autoscaler.min_servers}) "
                f"exceeds the fleet size ({self.fleet_size})"
            )

    @property
    def is_fleet(self) -> bool:
        """True when this spec replays a multi-server fleet."""
        return self.fleet_size is not None


def unique_specs(
    specs: Sequence[ReplaySpec],
) -> Tuple[List[ReplaySpec], List[int]]:
    """Deduplicate a spec list, preserving first-seen order.

    Distinct parameter combinations can materialise into identical
    replays -- a pack fill fraction under a non-pack routing, a wake
    latency on a fleet that never autoscales -- and evaluating the
    duplicates would only repeat work.  Returns ``(unique, index_map)``
    where ``unique`` keeps the first occurrence of each spec and
    ``index_map[i]`` is the row in ``unique`` that position ``i`` of
    the input maps to, so callers can scatter batched summaries back to
    their original positions.  Specs compare by value
    (:class:`ReplaySpec` is a frozen dataclass), so two equal specs are
    guaranteed to replay identically.
    """
    unique: List[ReplaySpec] = []
    index_map: List[int] = []
    rows: Dict[ReplaySpec, int] = {}
    for spec in specs:
        row = rows.get(spec)
        if row is None:
            row = len(unique)
            rows[spec] = row
            unique.append(spec)
        index_map.append(row)
    return unique, index_map


# -- shared padding helpers -------------------------------------------------------------


def _padded_utilization(
    traces: Sequence[LoadTrace],
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack trace utilisations into (B, T_max), zero-padded rows."""
    lengths = np.array([len(trace) for trace in traces], dtype=np.int64)
    util2d = np.zeros((len(traces), int(lengths.max())), dtype=np.float64)
    for row, trace in enumerate(traces):
        util2d[row, : lengths[row]] = np.asarray(
            trace.utilization, dtype=np.float64
        )
    return util2d, lengths


def _length_groups(lengths: np.ndarray):
    """Yield (length, row-index array) pairs, one per distinct length."""
    for length in np.unique(lengths):
        yield int(length), np.nonzero(lengths == length)[0]


# -- single-server batches --------------------------------------------------------------


class GovernorReplayBatch:
    """B single-server replays of one governor stacked into (B, T).

    Row ``b`` of every column tensor, sliced to its trace length, is
    bit-identical to ``governor_replay_columns(table, governor,
    traces[b])``.
    """

    def __init__(
        self,
        table: FrequencyTable,
        governor: Governor,
        traces: Sequence[LoadTrace],
        workload: Optional[WorkloadCharacteristics] = None,
    ):
        self.table = table
        self.governor = governor
        self.traces = list(traces)
        self.workload = workload
        util2d, self.lengths = _padded_utilization(self.traces)
        demand2d = util2d * table.nominal_capacity_uips
        idx2d = select_batch_trace_indices(governor, table, util2d)
        power2d = table.power_w[idx2d]
        capacity2d = table.capacity_uips[idx2d]
        qos_ok2d = table.qos_ok[idx2d]
        demand_met2d = table.covers_capacity_uips[idx2d] >= demand2d
        step_seconds = np.array(
            [trace.step_seconds for trace in self.traces], dtype=np.float64
        )
        self.columns: Dict[str, np.ndarray] = {
            "utilization": util2d,
            "frequency_hz": table.frequencies_hz[idx2d],
            "power_w": power2d,
            "energy_j": power2d * step_seconds[:, np.newaxis],
            "demand_uips": demand2d,
            "capacity_uips": capacity2d,
            "served_uips": np.minimum(demand2d, capacity2d),
            "qos_metric": table.qos_metric[idx2d],
            "qos_ok": qos_ok2d,
            "demand_met": demand_met2d,
            "violation": ~(qos_ok2d & demand_met2d),
        }

    def __len__(self) -> int:
        return len(self.traces)

    def columns_for(self, row: int) -> Dict[str, np.ndarray]:
        """One replay's column dict (rows sliced to the trace length)."""
        trace = self.traces[row]
        length = len(trace)
        out: Dict[str, np.ndarray] = {
            "step": np.arange(length, dtype=np.int64),
            "time_s": trace.times(),
        }
        for name, tensor in self.columns.items():
            out[name] = tensor[row, :length]
        return out

    def result(self, row: int) -> ReplayResult:
        """Materialize one replay as a full :class:`ReplayResult`."""
        if self.workload is None:
            raise ValueError(
                "this batch was built without a workload; results and "
                "summaries are unavailable"
            )
        trace = self.traces[row]
        return ReplayResult(
            governor_name=self.governor.name,
            workload_name=self.workload.name,
            trace_name=trace.name,
            step_seconds=trace.step_seconds,
            instructions_per_request=self.workload.instructions_per_request,
            columns=self.columns_for(row),
        )

    def summaries(self) -> List[Dict[str, object]]:
        """Per-replay scalar summaries, computed columnar.

        Key-for-key and bit-for-bit what ``ReplayResult.summary()``
        returns for each replay: the reductions run as axis-1 passes
        over exact-length row blocks, which NumPy evaluates with the
        same pairwise order as the per-replay 1-D reductions.
        """
        if self.workload is None:
            raise ValueError(
                "this batch was built without a workload; results and "
                "summaries are unavailable"
            )
        instructions = self.workload.instructions_per_request
        out: List[Optional[Dict[str, object]]] = [None] * len(self.traces)
        for length, rows in _length_groups(self.lengths):
            block = {
                name: self.columns[name][rows][:, :length]
                for name in (
                    "energy_j",
                    "power_w",
                    "frequency_hz",
                    "served_uips",
                    "violation",
                )
            }
            energy_sum = block["energy_j"].sum(axis=1)
            power_mean = block["power_w"].mean(axis=1)
            frequency_mean = block["frequency_hz"].mean(axis=1)
            sorted_freq = np.sort(block["frequency_hz"], axis=1)
            if length > 1:
                distinct = 1 + (np.diff(sorted_freq, axis=1) != 0).sum(axis=1)
            else:
                distinct = np.ones(len(rows), dtype=np.int64)
            served_sum = block["served_uips"].sum(axis=1)
            violations = block["violation"].sum(axis=1)
            for position, row in enumerate(rows.tolist()):
                trace = self.traces[row]
                total_energy = float(energy_sum[position])
                served = served_sum[position] * trace.step_seconds
                work = float(served / 1.0e9)
                requests = (
                    None if instructions <= 0 else float(served / instructions)
                )
                violation_count = int(violations[position])
                out[row] = {
                    "governor": self.governor.name,
                    "workload": self.workload.name,
                    "trace": trace.name,
                    "steps": length,
                    "step_seconds": trace.step_seconds,
                    "total_energy_j": total_energy,
                    "mean_power_w": float(power_mean[position]),
                    "mean_frequency_hz": float(frequency_mean[position]),
                    "distinct_frequencies": int(distinct[position]),
                    "total_giga_instructions": work,
                    "energy_per_giga_instruction_j": (
                        total_energy / work if work > 0 else None
                    ),
                    "total_requests": requests,
                    "energy_per_request_j": (
                        None
                        if requests is None or requests <= 0
                        else total_energy / requests
                    ),
                    "violation_count": violation_count,
                    "violation_fraction": (
                        violation_count / length if length else 0.0
                    ),
                }
        return out  # type: ignore[return-value]


# -- fleet batches ----------------------------------------------------------------------


def _desired_active_batch(
    mass: np.ndarray, fleet_size: int, autoscaler: Autoscaler
) -> np.ndarray:
    """Vector twin of :meth:`Autoscaler.desired_active` over B rows."""
    needed = np.ceil(mass / autoscaler.target - 1e-12).astype(np.int64)
    desired = np.maximum(
        autoscaler.min_servers, np.minimum(fleet_size, needed)
    )
    return np.where(mass <= 0.0, autoscaler.min_servers, desired)


def _batched_state_timeline(
    mass2d: np.ndarray, fleet_size: int, autoscaler: Optional[Autoscaler]
) -> Tuple[np.ndarray, np.ndarray]:
    """The autoscaler state machine over all B replays at once.

    Returns ``(state3d, wake3d)`` of shape (B, N, T).  The loop runs
    over T only; every step advances all B fleets with (B, N) array
    ops that mirror ``_resolve_states``'s scalar pass: boots first,
    then one scaling decision (lowest-id off nodes wake, booting
    nodes park before the highest-id serving nodes).
    """
    batch, steps = mass2d.shape
    if autoscaler is None:
        # No scaling: every node serves every step, nothing ever wakes.
        return (
            np.full((batch, fleet_size, steps), _SERVING, dtype=np.int8),
            np.zeros((batch, fleet_size, steps), dtype=bool),
        )
    initially_serving = _desired_active_batch(
        mass2d[:, 0], fleet_size, autoscaler
    )
    node_ids = np.arange(fleet_size, dtype=np.int64)
    states = np.where(
        node_ids[np.newaxis, :] < initially_serving[:, np.newaxis],
        _SERVING,
        _OFF,
    ).astype(np.int8)
    boot = np.zeros((batch, fleet_size), dtype=np.int64)
    state3d = np.empty((batch, fleet_size, steps), dtype=np.int8)
    wake3d = np.zeros((batch, fleet_size, steps), dtype=bool)

    for step in range(steps):
        mass = mass2d[:, step]
        booting = states == _BOOTING
        if booting.any():
            boot = boot - booting.astype(np.int64)
            done = booting & (boot <= 0)
            states = np.where(done, np.int8(_SERVING), states)
            boot = np.where(done, 0, boot)
        if autoscaler is not None:
            serving = states == _SERVING
            booting = states == _BOOTING
            off = states == _OFF
            n_serving = serving.sum(axis=1)
            n_booting = booting.sum(axis=1)
            active = n_serving + n_booting
            # Serving capacity, falling back to booting capacity during
            # a cold start (mirrors Autoscaler.scale's utilisation fix).
            capacity = np.where(n_serving > 0, n_serving, n_booting)
            utilization = np.where(
                capacity > 0, mass / np.maximum(capacity, 1), np.inf
            )
            rescale = (utilization > autoscaler.high) | (
                utilization < autoscaler.low
            )
            desired = np.where(
                rescale,
                _desired_active_batch(mass, fleet_size, autoscaler),
                active,
            )
            delta = desired - active
            wake_quota = np.maximum(delta, 0)
            if wake_quota.any():
                # Rank each off node by how many off nodes have a
                # lower id: the lowest-ranked `quota` of them wake.
                off_rank = np.cumsum(off, axis=1) - off.astype(np.int64)
                wake = off & (off_rank < wake_quota[:, np.newaxis])
                if autoscaler.wake_steps <= 0:
                    states = np.where(wake, np.int8(_SERVING), states)
                else:
                    states = np.where(wake, np.int8(_BOOTING), states)
                    boot = np.where(wake, autoscaler.wake_steps, boot)
                wake3d[:, :, step] = wake
            # Boot grace (mirrors Autoscaler.scale): no parking unless
            # the desired count undercuts even the serving set.
            park_quota = np.where(
                desired < n_serving, np.maximum(-delta, 0), 0
            )
            if park_quota.any():
                # Candidates in park order: booting nodes by descending
                # id, then serving nodes by descending id.  A node's
                # rank is the number of candidates ahead of it.
                higher_boot = (
                    booting[:, ::-1].cumsum(axis=1)[:, ::-1]
                    - booting.astype(np.int64)
                )
                higher_serving = (
                    serving[:, ::-1].cumsum(axis=1)[:, ::-1]
                    - serving.astype(np.int64)
                )
                park = (
                    booting & (higher_boot < park_quota[:, np.newaxis])
                ) | (
                    serving
                    & (
                        (n_booting[:, np.newaxis] + higher_serving)
                        < park_quota[:, np.newaxis]
                    )
                )
                states = np.where(park, np.int8(_OFF), states)
                boot = np.where(park, 0, boot)
        state3d[:, :, step] = states
    return state3d, wake3d


def _batched_even_split(
    mass2d: np.ndarray, target3d: np.ndarray, valid2d: np.ndarray
) -> np.ndarray:
    """``mass / |targets|`` on the target mask, zero elsewhere."""
    counts2d = target3d.sum(axis=1)
    if np.any((counts2d == 0) & valid2d):
        raise ValueError(fleet_kernel._NO_ACTIVE_NODE)
    safe = np.where(counts2d == 0, 1, counts2d)
    return np.where(
        target3d, (mass2d / safe)[:, np.newaxis, :], 0.0
    )


def _batched_pack_shares(
    routing, mass2d, serving3d, active3d, valid2d
) -> np.ndarray:
    """Pack's sequential fill, batched: loop nodes, vectorize rows.

    The spill arithmetic is order-dependent float subtraction, so the
    fill walks nodes in id order exactly like the scalar loop -- but
    each walk step updates all B remainders at once.  Subtracting a
    zero take is float-exact, so rows that already drained (the scalar
    loop's ``break``) pass through unchanged.
    """
    batch, fleet_size, steps = serving3d.shape
    shares3d = np.zeros((batch, fleet_size, steps), dtype=np.float64)
    fill = routing.fill_fraction
    for step in range(steps):
        serving = serving3d[:, :, step]
        targets = np.where(
            serving.any(axis=1)[:, np.newaxis],
            serving,
            active3d[:, :, step],
        )
        if np.any(~targets.any(axis=1) & valid2d[:, step]):
            raise ValueError(fleet_kernel._NO_ACTIVE_NODE)
        remaining = mass2d[:, step].copy()
        for node in range(fleet_size):
            eligible = targets[:, node] & (remaining > 0.0)
            take = np.where(
                eligible, np.minimum(fill, remaining), 0.0
            )
            shares3d[:, node, step] = take
            remaining = remaining - take
        overflowing = remaining > 0.0
        if overflowing.any():
            counts = targets.sum(axis=1)
            safe = np.where(counts == 0, 1, counts)
            extra = np.where(overflowing, remaining / safe, 0.0)
            shares3d[:, :, step] += np.where(
                targets, extra[:, np.newaxis], 0.0
            )
    return shares3d


def _batched_sequential_selection(
    table: FrequencyTable,
    governor: Governor,
    least_loaded: bool,
    mass2d: np.ndarray,
    serving3d: np.ndarray,
    active3d: np.ndarray,
    wake3d: np.ndarray,
    shares3d: np.ndarray,
    idx3d: np.ndarray,
    valid2d: np.ndarray,
) -> None:
    """Step-at-a-time selection, vectorized across batch and fleet.

    The batched twin of ``_sequential_selection``: ``least_loaded``
    weights couple to the previous step's frequencies and the
    ``conservative`` governor to each node's own previous choice, so
    the T axis stays a loop -- but each step is (B, N) array math.
    """
    batch, fleet_size, steps = serving3d.shape
    nominal_capacity = table.nominal_capacity_uips
    capacities = table.capacity_uips
    previous = np.full(
        (batch, fleet_size), table.nominal_index, dtype=np.int64
    )
    for step in range(steps):
        woken = wake3d[:, :, step]
        if woken.any():
            previous[woken] = table.nominal_index
        if least_loaded:
            serving = serving3d[:, :, step]
            targets = np.where(
                serving.any(axis=1)[:, np.newaxis],
                serving,
                active3d[:, :, step],
            )
            if np.any(~targets.any(axis=1) & valid2d[:, step]):
                raise ValueError(fleet_kernel._NO_ACTIVE_NODE)
            weights = np.where(
                targets, capacities[previous] / nominal_capacity, 0.0
            )
            # Accumulate in ascending node order (adding the zero
            # weight of a non-target is float-exact), mirroring the
            # scalar loop's sequential addition.
            total = np.zeros(batch, dtype=np.float64)
            for node in range(fleet_size):
                total = total + weights[:, node]
            fallback = total <= 0.0
            if fallback.any():
                counts = targets.sum(axis=1)
                weights = np.where(
                    fallback[:, np.newaxis] & targets, 1.0, weights
                )
                total = np.where(
                    fallback,
                    np.maximum(counts, 1).astype(np.float64),
                    total,
                )
            shares3d[:, :, step] = np.where(
                targets,
                mass2d[:, step][:, np.newaxis]
                * (weights / total[:, np.newaxis]),
                0.0,
            )
        serving = serving3d[:, :, step]
        if serving.any():
            utilization = shares3d[:, :, step][serving]
            chosen = select_step_indices(
                governor,
                table,
                utilization,
                utilization * nominal_capacity,
                previous[serving],
            )
            idx3d[:, :, step][serving] = chosen
            previous[serving] = chosen


def _batched_rowsum(array3d: np.ndarray) -> np.ndarray:
    """(B, N, T) -> (B, T) totals accumulated node by node, id order."""
    total = np.zeros(
        (array3d.shape[0], array3d.shape[2]), dtype=np.float64
    )
    for node in range(array3d.shape[1]):
        total += array3d[:, node, :]
    return total


def _batched_worst_tails(
    table: FrequencyTable,
    workload: WorkloadCharacteristics,
    serving3d: np.ndarray,
    shares3d: np.ndarray,
    idx3d: np.ndarray,
) -> np.ndarray:
    """Per (replay, step): the worst loaded node's tail, NaN if none."""
    loaded = serving3d & (shares3d > 0.0)
    tail3d = np.full(shares3d.shape, np.nan, dtype=np.float64)
    tail3d[loaded] = fleet_kernel.tail_latencies(
        table,
        workload,
        idx3d[loaded],
        shares3d[loaded] * table.nominal_capacity_uips,
    )
    defined = ~np.isnan(tail3d)
    candidates = np.where(defined, tail3d, -np.inf)
    return np.where(
        defined.any(axis=1), candidates.max(axis=1), np.nan
    )


class FleetReplayBatch:
    """B fleet replays of one configuration stacked into (B, N, T).

    All replays share (table, workload, fleet size, governor, routing,
    autoscaler, off-power, queueing flag); only the traces differ --
    the natural shape of a seed/trace sweep.  Row ``b``, sliced to its
    trace length, is bit-identical to ``fleet_replay_columns`` on
    ``traces[b]``.
    """

    def __init__(
        self,
        table: FrequencyTable,
        workload: WorkloadCharacteristics,
        fleet_size: int,
        governor: Governor,
        routing: RoutingPolicy,
        autoscaler: Optional[Autoscaler],
        off_power_w: float,
        traces: Sequence[LoadTrace],
        use_queueing: bool,
        timeline_cache: Optional[dict] = None,
    ):
        self.table = table
        self.workload = workload
        self.fleet_size = fleet_size
        self.governor = governor
        self.routing = routing
        self.autoscaler = autoscaler
        self.traces = list(traces)
        util2d, self.lengths = _padded_utilization(self.traces)
        batch, steps = util2d.shape
        mass2d = util2d * fleet_size
        valid2d = (
            np.arange(steps, dtype=np.int64)[np.newaxis, :]
            < self.lengths[:, np.newaxis]
        )
        nominal_capacity = table.nominal_capacity_uips

        # The power-state timeline depends only on (traces, fleet size,
        # autoscaler) -- never on governor or routing -- so a runner
        # sweeping governors over one trace set shares it across its
        # groups.  The arrays are read-only downstream (every consumer
        # derives new arrays), so sharing is safe.
        if timeline_cache is not None:
            key = (tuple(self.traces), fleet_size, autoscaler)
            cached = timeline_cache.get(key)
            if cached is None:
                obs.count("batch.timeline_cache_misses")
                cached = _batched_state_timeline(
                    mass2d, fleet_size, autoscaler
                )
                timeline_cache[key] = cached
            else:
                obs.count("batch.timeline_cache_hits")
            state3d, wake3d = cached
        else:
            state3d, wake3d = _batched_state_timeline(
                mass2d, fleet_size, autoscaler
            )
        serving3d = state3d == _SERVING
        booting3d = state3d == _BOOTING
        active3d = serving3d | booting3d

        idx3d = np.full(
            (batch, fleet_size, steps), table.nominal_index, dtype=np.int64
        )
        routing_type = type(routing)
        if routing_type is LeastLoadedRouting:
            shares3d = np.zeros((batch, fleet_size, steps), dtype=np.float64)
            _batched_sequential_selection(
                table, governor, True, mass2d, serving3d, active3d,
                wake3d, shares3d, idx3d, valid2d,
            )
        else:
            if routing_type is RoundRobinRouting:
                shares3d = _batched_even_split(mass2d, active3d, valid2d)
            elif routing_type is SpreadRouting:
                serving_counts = serving3d.sum(axis=1)
                target3d = np.where(
                    (serving_counts > 0)[:, np.newaxis, :],
                    serving3d,
                    active3d,
                )
                shares3d = _batched_even_split(mass2d, target3d, valid2d)
            else:  # PackRouting
                shares3d = _batched_pack_shares(
                    routing, mass2d, serving3d, active3d, valid2d
                )
            if is_memoryless_kernel(governor):
                chosen = select_step_indices(
                    governor,
                    table,
                    shares3d[serving3d],
                    shares3d[serving3d] * nominal_capacity,
                    idx3d[serving3d],
                )
                idx3d[serving3d] = chosen
            else:
                _batched_sequential_selection(
                    table, governor, False, mass2d, serving3d, active3d,
                    wake3d, shares3d, idx3d, valid2d,
                )

        demand3d = shares3d * nominal_capacity
        frequency3d = np.where(
            serving3d, table.frequencies_hz[idx3d], np.nan
        )
        power3d = np.where(
            serving3d,
            table.power_w[idx3d],
            np.where(booting3d, table.power_w[0], off_power_w),
        )
        wake_energy = (
            autoscaler.wake_energy_j if autoscaler is not None else 0.0
        )
        wake_extra3d = np.where(wake3d, wake_energy, 0.0)
        step_seconds = np.array(
            [trace.step_seconds for trace in self.traces], dtype=np.float64
        )
        energy3d = (
            power3d * step_seconds[:, np.newaxis, np.newaxis] + wake_extra3d
        )
        capacity3d = np.where(serving3d, table.capacity_uips[idx3d], 0.0)
        served3d = np.where(
            serving3d, np.minimum(demand3d, capacity3d), 0.0
        )
        qos_metric3d = np.where(serving3d, table.qos_metric[idx3d], np.nan)
        qos_ok3d = np.where(serving3d, table.qos_ok[idx3d], True)
        demand_met3d = np.where(
            serving3d,
            table.covers_capacity_uips[idx3d] >= demand3d,
            demand3d <= 0.0,
        )
        violation3d = ~(qos_ok3d & demand_met3d)

        serving_counts2d = serving3d.sum(axis=1)
        booting_counts2d = booting3d.sum(axis=1)
        node_violations2d = violation3d.sum(axis=1)

        if use_queueing:
            tails2d = _batched_worst_tails(
                table, workload, serving3d, shares3d, idx3d
            )
            qos_limit = workload.qos_limit_seconds
            queue_ok2d = np.isnan(tails2d) | (
                tails2d <= qos_limit + 1e-12
            )
        else:
            tails2d = np.full((batch, steps), np.nan)
            queue_ok2d = np.ones((batch, steps), dtype=bool)

        self.fleet_columns: Dict[str, np.ndarray] = {
            "utilization": util2d,
            "offered_uips": mass2d * nominal_capacity,
            "served_uips": _batched_rowsum(served3d),
            "total_power_w": _batched_rowsum(power3d),
            "energy_j": _batched_rowsum(energy3d),
            "tail_latency_s": tails2d,
            "active_servers": (
                serving_counts2d + booting_counts2d
            ).astype(np.int64),
            "serving_servers": serving_counts2d.astype(np.int64),
            "booting_servers": booting_counts2d.astype(np.int64),
            "used_servers": (serving3d & (shares3d > 0.0))
            .sum(axis=1)
            .astype(np.int64),
            "wake_events": wake3d.sum(axis=1).astype(np.int64),
            "node_violations": node_violations2d.astype(np.int64),
            "queue_ok": queue_ok2d,
            "demand_met": demand_met3d.all(axis=1),
            "violation": node_violations2d > 0,
        }
        self.node_columns: Dict[str, np.ndarray] = {
            "state": state3d,
            "frequency_hz": frequency3d,
            "power_w": power3d,
            "energy_j": energy3d,
            "demand_uips": demand3d,
            "capacity_uips": capacity3d,
            "served_uips": served3d,
            "qos_metric": qos_metric3d,
            "qos_ok": qos_ok3d,
            "demand_met": demand_met3d,
            "violation": violation3d,
        }

    def __len__(self) -> int:
        return len(self.traces)

    def columns_for(
        self, row: int
    ) -> Tuple[Dict[str, np.ndarray], Dict[int, Dict[str, np.ndarray]]]:
        """One replay's (fleet, per-node) column dicts, length-sliced."""
        trace = self.traces[row]
        length = len(trace)
        fleet: Dict[str, np.ndarray] = {
            "step": np.arange(length, dtype=np.int64),
            "time_s": trace.times(),
        }
        for name, tensor in self.fleet_columns.items():
            fleet[name] = tensor[row, :length]
        nodes = {
            node: {
                name: tensor[row, node, :length]
                for name, tensor in self.node_columns.items()
            }
            for node in range(self.fleet_size)
        }
        return fleet, nodes

    def result(self, row: int) -> FleetResult:
        """Materialize one replay as a full :class:`FleetResult`."""
        trace = self.traces[row]
        fleet, nodes = self.columns_for(row)
        return FleetResult(
            routing_name=self.routing.name,
            governor_name=self.governor.name,
            workload_name=self.workload.name,
            trace_name=trace.name,
            fleet_size=self.fleet_size,
            step_seconds=trace.step_seconds,
            instructions_per_request=self.workload.instructions_per_request,
            autoscaled=self.autoscaler is not None,
            columns=fleet,
            node_columns=nodes,
        )

    def summaries(self) -> List[Dict[str, object]]:
        """Per-replay scalar summaries, bit-equal to FleetResult's."""
        instructions = self.workload.instructions_per_request
        columns = self.fleet_columns
        out: List[Optional[Dict[str, object]]] = [None] * len(self.traces)
        for length, rows in _length_groups(self.lengths):
            def block(name: str) -> np.ndarray:
                return columns[name][rows][:, :length]

            energy_sum = block("energy_j").sum(axis=1)
            power_mean = block("total_power_w").mean(axis=1)
            active_mean = block("active_servers").mean(axis=1)
            serving_block = block("serving_servers")
            serving_mean = serving_block.mean(axis=1)
            peak_serving = serving_block.max(axis=1)
            used_mean = block("used_servers").mean(axis=1)
            wake_sum = block("wake_events").sum(axis=1)
            served_sum = block("served_uips").sum(axis=1)
            offered_sum = block("offered_uips").sum(axis=1)
            violations = block("violation").sum(axis=1)
            queue_violations = (~block("queue_ok")).sum(axis=1)
            tails = block("tail_latency_s")
            finite = np.isfinite(tails)
            has_finite = finite.any(axis=1)
            finite_max = np.where(finite, tails, -np.inf).max(axis=1)
            saturated = np.isinf(tails).sum(axis=1)
            for position, row in enumerate(rows.tolist()):
                trace = self.traces[row]
                total_energy = float(energy_sum[position])
                offered = float(offered_sum[position])
                served = served_sum[position] * trace.step_seconds
                work = float(served / 1.0e9)
                requests = (
                    None if instructions <= 0 else float(served / instructions)
                )
                duration = trace.step_seconds * length
                violation_count = int(violations[position])
                out[row] = {
                    "routing": self.routing.name,
                    "governor": self.governor.name,
                    "workload": self.workload.name,
                    "trace": trace.name,
                    "fleet_size": self.fleet_size,
                    "autoscaled": self.autoscaler is not None,
                    "steps": length,
                    "step_seconds": trace.step_seconds,
                    "total_energy_j": total_energy,
                    "mean_power_w": float(power_mean[position]),
                    "mean_active_servers": float(active_mean[position]),
                    "mean_serving_servers": float(serving_mean[position]),
                    "mean_used_servers": float(used_mean[position]),
                    "peak_serving_servers": int(peak_serving[position]),
                    "wake_count": int(wake_sum[position]),
                    "served_fraction": (
                        1.0
                        if offered <= 0.0
                        else float(served_sum[position]) / offered
                    ),
                    "total_giga_instructions": work,
                    "energy_per_giga_instruction_j": (
                        total_energy / work if work > 0 else None
                    ),
                    "total_requests": requests,
                    "mean_qps": (
                        None
                        if requests is None or duration <= 0
                        else requests / duration
                    ),
                    "energy_per_request_j": (
                        None
                        if requests is None or requests <= 0
                        else total_energy / requests
                    ),
                    "violation_count": violation_count,
                    "violation_fraction": (
                        violation_count / length if length else 0.0
                    ),
                    "queue_violation_count": int(queue_violations[position]),
                    "saturated_step_count": int(saturated[position]),
                    "max_tail_latency_s": (
                        float(finite_max[position])
                        if has_finite[position]
                        else None
                    ),
                }
        return out  # type: ignore[return-value]


# -- the user-facing runner -------------------------------------------------------------


def _spec_identity(position: int, spec: ReplaySpec) -> str:
    """A short human-readable identity for one replay of a batch."""
    governor = (
        spec.governor
        if isinstance(spec.governor, str)
        else getattr(spec.governor, "name", type(spec.governor).__name__)
    )
    detail = f"{spec.workload.name}/{governor}"
    if spec.is_fleet:
        detail += f"/fleet{spec.fleet_size}"
    return f"replay {position} ({detail})"


def _quarantined_placement(
    position: int, spec: ReplaySpec, error: Exception
) -> tuple:
    """A ``"failed"`` placement capturing one isolated replay fault."""
    fault = classify(error, identity=_spec_identity(position, spec))
    return ("failed", FailedSummary.from_fault(fault), fault)


class BatchReplayResult:
    """The outcome of one batched run: B replays, columnar access.

    :meth:`summaries` is the cheap bulk product (computed columnar,
    no per-replay objects); :meth:`result` materializes any single
    replay as a full :class:`ReplayResult` / :class:`FleetResult` on
    demand.

    Placements come in three kinds: ``"batch"`` (a row of a tensor
    batch), ``"object"`` (a materialized simulator-path result) and --
    only under ``on_error="quarantine"`` -- ``"failed"`` (a
    :class:`~repro.resilience.FailedSummary` holding the slot of a
    replay whose failure was isolated).  Failed slots keep submission
    order stable: :meth:`summaries` yields the placeholder,
    :meth:`result` re-raises the captured fault.
    """

    def __init__(self, specs, placements):
        self._specs = specs
        self._placements = placements
        self._summaries: Optional[List[Dict[str, object]]] = None

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def specs(self) -> List[ReplaySpec]:
        """The specs, in submission order."""
        return list(self._specs)

    @property
    def batched_count(self) -> int:
        """Replays that ran through the tensor engine."""
        return sum(
            1 for kind, *_ in self._placements if kind == "batch"
        )

    @property
    def fallback_count(self) -> int:
        """Replays that fell back to the per-replay simulator path."""
        return sum(
            1 for kind, *_ in self._placements if kind == "object"
        )

    @property
    def quarantined_count(self) -> int:
        """Replays whose failures were isolated (quarantine mode only)."""
        return sum(
            1 for kind, *_ in self._placements if kind == "failed"
        )

    def quarantined(self) -> List[Tuple[int, FailedSummary]]:
        """``(index, FailedSummary)`` for every quarantined replay."""
        return [
            (index, placement[1])
            for index, placement in enumerate(self._placements)
            if placement[0] == "failed"
        ]

    def result(self, index: int):
        """Replay ``index`` as a ReplayResult or FleetResult.

        A quarantined replay has no result: the captured fault is
        re-raised here so the loss cannot pass silently.
        """
        kind, payload, extra = self._placements[index]
        if kind == "batch":
            return payload.result(extra)
        if kind == "failed":
            raise extra
        return payload

    def results(self) -> List[object]:
        """Every replay materialized, in submission order."""
        return [self.result(index) for index in range(len(self))]

    def summaries(self) -> List[Dict[str, object]]:
        """Per-replay scalar summaries, in submission order.

        Bit-for-bit what ``result(i).summary()`` returns, computed as
        columnar reductions over the batch tensors (cached).
        Quarantined slots carry their
        :class:`~repro.resilience.FailedSummary` placeholder instead
        of a summary dict.
        """
        if self._summaries is None:
            per_batch: Dict[int, List[Dict[str, object]]] = {}
            summaries = []
            for kind, payload, row in self._placements:
                if kind == "batch":
                    key = id(payload)
                    if key not in per_batch:
                        per_batch[key] = payload.summaries()
                    summaries.append(per_batch[key][row])
                elif kind == "failed":
                    summaries.append(payload)
                else:
                    summaries.append(payload.summary())
            self._summaries = summaries
        return list(self._summaries)


class BatchReplayRunner:
    """Spec list in, columnar per-replay summaries out.

    Groups the specs by shared (workload, governor, routing,
    autoscaler, fleet) configuration, runs each group as one tensor
    batch, and falls back to the per-replay simulator path for specs
    whose exact policy types have no kernel (custom subclasses) --
    the same dispatch rule the single-replay simulators apply.

    ``on_error="raise"`` (the default) fails the whole run on the
    first bad spec, exactly as before.  ``on_error="quarantine"``
    isolates failures instead: a failing replay becomes a
    :class:`~repro.resilience.FailedSummary` slot in the result, a
    failing *group* build degrades to the per-member simulator path
    (which is bit-identical, so nothing is lost), and the rest of the
    batch completes untouched -- per-row bit parity with the
    fault-free run is pinned by the chaos property tests.
    """

    def __init__(self, context, frequencies=None, on_error="raise"):
        self.context = context
        self.frequencies = frequencies
        self.on_error = check_on_error(on_error)

    # -- resolution --------------------------------------------------------------------

    def _table(self, workload: WorkloadCharacteristics) -> FrequencyTable:
        return self.context.frequency_table(workload, self.frequencies)

    @staticmethod
    def _resolve_governor(governor: Union[Governor, str]) -> Governor:
        if isinstance(governor, str):
            return governor_by_name(governor)
        return governor

    @staticmethod
    def _resolve_routing(
        routing: Union[RoutingPolicy, str]
    ) -> RoutingPolicy:
        if isinstance(routing, str):
            return router_by_name(routing)
        return routing

    @staticmethod
    def _use_queueing(spec: ReplaySpec) -> bool:
        return (
            spec.queueing
            and spec.workload.is_scale_out
            and spec.workload.instructions_per_request > 0
        )

    # -- execution ---------------------------------------------------------------------

    def run(self, specs: Sequence[ReplaySpec]) -> BatchReplayResult:
        """Evaluate every spec; batched where possible, exact always."""
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, ReplaySpec):
                raise TypeError(
                    f"BatchReplayRunner needs ReplaySpec items, "
                    f"got {type(spec).__name__}"
                )
        with obs.trace("batch.run", batch_size=len(specs)) as span:
            result = self._run(specs)
            span.set(
                batched=result.batched_count,
                fallback=result.fallback_count,
            )
            if result.quarantined_count:
                span.set(quarantined=result.quarantined_count)
        obs.count("batch.batched_replays", result.batched_count)
        obs.count("batch.fallback_replays", result.fallback_count)
        if result.quarantined_count:
            obs.count("resilience.quarantined", result.quarantined_count)
        return result

    def _run(self, specs: List[ReplaySpec]) -> BatchReplayResult:
        quarantine = self.on_error == "quarantine"
        # Building 1000 identity strings just to feed an unarmed chaos
        # hook is measurable on large batches; skip the per-spec
        # fault_point entirely unless a plan is installed.
        chaos_armed = active_plan() is not None
        placements: List[Optional[tuple]] = [None] * len(specs)
        single_groups: Dict[tuple, List[int]] = {}
        fleet_groups: Dict[tuple, List[int]] = {}
        timeline_cache: dict = {}
        for position, spec in enumerate(specs):
            try:
                if chaos_armed:
                    fault_point(
                        "batch.replay",
                        identity=_spec_identity(position, spec),
                    )
                governor = self._resolve_governor(spec.governor)
                if spec.is_fleet:
                    routing = self._resolve_routing(spec.routing)
                    # Disturbance schedules stay per-replay: the batched
                    # (B, N, T) state machine has no event timeline, so
                    # they replay through the simulator path (which still
                    # dispatches crash/restore schedules to the
                    # single-replay kernel, bit-for-bit).
                    if spec.disturbances is None and fleet_kernel.supports(
                        routing, governor, spec.autoscaler
                    ):
                        key = (
                            spec.workload,
                            governor,
                            routing,
                            spec.autoscaler,
                            spec.fleet_size,
                            spec.off_power_w,
                            self._use_queueing(spec),
                        )
                        fleet_groups.setdefault(key, []).append(position)
                    else:
                        placements[position] = (
                            "object",
                            self._fallback(spec),
                            0,
                        )
                else:
                    if has_kernel(governor):
                        key = (spec.workload, governor)
                        single_groups.setdefault(key, []).append(position)
                    else:
                        placements[position] = (
                            "object",
                            self._fallback(spec),
                            0,
                        )
            except Exception as error:
                if not quarantine:
                    raise
                placements[position] = _quarantined_placement(
                    position, specs[position], error
                )
        for (workload, governor), positions in single_groups.items():
            try:
                fault_point(
                    "batch.group",
                    identity=f"group ({workload.name}, {governor.name})",
                )
                batch = GovernorReplayBatch(
                    self._table(workload),
                    governor,
                    [specs[position].trace for position in positions],
                    workload=workload,
                )
            except Exception:
                if not quarantine:
                    raise
                # A failed group build loses nothing: the per-replay
                # simulator path is bit-identical, so degrade every
                # member to it (quarantining only members that fail
                # even there).
                self._degrade_group(specs, positions, placements)
                continue
            for row, position in enumerate(positions):
                placements[position] = ("batch", batch, row)
        for key, positions in fleet_groups.items():
            (
                workload,
                governor,
                routing,
                autoscaler,
                fleet_size,
                off_power_w,
                use_queueing,
            ) = key
            try:
                fault_point(
                    "batch.group",
                    identity=(
                        f"group ({workload.name}, {governor.name}, "
                        f"fleet {fleet_size})"
                    ),
                )
                batch = FleetReplayBatch(
                    self._table(workload),
                    workload,
                    fleet_size,
                    governor,
                    routing,
                    autoscaler,
                    off_power_w,
                    [specs[position].trace for position in positions],
                    use_queueing,
                    timeline_cache=timeline_cache,
                )
            except Exception:
                if not quarantine:
                    raise
                self._degrade_group(specs, positions, placements)
                continue
            for row, position in enumerate(positions):
                placements[position] = ("batch", batch, row)
        return BatchReplayResult(specs, placements)

    def _degrade_group(
        self,
        specs: List[ReplaySpec],
        positions: List[int],
        placements: List[Optional[tuple]],
    ) -> None:
        """Re-run a failed group's members through the simulator path."""
        for position in positions:
            try:
                placements[position] = (
                    "object",
                    self._fallback(specs[position]),
                    0,
                )
            except Exception as error:
                placements[position] = _quarantined_placement(
                    position, specs[position], error
                )

    def _fallback(self, spec: ReplaySpec):
        """One unsupported spec through the per-replay simulator path."""
        if spec.is_fleet:
            from repro.fleet.simulator import FleetSimulator

            simulator = FleetSimulator(
                self.context,
                spec.workload,
                fleet_size=spec.fleet_size,
                governor=spec.governor,
                autoscaler=spec.autoscaler,
                frequencies=self.frequencies,
                off_power_w=spec.off_power_w,
                queueing=spec.queueing,
            )
            return simulator.run(
                spec.trace, spec.routing, disturbances=spec.disturbances
            )
        from repro.dvfs.simulator import GovernorSimulator

        simulator = GovernorSimulator(
            self.context, spec.workload, frequencies=self.frequencies
        )
        return simulator.replay(spec.trace, spec.governor)
