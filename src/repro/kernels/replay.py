"""Whole-trace single-server replay: gather columns from the table.

One governor replay becomes: select grid indices for every step (a
vectorized :mod:`~repro.kernels.governors` kernel), then gather the
power/capacity/QoS columns from the :class:`FrequencyTable`.  The
arithmetic -- demand scaling, served-work clamping, the coverage test
behind the violation flag -- mirrors
:meth:`GovernorSimulator.replay` term for term, so the resulting
columns are bit-for-bit identical to the object-based reference path.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.dvfs.governors import Governor
from repro.dvfs.trace import LoadTrace
from repro.kernels.governors import select_trace_indices
from repro.kernels.table import FrequencyTable


def governor_replay_columns(
    table: FrequencyTable, governor: Governor, trace: LoadTrace
) -> Dict[str, np.ndarray]:
    """The full per-step replay table of one governor over one trace."""
    steps = len(trace)
    utilization = np.asarray(trace.utilization, dtype=np.float64)
    demand = utilization * table.nominal_capacity_uips
    indices = select_trace_indices(governor, table, utilization)

    power = table.power_w[indices]
    capacity = table.capacity_uips[indices]
    qos_ok = table.qos_ok[indices]
    demand_met = table.covers_capacity_uips[indices] >= demand
    return {
        "step": np.arange(steps, dtype=np.int64),
        "time_s": trace.times(),
        "utilization": utilization,
        "frequency_hz": table.frequencies_hz[indices],
        "power_w": power,
        "energy_j": power * trace.step_seconds,
        "demand_uips": demand,
        "capacity_uips": capacity,
        "served_uips": np.minimum(demand, capacity),
        "qos_metric": table.qos_metric[indices],
        "qos_ok": qos_ok,
        "demand_met": demand_met,
        "violation": ~(qos_ok & demand_met),
    }
