"""Columnar fleet stepper: per-node state arrays instead of objects.

The object-based :class:`~repro.fleet.simulator.FleetSimulator` loop
creates one :class:`~repro.fleet.node.NodeStep` per (node, step) and
writes eleven column scalars each -- the hot path the ISSUE's profile
blames.  This kernel replaces it with per-node state *arrays* updated
in bulk:

1. **State timeline** -- the autoscaler's power-state machine (off /
   booting / serving, boot countdowns, wake events) depends only on the
   offered-mass sequence, never on routing or governor choices, so it
   is resolved once per replay in a tight scalar pass.
2. **Routing** -- ``round_robin`` and ``spread`` become whole-trace
   mask-and-divide expressions; ``pack``'s sequential fill keeps a
   scalar loop per step (its spill arithmetic is order-dependent);
   ``least_loaded`` couples to the previous step's frequencies and runs
   inside the sequential selection loop.
3. **Governor selection** -- memoryless policies select every
   (serving node, step) pair in one batched kernel call; the stateful
   ``conservative`` (and any policy under ``least_loaded``) advances
   all nodes one step at a time, vectorized across the fleet.
4. **Columns** -- every per-node and fleet-level column is a gather or
   reduction over the ``(fleet_size, steps)`` arrays; fleet sums
   accumulate node-by-node in ascending id order, reproducing the
   reference loop's float-addition order bit for bit.

Queueing tails are evaluated by :func:`tail_latencies`, a closed-form
vectorized twin of the scalar
:class:`~repro.latency.queueing.MM1Queue` / :class:`MG1Queue` math:
the (grid index, demand) pairs of every loaded node-step are
deduplicated with ``np.unique`` and each unique pair is solved once
with the exact float expressions the scalar queue models use (the one
``math.log`` per unique pair included, because ``np.log`` is not
bit-identical to ``math.log`` on every platform).

Dispatch is by exact type (routing, governor, autoscaler): any subclass
with overridden behaviour falls back to the object-based reference
path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro import obs
from repro.dvfs.governors import Governor
from repro.dvfs.trace import LoadTrace
from repro.fleet.autoscaler import Autoscaler
from repro.fleet.disturbance import (
    NODE_CRASH,
    NODE_RESTORE,
    DisturbanceSchedule,
)
from repro.fleet.node import NodeState
from repro.fleet.routing import (
    LeastLoadedRouting,
    PackRouting,
    RoundRobinRouting,
    RoutingPolicy,
    SpreadRouting,
)
from repro.kernels.governors import (
    has_kernel,
    is_memoryless_kernel,
    select_step_indices,
)
from repro.kernels.table import FrequencyTable
from repro.workloads.base import WorkloadCharacteristics

_OFF = int(NodeState.OFF)
_BOOTING = int(NodeState.BOOTING)
_SERVING = int(NodeState.SERVING)

_STABILITY_EPSILON = 1e-9
"""Utilisations within this of 1.0 count as a saturated queue
(mirrors :data:`repro.fleet.simulator._STABILITY_EPSILON`)."""

ROUTING_KERNEL_TYPES = frozenset(
    (RoundRobinRouting, LeastLoadedRouting, PackRouting, SpreadRouting)
)
"""Routing policies with a columnar kernel, by exact type."""

_NO_ACTIVE_NODE = "cannot route load on a fleet with no active node"


def supports(
    routing: RoutingPolicy,
    governor: Governor,
    autoscaler: Autoscaler | None,
    disturbances: DisturbanceSchedule | None = None,
) -> bool:
    """True when this (routing, governor, autoscaler) trio has a kernel.

    Crash/restore disturbance schedules stay on the kernel (they only
    move power states); thermal caps mutate per-node platform views and
    force the object-based reference path.
    """
    return (
        type(routing) in ROUTING_KERNEL_TYPES
        and has_kernel(governor)
        and (autoscaler is None or type(autoscaler) is Autoscaler)
        and (disturbances is None or disturbances.kernel_supported)
    )


@dataclass(eq=False)
class _StateTimeline:
    """The fleet's power states resolved over the whole trace.

    ``route_state2d`` is what the routing sees (post-scaling, *before*
    the step's crashes land) and ``state2d`` what the nodes actually do
    (post-crash); without node disturbances the two are the same array.
    ``serving_ids``/``active_ids`` are routing targets,
    ``select_ids`` the governor-selection domain (final serving set).
    """

    state2d: np.ndarray  # (fleet_size, steps) int8, post-crash
    route_state2d: np.ndarray  # (fleet_size, steps) int8, post-scaling
    wake_counts: np.ndarray  # (steps,) int64
    woken: List[List[int]]  # node ids whose boot began at each step
    restarted: List[List[int]]  # static-fleet restores (reset previous)
    serving_ids: List[List[int]]  # ascending, per step, routing view
    active_ids: List[List[int]]  # ascending, per step, routing view
    select_ids: List[List[int]]  # ascending, per step, post-crash serving


def _resolve_states(
    mass_list: List[float],
    fleet_size: int,
    autoscaler: Autoscaler | None,
    disturbances: DisturbanceSchedule | None = None,
) -> _StateTimeline:
    """Replay the autoscaler's state machine over the mass sequence.

    Mirrors ``FleetSimulator.run``'s per-step ordering exactly: boots
    advance first, restores land, then one scaling decision mutates the
    states the routing sees, and crashes land last (after routing has
    committed the step's shares).  Node ids are list indices, so the
    reference's lowest-id-wakes / highest-id-parks ordering is the
    natural slice.
    """
    steps = len(mass_list)
    crashes_at: Dict[int, List[int]] = {}
    restores_at: Dict[int, List[int]] = {}
    if disturbances is not None:
        for event in disturbances.events:
            if event.kind == NODE_CRASH:
                crashes_at.setdefault(event.step, []).append(event.node_id)
            elif event.kind == NODE_RESTORE:
                restores_at.setdefault(event.step, []).append(event.node_id)
    has_node_events = bool(crashes_at or restores_at)

    if autoscaler is None:
        initially_serving = fleet_size
    else:
        initially_serving = autoscaler.desired_active(mass_list[0], fleet_size)
    states = [
        _SERVING if node < initially_serving else _OFF
        for node in range(fleet_size)
    ]
    boot = [0] * fleet_size
    failed = [False] * fleet_size

    state2d = np.empty((fleet_size, steps), dtype=np.int8)
    route_state2d = (
        np.empty((fleet_size, steps), dtype=np.int8)
        if has_node_events
        else state2d
    )
    wake_counts = np.zeros(steps, dtype=np.int64)
    woken_steps: List[List[int]] = []
    restarted_steps: List[List[int]] = []
    serving_steps: List[List[int]] = []
    active_steps: List[List[int]] = []
    select_steps: List[List[int]] = []

    for index in range(steps):
        mass = mass_list[index]
        for node in range(fleet_size):
            if states[node] == _BOOTING:
                boot[node] -= 1
                if boot[node] <= 0:
                    states[node] = _SERVING
                    boot[node] = 0
        restarted: List[int] = []
        for node in restores_at.get(index, ()):
            failed[node] = False
            if autoscaler is None:
                # Matches the reference's restore-on-a-static-fleet:
                # wake(0) -- immediately serving, DVFS history reset,
                # no wake event and no wake energy.
                states[node] = _SERVING
                restarted.append(node)
        woken: List[int] = []
        if autoscaler is not None:
            serving = [n for n in range(fleet_size) if states[n] == _SERVING]
            booting = [n for n in range(fleet_size) if states[n] == _BOOTING]
            off = [
                n
                for n in range(fleet_size)
                if states[n] == _OFF and not failed[n]
            ]
            active = len(serving) + len(booting)
            capacity = len(serving) if serving else len(booting)
            utilization = mass / capacity if capacity else math.inf
            if utilization > autoscaler.high or utilization < autoscaler.low:
                desired = autoscaler.desired_active(mass, fleet_size)
            else:
                desired = active
            if desired > active:
                for node in off[: desired - active]:
                    if autoscaler.wake_steps <= 0:
                        states[node] = _SERVING
                    else:
                        states[node] = _BOOTING
                        boot[node] = autoscaler.wake_steps
                    woken.append(node)
            elif desired < active and desired < len(serving):
                candidates = booting[::-1] + serving[::-1]
                for node in candidates[: active - desired]:
                    states[node] = _OFF
                    boot[node] = 0
        route_state2d[:, index] = states
        serving_steps.append(
            [n for n in range(fleet_size) if states[n] == _SERVING]
        )
        active_steps.append(
            [n for n in range(fleet_size) if states[n] != _OFF]
        )
        for node in crashes_at.get(index, ()):
            states[node] = _OFF
            boot[node] = 0
            failed[node] = True
        if has_node_events:
            state2d[:, index] = states
            select_steps.append(
                [n for n in range(fleet_size) if states[n] == _SERVING]
            )
        else:
            select_steps.append(serving_steps[-1])
        wake_counts[index] = len(woken)
        woken_steps.append(woken)
        restarted_steps.append(restarted)
    return _StateTimeline(
        state2d=state2d,
        route_state2d=route_state2d,
        wake_counts=wake_counts,
        woken=woken_steps,
        restarted=restarted_steps,
        serving_ids=serving_steps,
        active_ids=active_steps,
        select_ids=select_steps,
    )


# -- routing ----------------------------------------------------------------------------


def _even_split_shares(
    mass: np.ndarray, target2d: np.ndarray
) -> np.ndarray:
    """``mass / |targets|`` on the target mask, zero elsewhere."""
    counts = target2d.sum(axis=0)
    if np.any(counts == 0):
        raise ValueError(_NO_ACTIVE_NODE)
    return np.where(target2d, (mass / counts)[np.newaxis, :], 0.0)


def _pack_shares(
    routing: PackRouting,
    mass_list: List[float],
    timeline: _StateTimeline,
    fleet_size: int,
) -> np.ndarray:
    """Sequential fill in id order, spilling at ``fill_fraction``.

    The reference subtracts each take from the running remainder, so
    the spill boundary is order-dependent float arithmetic; this loop
    repeats it verbatim on plain floats.
    """
    steps = len(mass_list)
    shares2d = np.zeros((fleet_size, steps), dtype=np.float64)
    fill = routing.fill_fraction
    for index in range(steps):
        targets = timeline.serving_ids[index] or timeline.active_ids[index]
        if not targets:
            raise ValueError(_NO_ACTIVE_NODE)
        remaining = mass_list[index]
        for node in targets:
            if remaining <= 0.0:
                break
            take = min(fill, remaining)
            shares2d[node, index] = take
            remaining -= take
        if remaining > 0.0:
            overflow = remaining / len(targets)
            for node in targets:
                shares2d[node, index] += overflow
    return shares2d


# -- governor selection -----------------------------------------------------------------


def _sequential_selection(
    table: FrequencyTable,
    governor: Governor,
    routing: RoutingPolicy,
    mass_list: List[float],
    timeline: _StateTimeline,
    shares2d: np.ndarray,
    idx2d: np.ndarray,
    fleet_size: int,
) -> None:
    """Step-at-a-time selection for state-coupled policies.

    Handles the two cross-step couplings the vectorized path cannot:
    ``least_loaded`` routing (shares depend on the previous step's
    frequencies) and the ``conservative`` governor (one notch off the
    node's own previous choice).  Vectorized across the fleet at each
    step; woken nodes restart from the nominal frequency exactly like
    :meth:`ServerNode.wake`.
    """
    least_loaded = type(routing) is LeastLoadedRouting
    nominal_capacity = table.nominal_capacity_uips
    capacities = table.capacity_uips.tolist()
    previous = np.full(fleet_size, table.nominal_index, dtype=np.int64)
    for index, mass in enumerate(mass_list):
        for node in timeline.woken[index]:
            previous[node] = table.nominal_index
        for node in timeline.restarted[index]:
            # Static-fleet restores wake(0): DVFS history resets.
            previous[node] = table.nominal_index
        if least_loaded:
            targets = (
                timeline.serving_ids[index] or timeline.active_ids[index]
            )
            if not targets:
                raise ValueError(_NO_ACTIVE_NODE)
            weights = [
                capacities[previous[node]] / nominal_capacity
                for node in targets
            ]
            total = 0.0
            for weight in weights:
                total += weight
            if total <= 0.0:
                weights = [1.0] * len(targets)
                total = float(len(targets))
            for node, weight in zip(targets, weights):
                shares2d[node, index] = mass * (weight / total)
        serving = timeline.select_ids[index]
        if serving:
            selector = np.asarray(serving, dtype=np.int64)
            utilization = shares2d[selector, index]
            demand = utilization * nominal_capacity
            chosen = select_step_indices(
                governor, table, utilization, demand, previous[selector]
            )
            idx2d[selector, index] = chosen
            previous[selector] = chosen


# -- queueing tails ---------------------------------------------------------------------

# The p99 constants, spelled exactly as the scalar queue models compute
# them: MG1Queue's ``1.0 - percentile / 100.0`` and MM1Queue's
# ``-math.log(1.0 - percentile / 100.0)`` for percentile = 99.0.
_P99_TAIL_PROBABILITY = 1.0 - 99.0 / 100.0
_P99_MM1_FACTOR = -math.log(1.0 - 99.0 / 100.0)


def tail_latencies(
    table: FrequencyTable,
    workload: WorkloadCharacteristics,
    indices: np.ndarray,
    demand_uips: np.ndarray,
) -> np.ndarray:
    """Closed-form p99 tails for a batch of (grid index, demand) pairs.

    Exact float twin of ``FleetSimulator._node_tail_latency``: the same
    guards in the same order (NaN base latency, non-positive capacity,
    saturation at ``1 - _STABILITY_EPSILON``), then the M/M/1 or
    Marchal-corrected M/G/1 percentile with the scalar models'
    expressions term for term.  The pairs are deduplicated with
    ``np.unique`` so each distinct operating point is solved once --
    the vectorized replacement for the old per-simulator memo dict.
    The one transcendental term, ``log(rho / tail_probability)``, is
    evaluated with ``math.log`` per *unique* pair because ``np.log``
    is not bit-identical to ``math.log`` everywhere.
    """
    indices = np.asarray(indices, dtype=np.int64)
    demand = np.asarray(demand_uips, dtype=np.float64)
    if indices.size == 0:
        return np.empty(0, dtype=np.float64)
    # Injective (index, demand) -> complex encoding: a 1-D complex sort
    # is far cheaper than np.unique(..., axis=0)'s void-dtype sort, and
    # complex unique orders lexicographically (real, then imag), so the
    # grouping is identical.  (+0.0/-0.0 demands would merge, but both
    # produce bit-identical tails through every branch below.)
    keys = indices.astype(np.float64) + 1j * demand
    unique, inverse = np.unique(keys, return_inverse=True)
    obs.count("fleet.tail_pairs", int(keys.size))
    obs.count("fleet.tail_unique_pairs", int(unique.size))
    grid = unique.real.astype(np.int64)
    unique_demand = unique.imag

    base = table.latency_seconds[grid]
    capacity = table.capacity_uips[grid]
    positive = capacity > 0.0
    utilization = np.where(
        positive, unique_demand / np.where(positive, capacity, 1.0), np.inf
    )
    nan_base = np.isnan(base)
    stable = positive & (utilization < 1.0 - _STABILITY_EPSILON) & ~nan_base

    out = np.full(len(unique), np.inf, dtype=np.float64)
    if np.any(stable):
        s_capacity = capacity[stable]
        s_demand = unique_demand[stable]
        instructions = workload.instructions_per_request
        service_time = instructions / s_capacity
        arrival_rate = s_demand / instructions
        cv = workload.service_time_cv
        if cv == 1.0:
            # MM1Queue: -log(tail) * 1 / (service_rate - arrival_rate).
            service_rate = s_capacity / instructions
            response_p99 = _P99_MM1_FACTOR * (
                1.0 / (service_rate - arrival_rate)
            )
        else:
            # MG1Queue, corrected percentile: P-K mean waiting time,
            # idle atom below the tail probability, exponential tail
            # above it.
            rho = arrival_rate * service_time
            cv_squared = cv * cv
            mean_waiting = (rho * service_time * (1.0 + cv_squared)) / (
                2.0 * (1.0 - rho)
            )
            waits = rho > _P99_TAIL_PROBABILITY
            waiting_tail = np.zeros(len(rho), dtype=np.float64)
            if np.any(waits):
                ratios = rho[waits] / _P99_TAIL_PROBABILITY
                logs = np.fromiter(
                    (math.log(ratio) for ratio in ratios.tolist()),
                    dtype=np.float64,
                    count=len(ratios),
                )
                waiting_tail[waits] = (
                    mean_waiting[waits] / rho[waits]
                ) * logs
            response_p99 = service_time + waiting_tail
        out[stable] = base[stable] + np.maximum(
            0.0, response_p99 - service_time
        )
    out[nan_base] = np.nan
    return out[inverse]


def _worst_tails(
    table: FrequencyTable,
    workload: WorkloadCharacteristics,
    serving2d: np.ndarray,
    shares2d: np.ndarray,
    idx2d: np.ndarray,
) -> np.ndarray:
    """Per step: the worst loaded node's tail, NaN when none is loaded.

    Matches the reference loop's running-max semantics: NaN tails never
    displace a finite worst, and a step with no loaded serving node (or
    only NaN tails) stays NaN.
    """
    loaded = serving2d & (shares2d > 0.0)
    tail2d = np.full(shares2d.shape, np.nan, dtype=np.float64)
    tail2d[loaded] = tail_latencies(
        table,
        workload,
        idx2d[loaded],
        shares2d[loaded] * table.nominal_capacity_uips,
    )
    defined = ~np.isnan(tail2d)
    candidates = np.where(defined, tail2d, -np.inf)
    return np.where(
        defined.any(axis=0), candidates.max(axis=0), np.nan
    )


# -- exact reductions -------------------------------------------------------------------


def _rowsum(array2d: np.ndarray) -> np.ndarray:
    """Column totals accumulated row by row in ascending node order.

    NumPy's ``sum`` uses pairwise/unrolled accumulation whose float
    rounding differs from the reference loop's sequential ``+=`` per
    node; this explicit row walk reproduces the reference order.
    """
    total = np.zeros(array2d.shape[1], dtype=np.float64)
    for row in array2d:
        total += row
    return total


# -- the kernel -------------------------------------------------------------------------


def fleet_replay_columns(
    table: FrequencyTable,
    workload: WorkloadCharacteristics,
    fleet_size: int,
    governor: Governor,
    routing: RoutingPolicy,
    autoscaler: Autoscaler | None,
    off_power_w: float,
    trace: LoadTrace,
    use_queueing: bool,
    disturbances: DisturbanceSchedule | None = None,
) -> Tuple[Dict[str, np.ndarray], Dict[int, Dict[str, np.ndarray]]]:
    """One routing policy's fleet replay as (fleet, per-node) columns.

    Caller guarantees :func:`supports` holds for the trio; the result
    is bit-for-bit identical to ``FleetSimulator.run``'s object path.
    Routing targets come from the pre-crash states (a node crashing
    this step was still routed its share -- now dropped as violations)
    while every per-node column reflects the post-crash states.
    """
    steps = len(trace)
    utilization = np.asarray(trace.utilization, dtype=np.float64)
    mass = utilization * fleet_size
    mass_list = mass.tolist()
    nominal_capacity = table.nominal_capacity_uips

    timeline = _resolve_states(mass_list, fleet_size, autoscaler, disturbances)
    serving2d = timeline.state2d == _SERVING
    booting2d = timeline.state2d == _BOOTING
    if timeline.route_state2d is timeline.state2d:
        route_serving2d = serving2d
        route_booting2d = booting2d
    else:
        route_serving2d = timeline.route_state2d == _SERVING
        route_booting2d = timeline.route_state2d == _BOOTING

    idx2d = np.full((fleet_size, steps), table.nominal_index, dtype=np.int64)
    routing_type = type(routing)
    if routing_type is LeastLoadedRouting:
        shares2d = np.zeros((fleet_size, steps), dtype=np.float64)
        _sequential_selection(
            table, governor, routing, mass_list, timeline, shares2d, idx2d,
            fleet_size,
        )
    else:
        if routing_type is RoundRobinRouting:
            shares2d = _even_split_shares(
                mass, route_serving2d | route_booting2d
            )
        elif routing_type is SpreadRouting:
            serving_counts = route_serving2d.sum(axis=0)
            target2d = np.where(
                serving_counts[np.newaxis, :] > 0,
                route_serving2d,
                route_serving2d | route_booting2d,
            )
            shares2d = _even_split_shares(mass, target2d)
        else:  # PackRouting
            shares2d = _pack_shares(routing, mass_list, timeline, fleet_size)
        if is_memoryless_kernel(governor):
            chosen = select_step_indices(
                governor,
                table,
                shares2d[serving2d],
                shares2d[serving2d] * nominal_capacity,
                idx2d[serving2d],
            )
            idx2d[serving2d] = chosen
        else:
            _sequential_selection(
                table, governor, routing, mass_list, timeline, shares2d,
                idx2d, fleet_size,
            )

    demand2d = shares2d * nominal_capacity

    # Per-node columns: gathers over the selected indices, with the
    # booting/off branches exactly as ServerNode.step writes them.
    frequency2d = np.where(serving2d, table.frequencies_hz[idx2d], math.nan)
    power2d = np.where(
        serving2d,
        table.power_w[idx2d],
        np.where(booting2d, table.power_w[0], off_power_w),
    )
    wake_extra2d = np.zeros((fleet_size, steps), dtype=np.float64)
    wake_energy = autoscaler.wake_energy_j if autoscaler is not None else 0.0
    for index, woken in enumerate(timeline.woken):
        for node in woken:
            wake_extra2d[node, index] = wake_energy
    energy2d = power2d * trace.step_seconds + wake_extra2d
    capacity2d = np.where(serving2d, table.capacity_uips[idx2d], 0.0)
    served2d = np.where(serving2d, np.minimum(demand2d, capacity2d), 0.0)
    qos_metric2d = np.where(serving2d, table.qos_metric[idx2d], math.nan)
    qos_ok2d = np.where(serving2d, table.qos_ok[idx2d], True)
    demand_met2d = np.where(
        serving2d,
        table.covers_capacity_uips[idx2d] >= demand2d,
        demand2d <= 0.0,
    )
    violation2d = ~(qos_ok2d & demand_met2d)

    serving_counts = serving2d.sum(axis=0)
    booting_counts = booting2d.sum(axis=0)
    node_violations = violation2d.sum(axis=0)

    if use_queueing:
        tails = _worst_tails(table, workload, serving2d, shares2d, idx2d)
        qos_limit = workload.qos_limit_seconds
        queue_ok = np.isnan(tails) | (tails <= qos_limit + 1e-12)
    else:
        tails = np.full(steps, math.nan)
        queue_ok = np.ones(steps, dtype=bool)

    fleet_columns: Dict[str, np.ndarray] = {
        "step": np.arange(steps, dtype=np.int64),
        "time_s": trace.times(),
        "utilization": utilization,
        "offered_uips": mass * nominal_capacity,
        "served_uips": _rowsum(served2d),
        "total_power_w": _rowsum(power2d),
        "energy_j": _rowsum(energy2d),
        "tail_latency_s": tails,
        "active_servers": (serving_counts + booting_counts).astype(np.int64),
        "serving_servers": serving_counts.astype(np.int64),
        "booting_servers": booting_counts.astype(np.int64),
        "used_servers": (serving2d & (shares2d > 0.0)).sum(axis=0).astype(np.int64),
        "wake_events": timeline.wake_counts,
        "node_violations": node_violations.astype(np.int64),
        "queue_ok": queue_ok,
        "demand_met": demand_met2d.all(axis=0),
        "violation": node_violations > 0,
    }
    node_columns: Dict[int, Dict[str, np.ndarray]] = {
        node: {
            "state": timeline.state2d[node],
            "frequency_hz": frequency2d[node],
            "power_w": power2d[node],
            "energy_j": energy2d[node],
            "demand_uips": demand2d[node],
            "capacity_uips": capacity2d[node],
            "served_uips": served2d[node],
            "qos_metric": qos_metric2d[node],
            "qos_ok": qos_ok2d[node],
            "demand_met": demand_met2d[node],
            "violation": violation2d[node],
        }
        for node in range(fleet_size)
    }
    return fleet_columns, node_columns
