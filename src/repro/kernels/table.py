"""Frozen columnar frequency tables: the replay kernels' working set.

A :class:`FrequencyTable` is one (context, workload) pair's reachable
frequency grid flattened into parallel NumPy arrays: server power,
sustained capacity, the QoS metric and flag, the base tail latency and
the derived energy per instruction, all indexed by grid position.  The
vectorized governor and fleet kernels select *indices* into this table
instead of doing dict-keyed
:meth:`~repro.sweep.context.ModelContext.evaluate` lookups per trace
step, which is what makes whole-trace replays a handful of array
gathers.

Every column is produced from the context's memoized
:class:`~repro.sweep.result.OperatingPointRecord` objects -- the same
records the object-based reference path reads -- so a kernel replay is
bit-for-bit identical to the reference replay by construction.  The
arrays are frozen (non-writeable) because the table is shared across
governors, routings and fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.dvfs.governors import _DEMAND_TOLERANCE
from repro.sweep.result import OperatingPointRecord
from repro.workloads.base import WorkloadCharacteristics


def _frozen(values, dtype) -> np.ndarray:
    # Always copy: freezing a caller-owned array in place would make
    # the caller's own writes start raising far from this code.
    array = np.array(values, dtype=dtype, copy=True)
    array.setflags(write=False)
    return array


@dataclass(frozen=True, eq=False)
class FrequencyTable:
    """One workload's reachable operating points as parallel arrays.

    Parameters
    ----------
    workload_name:
        The workload the table describes.
    frequencies_hz:
        The reachable grid, strictly ascending; index ``-1`` is the
        nominal (demand-reference) frequency.
    capacity_uips / power_w:
        Sustained chip throughput and whole-server power per grid point.
    qos_metric:
        Degradation for VM workloads, latency normalised to the QoS
        limit for scale-out ones, NaN when the model defines neither.
    qos_ok:
        Whether the operating point meets the workload's QoS bound.
    latency_seconds:
        Zero-contention p99 latency (NaN for VM workloads); the fleet
        kernel's queueing tails start from it.
    """

    workload_name: str
    frequencies_hz: np.ndarray
    capacity_uips: np.ndarray
    power_w: np.ndarray
    qos_metric: np.ndarray
    qos_ok: np.ndarray
    latency_seconds: np.ndarray
    covers_capacity_uips: np.ndarray = field(init=False, repr=False)
    energy_per_instruction_j: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        grid = np.asarray(self.frequencies_hz, dtype=np.float64)
        if grid.size == 0:
            raise ValueError(
                f"frequency table for {self.workload_name!r} needs at "
                "least one frequency"
            )
        if grid.size > 1 and not np.all(np.diff(grid) > 0):
            raise ValueError(
                f"frequency table for {self.workload_name!r}: grid must "
                f"be strictly ascending, got {grid.tolist()}"
            )
        for name in ("frequencies_hz", "capacity_uips", "power_w"):
            column = np.asarray(getattr(self, name), dtype=np.float64)
            if column.shape != grid.shape:
                raise ValueError(
                    f"frequency table for {self.workload_name!r}: column "
                    f"{name!r} has {column.size} entries for "
                    f"{grid.size} frequencies"
                )
            if not np.all(np.isfinite(column)):
                raise ValueError(
                    f"frequency table for {self.workload_name!r}: column "
                    f"{name!r} must be finite, got {column.tolist()}"
                )
        for name in ("qos_metric", "latency_seconds"):
            column = np.asarray(getattr(self, name), dtype=np.float64)
            if column.shape != grid.shape:
                raise ValueError(
                    f"frequency table for {self.workload_name!r}: column "
                    f"{name!r} has {column.size} entries for "
                    f"{grid.size} frequencies"
                )
        if np.asarray(self.qos_ok).shape != grid.shape:
            raise ValueError(
                f"frequency table for {self.workload_name!r}: column "
                "'qos_ok' does not match the grid"
            )
        object.__setattr__(self, "frequencies_hz", _frozen(grid, np.float64))
        for name in ("capacity_uips", "power_w", "qos_metric", "latency_seconds"):
            object.__setattr__(
                self, name, _frozen(getattr(self, name), np.float64)
            )
        object.__setattr__(self, "qos_ok", _frozen(self.qos_ok, bool))
        # Precomputed left side of the governors' coverage test
        # (capacity * tolerance >= demand), so whole-trace selections
        # reuse the exact same floats the PlatformView comparison sees.
        object.__setattr__(
            self,
            "covers_capacity_uips",
            _frozen(self.capacity_uips * _DEMAND_TOLERANCE, np.float64),
        )
        # Server energy per served instruction at full load; +inf for
        # degenerate zero-capacity points so comparisons stay total.
        positive = self.capacity_uips > 0.0
        object.__setattr__(
            self,
            "energy_per_instruction_j",
            _frozen(
                np.where(
                    positive,
                    self.power_w / np.where(positive, self.capacity_uips, 1.0),
                    np.inf,
                ),
                np.float64,
            ),
        )

    # -- construction -------------------------------------------------------------------

    @classmethod
    def from_records(
        cls, workload_name: str, records: Sequence[OperatingPointRecord]
    ) -> "FrequencyTable":
        """Build a table from fully-resolved records, in grid order."""
        qos_metric = []
        latency = []
        for record in records:
            if record.degradation is not None:
                qos_metric.append(record.degradation)
            elif record.latency_normalized_to_qos is not None:
                qos_metric.append(record.latency_normalized_to_qos)
            else:
                qos_metric.append(np.nan)
            latency.append(
                np.nan
                if record.latency_seconds is None
                else record.latency_seconds
            )
        return cls(
            workload_name=workload_name,
            frequencies_hz=[record.frequency_hz for record in records],
            capacity_uips=[record.chip_uips for record in records],
            power_w=[record.server_power for record in records],
            qos_metric=qos_metric,
            qos_ok=[record.meets_qos for record in records],
            latency_seconds=latency,
        )

    @classmethod
    def from_context(
        cls,
        context,
        workload: WorkloadCharacteristics,
        frequencies: Sequence[float] | None = None,
    ) -> "FrequencyTable":
        """Evaluate one workload's reachable grid into a table.

        Unreachable frequencies are excluded (the same filter the
        :class:`~repro.dvfs.governors.PlatformView` applies); every
        remaining point is resolved through the context's memoized
        ``evaluate``, so repeated builds cost nothing and the
        ``evaluated_points`` accounting counts each point exactly once.
        """
        grid = context.reachable_frequencies(frequencies)
        if not grid:
            raise ValueError(
                f"no reachable frequency for workload "
                f"{workload.name!r}; cannot build a frequency table"
            )
        records = [
            context.evaluate(workload, frequency)
            for frequency in sorted(grid)
        ]
        return cls.from_records(workload.name, records)

    # -- views --------------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.frequencies_hz.size)

    @property
    def nominal_index(self) -> int:
        """Grid index of the nominal (top) frequency."""
        return len(self) - 1

    @property
    def nominal_frequency_hz(self) -> float:
        """Top of the reachable grid (the demand reference)."""
        return float(self.frequencies_hz[-1])

    @property
    def min_frequency_hz(self) -> float:
        """Bottom of the reachable grid."""
        return float(self.frequencies_hz[0])

    @property
    def nominal_capacity_uips(self) -> float:
        """Throughput at the nominal frequency."""
        return float(self.capacity_uips[-1])

    def lowest_covering_indices(
        self, demand_uips: np.ndarray, require_qos: bool = False
    ) -> np.ndarray:
        """Per element: the lowest grid index covering the demand, or -1.

        The vectorized twin of
        :meth:`~repro.dvfs.governors.PlatformView.lowest_covering`:
        identical comparisons against the tolerance-scaled capacities,
        just evaluated for a whole demand array at once.  Accepts any
        demand shape (a batched ``(B, T)`` tensor included) and returns
        indices of the same shape.
        """
        demand = np.asarray(demand_uips, dtype=np.float64)
        flat = demand.reshape(-1)
        covers = self.covers_capacity_uips[np.newaxis, :] >= flat[:, np.newaxis]
        if require_qos:
            covers = covers & self.qos_ok[np.newaxis, :]
        found = covers.any(axis=1)
        return np.where(found, covers.argmax(axis=1), -1).reshape(demand.shape)

    def frequencies(self) -> Tuple[float, ...]:
        """The grid as a plain tuple (PlatformView-compatible)."""
        return tuple(float(f) for f in self.frequencies_hz)
