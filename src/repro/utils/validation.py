"""Consistent argument validation helpers.

All model constructors in the library validate their physical parameters
through these helpers so error messages are uniform and informative.
"""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, otherwise raise ``ValueError``."""
    if not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, otherwise raise ``ValueError``."""
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Return ``value`` if inside the closed interval [low, high]."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Return ``value`` if it is a valid fraction in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_probability_sum(name: str, values, tolerance: float = 1e-6):
    """Check that an iterable of fractions sums to 1 within ``tolerance``."""
    total = float(sum(values))
    if abs(total - 1.0) > tolerance:
        raise ValueError(f"{name} must sum to 1.0 (got {total:.6f})")
    return values
