"""Interpolation helpers used by the calibrated technology models.

The near-threshold voltage/frequency model mixes analytical components
(alpha-power law, subthreshold exponential) with piecewise-linear
corrections fitted to published anchor points.  This module provides a
small, dependency-light piecewise-linear curve abstraction plus a
monotonicity check used when validating calibration tables.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Sequence


def monotone_increasing(values: Sequence[float], strict: bool = False) -> bool:
    """Return True when ``values`` is (strictly) non-decreasing."""
    for previous, current in zip(values, values[1:]):
        if strict and current <= previous:
            return False
        if not strict and current < previous:
            return False
    return True


@dataclass(frozen=True)
class PiecewiseLinear:
    """A piecewise-linear curve y(x) defined by sorted knot points.

    Outside the knot range the curve is linearly extrapolated from the
    first/last segment, which matches how the paper's Figure 1 curves are
    extended to the edges of the explored frequency range.
    """

    xs: tuple
    ys: tuple

    def __init__(self, xs: Sequence[float], ys: Sequence[float]):
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        if len(xs) < 2:
            raise ValueError("need at least two knot points")
        if not monotone_increasing(xs, strict=True):
            raise ValueError("xs must be strictly increasing")
        object.__setattr__(self, "xs", tuple(float(x) for x in xs))
        object.__setattr__(self, "ys", tuple(float(y) for y in ys))

    def __call__(self, x: float) -> float:
        """Evaluate the curve at ``x`` (linear extrapolation outside range)."""
        xs, ys = self.xs, self.ys
        if x <= xs[0]:
            index = 0
        elif x >= xs[-1]:
            index = len(xs) - 2
        else:
            index = bisect_left(xs, x) - 1
            index = max(0, min(index, len(xs) - 2))
        x0, x1 = xs[index], xs[index + 1]
        y0, y1 = ys[index], ys[index + 1]
        slope = (y1 - y0) / (x1 - x0)
        return y0 + slope * (x - x0)

    def inverse(self, y: float) -> float:
        """Evaluate the inverse curve x(y); requires ys strictly monotone."""
        if monotone_increasing(self.ys, strict=True):
            inverse_curve = PiecewiseLinear(self.ys, self.xs)
            return inverse_curve(y)
        reversed_ys = tuple(reversed(self.ys))
        if monotone_increasing(reversed_ys, strict=True):
            inverse_curve = PiecewiseLinear(reversed_ys, tuple(reversed(self.xs)))
            return inverse_curve(y)
        raise ValueError("curve is not invertible (ys not strictly monotone)")

    @property
    def domain(self) -> tuple:
        """Return the (min, max) x range covered by the knot points."""
        return (self.xs[0], self.xs[-1])


def linspace(start: float, stop: float, count: int) -> list:
    """Return ``count`` evenly spaced samples covering [start, stop]."""
    if count < 2:
        raise ValueError("count must be >= 2")
    step = (stop - start) / (count - 1)
    return [start + step * index for index in range(count)]
