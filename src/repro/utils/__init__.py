"""Shared utilities for the near-threshold server reproduction.

This package groups small, dependency-free helpers used across the whole
library:

* :mod:`repro.utils.units` -- unit conversion helpers and canonical unit
  conventions used everywhere in the code base (Hz, V, W, J, bytes, s).
* :mod:`repro.utils.interpolation` -- monotone interpolation and curve
  fitting helpers used by the calibrated technology models.
* :mod:`repro.utils.validation` -- argument validation helpers that raise
  consistent, descriptive exceptions.
* :mod:`repro.utils.tables` -- minimal plain-text table rendering used by
  benchmark harnesses and report generation.
"""

from repro.utils.units import (
    GHZ,
    HZ_PER_GHZ,
    HZ_PER_MHZ,
    KB,
    MB,
    GB,
    MHZ,
    ghz,
    mhz,
    to_ghz,
    to_mhz,
    joules_per_op_to_nj,
    nj,
    mw,
    uw,
    seconds_to_ms,
    ms_to_seconds,
)
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_fraction,
)
from repro.utils.interpolation import PiecewiseLinear, monotone_increasing
from repro.utils.tables import format_table

__all__ = [
    "GHZ",
    "MHZ",
    "HZ_PER_GHZ",
    "HZ_PER_MHZ",
    "KB",
    "MB",
    "GB",
    "ghz",
    "mhz",
    "to_ghz",
    "to_mhz",
    "joules_per_op_to_nj",
    "nj",
    "mw",
    "uw",
    "seconds_to_ms",
    "ms_to_seconds",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_fraction",
    "PiecewiseLinear",
    "monotone_increasing",
    "format_table",
]
