"""Unit conventions and conversion helpers.

The library uses SI base units internally unless a name says otherwise:

* frequency -- hertz (Hz)
* voltage   -- volts (V)
* power     -- watts (W)
* energy    -- joules (J)
* time      -- seconds (s)
* capacity  -- bytes (B)

Helpers in this module convert to and from the human-friendly units used
in the paper (MHz/GHz, nJ, mW, ms) so call sites never hand-roll powers
of ten.
"""

from __future__ import annotations

# --- canonical multipliers -------------------------------------------------

HZ_PER_MHZ = 1.0e6
HZ_PER_GHZ = 1.0e9

MHZ = HZ_PER_MHZ
GHZ = HZ_PER_GHZ

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

NANO = 1.0e-9
MICRO = 1.0e-6
MILLI = 1.0e-3


# --- frequency --------------------------------------------------------------

def mhz(value: float) -> float:
    """Convert a frequency expressed in MHz to Hz."""
    return value * HZ_PER_MHZ


def ghz(value: float) -> float:
    """Convert a frequency expressed in GHz to Hz."""
    return value * HZ_PER_GHZ


def to_mhz(frequency_hz: float) -> float:
    """Convert a frequency in Hz to MHz."""
    return frequency_hz / HZ_PER_MHZ


def to_ghz(frequency_hz: float) -> float:
    """Convert a frequency in Hz to GHz."""
    return frequency_hz / HZ_PER_GHZ


# --- energy and power -------------------------------------------------------

def nj(value: float) -> float:
    """Convert an energy expressed in nanojoules to joules."""
    return value * NANO


def joules_per_op_to_nj(value: float) -> float:
    """Convert an energy-per-operation in joules to nanojoules."""
    return value / NANO


def mw(value: float) -> float:
    """Convert a power expressed in milliwatts to watts."""
    return value * MILLI


def uw(value: float) -> float:
    """Convert a power expressed in microwatts to watts."""
    return value * MICRO


# --- time --------------------------------------------------------------------

def ms_to_seconds(value: float) -> float:
    """Convert a duration expressed in milliseconds to seconds."""
    return value * MILLI


def seconds_to_ms(value: float) -> float:
    """Convert a duration in seconds to milliseconds."""
    return value / MILLI


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count to wall-clock seconds at ``frequency_hz``."""
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert wall-clock seconds to a cycle count at ``frequency_hz``."""
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz
