"""Minimal plain-text table rendering.

The benchmark harnesses print the rows / series the paper reports.  This
module renders those tables without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    string_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [render_row(list(headers))]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """Render an (x, y) series as a compact two-column table."""
    rows = list(zip(xs, ys))
    return f"{name}\n" + format_table(("x", "y"), rows)
