"""Structured fault taxonomy for the replay/optimization stack.

Long batch runs fail in qualitatively different ways -- a malformed
spec, a replay blowing up mid-tensor-pass, an analysis dying on one
scenario, a cooperative deadline expiring -- and the quarantine,
retry and checkpoint machinery needs to tell them apart *and* know
which item failed.  Every fault therefore carries two structured
fields on top of its message:

* ``identity`` -- which spec / replay / scenario / analysis failed,
  as a short human-readable string (``"replay 3 (web_search/diurnal/"
  "qos_tracker)"``, ``"scenario 'opt_autoscaler_bursty'"``).
* ``stage`` -- where in the stack it failed (``"spec"``, ``"replay"``,
  ``"analysis"``, ``"scenario"``, ``"checkpoint"``, ``"guard"``).

:class:`SpecError` and :class:`CheckpointError` subclass
:class:`ValueError` so existing ``except ValueError`` contracts (the
CLI's error rendering, validation tests) keep working unchanged;
:class:`TransientError` marks the retryable subtree that
:func:`~repro.resilience.guard.run_guarded` is allowed to re-attempt.
"""

from __future__ import annotations

from typing import Optional


class ExecutionFault(Exception):
    """Base fault: an execution failure with a structured identity."""

    stage = "execution"

    def __init__(
        self,
        message: str,
        *,
        identity: str = "",
        stage: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.identity = identity
        if stage is not None:
            self.stage = stage

    def describe(self) -> str:
        """``identity: message`` (just the message with no identity)."""
        message = str(self)
        if self.identity:
            return f"{self.identity}: {message}"
        return message


class SpecError(ExecutionFault, ValueError):
    """A malformed spec rejected at a validation boundary.

    Subclasses :class:`ValueError` so construction-time validation
    keeps its historical contract (``pytest.raises(ValueError)``, the
    CLI's ``except ValueError`` rendering) while gaining the structured
    identity the quarantine path reports.
    """

    stage = "spec"


class ReplayFault(ExecutionFault):
    """A replay evaluation failed (kernel, simulator or summary)."""

    stage = "replay"


class AnalysisFault(ExecutionFault):
    """A scenario analysis failed; carries scenario + analysis names."""

    stage = "analysis"

    def __init__(
        self,
        message: str,
        *,
        scenario: str = "",
        analysis: str = "",
        identity: str = "",
    ) -> None:
        if not identity and (scenario or analysis):
            identity = f"scenario {scenario!r} analysis {analysis!r}"
        super().__init__(message, identity=identity)
        self.scenario = scenario
        self.analysis = analysis


class TransientError(ExecutionFault):
    """A fault that is expected to pass on retry (the retryable mark).

    :func:`~repro.resilience.guard.run_guarded` retries this subtree by
    default; everything else propagates on the first occurrence.
    """

    stage = "transient"


class InjectedFault(TransientError):
    """A fault raised on purpose by the chaos harness.

    Transient by design: a :class:`~repro.resilience.chaos.FaultPlan`
    fires at exactly one call, so a retry of the same site succeeds --
    which is precisely the behaviour the retry property tests pin.
    """

    stage = "injected"


class DeadlineExceeded(TransientError):
    """A cooperative step budget ran out (see :class:`~repro.resilience.guard.Deadline`)."""

    stage = "deadline"


class CheckpointError(ExecutionFault, ValueError):
    """A checkpoint file is unreadable, truncated, corrupt or stale.

    Every message names the offending file and what exactly was wrong
    with it, so an operator can tell a half-written file (kill during
    write of a non-atomic producer) from bit rot (digest mismatch) from
    schema drift.
    """

    stage = "checkpoint"


def classify(
    error: BaseException, *, identity: str = "", stage: str = "replay"
) -> ExecutionFault:
    """Wrap an arbitrary exception into the taxonomy (idempotent).

    Faults already in the taxonomy pass through untouched (their
    identity is filled in when empty); a :class:`ValueError` becomes a
    :class:`SpecError` (validation rejected the item), anything else a
    :class:`ReplayFault` / stage-appropriate fault.  The original
    exception stays reachable through ``__cause__`` when wrapped.
    """
    if isinstance(error, ExecutionFault):
        if identity and not error.identity:
            error.identity = identity
        return error
    if isinstance(error, ValueError):
        fault: ExecutionFault = SpecError(str(error), identity=identity)
    elif stage == "analysis":
        fault = AnalysisFault(str(error), identity=identity)
    else:
        fault = ReplayFault(str(error), identity=identity, stage=stage)
    fault.__cause__ = error
    return fault
