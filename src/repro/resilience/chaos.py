"""Deterministic chaos injection for the replay/optimization stack.

A :class:`FaultPlan` names a *site* (an instrumented point in the
stack, e.g. ``"batch.replay"`` or ``"tuner.objective"``), the *Nth
call* of that site at which to fire, and an *action*:

* ``"raise"`` -- raise an :class:`~repro.resilience.errors.InjectedFault`
  at the site;
* ``"nan"`` -- corrupt the value flowing through the site to NaN
  (sites passing a value through :func:`corrupt`);
* ``"delay"`` -- consume steps from the current cooperative
  :class:`~repro.resilience.guard.Deadline`, so a tight deadline
  expires exactly there.

Plans are plain data: :meth:`FaultPlan.parse` reads the CLI's
``SITE:N:ACTION`` syntax and :meth:`FaultPlan.seeded` derives the site
and call index from a seed (SHA-256, no :mod:`random` state), which is
what the property tests sweep -- for *any* single injected fault,
quarantine-mode results must equal the fault-free run minus exactly
the quarantined item.

Injection is explicit and scoped: nothing fires unless a plan is
active via the :func:`inject` context manager (tests) or
:func:`install` (the CLI's ``--inject-fault``).  Instrumented code
calls :func:`fault_point` / :func:`corrupt` unconditionally; with no
active plan these are near-free counter bumps on a thread-local dict.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro import obs
from repro.resilience.errors import InjectedFault
from repro.resilience.guard import current_deadline

ACTIONS = ("raise", "nan", "delay")

SITES = (
    "batch.replay",
    "batch.group",
    "tuner.rung",
    "tuner.objective",
    "scenario.run",
    "scenario.analysis",
)
"""Instrumented sites, for ``--inject-fault`` validation and seeded plans."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault: fire ``action`` at call ``at_call`` of ``site``."""

    site: str
    at_call: int
    action: str = "raise"
    delay_steps: int = 8

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault plan: site must be a non-empty name")
        if not isinstance(self.at_call, int) or self.at_call < 1:
            raise ValueError(
                f"fault plan: at_call must be an integer >= 1, "
                f"got {self.at_call!r}"
            )
        if self.action not in ACTIONS:
            raise ValueError(
                f"fault plan: unknown action {self.action!r} "
                f"(expected one of {', '.join(ACTIONS)})"
            )
        if self.delay_steps < 1:
            raise ValueError(
                f"fault plan: delay_steps must be >= 1, "
                f"got {self.delay_steps}"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI syntax ``SITE:N:ACTION`` (e.g. ``batch.replay:3:raise``)."""
        parts = text.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"fault plan: expected SITE:N:ACTION, got {text!r}"
            )
        site, raw_call, action = parts
        try:
            at_call = int(raw_call)
        except ValueError:
            raise ValueError(
                f"fault plan: call index must be an integer, "
                f"got {raw_call!r}"
            ) from None
        return cls(site=site, at_call=at_call, action=action)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        sites: Sequence[str] = SITES,
        max_call: int = 16,
        actions: Sequence[str] = ("raise",),
    ) -> "FaultPlan":
        """Derive a plan from ``seed`` alone (SHA-256, no RNG state).

        The site, call index in ``[1, max_call]`` and action are each
        read from independent bytes of the seed digest, so sweeping
        seeds sweeps the fault surface deterministically.
        """
        if not sites:
            raise ValueError("fault plan: sites must be non-empty")
        if max_call < 1:
            raise ValueError(
                f"fault plan: max_call must be >= 1, got {max_call}"
            )
        digest = hashlib.sha256(f"fault-plan:{seed}".encode()).digest()
        site = sites[int.from_bytes(digest[0:4], "big") % len(sites)]
        at_call = 1 + int.from_bytes(digest[4:8], "big") % max_call
        action = actions[int.from_bytes(digest[8:12], "big") % len(actions)]
        return cls(site=site, at_call=at_call, action=action)

    def describe(self) -> str:
        """The CLI syntax for this plan."""
        return f"{self.site}:{self.at_call}:{self.action}"


class _Injector:
    """Thread-local active plan plus per-site call counts."""

    def __init__(self) -> None:
        self._local = threading.local()

    def _state(self) -> Dict[str, object]:
        state = getattr(self._local, "state", None)
        if state is None:
            state = {"plan": None, "counts": {}}
            self._local.state = state
        return state

    @property
    def plan(self) -> Optional[FaultPlan]:
        return self._state()["plan"]  # type: ignore[return-value]

    def install(self, plan: Optional[FaultPlan]) -> None:
        state = self._state()
        state["plan"] = plan
        state["counts"] = {}

    def counts(self) -> Dict[str, int]:
        return dict(self._state()["counts"])  # type: ignore[arg-type]

    def fire(self, site: str) -> Optional[str]:
        """Count a call at ``site``; return the action if the plan fires."""
        state = self._state()
        plan: Optional[FaultPlan] = state["plan"]  # type: ignore[assignment]
        if plan is None:
            return None
        counts: Dict[str, int] = state["counts"]  # type: ignore[assignment]
        counts[site] = counts.get(site, 0) + 1
        if site == plan.site and counts[site] == plan.at_call:
            obs.count("resilience.faults_injected")
            return plan.action
        return None


_INJECTOR = _Injector()


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` for this thread (``None`` clears; counts reset)."""
    _INJECTOR.install(plan)


def active_plan() -> Optional[FaultPlan]:
    """The plan currently armed on this thread, if any."""
    return _INJECTOR.plan


def call_counts() -> Dict[str, int]:
    """Per-site call counts since the active plan was installed."""
    return _INJECTOR.counts()


class inject:
    """Scope a plan to a ``with`` block, restoring the previous one after."""

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self._plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> Optional[FaultPlan]:
        self._previous = _INJECTOR.plan
        _INJECTOR.install(self._plan)
        return self._plan

    def __exit__(self, *exc: object) -> bool:
        _INJECTOR.install(self._previous)
        return False


def fault_point(site: str, *, identity: str = "") -> None:
    """Mark one call of ``site``; fire the active plan's fault if due.

    ``"raise"`` and ``"nan"`` both raise here (there is no value to
    corrupt at a bare fault point); ``"delay"`` spends the plan's
    ``delay_steps`` from the innermost cooperative deadline, which
    raises :class:`~repro.resilience.errors.DeadlineExceeded` when the
    budget runs out -- and is a no-op without a deadline, mirroring a
    slow-but-tolerated call.
    """
    action = _INJECTOR.fire(site)
    if action is None:
        return
    if action == "delay":
        deadline = current_deadline()
        if deadline is not None:
            plan = _INJECTOR.plan
            deadline.consume(plan.delay_steps if plan else 1)
        return
    raise InjectedFault(
        f"injected fault at site {site!r} "
        f"(call {_INJECTOR.counts().get(site, 0)})",
        identity=identity,
    )


def corrupt(site: str, value: float, *, identity: str = "") -> float:
    """Pass ``value`` through ``site``, corrupting it if the plan fires.

    ``"nan"`` returns NaN in place of ``value``; ``"raise"`` and
    ``"delay"`` behave as at a bare :func:`fault_point`.
    """
    action = _INJECTOR.fire(site)
    if action is None:
        return value
    if action == "nan":
        return float("nan")
    if action == "delay":
        deadline = current_deadline()
        if deadline is not None:
            plan = _INJECTOR.plan
            deadline.consume(plan.delay_steps if plan else 1)
        return value
    raise InjectedFault(
        f"injected fault at site {site!r} "
        f"(call {_INJECTOR.counts().get(site, 0)})",
        identity=identity,
    )
