"""Quarantine records: what failed, where, and why -- not whole batches.

``on_error="quarantine"`` mode (opt-in on
:class:`~repro.kernels.batch.BatchReplayRunner`,
:class:`~repro.opt.tuner.PolicyTuner` and
:class:`~repro.scenarios.runner.ScenarioRunner`) replaces "first bad
item kills the run" with "bad items are isolated, everything else
completes".  The isolated items are reported as
:class:`FailedSummary` placeholders: frozen, JSON-able records of the
failing item's identity and fault, which take the failed item's slot in
results so positions stay stable and callers can tell exactly which
items were lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.resilience.errors import ExecutionFault, classify


@dataclass(frozen=True)
class FailedSummary:
    """Placeholder summary for a quarantined item.

    Sits where the real summary dict would have been, so a batch of B
    replays always yields B entries -- callers check
    ``isinstance(entry, FailedSummary)`` (or the ``"failed"`` key of
    :meth:`as_dict`) to tell quarantined slots from real summaries.
    """

    identity: str
    stage: str
    error_type: str
    message: str

    @classmethod
    def from_fault(cls, fault: ExecutionFault) -> "FailedSummary":
        """The record of one classified fault."""
        return cls(
            identity=fault.identity,
            stage=fault.stage,
            error_type=type(fault).__name__,
            message=str(fault),
        )

    @classmethod
    def from_exception(
        cls,
        error: BaseException,
        *,
        identity: str = "",
        stage: str = "replay",
    ) -> "FailedSummary":
        """Classify an arbitrary exception and record it."""
        return cls.from_fault(
            classify(error, identity=identity, stage=stage)
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-able record (reports, checkpoints, CLI rendering)."""
        return {
            "failed": True,
            "identity": self.identity,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
        }

    def describe(self) -> str:
        """One log-friendly line: identity, fault type and message."""
        return f"{self.identity or 'item'}: {self.error_type}: {self.message}"
