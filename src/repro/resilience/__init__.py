"""Fault-isolated, resumable execution for the replay/opt stack.

Four pieces, used together by :class:`~repro.kernels.batch.BatchReplayRunner`,
:class:`~repro.opt.tuner.PolicyTuner`,
:class:`~repro.scenarios.runner.ScenarioRunner` and the scenarios CLI:

* :mod:`~repro.resilience.errors` -- a structured fault taxonomy
  (every fault knows *which item* failed and *at which stage*);
* :mod:`~repro.resilience.quarantine` -- :class:`FailedSummary`
  placeholders so ``on_error="quarantine"`` mode isolates failures and
  finishes the rest of the batch;
* :mod:`~repro.resilience.guard` -- deterministic retry
  (:func:`run_guarded`) and cooperative step-budget deadlines;
* :mod:`~repro.resilience.checkpoint` -- atomic, digest-validated
  strict-JSON checkpoints for bit-identical resume;
* :mod:`~repro.resilience.chaos` -- a seeded fault injector
  (:class:`FaultPlan`) that the property tests use to prove graceful
  degradation.

Everything is opt-in: strict mode (fail fast, no wrapping) stays the
default everywhere, so existing behaviour and goldens are untouched.
"""

from repro.resilience.chaos import FaultPlan, corrupt, fault_point, inject
from repro.resilience.checkpoint import (
    CheckpointStore,
    atomic_write_text,
    decode_floats,
    encode_floats,
    read_checkpoint,
    write_checkpoint,
)
from repro.resilience.errors import (
    AnalysisFault,
    CheckpointError,
    DeadlineExceeded,
    ExecutionFault,
    InjectedFault,
    ReplayFault,
    SpecError,
    TransientError,
    classify,
)
from repro.resilience.guard import (
    Deadline,
    backoff_steps,
    current_deadline,
    run_guarded,
)
from repro.resilience.quarantine import FailedSummary

ON_ERROR_MODES = ("raise", "quarantine")
"""Valid ``on_error=`` values across the stack: strict (default) or
quarantine."""


def check_on_error(mode: str) -> str:
    """Validate an ``on_error=`` argument; returns it unchanged."""
    if mode not in ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {', '.join(ON_ERROR_MODES)}; "
            f"got {mode!r}"
        )
    return mode


__all__ = [
    "AnalysisFault",
    "CheckpointError",
    "CheckpointStore",
    "Deadline",
    "DeadlineExceeded",
    "ExecutionFault",
    "FailedSummary",
    "FaultPlan",
    "InjectedFault",
    "ON_ERROR_MODES",
    "ReplayFault",
    "SpecError",
    "TransientError",
    "atomic_write_text",
    "backoff_steps",
    "check_on_error",
    "classify",
    "corrupt",
    "current_deadline",
    "decode_floats",
    "encode_floats",
    "fault_point",
    "inject",
    "read_checkpoint",
    "run_guarded",
    "write_checkpoint",
]
