"""Atomic, digest-validated checkpoints for resumable runs.

Checkpoints follow three rules so a resumed run is trustworthy:

* **Atomic writes.**  :func:`atomic_write_text` writes to a temporary
  file in the destination directory and ``os.replace``\\ s it into
  place, so a kill at any instant leaves either the previous file or
  the complete new one -- never a truncated half-write.
* **Validated reads.**  Every checkpoint is a strict-JSON envelope
  ``{"format", "digest", "payload"}`` where ``digest`` is the SHA-256
  of the canonical payload serialization.  :func:`read_checkpoint`
  re-derives the digest and rejects truncated, corrupt or
  hand-edited files with a :class:`~repro.resilience.errors.CheckpointError`
  naming the file and the precise defect; callers then *rebuild* the
  checkpoint by redoing the work, they never trust a damaged one.
* **Exact float round-trips.**  JSON's shortest-repr float encoding is
  bit-exact on round-trip, and the non-finite values strict JSON
  rejects (``inf`` objectives from infeasible trials) are carried as
  ``{"__nonfinite__": "inf"}`` sentinels by :func:`encode_floats` /
  :func:`decode_floats` -- so resumed results are bit-identical to
  uninterrupted ones.

:class:`CheckpointStore` wraps a directory of named checkpoints with
a fingerprint check: a checkpoint written for one run configuration is
silently ignored (and rebuilt) when loaded under a different one.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from repro import obs
from repro.resilience.errors import CheckpointError

CHECKPOINT_FORMAT = "repro.checkpoint.v1"

_NONFINITE_KEY = "__nonfinite__"
_NONFINITE_ENCODE = {math.inf: "inf", -math.inf: "-inf"}
_NONFINITE_DECODE = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    The temporary file lives in the destination directory so the
    replace is a same-filesystem rename; it is flushed and fsynced
    before the rename so a crash cannot publish an empty file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def encode_floats(value: object) -> object:
    """Recursively replace non-finite floats with JSON-safe sentinels."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return {_NONFINITE_KEY: "nan"}
        return {_NONFINITE_KEY: _NONFINITE_ENCODE[value]}
    if isinstance(value, dict):
        return {key: encode_floats(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_floats(item) for item in value]
    return value


def decode_floats(value: object) -> object:
    """Inverse of :func:`encode_floats`."""
    if isinstance(value, dict):
        if set(value) == {_NONFINITE_KEY}:
            label = value[_NONFINITE_KEY]
            if label not in _NONFINITE_DECODE:
                raise CheckpointError(
                    f"checkpoint: unknown non-finite sentinel {label!r}"
                )
            return _NONFINITE_DECODE[label]
        return {key: decode_floats(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_floats(item) for item in value]
    return value


def _canonical(payload: object) -> str:
    """The canonical serialization digests are computed over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def payload_digest(payload: object) -> str:
    """SHA-256 hex digest of the canonical payload serialization."""
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def write_checkpoint(path: Path, payload: object) -> None:
    """Atomically write a digest-sealed checkpoint envelope.

    ``payload`` must be strict-JSON-able after :func:`encode_floats`
    (pass results through it first when they can carry ``inf``).
    """
    try:
        body = _canonical(payload)
    except (TypeError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint {Path(path).name!r}: payload is not "
            f"strict-JSON serializable: {error}"
        ) from error
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "digest": hashlib.sha256(body.encode()).hexdigest(),
        "payload": payload,
    }
    atomic_write_text(
        Path(path),
        json.dumps(envelope, sort_keys=True, indent=2, allow_nan=False)
        + "\n",
    )
    obs.count("resilience.checkpoint_saves")


def read_checkpoint(path: Path) -> object:
    """Read and validate a checkpoint envelope; return its payload.

    Raises :class:`~repro.resilience.errors.CheckpointError` naming the
    file and the exact defect -- missing, unparseable (truncated or
    corrupt JSON), wrong envelope shape, unknown format version, or a
    digest mismatch (content damaged after writing).
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path.name!r}: file does not exist")
    text = path.read_text(encoding="utf-8")
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"checkpoint {path.name!r}: truncated or corrupt JSON "
            f"({error.msg} at char {error.pos})"
        ) from error
    if not isinstance(envelope, dict) or not {
        "format",
        "digest",
        "payload",
    } <= set(envelope):
        raise CheckpointError(
            f"checkpoint {path.name!r}: not a checkpoint envelope "
            "(missing format/digest/payload keys)"
        )
    if envelope["format"] != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path.name!r}: unknown format "
            f"{envelope['format']!r} (expected {CHECKPOINT_FORMAT!r})"
        )
    payload = envelope["payload"]
    digest = payload_digest(payload)
    if digest != envelope["digest"]:
        raise CheckpointError(
            f"checkpoint {path.name!r}: content digest mismatch "
            f"(expected {envelope['digest'][:12]}..., "
            f"recomputed {digest[:12]}...)"
        )
    return payload


class CheckpointStore:
    """A directory of named, fingerprinted checkpoints.

    ``fingerprint`` binds checkpoints to one run configuration (e.g. a
    hash of the parameter space, strategy and workload identity): a
    checkpoint saved under a different fingerprint is treated as absent
    by :meth:`load_valid`, so a changed run silently rebuilds instead
    of resuming from stale state.
    """

    def __init__(self, directory: Path, *, fingerprint: str = "") -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint

    def path(self, name: str) -> Path:
        """Where the checkpoint called ``name`` lives."""
        return self.directory / f"{name}.json"

    def save(self, name: str, payload: Dict[str, object]) -> Path:
        """Seal ``payload`` (with the store fingerprint) under ``name``."""
        record = dict(payload)
        record["fingerprint"] = self.fingerprint
        target = self.path(name)
        write_checkpoint(target, record)
        return target

    def load(self, name: str) -> Dict[str, object]:
        """Load ``name`` or raise :class:`CheckpointError` precisely."""
        payload = read_checkpoint(self.path(name))
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"checkpoint {self.path(name).name!r}: payload is "
                f"{type(payload).__name__}, expected an object"
            )
        if payload.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path(name).name!r}: fingerprint "
                "mismatch (saved by a different run configuration)"
            )
        return payload

    def load_valid(self, name: str) -> Optional[Dict[str, object]]:
        """Load ``name`` if present and valid; ``None`` otherwise.

        Damaged or stale checkpoints count against
        ``resilience.checkpoint_rejected`` and are treated as absent,
        so callers rebuild them by redoing (and re-saving) the work.
        """
        if not self.path(name).exists():
            return None
        try:
            payload = self.load(name)
        except CheckpointError:
            obs.count("resilience.checkpoint_rejected")
            return None
        obs.count("resilience.checkpoint_hits")
        return payload
