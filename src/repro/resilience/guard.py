"""Guarded execution: deterministic retry and cooperative deadlines.

:func:`run_guarded` wraps a callable that may fail *transiently* -- an
injected chaos fault, an analysis hiccup, a cooperative deadline
expiring -- and re-attempts it a bounded number of times.  Two design
rules keep guarded runs reproducible:

* **No wall-clock in any decision.**  The backoff between attempts is a
  deterministic function of ``(seed, attempt)`` -- a simulated step
  count recorded in the ``resilience.backoff_steps`` counter, never a
  ``time.sleep`` -- so a guarded run produces the same attempt
  sequence, the same counters and the same result on every execution.
* **Deadlines are cooperative step budgets, not timers.**  A
  :class:`Deadline` is a budget of abstract steps; code under the guard
  spends it explicitly through :meth:`Deadline.consume` (the chaos
  harness's ``delay`` faults do exactly that), and exhaustion raises
  :class:`~repro.resilience.errors.DeadlineExceeded` at a
  deterministic point instead of an arbitrary preemption.

The active deadline is thread-local and nestable:
:func:`current_deadline` exposes the innermost one so deeply nested
code (and :func:`~repro.resilience.chaos.fault_point` delay actions)
can spend budget without threading the object through every signature.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro import obs
from repro.resilience.errors import DeadlineExceeded, TransientError

T = TypeVar("T")

RETRYABLE: Tuple[Type[BaseException], ...] = (TransientError,)
"""Default retryable faults: the :class:`TransientError` subtree
(injected chaos faults, expired deadlines)."""

_LOCAL = threading.local()


class Deadline:
    """A cooperative budget of abstract steps.

    ``consume`` spends budget and raises
    :class:`~repro.resilience.errors.DeadlineExceeded` the moment the
    budget would go negative -- deterministically, at the consuming
    call site, never from a timer.
    """

    def __init__(self, steps: int, *, identity: str = "") -> None:
        if not isinstance(steps, int) or steps < 1:
            raise ValueError(
                f"deadline: step budget must be an integer >= 1, "
                f"got {steps!r}"
            )
        self.limit = steps
        self.used = 0
        self.identity = identity

    @property
    def remaining(self) -> int:
        """Steps left before the budget expires."""
        return self.limit - self.used

    def consume(self, steps: int = 1) -> None:
        """Spend ``steps`` of budget; raise once it would go negative."""
        if steps < 0:
            raise ValueError(
                f"deadline: cannot consume a negative step count ({steps})"
            )
        self.used += steps
        if self.used > self.limit:
            raise DeadlineExceeded(
                f"cooperative deadline of {self.limit} steps exceeded "
                f"(consumed {self.used})",
                identity=self.identity,
            )


def current_deadline() -> Optional[Deadline]:
    """The innermost active deadline on this thread, if any."""
    stack = getattr(_LOCAL, "stack", None)
    if not stack:
        return None
    return stack[-1]


class _PushedDeadline:
    """Context manager installing a deadline on the thread-local stack."""

    __slots__ = ("_deadline",)

    def __init__(self, deadline: Optional[Deadline]) -> None:
        self._deadline = deadline

    def __enter__(self) -> Optional[Deadline]:
        if self._deadline is not None:
            stack = getattr(_LOCAL, "stack", None)
            if stack is None:
                stack = []
                _LOCAL.stack = stack
            stack.append(self._deadline)
        return self._deadline

    def __exit__(self, *exc: object) -> bool:
        if self._deadline is not None:
            _LOCAL.stack.pop()
        return False


def backoff_steps(attempt: int, *, seed: int = 0, base: int = 1) -> int:
    """Deterministic exponential backoff with seeded jitter, in steps.

    ``base * 2**attempt`` plus a jitter in ``[0, base)`` derived from a
    SHA-256 of ``(seed, attempt)`` -- stable across processes, Python
    versions and platforms, and entirely free of wall-clock state.
    """
    if attempt < 0:
        raise ValueError(f"backoff: attempt must be >= 0, got {attempt}")
    if base < 1:
        raise ValueError(f"backoff: base must be >= 1, got {base}")
    digest = hashlib.sha256(f"{seed}:{attempt}".encode()).digest()
    jitter = int.from_bytes(digest[:8], "big") % base
    return base * (2**attempt) + jitter


def run_guarded(
    fn: Callable[..., T],
    *args: object,
    retries: int = 0,
    deadline_steps: Optional[int] = None,
    retry_on: Tuple[Type[BaseException], ...] = RETRYABLE,
    backoff_base: int = 1,
    seed: int = 0,
    identity: str = "",
    **kwargs: object,
) -> T:
    """Call ``fn`` under a retry guard and an optional deadline.

    Each attempt runs with a fresh :class:`Deadline` of
    ``deadline_steps`` installed (``None`` = unbounded).  Faults in
    ``retry_on`` (default: the transient subtree) are retried up to
    ``retries`` times with deterministic seeded backoff; the final
    failure -- or any non-retryable fault -- propagates unchanged.
    Retries and simulated backoff steps land in the
    ``resilience.retries`` / ``resilience.backoff_steps`` counters.
    """
    if not isinstance(retries, int) or retries < 0:
        raise ValueError(
            f"run_guarded: retries must be an integer >= 0, got {retries!r}"
        )
    attempts = retries + 1
    for attempt in range(attempts):
        deadline = (
            None
            if deadline_steps is None
            else Deadline(deadline_steps, identity=identity)
        )
        try:
            with _PushedDeadline(deadline):
                return fn(*args, **kwargs)
        except retry_on:
            if attempt + 1 >= attempts:
                raise
            steps = backoff_steps(attempt, seed=seed, base=backoff_base)
            obs.count("resilience.retries")
            obs.count("resilience.backoff_steps", steps)
    raise AssertionError("unreachable: the retry loop returns or raises")
