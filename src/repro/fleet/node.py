"""Per-server state and stepping inside a fleet simulation.

A :class:`ServerNode` owns one governor instance and the mutable state
a multi-server replay needs per machine: the power state (off, booting,
serving), the boot countdown, and the frequency it ran during the
previous step.  The actual model numbers come from the fleet's shared
:class:`~repro.dvfs.simulator.GovernorSimulator` platform, so a
thousand-node fleet still costs one grid's worth of memoized
:class:`~repro.sweep.context.ModelContext` evaluations.

The serving-step arithmetic is deliberately identical to
:meth:`GovernorSimulator.replay`: same observation, same record lookup,
same served/violation accounting.  That is what makes the fleet layer
testable -- a 1-server always-on fleet reproduces the single-server
replay bit for bit.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from typing import Optional

from repro.dvfs.governors import Governor, LoadObservation, PlatformView
from repro.dvfs.simulator import GovernorSimulator
from repro.fleet.routing import NodeView


class NodeState(enum.IntEnum):
    """Power state of one server (ordered: off < booting < serving)."""

    OFF = 0
    BOOTING = 1
    SERVING = 2


@dataclass(frozen=True)
class NodeStep:
    """Everything one node did during one step (one per-node table row)."""

    state: NodeState
    frequency_hz: float
    power_w: float
    energy_j: float
    demand_uips: float
    capacity_uips: float
    served_uips: float
    qos_metric: float
    qos_ok: bool
    demand_met: bool
    violation: bool


@dataclass(eq=False)
class ServerNode:
    """One server of the fleet: a governor plus its power/boot state.

    Parameters
    ----------
    node_id:
        Stable index inside the fleet (routing and scaling order).
    governor:
        This node's own policy instance (stateless, but the *previous
        frequency* it feeds on is tracked per node).
    simulator:
        The fleet's shared single-server simulator; supplies the
        platform view and the memoized operating-point records.
    serving:
        Initial power state (the autoscaler's initial active set).
    """

    node_id: int
    governor: Governor
    simulator: GovernorSimulator
    serving: bool = True
    state: NodeState = field(init=False)
    boot_remaining: int = field(default=0, init=False)
    previous_frequency_hz: float = field(init=False)
    failed: bool = field(default=False, init=False)
    _capped_platform: Optional[PlatformView] = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.state = NodeState.SERVING if self.serving else NodeState.OFF
        # Matches GovernorSimulator.replay: the first observation sees
        # the nominal frequency as the previous one.
        self.previous_frequency_hz = (
            self.simulator.platform.nominal_frequency_hz
        )

    # -- views -----------------------------------------------------------------------

    @property
    def platform(self) -> PlatformView:
        """The grid this node's governor may pick from.

        The fleet's shared view normally; a shrunk view while a thermal
        cap is applied.  The *demand reference* is deliberately not
        this view: offered load is always expressed against the full
        platform's nominal throughput, so a capped node keeps receiving
        its true share and violates when it cannot serve it.
        """
        if self._capped_platform is not None:
            return self._capped_platform
        return self.simulator.platform

    @property
    def nominal_capacity_uips(self) -> float:
        """Throughput at the nominal frequency (the demand reference)."""
        return self.simulator.platform.nominal_capacity_uips

    @property
    def previous_capacity_uips(self) -> float:
        """Throughput at the frequency this node ran during the last step."""
        return self.platform.capacity_uips[self.previous_frequency_hz]

    def view(self) -> NodeView:
        """Frozen snapshot for the routing policies."""
        return NodeView(
            node_id=self.node_id,
            serving=self.state is NodeState.SERVING,
            booting=self.state is NodeState.BOOTING,
            nominal_capacity_uips=self.nominal_capacity_uips,
            previous_capacity_uips=self.previous_capacity_uips,
        )

    # -- power-state transitions -------------------------------------------------------

    def wake(self, boot_steps: int) -> None:
        """Power the node on; it serves after ``boot_steps`` full steps."""
        if self.state is not NodeState.OFF:
            raise ValueError(f"node {self.node_id} is not off; cannot wake")
        if self.failed:
            raise ValueError(
                f"node {self.node_id} has crashed; restore it before waking"
            )
        if boot_steps <= 0:
            self.state = NodeState.SERVING
        else:
            self.state = NodeState.BOOTING
            self.boot_remaining = boot_steps
        # A woken machine has no DVFS history; it restarts from the
        # nominal frequency like the first replay step (the capped top
        # while a thermal cap is in force).
        self.previous_frequency_hz = self.platform.nominal_frequency_hz

    def shut_down(self) -> None:
        """Power the node off immediately."""
        if self.state is NodeState.OFF:
            raise ValueError(f"node {self.node_id} is already off")
        self.state = NodeState.OFF
        self.boot_remaining = 0

    def advance_boot(self) -> None:
        """Progress a booting node by one step (may start serving)."""
        if self.state is NodeState.BOOTING:
            self.boot_remaining -= 1
            if self.boot_remaining <= 0:
                self.state = NodeState.SERVING
                self.boot_remaining = 0

    # -- disturbances ----------------------------------------------------------------

    def crash(self) -> None:
        """Fail the node hard: immediately OFF and ineligible to wake.

        Idempotent within a step (crashing a crashed node is a no-op)
        so the simulator can apply the event unconditionally after
        routing has already assigned this node its doomed share.
        """
        self.failed = True
        self.state = NodeState.OFF
        self.boot_remaining = 0

    def recover(self) -> None:
        """Clear a crash so the node may be woken (or serve) again."""
        if not self.failed:
            raise ValueError(
                f"node {self.node_id} has not crashed; nothing to recover"
            )
        self.failed = False

    def apply_thermal_cap(self, max_frequency_hz: float) -> None:
        """Shrink this node's reachable grid to ``<= max_frequency_hz``.

        The capped view keeps the shared platform's capacity and QoS
        maps (every capped frequency is on the full grid, so record
        lookups still hit the memoized context).  The previous
        frequency is clamped onto the capped grid so stateful governors
        keep a valid anchor.
        """
        full = self.simulator.platform
        capped_frequencies = tuple(
            frequency
            for frequency in full.frequencies
            if frequency <= max_frequency_hz
        )
        if not capped_frequencies:
            raise ValueError(
                f"thermal cap at {max_frequency_hz} Hz leaves node "
                f"{self.node_id} no reachable frequency (grid bottom is "
                f"{full.min_frequency_hz} Hz)"
            )
        self._capped_platform = PlatformView(
            frequencies=capped_frequencies,
            capacity_uips=full.capacity_uips,
            qos_ok=full.qos_ok,
        )
        if self.previous_frequency_hz > capped_frequencies[-1]:
            self.previous_frequency_hz = capped_frequencies[-1]

    def clear_thermal_cap(self) -> None:
        """Restore the full shared grid (no-op when uncapped)."""
        self._capped_platform = None

    # -- stepping --------------------------------------------------------------------

    def step(
        self,
        utilization: float,
        step_seconds: float,
        off_power_w: float,
        extra_energy_j: float = 0.0,
    ) -> NodeStep:
        """Run one trace step at this node's assigned utilisation share.

        A serving node replicates the single-server replay arithmetic
        exactly.  A booting node draws the platform's lowest-V/f power
        but serves nothing; an off node draws ``off_power_w``.  Load
        routed to a node that cannot serve it is dropped and recorded
        as a violation.  ``extra_energy_j`` folds one-shot penalties
        (the wake energy) into this node's energy so the fleet total is
        always the exact sum of its nodes.
        """
        platform = self.platform
        demand = utilization * self.nominal_capacity_uips

        if self.state is NodeState.SERVING:
            choice = self.governor.select(
                LoadObservation(
                    utilization=utilization,
                    demand_uips=demand,
                    previous_frequency_hz=self.previous_frequency_hz,
                ),
                platform,
            )
            record = self.simulator.record(choice)
            self.previous_frequency_hz = choice
            if record.degradation is not None:
                qos_metric = record.degradation
            elif record.latency_normalized_to_qos is not None:
                qos_metric = record.latency_normalized_to_qos
            else:
                qos_metric = math.nan
            qos_ok = record.meets_qos
            demand_met = platform.covers(choice, demand)
            power = record.server_power
            return NodeStep(
                state=self.state,
                frequency_hz=choice,
                power_w=power,
                energy_j=power * step_seconds + extra_energy_j,
                demand_uips=demand,
                capacity_uips=record.chip_uips,
                served_uips=min(demand, record.chip_uips),
                qos_metric=qos_metric,
                qos_ok=qos_ok,
                demand_met=demand_met,
                violation=not (qos_ok and demand_met),
            )

        if self.state is NodeState.BOOTING:
            # Boots at the lowest reachable V/f point; serves nothing.
            power = self.simulator.record(
                platform.min_frequency_hz
            ).server_power
        else:
            power = off_power_w
        return NodeStep(
            state=self.state,
            frequency_hz=math.nan,
            power_w=power,
            energy_j=power * step_seconds + extra_energy_j,
            demand_uips=demand,
            capacity_uips=0.0,
            served_uips=0.0,
            qos_metric=math.nan,
            qos_ok=True,
            demand_met=demand <= 0.0,
            violation=demand > 0.0,
        )
