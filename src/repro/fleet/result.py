"""Columnar fleet-replay results.

One fleet replay produces a fleet-level row per trace step plus one
per-node table; :class:`FleetResult` stores both as NumPy columns (the
:class:`~repro.sweep.result.SweepResult` shape) so energy totals,
server residencies and violation counts are vectorised reductions.
:meth:`summary` exposes the per-routing scalars the ``fleet_replay``
analysis and the golden fixtures pin; the bulky per-step rows ride
under the analysis' private ``_steps`` key by convention.

Two ledger invariants the property tests lock down:

* the fleet ``energy_j`` column is, step by step, exactly the sum of
  the per-node ``energy_j`` columns (wake penalties and idle draws are
  charged to nodes, never to a fleet-level slush fund);
* a 1-server always-on fleet's node table is bit-identical to the
  single-server :class:`~repro.dvfs.replay.ReplayResult` columns.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.fleet.disturbance import DisturbanceEvent

_FLEET_FLOAT_COLUMNS = (
    "time_s",
    "utilization",
    "offered_uips",
    "served_uips",
    "total_power_w",
    "energy_j",
)
# Tail latency: NaN when no loaded serving node (or a VM workload with
# no request model); +inf when some loaded node's queue is saturated.
_FLEET_OPTIONAL_COLUMNS = ("tail_latency_s",)
_FLEET_INT_COLUMNS = (
    "active_servers",
    "serving_servers",
    "booting_servers",
    "used_servers",
    "wake_events",
    "node_violations",
)
_FLEET_BOOL_COLUMNS = ("queue_ok", "demand_met", "violation")

FLEET_COLUMNS = (
    ("step",)
    + _FLEET_FLOAT_COLUMNS
    + _FLEET_OPTIONAL_COLUMNS
    + _FLEET_INT_COLUMNS
    + _FLEET_BOOL_COLUMNS
)

NODE_COLUMNS = (
    "state",
    "frequency_hz",
    "power_w",
    "energy_j",
    "demand_uips",
    "capacity_uips",
    "served_uips",
    "qos_metric",
    "qos_ok",
    "demand_met",
    "violation",
)
"""Per-node columns; the float/bool subset mirrors the replay columns."""


class FleetResult:
    """Per-step tables of one routing policy over one fleet replay."""

    def __init__(
        self,
        routing_name: str,
        governor_name: str,
        workload_name: str,
        trace_name: str,
        fleet_size: int,
        step_seconds: float,
        instructions_per_request: float,
        autoscaled: bool,
        columns: Dict[str, np.ndarray],
        node_columns: Dict[int, Dict[str, np.ndarray]],
        disturbance_events: Tuple["DisturbanceEvent", ...] = (),
    ):
        missing = [name for name in FLEET_COLUMNS if name not in columns]
        if missing:
            raise ValueError(f"missing fleet columns: {missing}")
        lengths = {name: len(columns[name]) for name in FLEET_COLUMNS}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"fleet columns have unequal lengths: {lengths}")
        if len(node_columns) != fleet_size:
            raise ValueError(
                f"expected node tables for {fleet_size} nodes, "
                f"got {sorted(node_columns)}"
            )
        steps = len(columns["step"])
        for node_id, table in node_columns.items():
            node_missing = [name for name in NODE_COLUMNS if name not in table]
            if node_missing:
                raise ValueError(
                    f"node {node_id}: missing columns {node_missing}"
                )
            bad = [
                name for name in NODE_COLUMNS if len(table[name]) != steps
            ]
            if bad:
                raise ValueError(
                    f"node {node_id}: columns {bad} do not match "
                    f"{steps} fleet steps"
                )
        self.routing_name = routing_name
        self.governor_name = governor_name
        self.workload_name = workload_name
        self.trace_name = trace_name
        self.fleet_size = fleet_size
        self.step_seconds = step_seconds
        self.instructions_per_request = instructions_per_request
        self.autoscaled = autoscaled
        self.disturbance_events = tuple(disturbance_events)
        self._columns = {name: columns[name] for name in FLEET_COLUMNS}
        self._node_columns = {
            node_id: {name: table[name] for name in NODE_COLUMNS}
            for node_id, table in sorted(node_columns.items())
        }

    # -- access -----------------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """The backing fleet-level array of ``name`` (zero-copy)."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"unknown fleet column {name!r}; available: {FLEET_COLUMNS}"
            ) from None

    def node_column(self, node_id: int, name: str) -> np.ndarray:
        """The backing array of one node's column (zero-copy)."""
        try:
            table = self._node_columns[node_id]
        except KeyError:
            raise KeyError(
                f"unknown node {node_id}; fleet has nodes "
                f"{sorted(self._node_columns)}"
            ) from None
        try:
            return table[name]
        except KeyError:
            raise KeyError(
                f"unknown node column {name!r}; available: {NODE_COLUMNS}"
            ) from None

    @property
    def node_ids(self) -> List[int]:
        """Node identifiers, ascending."""
        return list(self._node_columns)

    def __len__(self) -> int:
        return len(self._columns["step"])

    @property
    def duration_seconds(self) -> float:
        """Total replay duration."""
        return self.step_seconds * len(self)

    def to_dicts(self) -> List[Dict[str, object]]:
        """Fleet-level steps as plain JSON-able dicts, in step order.

        Non-finite tail latencies serialise as ``None`` (undefined) or
        the string ``"saturated"`` (an overloaded queue), keeping the
        rows valid strict JSON.
        """
        rows: List[Dict[str, object]] = []
        for index in range(len(self)):
            row: Dict[str, object] = {"step": int(self._columns["step"][index])}
            for name in _FLEET_FLOAT_COLUMNS:
                row[name] = float(self._columns[name][index])
            tail = float(self._columns["tail_latency_s"][index])
            if math.isnan(tail):
                row["tail_latency_s"] = None
            elif math.isinf(tail):
                row["tail_latency_s"] = "saturated"
            else:
                row["tail_latency_s"] = tail
            for name in _FLEET_INT_COLUMNS:
                row[name] = int(self._columns[name][index])
            for name in _FLEET_BOOL_COLUMNS:
                row[name] = bool(self._columns[name][index])
            rows.append(row)
        return rows

    # -- reductions -------------------------------------------------------------------

    @property
    def total_energy_j(self) -> float:
        """Fleet energy over the whole replay (wake/idle draws included)."""
        return float(self._columns["energy_j"].sum())

    def node_energy_j(self, node_id: int) -> float:
        """One node's energy over the whole replay."""
        return float(self.node_column(node_id, "energy_j").sum())

    @property
    def mean_power_w(self) -> float:
        """Average fleet power (steps are equal-length)."""
        return float(self._columns["total_power_w"].mean())

    @property
    def mean_active_servers(self) -> float:
        """Average powered-on server count."""
        return float(self._columns["active_servers"].mean())

    @property
    def mean_serving_servers(self) -> float:
        """Average count of servers actually accepting load."""
        return float(self._columns["serving_servers"].mean())

    @property
    def mean_used_servers(self) -> float:
        """Average count of serving servers with a nonzero share."""
        return float(self._columns["used_servers"].mean())

    @property
    def peak_serving_servers(self) -> int:
        """Largest serving count over the replay."""
        return int(self._columns["serving_servers"].max())

    @property
    def wake_count(self) -> int:
        """Total server boots initiated over the replay."""
        return int(self._columns["wake_events"].sum())

    @property
    def total_giga_instructions(self) -> float:
        """User work actually served, in 10^9 instructions."""
        served = self._columns["served_uips"].sum() * self.step_seconds
        return float(served / 1.0e9)

    @property
    def served_fraction(self) -> float:
        """Served over offered work (1.0 when nothing was dropped)."""
        offered = float(self._columns["offered_uips"].sum())
        if offered <= 0.0:
            return 1.0
        return float(self._columns["served_uips"].sum()) / offered

    @property
    def energy_per_giga_instruction_j(self) -> float | None:
        """Fleet energy per 10^9 served instructions (None when idle)."""
        work = self.total_giga_instructions
        return self.total_energy_j / work if work > 0 else None

    @property
    def total_requests(self) -> float | None:
        """Requests served (None for workloads without a request size)."""
        if self.instructions_per_request <= 0:
            return None
        served = self._columns["served_uips"].sum() * self.step_seconds
        return float(served / self.instructions_per_request)

    @property
    def mean_qps(self) -> float | None:
        """Sustained served request rate (None when undefined)."""
        requests = self.total_requests
        if requests is None or self.duration_seconds <= 0:
            return None
        return requests / self.duration_seconds

    @property
    def energy_per_request_j(self) -> float | None:
        """Fleet energy per served request (None when undefined)."""
        requests = self.total_requests
        if requests is None or requests <= 0:
            return None
        return self.total_energy_j / requests

    @property
    def violation_count(self) -> int:
        """Steps where some node missed its QoS or dropped load."""
        return int(self._columns["violation"].sum())

    @property
    def violation_fraction(self) -> float:
        """Fraction of steps in violation."""
        return self.violation_count / len(self) if len(self) else 0.0

    @property
    def queue_violation_count(self) -> int:
        """Steps whose queueing-model tail breached the QoS limit."""
        return int((~self._columns["queue_ok"]).sum())

    @property
    def max_tail_latency_s(self) -> float | None:
        """Worst finite queueing-tail latency seen (None if undefined)."""
        tails = self._columns["tail_latency_s"]
        finite = tails[np.isfinite(tails)]
        return float(finite.max()) if finite.size else None

    @property
    def saturated_step_count(self) -> int:
        """Steps where some loaded node's queue was saturated."""
        return int(np.isinf(self._columns["tail_latency_s"]).sum())

    # -- resilience -------------------------------------------------------------------

    @property
    def surge_peak_energy_j(self) -> float:
        """The most expensive single step of the replay.

        Under a flash crowd this is the surge's energy high-water mark
        (extra wakes plus every survivor running hot); on a smooth
        replay it is simply the busiest step.
        """
        return float(self._columns["energy_j"].max()) if len(self) else 0.0

    def recovery_after(self, step: int) -> Optional[int]:
        """Steps from ``step`` until the fleet is violation-free again.

        ``0`` means the fleet never violated at ``step`` itself; ``None``
        means it never recovered before the trace ended.
        """
        violations = self._columns["violation"][step:]
        clean = np.flatnonzero(~violations)
        return int(clean[0]) if clean.size else None

    def resilience(self) -> Dict[str, object]:
        """Per-event recovery metrics (what the stress goldens pin).

        Each scheduled disturbance gets a row: how many steps until the
        first violation-free step at or after the event
        (``recovery_time_steps``, ``None`` if the trace ends first) and
        how many violating steps the fleet logged while re-spreading
        the event's load (``violations_during_respread``).
        """
        violations = self._columns["violation"]
        events: List[Dict[str, object]] = []
        recoveries: List[int] = []
        unrecovered = 0
        for event in self.disturbance_events:
            recovery = self.recovery_after(event.step)
            if recovery is None:
                respread_end = len(self)
                unrecovered += 1
            else:
                respread_end = event.step + recovery
                recoveries.append(recovery)
            events.append(
                {
                    "kind": event.kind,
                    "step": event.step,
                    "node_id": event.node_id,
                    "recovery_time_steps": recovery,
                    "violations_during_respread": int(
                        violations[event.step : respread_end].sum()
                    ),
                }
            )
        return {
            "events": events,
            "max_recovery_time_steps": max(recoveries, default=0),
            "unrecovered_events": unrecovered,
            "surge_peak_energy_j": self.surge_peak_energy_j,
        }

    def summary(self) -> Dict[str, object]:
        """The replay's scalar outcomes (what the golden fixtures pin)."""
        return {
            "routing": self.routing_name,
            "governor": self.governor_name,
            "workload": self.workload_name,
            "trace": self.trace_name,
            "fleet_size": self.fleet_size,
            "autoscaled": self.autoscaled,
            "steps": len(self),
            "step_seconds": self.step_seconds,
            "total_energy_j": self.total_energy_j,
            "mean_power_w": self.mean_power_w,
            "mean_active_servers": self.mean_active_servers,
            "mean_serving_servers": self.mean_serving_servers,
            "mean_used_servers": self.mean_used_servers,
            "peak_serving_servers": self.peak_serving_servers,
            "wake_count": self.wake_count,
            "served_fraction": self.served_fraction,
            "total_giga_instructions": self.total_giga_instructions,
            "energy_per_giga_instruction_j": self.energy_per_giga_instruction_j,
            "total_requests": self.total_requests,
            "mean_qps": self.mean_qps,
            "energy_per_request_j": self.energy_per_request_j,
            "violation_count": self.violation_count,
            "violation_fraction": self.violation_fraction,
            "queue_violation_count": self.queue_violation_count,
            "saturated_step_count": self.saturated_step_count,
            "max_tail_latency_s": self.max_tail_latency_s,
        }

    def __repr__(self) -> str:
        return (
            f"FleetResult({self.routing_name!r} x {self.workload_name!r} "
            f"on {self.trace_name!r}, {self.fleet_size} servers, "
            f"{len(self)} steps, {self.total_energy_j:.0f} J, "
            f"{self.violation_count} violations)"
        )
