"""Timed failure injection for fleet replays.

A :class:`DisturbanceSchedule` is a frozen, validated list of timed
events applied to a fleet mid-replay:

* :func:`node_crash` -- the node drops to OFF at its step *after* the
  routing has assigned it load, so its routed mass is dropped and
  recorded as violations until the next step re-spreads it;
* :func:`node_restore` -- a crashed node comes back (immediately
  serving on a static fleet; wake-eligible again under an autoscaler,
  which re-admits it through the normal wake path);
* :func:`thermal_cap` -- the node's reachable frequency grid is capped
  at ``max_frequency_hz`` from its step onward (a shrunk
  :class:`~repro.dvfs.governors.PlatformView`), so its governor can no
  longer buy capacity above the cap;
* :func:`load_surge` -- a pure marker carrying no fleet mutation: the
  ``fleet_stress`` analysis tags the first surged trace step with it so
  the resilience metrics report the surge's recovery like any other
  event.

Schedules are plain frozen data (hashable, JSON-able via
:meth:`DisturbanceSchedule.summary`), validated at construction: event
kinds, crash/restore pairing per node and same-step conflicts are all
rejected with precise errors.  Bounds against a concrete fleet and
trace are checked by :meth:`DisturbanceSchedule.validate_for` when a
replay runs.

Crash/restore (and marker) schedules replay through the columnar
kernel in :mod:`repro.kernels.fleet` bit-for-bit with the object path;
thermal caps mutate per-node platform views, which only the object
path models, so :attr:`DisturbanceSchedule.kernel_supported` gates the
dispatch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

NODE_CRASH = "node_crash"
NODE_RESTORE = "node_restore"
THERMAL_CAP = "thermal_cap"
LOAD_SURGE = "load_surge"

EVENT_KINDS = (NODE_CRASH, NODE_RESTORE, THERMAL_CAP, LOAD_SURGE)
"""Event kinds a schedule may carry, in canonical order."""

_KERNEL_KINDS = frozenset((NODE_CRASH, NODE_RESTORE, LOAD_SURGE))


@dataclass(frozen=True)
class DisturbanceEvent:
    """One timed event of a schedule (build via the factory functions)."""

    kind: str
    step: int
    node_id: Optional[int] = None
    max_frequency_hz: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            known = ", ".join(EVENT_KINDS)
            raise ValueError(
                f"unknown disturbance kind {self.kind!r}; known kinds: {known}"
            )
        if self.step < 0:
            raise ValueError(
                f"{self.kind} event: step must be >= 0, got {self.step}"
            )
        if self.kind == LOAD_SURGE:
            if self.node_id is not None:
                raise ValueError(
                    "load_surge is a fleet-wide marker; it takes no node_id"
                )
        else:
            if self.node_id is None or self.node_id < 0:
                raise ValueError(
                    f"{self.kind} event at step {self.step}: needs a "
                    f"node_id >= 0, got {self.node_id}"
                )
        if self.kind == THERMAL_CAP:
            if (
                self.max_frequency_hz is None
                or not math.isfinite(self.max_frequency_hz)
                or self.max_frequency_hz <= 0.0
            ):
                raise ValueError(
                    f"thermal_cap event at step {self.step}: "
                    f"max_frequency_hz must be positive and finite, "
                    f"got {self.max_frequency_hz}"
                )
        elif self.max_frequency_hz is not None:
            raise ValueError(
                f"{self.kind} event at step {self.step}: only thermal_cap "
                "events take max_frequency_hz"
            )

    def summary(self) -> Dict[str, object]:
        """JSON-able description (pinned by the golden fixtures)."""
        return {
            "kind": self.kind,
            "step": self.step,
            "node_id": self.node_id,
            "max_frequency_hz": self.max_frequency_hz,
        }


def node_crash(node_id: int, step: int) -> DisturbanceEvent:
    """Node ``node_id`` fails at ``step`` (after routing, before serving)."""
    return DisturbanceEvent(kind=NODE_CRASH, step=step, node_id=node_id)


def node_restore(node_id: int, step: int) -> DisturbanceEvent:
    """A previously crashed node becomes available again at ``step``."""
    return DisturbanceEvent(kind=NODE_RESTORE, step=step, node_id=node_id)


def thermal_cap(
    node_id: int, step: int, max_frequency_hz: float
) -> DisturbanceEvent:
    """Cap the node's reachable grid at ``max_frequency_hz`` from ``step``."""
    return DisturbanceEvent(
        kind=THERMAL_CAP,
        step=step,
        node_id=node_id,
        max_frequency_hz=max_frequency_hz,
    )


def load_surge(step: int) -> DisturbanceEvent:
    """A fleet-wide marker: the surge front lands at ``step`` (no mutation)."""
    return DisturbanceEvent(kind=LOAD_SURGE, step=step)


_EVENT_FACTORIES = {
    NODE_CRASH: node_crash,
    NODE_RESTORE: node_restore,
    THERMAL_CAP: thermal_cap,
    LOAD_SURGE: load_surge,
}


def event_from_tuple(data: Tuple) -> DisturbanceEvent:
    """Build an event from plain spec data.

    Accepts ``("node_crash", node_id, step)``,
    ``("node_restore", node_id, step)``,
    ``("thermal_cap", node_id, step, max_frequency_hz)`` and
    ``("load_surge", step)`` -- the serialisable shape
    :class:`~repro.scenarios.spec.ScenarioSpec` carries.
    """
    if not data:
        raise ValueError("empty disturbance tuple")
    kind = data[0]
    if kind not in _EVENT_FACTORIES:
        known = ", ".join(EVENT_KINDS)
        raise ValueError(
            f"unknown disturbance kind {kind!r}; known kinds: {known}"
        )
    try:
        return _EVENT_FACTORIES[kind](*data[1:])
    except TypeError:
        raise ValueError(
            f"malformed {kind} disturbance tuple {data!r}; expected "
            "(kind, node_id, step) for node events, (kind, node_id, step, "
            "max_frequency_hz) for thermal_cap, (kind, step) for load_surge"
        ) from None


@dataclass(frozen=True)
class DisturbanceSchedule:
    """A frozen, validated list of timed fleet disturbances."""

    events: Tuple[DisturbanceEvent, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        per_node_step: Dict[Tuple[int, int], str] = {}
        for event in self.events:
            if not isinstance(event, DisturbanceEvent):
                raise TypeError(
                    f"DisturbanceSchedule needs DisturbanceEvent items, "
                    f"got {type(event).__name__}"
                )
            key = (event.kind, event.node_id, event.step, event.max_frequency_hz)
            if key in seen:
                raise ValueError(
                    f"duplicate {event.kind} event for node {event.node_id} "
                    f"at step {event.step}"
                )
            seen.add(key)
            if event.node_id is not None:
                node_step = (event.node_id, event.step)
                other = per_node_step.get(node_step)
                if other is not None:
                    raise ValueError(
                        f"conflicting events for node {event.node_id} at "
                        f"step {event.step}: {other} and {event.kind}"
                    )
                per_node_step[node_step] = event.kind
        # Crash/restore pairing per node, in step order: a restore needs
        # an earlier unresolved crash, and a crashed node cannot crash
        # again before it is restored.
        by_node: Dict[int, List[DisturbanceEvent]] = {}
        for event in self.events:
            if event.kind in (NODE_CRASH, NODE_RESTORE):
                by_node.setdefault(event.node_id, []).append(event)
        for node_id, node_events in by_node.items():
            down = False
            for event in sorted(node_events, key=lambda e: e.step):
                if event.kind == NODE_CRASH:
                    if down:
                        raise ValueError(
                            f"node {node_id} crashes again at step "
                            f"{event.step} without being restored first"
                        )
                    down = True
                else:
                    if not down:
                        raise ValueError(
                            f"node {node_id} is restored at step "
                            f"{event.step} without a preceding crash"
                        )
                    down = False

    # -- views -----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Distinct event kinds present, in canonical order."""
        present = {event.kind for event in self.events}
        return tuple(kind for kind in EVENT_KINDS if kind in present)

    @property
    def kernel_supported(self) -> bool:
        """True when the columnar fleet kernel models every event kind.

        Crash/restore (and the inert surge marker) only move power
        states, which the kernel's state timeline resolves; thermal
        caps mutate per-node platform views and take the object path.
        """
        return all(event.kind in _KERNEL_KINDS for event in self.events)

    @property
    def max_step(self) -> int:
        """The latest event step (-1 for an empty schedule)."""
        return max((event.step for event in self.events), default=-1)

    def events_at(self, step: int, kind: str | None = None) -> Tuple[
        DisturbanceEvent, ...
    ]:
        """Events firing at ``step``, optionally filtered by kind."""
        return tuple(
            event
            for event in self.events
            if event.step == step and (kind is None or event.kind == kind)
        )

    def with_events(self, *events: DisturbanceEvent) -> "DisturbanceSchedule":
        """A new schedule with ``events`` appended (revalidated)."""
        return DisturbanceSchedule(events=self.events + tuple(events))

    def validate_for(self, fleet_size: int, steps: int) -> None:
        """Reject events that miss the concrete fleet or trace.

        A crash of node 12 on an 8-node fleet, or an event scheduled
        beyond the trace's last step, is a silent no-op bug waiting to
        happen; both fail here with precise errors before the replay
        starts.
        """
        for event in self.events:
            if event.node_id is not None and event.node_id >= fleet_size:
                raise ValueError(
                    f"{event.kind} event targets node {event.node_id}, but "
                    f"the fleet only has nodes 0..{fleet_size - 1}"
                )
            if event.step >= steps:
                raise ValueError(
                    f"{event.kind} event at step {event.step} is beyond the "
                    f"trace's {steps} steps"
                )

    def summary(self) -> List[Dict[str, object]]:
        """JSON-able event list (pinned by the golden fixtures)."""
        return [event.summary() for event in self.events]
