"""Multi-server fleet simulation: routing, autoscaling, economics.

The paper's single-server story -- QoS-constrained operating points for
scale-out workloads -- pays off at datacenter scale.  This package
simulates ``N`` servers serving one shared request stream over time:

* :mod:`repro.fleet.routing` -- pluggable load-splitting policies
  (``round_robin``, ``least_loaded``, power-aware ``pack`` and
  ``spread``) over frozen per-node :class:`NodeView` snapshots.
* :mod:`repro.fleet.node` -- :class:`ServerNode`: one governor plus
  the per-machine power/boot state; serving steps replicate the
  single-server replay arithmetic exactly.
* :mod:`repro.fleet.autoscaler` -- :class:`Autoscaler`: on/off scaling
  against a target-utilisation band with wake-latency and wake-energy
  penalties.
* :mod:`repro.fleet.simulator` -- :class:`FleetSimulator`, stepping a
  fleet-level :class:`~repro.dvfs.trace.LoadTrace` through the shared
  :class:`~repro.sweep.context.ModelContext` with per-step M/M/1 /
  M/G/1 queueing tails.
* :mod:`repro.fleet.result` -- the columnar :class:`FleetResult`
  (fleet rows + per-node tables) with its energy/violation reductions.
* :mod:`repro.fleet.economics` -- :class:`CostModel`: cost-per-QPS,
  dollars per million requests and TCO-style rollups.
* :mod:`repro.fleet.disturbance` -- :class:`DisturbanceSchedule`:
  timed failure injection (node crashes/restores, thermal caps)
  applied mid-replay, with resilience metrics on
  :meth:`FleetResult.resilience`.

>>> from repro.core.config import default_server
>>> from repro.fleet import Autoscaler, FleetSimulator
>>> from repro.dvfs import LoadTrace
>>> from repro.sweep.context import ModelContext
>>> from repro.workloads.cloudsuite import WEB_SEARCH
>>> simulator = FleetSimulator(
...     ModelContext(default_server()), WEB_SEARCH, fleet_size=8,
...     autoscaler=Autoscaler(),
... )
>>> results = simulator.compare(LoadTrace.diurnal())
>>> results["pack"].total_energy_j < results["round_robin"].total_energy_j
True
"""

from repro.fleet.autoscaler import Autoscaler, ScalingDecision
from repro.fleet.disturbance import (
    EVENT_KINDS,
    DisturbanceEvent,
    DisturbanceSchedule,
    event_from_tuple,
    load_surge,
    node_crash,
    node_restore,
    thermal_cap,
)
from repro.fleet.economics import CostModel
from repro.fleet.node import NodeState, NodeStep, ServerNode
from repro.fleet.result import FLEET_COLUMNS, NODE_COLUMNS, FleetResult
from repro.fleet.routing import (
    ROUTERS,
    LeastLoadedRouting,
    NodeView,
    PackRouting,
    RoundRobinRouting,
    RoutingPolicy,
    SpreadRouting,
    router_by_name,
)
from repro.fleet.simulator import FleetSimulator

__all__ = [
    "EVENT_KINDS",
    "FLEET_COLUMNS",
    "NODE_COLUMNS",
    "ROUTERS",
    "Autoscaler",
    "CostModel",
    "DisturbanceEvent",
    "DisturbanceSchedule",
    "FleetResult",
    "FleetSimulator",
    "LeastLoadedRouting",
    "NodeState",
    "NodeStep",
    "NodeView",
    "PackRouting",
    "RoundRobinRouting",
    "RoutingPolicy",
    "ScalingDecision",
    "ServerNode",
    "SpreadRouting",
    "event_from_tuple",
    "load_surge",
    "node_crash",
    "node_restore",
    "router_by_name",
    "thermal_cap",
]
