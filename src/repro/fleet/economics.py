"""Cost-per-QPS economics over a fleet replay.

The paper's pitch is economic -- a near-threshold server only matters
if it serves the same traffic for fewer dollars -- and the ROADMAP
queues "cost-per-QPS economic sweeps" explicitly.  :class:`CostModel`
turns a :class:`~repro.fleet.result.FleetResult` into TCO-style
rollups: the energy bill (metered at the wall through a PUE overhead),
the amortised capital cost of the machines you own whether or not they
are powered on, and the derived unit economics (dollars per sustained
QPS, dollars per million requests, joules per request).

The defaults are deliberately round, publicly-defensible magnitudes
(commodity 1U server, three-year amortisation, US industrial power
price, mid-range PUE); every scenario pins whatever numbers fall out,
so changing a default is a visible golden diff, not silent drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.result import FleetResult

SECONDS_PER_YEAR = 365.0 * 24.0 * 3600.0


@dataclass(frozen=True)
class CostModel:
    """Dollar model of a fleet: energy bill + amortised capital.

    Parameters
    ----------
    energy_price_per_kwh:
        Metered electricity price, dollars per kWh.
    server_capex:
        Purchase price of one server, dollars.
    amortization_years:
        Straight-line capex amortisation horizon.
    pue:
        Power-usage-effectiveness overhead on the IT energy (cooling,
        distribution); multiplies the metered energy.
    """

    energy_price_per_kwh: float = 0.12
    server_capex: float = 2500.0
    amortization_years: float = 3.0
    pue: float = 1.2

    def __post_init__(self) -> None:
        check_positive("energy_price_per_kwh", self.energy_price_per_kwh)
        check_positive("server_capex", self.server_capex)
        check_positive("amortization_years", self.amortization_years)
        if self.pue < 1.0:
            raise ValueError(
                f"pue must be >= 1 (1.0 = no overhead), got {self.pue}"
            )

    # -- primitive rates -----------------------------------------------------------------

    @property
    def capex_rate_per_server_second(self) -> float:
        """Amortised capital cost of one owned server, dollars/second."""
        return self.server_capex / (self.amortization_years * SECONDS_PER_YEAR)

    def energy_cost(self, energy_j: float) -> float:
        """Dollars for ``energy_j`` joules of IT energy, PUE included."""
        kwh = energy_j / 3.6e6
        return kwh * self.pue * self.energy_price_per_kwh

    # -- rollups -------------------------------------------------------------------------

    def rollup(self, result: "FleetResult") -> Dict[str, object]:
        """TCO-style unit economics of one fleet replay.

        Capex covers every *owned* server over the replay window --
        parking a machine saves energy, not capital -- which is exactly
        why packing plus autoscaling has to beat an always-on spread on
        the energy line to pay off.  Request-denominated entries are
        ``None`` for workloads without a request size (the virtualized
        classes), mirroring the replay summaries.
        """
        duration_s = result.duration_seconds
        energy_cost = self.energy_cost(result.total_energy_j)
        capex_cost = (
            result.fleet_size * self.capex_rate_per_server_second * duration_s
        )
        total_cost = energy_cost + capex_cost

        requests = result.total_requests
        mean_qps = result.mean_qps
        cost_rate_per_year = total_cost / duration_s * SECONDS_PER_YEAR

        return {
            "duration_s": duration_s,
            "energy_kwh": result.total_energy_j / 3.6e6,
            "energy_cost": energy_cost,
            "capex_cost": capex_cost,
            "total_cost": total_cost,
            "mean_qps": mean_qps,
            "cost_per_qps_year": (
                cost_rate_per_year / mean_qps
                if mean_qps is not None and mean_qps > 0
                else None
            ),
            "cost_per_million_requests": (
                total_cost / requests * 1.0e6
                if requests is not None and requests > 0
                else None
            ),
            "joules_per_request": result.energy_per_request_j,
            "joules_per_giga_instruction": result.energy_per_giga_instruction_j,
            "annual_tco": cost_rate_per_year,
        }
