"""Fleet autoscaling against a target-utilisation band.

The :class:`Autoscaler` decides, at the start of every step, how many
servers should be powered on: when the offered load pushes the serving
fleet's utilisation above ``high`` it wakes machines, when the load
falls below ``low`` it parks them, and in between it holds (the
hysteresis band that keeps a smooth trace from flapping).  Scaling
actions re-target the *middle* of the band, so one action lands the
fleet utilisation comfortably inside it.

Waking is not free: a woken server boots for ``wake_steps`` steps at
the platform's lowest-V/f power before it can serve, and each wake
charges ``wake_energy_j`` (spin-up, state transfer) to the woken node,
so the fleet energy ledger still equals the sum of its nodes.

Decisions are deterministic pure functions of (offered mass, current
states): the lowest-id off nodes wake first and the highest-id serving
nodes park first, matching ``pack``'s fill order so consolidation and
scaling pull in the same direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.utils.validation import check_non_negative

from repro.fleet.node import NodeState, ServerNode


@dataclass(frozen=True)
class ScalingDecision:
    """What the autoscaler did at one step (for the fleet columns)."""

    woken: Tuple[int, ...] = ()
    parked: Tuple[int, ...] = ()

    @property
    def wake_count(self) -> int:
        """Number of servers whose boot began this step."""
        return len(self.woken)


@dataclass(frozen=True)
class Autoscaler:
    """Target-utilisation-band on/off scaling with wake penalties.

    Parameters
    ----------
    low / high:
        The serving-fleet utilisation band; scaling re-targets the
        band's midpoint.  ``0 < low < high <= 1``.
    min_servers:
        Never park below this many powered-on servers.
    wake_steps:
        Boot latency in trace steps; during boot a node draws the
        lowest-V/f power but serves nothing.  ``0`` makes wakes
        instantaneous.
    wake_energy_j:
        One-shot energy charged to a node when its boot begins.
    """

    low: float = 0.35
    high: float = 0.75
    min_servers: int = 1
    wake_steps: int = 1
    wake_energy_j: float = 1000.0

    def __post_init__(self) -> None:
        if not (0.0 < self.low < self.high <= 1.0):
            raise ValueError(
                f"need 0 < low < high <= 1, got low={self.low} high={self.high}"
            )
        if self.min_servers < 1:
            raise ValueError(
                f"min_servers must be >= 1, got {self.min_servers}"
            )
        if self.wake_steps < 0:
            raise ValueError(
                f"wake_steps must be >= 0, got {self.wake_steps}"
            )
        check_non_negative("wake_energy_j", self.wake_energy_j)

    @property
    def target(self) -> float:
        """The utilisation a scaling action re-targets (band midpoint)."""
        return 0.5 * (self.low + self.high)

    def desired_active(self, mass: float, fleet_size: int) -> int:
        """Servers needed to hold ``mass`` at the band's midpoint."""
        if mass <= 0.0:
            return self.min_servers
        needed = int(math.ceil(mass / self.target - 1e-12))
        return max(self.min_servers, min(fleet_size, needed))

    def scale(self, mass: float, nodes: Sequence[ServerNode]) -> ScalingDecision:
        """Apply one scaling decision in place; returns what changed.

        ``mass`` is the step's offered load in server-equivalents.
        Booting nodes count as active capacity-to-be (they were already
        paid for), so a sustained ramp wakes each server once.
        """
        serving = [n for n in nodes if n.state is NodeState.SERVING]
        booting = [n for n in nodes if n.state is NodeState.BOOTING]
        off = [n for n in nodes if n.state is NodeState.OFF and not n.failed]
        active = len(serving) + len(booting)

        # Utilisation is measured over serving capacity, falling back to
        # booting capacity during a cold start: with zero serving nodes
        # the signal used to be inf every boot step, re-triggering
        # desired_active until the first boot completed.
        capacity = len(serving) if serving else len(booting)
        utilization = mass / capacity if capacity else math.inf
        if utilization > self.high or utilization < self.low:
            desired = self.desired_active(mass, fleet_size=len(nodes))
        else:
            desired = active

        woken: List[int] = []
        parked: List[int] = []
        if desired > active:
            for node in sorted(off, key=lambda n: n.node_id)[: desired - active]:
                node.wake(self.wake_steps)
                woken.append(node.node_id)
        elif desired < active and desired < len(serving):
            # Park booting nodes first (they serve nothing yet), then
            # the highest-id serving nodes -- the reverse of pack's and
            # wake's fill order, so node 0 stays up.  Exactly
            # ``active - desired`` nodes park, so the active count
            # lands on ``desired`` (>= min_servers by construction).
            # Boot grace: while desired still covers the serving count,
            # in-flight boots are left alone -- parking them on a
            # one-step dip only to re-wake them next step would
            # double-charge wake_energy_j for capacity that never
            # served.
            candidates = sorted(
                booting, key=lambda n: n.node_id, reverse=True
            ) + sorted(serving, key=lambda n: n.node_id, reverse=True)
            for node in candidates[: active - desired]:
                node.shut_down()
                parked.append(node.node_id)
        return ScalingDecision(woken=tuple(woken), parked=tuple(parked))
