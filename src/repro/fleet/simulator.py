"""Multi-server fleet replay over a shared model context.

:class:`FleetSimulator` steps a fleet-level
:class:`~repro.dvfs.trace.LoadTrace` through ``N`` servers: per step
the :class:`~repro.fleet.autoscaler.Autoscaler` (when enabled) decides
how many machines are awake, a
:class:`~repro.fleet.routing.RoutingPolicy` splits the offered load
into per-server shares, and every serving node's own governor picks a
frequency on the shared single-server platform -- so an arbitrarily
large fleet still costs one frequency grid's worth of memoized
:class:`~repro.sweep.context.ModelContext` evaluations.

Fleet-level QoS rides on the classical queueing models: each loaded
server is an M/M/1 (service-time CV of 1) or M/G/1 queue at its chosen
frequency, and the step's tail latency is the worst node's base
99th-percentile latency plus the queueing-delay tail (Marchal-style
two-moment correction).  The fleet trace's utilisation is a fraction
of the *fleet's* nominal throughput (``N`` server-equivalents), so the
same named traces that drive single-server governor replays drive
fleet replays unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro import obs
from repro.dvfs.governors import Governor, governor_by_name
from repro.dvfs.simulator import GovernorSimulator
from repro.dvfs.trace import LoadTrace
from repro.fleet.autoscaler import Autoscaler
from repro.fleet.disturbance import (
    NODE_CRASH,
    NODE_RESTORE,
    THERMAL_CAP,
    DisturbanceSchedule,
)
from repro.fleet.node import NodeState, NodeStep, ServerNode
from repro.fleet.result import NODE_COLUMNS, FleetResult
from repro.fleet.routing import RoutingPolicy, router_by_name
from repro.latency.queueing import MG1Queue, MM1Queue
from repro.sweep.context import ModelContext
from repro.utils.validation import check_non_negative
from repro.workloads.base import WorkloadCharacteristics

_MASS_TOLERANCE = 1e-9
"""Relative slack allowed between routed shares and the offered mass."""

_STABILITY_EPSILON = 1e-9
"""Utilisations within this of 1.0 count as a saturated queue."""


@dataclass(eq=False)
class FleetSimulator:
    """Replays fleet-level load traces over ``N`` governed servers.

    Parameters
    ----------
    context:
        The shared model context; its memoized operating points are
        reused across nodes, routings and any concurrent sweep.
    workload:
        The workload every server runs (a homogeneous fleet).
    fleet_size:
        Number of owned servers.
    governor:
        Per-server DVFS policy: a registered name (each node gets its
        own instance) or an explicit :class:`Governor`.
    autoscaler:
        Optional on/off scaling; ``None`` keeps every server awake.
    frequencies:
        Optional explicit grid; ``None`` uses the configuration's.
    off_power_w:
        Wall draw of a parked server (0 = unplugged).
    queueing:
        Compute the per-step M/M/1 / M/G/1 tail columns (only
        meaningful for scale-out workloads with a request size).
    """

    context: ModelContext
    workload: WorkloadCharacteristics
    fleet_size: int
    governor: Governor | str = "qos_tracker"
    autoscaler: Autoscaler | None = None
    frequencies: Sequence[float] | None = None
    off_power_w: float = 0.0
    queueing: bool = True
    _sim: GovernorSimulator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.fleet_size < 1:
            raise ValueError(
                f"fleet_size must be >= 1, got {self.fleet_size}"
            )
        check_non_negative("off_power_w", self.off_power_w)
        if (
            self.autoscaler is not None
            and self.autoscaler.min_servers > self.fleet_size
        ):
            raise ValueError(
                f"autoscaler min_servers ({self.autoscaler.min_servers}) "
                f"exceeds the fleet size ({self.fleet_size})"
            )
        self._sim = GovernorSimulator(
            self.context, self.workload, frequencies=self.frequencies
        )

    # -- construction ------------------------------------------------------------------

    def _make_governor(self) -> Governor:
        if isinstance(self.governor, str):
            return governor_by_name(self.governor)
        return self.governor

    @property
    def governor_name(self) -> str:
        """The per-server policy's registry name."""
        return self._make_governor().name

    def _make_nodes(self, first_mass: float) -> List[ServerNode]:
        """Fresh nodes for one run; the initial active set is sized to
        the first step's load when autoscaling, else everyone is up."""
        if self.autoscaler is None:
            initially_serving = self.fleet_size
        else:
            initially_serving = self.autoscaler.desired_active(
                first_mass, self.fleet_size
            )
        return [
            ServerNode(
                node_id=index,
                governor=self._make_governor(),
                simulator=self._sim,
                serving=index < initially_serving,
            )
            for index in range(self.fleet_size)
        ]

    # -- queueing tail -----------------------------------------------------------------

    def _node_tail_latency(self, step: NodeStep) -> float:
        """Base p99 plus the queueing-delay tail of one loaded node.

        The operating-point record already carries the workload's
        99th-percentile latency at near-zero contention; the M/M/1 /
        M/G/1 layer adds the contention the paper's measurement setup
        deliberately excluded.  Returns ``inf`` for a saturated queue.
        """
        ipr = self.workload.instructions_per_request
        record = self._sim.record(step.frequency_hz)
        base = record.latency_seconds
        if base is None:
            return math.nan
        capacity = step.capacity_uips
        if capacity <= 0.0:
            return math.inf
        utilization = step.demand_uips / capacity
        if utilization >= 1.0 - _STABILITY_EPSILON:
            return math.inf
        service_time = ipr / capacity
        arrival_rate = step.demand_uips / ipr
        cv = self.workload.service_time_cv
        if cv == 1.0:
            response_p99 = MM1Queue(
                arrival_rate=arrival_rate, service_rate=capacity / ipr
            ).response_time_percentile(99.0)
        else:
            response_p99 = MG1Queue(
                arrival_rate=arrival_rate,
                mean_service_time=service_time,
                service_time_cv=cv,
            ).response_time_percentile(99.0, corrected=True)
        waiting_tail = max(0.0, response_p99 - service_time)
        return base + waiting_tail

    # -- replay ------------------------------------------------------------------------

    def run(
        self,
        trace: LoadTrace,
        routing: RoutingPolicy | str,
        reference: bool = False,
        disturbances: DisturbanceSchedule | None = None,
    ) -> FleetResult:
        """Run one routing policy over one trace, one fleet row per step.

        Dispatches to the columnar :mod:`repro.kernels.fleet` stepper
        whenever the (routing, governor, autoscaler) trio's exact types
        have kernels; ``reference=True`` forces the original per-node
        object loop (the two paths are bit-for-bit identical -- the
        kernel equivalence tests pin it).  Custom policy subclasses
        always take the reference path.

        ``disturbances`` injects timed failures mid-replay: crashes and
        restores replay on both paths bit-for-bit; thermal caps mutate
        per-node platform views, so any schedule carrying one takes the
        reference path.
        """
        if isinstance(routing, str):
            routing = router_by_name(routing)
        with obs.trace(
            "fleet.replay",
            routing=routing.name,
            governor=self.governor_name,
            fleet_size=self.fleet_size,
            trace=trace.name,
            steps=len(trace),
            disturbed=disturbances is not None,
        ) as span:
            return self._run(trace, routing, reference, disturbances, span)

    def _run(
        self,
        trace: LoadTrace,
        routing: RoutingPolicy,
        reference: bool,
        disturbances: DisturbanceSchedule | None,
        span,
    ) -> FleetResult:
        steps = len(trace)
        if disturbances is not None:
            disturbances.validate_for(self.fleet_size, steps)
        use_queueing = (
            self.queueing
            and self.workload.is_scale_out
            and self.workload.instructions_per_request > 0
        )
        if not reference:
            from repro.kernels import fleet as fleet_kernel

            governor = self._make_governor()
            if fleet_kernel.supports(
                routing, governor, self.autoscaler, disturbances=disturbances
            ):
                span.set(kernel=True)
                obs.count("fleet.kernel_replays")
                fleet_columns, node_columns = fleet_kernel.fleet_replay_columns(
                    table=self._sim.table,
                    workload=self.workload,
                    fleet_size=self.fleet_size,
                    governor=governor,
                    routing=routing,
                    autoscaler=self.autoscaler,
                    off_power_w=self.off_power_w,
                    trace=trace,
                    use_queueing=use_queueing,
                    disturbances=disturbances,
                )
                return FleetResult(
                    routing_name=routing.name,
                    governor_name=self.governor_name,
                    workload_name=self.workload.name,
                    trace_name=trace.name,
                    fleet_size=self.fleet_size,
                    step_seconds=trace.step_seconds,
                    instructions_per_request=(
                        self.workload.instructions_per_request
                    ),
                    autoscaled=self.autoscaler is not None,
                    columns=fleet_columns,
                    node_columns=node_columns,
                    disturbance_events=(
                        disturbances.events if disturbances else ()
                    ),
                )
        span.set(kernel=False)
        obs.count("fleet.reference_replays")
        qos_limit = self.workload.qos_limit_seconds

        nodes = self._make_nodes(
            first_mass=trace.utilization[0] * self.fleet_size
        )

        fleet: Dict[str, np.ndarray] = {
            "step": np.arange(steps, dtype=np.int64),
            "time_s": trace.times(),
            "utilization": np.asarray(trace.utilization, dtype=np.float64),
            "offered_uips": np.empty(steps, dtype=np.float64),
            "served_uips": np.empty(steps, dtype=np.float64),
            "total_power_w": np.empty(steps, dtype=np.float64),
            "energy_j": np.empty(steps, dtype=np.float64),
            "tail_latency_s": np.empty(steps, dtype=np.float64),
            "active_servers": np.empty(steps, dtype=np.int64),
            "serving_servers": np.empty(steps, dtype=np.int64),
            "booting_servers": np.empty(steps, dtype=np.int64),
            "used_servers": np.empty(steps, dtype=np.int64),
            "wake_events": np.empty(steps, dtype=np.int64),
            "node_violations": np.empty(steps, dtype=np.int64),
            "queue_ok": np.empty(steps, dtype=bool),
            "demand_met": np.empty(steps, dtype=bool),
            "violation": np.empty(steps, dtype=bool),
        }
        per_node: Dict[int, Dict[str, np.ndarray]] = {
            node.node_id: {
                name: np.empty(
                    steps,
                    dtype=(
                        np.int8
                        if name == "state"
                        else bool
                        if name in ("qos_ok", "demand_met", "violation")
                        else np.float64
                    ),
                )
                for name in NODE_COLUMNS
            }
            for node in nodes
        }

        for index, utilization in enumerate(trace.utilization):
            mass = utilization * self.fleet_size

            for node in nodes:
                node.advance_boot()
            if disturbances is not None:
                # Restores and caps take effect before the scaling
                # decision (capacity that exists again, grids that just
                # shrank); crashes are applied after routing below, so
                # the crash step's routed share is genuinely lost.
                for event in disturbances.events_at(index, NODE_RESTORE):
                    node = nodes[event.node_id]
                    node.recover()
                    if self.autoscaler is None:
                        # A static fleet has no scaler to re-admit the
                        # node, so restoration powers it straight back
                        # on (no wake penalty: nothing decided to wake
                        # it, the machine simply came back).
                        node.wake(0)
                for event in disturbances.events_at(index, THERMAL_CAP):
                    nodes[event.node_id].apply_thermal_cap(
                        event.max_frequency_hz
                    )
            if self.autoscaler is not None:
                decision = self.autoscaler.scale(mass, nodes)
                woken = set(decision.woken)
                wake_energy = self.autoscaler.wake_energy_j
            else:
                woken = set()
                wake_energy = 0.0

            views = [node.view() for node in nodes]
            shares = routing.assign(mass, views)
            if len(shares) != len(nodes):
                raise ValueError(
                    f"routing {routing.name!r} returned {len(shares)} "
                    f"shares for {len(nodes)} nodes"
                )
            drift = abs(sum(shares) - mass)
            if drift > _MASS_TOLERANCE * max(1.0, mass):
                raise ValueError(
                    f"routing {routing.name!r} does not conserve load: "
                    f"assigned {sum(shares)} of {mass} server-equivalents"
                )
            if disturbances is not None:
                # Crashes land after routing already committed this
                # step's shares: the crashed node's share is dropped on
                # the floor (a violation) and the survivors only pick
                # it up at the next step's re-spread.
                for event in disturbances.events_at(index, NODE_CRASH):
                    nodes[event.node_id].crash()

            total_power = 0.0
            total_energy = 0.0
            total_served = 0.0
            total_offered = mass * self._sim.platform.nominal_capacity_uips
            used = 0
            node_violations = 0
            demand_met = True
            worst_tail = math.nan
            for node, share in zip(nodes, shares):
                node_step = node.step(
                    utilization=share,
                    step_seconds=trace.step_seconds,
                    off_power_w=self.off_power_w,
                    extra_energy_j=(
                        wake_energy if node.node_id in woken else 0.0
                    ),
                )
                table = per_node[node.node_id]
                table["state"][index] = int(node_step.state)
                table["frequency_hz"][index] = node_step.frequency_hz
                table["power_w"][index] = node_step.power_w
                table["energy_j"][index] = node_step.energy_j
                table["demand_uips"][index] = node_step.demand_uips
                table["capacity_uips"][index] = node_step.capacity_uips
                table["served_uips"][index] = node_step.served_uips
                table["qos_metric"][index] = node_step.qos_metric
                table["qos_ok"][index] = node_step.qos_ok
                table["demand_met"][index] = node_step.demand_met
                table["violation"][index] = node_step.violation

                total_power += node_step.power_w
                total_energy += node_step.energy_j
                total_served += node_step.served_uips
                node_violations += int(node_step.violation)
                demand_met = demand_met and node_step.demand_met
                if node_step.state is NodeState.SERVING and share > 0.0:
                    used += 1
                    if use_queueing:
                        tail = self._node_tail_latency(node_step)
                        if math.isnan(worst_tail) or tail > worst_tail:
                            worst_tail = tail

            serving = sum(1 for n in nodes if n.state is NodeState.SERVING)
            booting = sum(1 for n in nodes if n.state is NodeState.BOOTING)
            fleet["offered_uips"][index] = total_offered
            fleet["served_uips"][index] = total_served
            fleet["total_power_w"][index] = total_power
            fleet["energy_j"][index] = total_energy
            fleet["tail_latency_s"][index] = worst_tail
            fleet["active_servers"][index] = serving + booting
            fleet["serving_servers"][index] = serving
            fleet["booting_servers"][index] = booting
            fleet["used_servers"][index] = used
            fleet["wake_events"][index] = len(woken)
            fleet["node_violations"][index] = node_violations
            fleet["queue_ok"][index] = (
                math.isnan(worst_tail) or worst_tail <= qos_limit + 1e-12
            )
            fleet["demand_met"][index] = demand_met
            fleet["violation"][index] = node_violations > 0

        return FleetResult(
            routing_name=routing.name,
            governor_name=self.governor_name,
            workload_name=self.workload.name,
            trace_name=trace.name,
            fleet_size=self.fleet_size,
            step_seconds=trace.step_seconds,
            instructions_per_request=self.workload.instructions_per_request,
            autoscaled=self.autoscaler is not None,
            columns=fleet,
            node_columns=per_node,
            disturbance_events=disturbances.events if disturbances else (),
        )

    def compare(
        self,
        trace: LoadTrace,
        routings: Iterable[RoutingPolicy | str] | None = None,
        reference: bool = False,
        disturbances: DisturbanceSchedule | None = None,
    ) -> Dict[str, FleetResult]:
        """Run several routing policies on the same trace, keyed by name.

        Defaults to every registered policy in canonical order; the
        platform's operating points are shared across all runs.
        """
        from repro.fleet.routing import ROUTERS

        chosen = list(routings) if routings is not None else list(ROUTERS)
        results: Dict[str, FleetResult] = {}
        for routing in chosen:
            result = self.run(
                trace, routing, reference=reference, disturbances=disturbances
            )
            if result.routing_name in results:
                raise ValueError(
                    f"duplicate routing {result.routing_name!r} in comparison"
                )
            results[result.routing_name] = result
        return results
