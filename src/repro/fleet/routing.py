"""Request-routing policies: splitting fleet load across servers.

A :class:`RoutingPolicy` maps one step's fleet-level demand onto the
fleet's nodes.  Demand is expressed in *server-equivalents*: a mass of
``1.0`` is one server's worth of nominal-frequency throughput, so a
fleet trace at utilisation ``u`` over ``N`` servers carries a mass of
``u * N``.  Policies return one utilisation share per node (fraction of
that node's own nominal throughput), and the shares always sum to the
offered mass -- load is conserved, never silently dropped at the router
(a node that cannot serve its share records the violation instead).

Four policies, mirroring the governor registry's shape:

* ``round_robin`` -- the oblivious baseline: an even split across every
  powered-on node, *including* nodes still booting (a DNS round-robin
  does not know a server is warming up, so load sent there is lost).
* ``least_loaded`` -- an even split weighted by each node's capacity at
  its previous-step frequency: nodes already running fast receive more.
* ``pack`` -- power-aware consolidation: fill serving nodes in index
  order up to ``fill_fraction`` of nominal throughput, spilling the
  remainder onward; with the autoscaler this minimises how many servers
  must be awake.
* ``spread`` -- power-aware balancing: an even split across *serving*
  nodes only, minimising the per-server frequency (the right call when
  every server must stay on and power is convex in frequency).

All policies are stateless and deterministic; per-node state (previous
frequency, boot progress) reaches them through the frozen
:class:`NodeView` snapshots.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class NodeView:
    """What a routing policy may know about one node at one step.

    ``serving`` nodes accept and serve load; ``booting`` nodes are
    powered on but still warming up (only the oblivious policy routes
    to them); nodes that are neither are off.  ``previous_capacity_uips``
    is the node's throughput at the frequency it ran during the
    previous step (its nominal throughput before the first step).
    """

    node_id: int
    serving: bool
    booting: bool
    nominal_capacity_uips: float
    previous_capacity_uips: float

    @property
    def active(self) -> bool:
        """Powered on (serving or booting)."""
        return self.serving or self.booting


class RoutingPolicy(ABC):
    """Load-splitting policy: one fleet demand in, per-node shares out."""

    name: str = "routing"

    @abstractmethod
    def assign(
        self, mass: float, nodes: Sequence[NodeView]
    ) -> Tuple[float, ...]:
        """Per-node utilisation shares for a fleet mass (same node order).

        ``mass`` is the offered load in server-equivalents; the returned
        shares sum to ``mass`` exactly up to float rounding.
        """

    @staticmethod
    def _targets(nodes: Sequence[NodeView], serving_only: bool) -> list:
        """The routable subset; falls back to every active node.

        State-aware policies route to serving nodes, but during the very
        first boot wave there may be none -- then the load has to go
        *somewhere*, and the active set is the only honest choice.
        """
        targets = [
            node
            for node in nodes
            if (node.serving if serving_only else node.active)
        ]
        if not targets:
            targets = [node for node in nodes if node.active]
        if not targets:
            raise ValueError("cannot route load on a fleet with no active node")
        return targets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class RoundRobinRouting(RoutingPolicy):
    """Even split over every powered-on node (booting ones included)."""

    name = "round_robin"

    def assign(
        self, mass: float, nodes: Sequence[NodeView]
    ) -> Tuple[float, ...]:
        targets = {node.node_id for node in self._targets(nodes, serving_only=False)}
        share = mass / len(targets)
        return tuple(
            share if node.node_id in targets else 0.0 for node in nodes
        )


@dataclass(frozen=True)
class LeastLoadedRouting(RoutingPolicy):
    """Split proportionally to each serving node's previous-step capacity.

    After a scale-up or under a ramping ``conservative`` governor the
    nodes' previous frequencies differ; sending more load to the nodes
    already running fast is the continuous-time limit of join-the-
    shortest-queue.  With a homogeneous, settled fleet it degenerates to
    an even split.
    """

    name = "least_loaded"

    def assign(
        self, mass: float, nodes: Sequence[NodeView]
    ) -> Tuple[float, ...]:
        targets = self._targets(nodes, serving_only=True)
        weights: Dict[int, float] = {
            node.node_id: node.previous_capacity_uips / node.nominal_capacity_uips
            for node in targets
        }
        total = sum(weights.values())
        if total <= 0.0:
            # Degenerate previous capacities: fall back to an even split.
            weights = {node.node_id: 1.0 for node in targets}
            total = float(len(targets))
        return tuple(
            mass * (weights[node.node_id] / total)
            if node.node_id in weights
            else 0.0
            for node in nodes
        )


@dataclass(frozen=True)
class PackRouting(RoutingPolicy):
    """Fill serving nodes in index order up to ``fill_fraction``.

    Consolidation routing: the first node takes load up to
    ``fill_fraction`` of its nominal throughput, the next takes the
    spill, and so on; mass beyond every node's fill level is distributed
    evenly (the fleet is overloaded and the violation accounting takes
    over).  Packing concentrates work on the fewest servers, which is
    what lets the autoscaler park the rest.
    """

    fill_fraction: float = 0.75
    name = "pack"

    def __post_init__(self) -> None:
        check_fraction("fill_fraction", self.fill_fraction)
        if self.fill_fraction <= 0.0:
            raise ValueError(
                f"fill_fraction must be positive, got {self.fill_fraction}"
            )

    def assign(
        self, mass: float, nodes: Sequence[NodeView]
    ) -> Tuple[float, ...]:
        targets = self._targets(nodes, serving_only=True)
        shares: Dict[int, float] = {node.node_id: 0.0 for node in targets}
        remaining = mass
        for node in sorted(targets, key=lambda node: node.node_id):
            if remaining <= 0.0:
                break
            take = min(self.fill_fraction, remaining)
            shares[node.node_id] = take
            remaining -= take
        if remaining > 0.0:
            overflow = remaining / len(targets)
            for node_id in shares:
                shares[node_id] += overflow
        return tuple(shares.get(node.node_id, 0.0) for node in nodes)


@dataclass(frozen=True)
class SpreadRouting(RoutingPolicy):
    """Even split over serving nodes: minimise the per-server frequency."""

    name = "spread"

    def assign(
        self, mass: float, nodes: Sequence[NodeView]
    ) -> Tuple[float, ...]:
        targets = {node.node_id for node in self._targets(nodes, serving_only=True)}
        share = mass / len(targets)
        return tuple(
            share if node.node_id in targets else 0.0 for node in nodes
        )


ROUTERS: Dict[str, type] = {
    "round_robin": RoundRobinRouting,
    "least_loaded": LeastLoadedRouting,
    "pack": PackRouting,
    "spread": SpreadRouting,
}
"""Routing-policy factories by name, in canonical comparison order."""


def router_by_name(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by name.

    Raises
    ------
    ValueError
        If ``name`` is unknown; the message lists the known policies.
    """
    try:
        factory = ROUTERS[name]
    except KeyError:
        known = ", ".join(ROUTERS)
        raise ValueError(
            f"unknown routing policy {name!r}; known policies: {known}"
        ) from None
    return factory()
