"""The optimizer's objective: cost-per-QPS at QoS.

The paper's economics are denominated in dollars per unit of sustained
traffic, so the optimizer ranks policy configs by the
:class:`~repro.fleet.economics.CostModel`'s annual cost per sustained
QPS -- but only among configs that hold the QoS bound (zero node
violations over the replay, the same feasibility rule the
``fleet_replay`` analysis applies when it crowns a routing).  An
infeasible config's objective is ``inf``: it can never beat a feasible
one, which is what makes the reported optimum QoS-clean whenever a
clean config exists in the space.

The economics here are computed from the batched engine's summary
*dicts* with exactly the arithmetic
:meth:`~repro.fleet.economics.CostModel.rollup` applies to a
:class:`~repro.fleet.result.FleetResult`, so a trial's dollars are
bit-identical to what the object path reports for the same replay.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.fleet.economics import SECONDS_PER_YEAR, CostModel


def qos_violations(summary: Dict[str, object]) -> int:
    """Node-level QoS violations of one fleet replay summary."""
    return int(summary["violation_count"])


def is_feasible(summary: Dict[str, object]) -> bool:
    """True when the replay held the QoS bound at every step."""
    return qos_violations(summary) == 0


def economics_from_summary(
    summary: Dict[str, object], cost_model: CostModel
) -> Dict[str, object]:
    """:meth:`CostModel.rollup` computed from a batched summary dict.

    Same fields, same arithmetic order, so the numbers match the
    object path's rollup bit for bit for the same replay.
    """
    duration_s = float(summary["step_seconds"]) * int(summary["steps"])
    total_energy_j = float(summary["total_energy_j"])
    energy_cost = cost_model.energy_cost(total_energy_j)
    capex_cost = (
        int(summary["fleet_size"])
        * cost_model.capex_rate_per_server_second
        * duration_s
    )
    total_cost = energy_cost + capex_cost

    requests = summary["total_requests"]
    mean_qps = summary["mean_qps"]
    cost_rate_per_year = total_cost / duration_s * SECONDS_PER_YEAR

    return {
        "duration_s": duration_s,
        "energy_kwh": total_energy_j / 3.6e6,
        "energy_cost": energy_cost,
        "capex_cost": capex_cost,
        "total_cost": total_cost,
        "mean_qps": mean_qps,
        "cost_per_qps_year": (
            cost_rate_per_year / mean_qps
            if mean_qps is not None and mean_qps > 0
            else None
        ),
        "cost_per_million_requests": (
            total_cost / requests * 1.0e6
            if requests is not None and requests > 0
            else None
        ),
        "joules_per_request": summary["energy_per_request_j"],
        "joules_per_giga_instruction": summary[
            "energy_per_giga_instruction_j"
        ],
        "annual_tco": cost_rate_per_year,
    }


def objective_value(
    summary: Dict[str, object], economics: Dict[str, object]
) -> float:
    """Cost-per-QPS-at-QoS: the scalar the optimizer minimises.

    ``inf`` for replays that violate QoS or serve no requests -- they
    lose to every feasible config but still order deterministically
    behind them (see :meth:`~repro.opt.result.OptResult.best_index`).
    """
    cost_per_qps: Optional[float] = economics["cost_per_qps_year"]
    if not is_feasible(summary) or cost_per_qps is None:
        return math.inf
    return float(cost_per_qps)
