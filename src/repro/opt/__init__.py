"""Policy auto-tuning over the batched replay engine.

Searches policy parameter spaces -- governor choice, routing, fleet
size, pack fill fraction, autoscaler utilisation band and wake latency,
QoS/degradation bound -- against the paper's cost-per-QPS-at-QoS
objective, with the batched replay engine
(:class:`~repro.kernels.batch.BatchReplayRunner`) as the evaluation
backend.  Two deterministic strategies: exhaustive grid search and
prefix-based successive halving.  Results are frozen and golden-pinnable:
a columnar trials table, the best config under a deterministic total
order, and the energy-vs-QoS Pareto frontier with dominated points
dropped.
"""

from repro.opt.objective import (
    economics_from_summary,
    is_feasible,
    objective_value,
    qos_violations,
)
from repro.opt.result import OptResult, Trial, pareto_frontier, trial_rank_key
from repro.opt.space import ParamSpace, PolicyConfig
from repro.opt.strategies import STRATEGIES, GridSearch, SuccessiveHalving
from repro.opt.tuner import PolicyTuner

__all__ = [
    "STRATEGIES",
    "GridSearch",
    "OptResult",
    "ParamSpace",
    "PolicyConfig",
    "PolicyTuner",
    "SuccessiveHalving",
    "Trial",
    "economics_from_summary",
    "is_feasible",
    "objective_value",
    "pareto_frontier",
    "qos_violations",
    "trial_rank_key",
]
