"""The policy auto-tuner: strategies x spaces over the batched engine.

:class:`PolicyTuner` owns the evaluation side of an optimization: it
materialises :class:`~repro.opt.space.PolicyConfig` batches into
:class:`~repro.kernels.batch.ReplaySpec` lists, deduplicates specs that
replay identically (via :func:`repro.kernels.batch.unique_specs`),
pushes each batch through one :class:`BatchReplayRunner` pass, and
turns the summaries into ranked :class:`~repro.opt.result.Trial`
records.  Searching a ``degradation_bounds`` dimension spawns one
memoized :class:`~repro.sweep.context.ModelContext` per distinct bound,
so trials with different QoS bounds never share (bound-dependent)
frequency tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.fleet.economics import CostModel
from repro.dvfs.trace import LoadTrace
from repro.kernels.batch import BatchReplayRunner, unique_specs
from repro.opt.objective import (
    economics_from_summary,
    is_feasible,
    objective_value,
)
from repro.opt.result import OptResult, Trial
from repro.opt.space import ParamSpace, PolicyConfig
from repro.sweep.context import ModelContext
from repro.workloads.base import WorkloadCharacteristics


@dataclass(eq=False)
class PolicyTuner:
    """Evaluates policy configs for one (workload, trace) pair.

    The tuner is a pure driver of the batched replay engine: every
    trial's summary is bit-for-bit what
    :class:`~repro.fleet.simulation.FleetSimulator` would report for
    the same policy, and every trial's dollars are bit-for-bit what
    :meth:`CostModel.rollup` would compute from that replay.
    ``evaluations`` / ``full_length_evaluations`` / ``duplicate_trials``
    count the *last* :meth:`tune` call (reset at its start), which is
    what lets benchmarks compare strategy budgets.
    """

    context: ModelContext
    workload: WorkloadCharacteristics
    trace: LoadTrace
    cost_model: CostModel = field(default_factory=CostModel)
    frequencies: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.workload.instructions_per_request <= 0:
            raise ValueError(
                f"policy tuner: the cost-per-QPS objective needs a workload "
                f"with a request size, and {self.workload.name!r} has "
                f"instructions_per_request="
                f"{self.workload.instructions_per_request!r}"
            )
        if len(self.trace) < 1:
            raise ValueError("policy tuner: trace must have at least one step")
        self._contexts: Dict[Optional[float], ModelContext] = {
            None: self.context
        }
        self._runners: Dict[Optional[float], BatchReplayRunner] = {}
        self.evaluations = 0
        self.full_length_evaluations = 0
        self.duplicate_trials = 0
        self.wall_s = 0.0

    # -- evaluation backend ------------------------------------------------------------

    def _runner(self, bound: Optional[float]) -> BatchReplayRunner:
        """One batched runner per distinct degradation bound."""
        key = bound
        if bound is not None and bound == self.context.degradation_bound:
            key = None
        runner = self._runners.get(key)
        if runner is None:
            context = self._contexts.get(key)
            if context is None:
                context = ModelContext(
                    configuration=self.context.configuration,
                    degradation_bound=key,
                )
                self._contexts[key] = context
            runner = BatchReplayRunner(context, frequencies=self.frequencies)
            self._runners[key] = runner
        return runner

    def evaluate(
        self,
        configs: Sequence[PolicyConfig],
        steps: Optional[int] = None,
        rung: int = 0,
    ) -> List[Trial]:
        """Run one rung: every config on the first ``steps`` trace steps.

        ``steps=None`` evaluates the full trace.  Configs whose specs
        replay identically are evaluated once and share the summary;
        the returned trials keep the submitted config order.
        """
        started = time.perf_counter()
        trace = self.trace if steps is None else self.trace.head(steps)
        full_length = trace.steps == self.trace.steps
        specs = [
            config.replay_spec(self.workload, trace) for config in configs
        ]

        # Group positions by degradation bound: each bound has its own
        # context, and specs only deduplicate within a runner's batch.
        groups: Dict[Optional[float], List[int]] = {}
        for position, config in enumerate(configs):
            groups.setdefault(config.degradation_bound, []).append(position)

        summaries: List[Optional[Dict[str, object]]] = [None] * len(configs)
        with obs.trace(
            "opt.rung", rung=rung, configs=len(configs), steps=trace.steps
        ) as span:
            rung_evaluations = 0
            rung_duplicates = 0
            for bound in sorted(
                groups,
                key=lambda b: (b is not None, b if b is not None else 0.0),
            ):
                positions = groups[bound]
                runner = self._runner(bound)
                group_specs = [specs[p] for p in positions]
                unique, index_map = unique_specs(group_specs)
                rung_duplicates += len(group_specs) - len(unique)
                rung_evaluations += len(unique)
                if full_length:
                    self.full_length_evaluations += len(unique)
                batch_summaries = runner.run(unique).summaries()
                for local, position in enumerate(positions):
                    summaries[position] = batch_summaries[index_map[local]]
            self.duplicate_trials += rung_duplicates
            self.evaluations += rung_evaluations
            span.set(
                evaluations=rung_evaluations, duplicates=rung_duplicates
            )
        obs.count("opt.evaluations", rung_evaluations)
        obs.count("opt.duplicate_trials", rung_duplicates)

        trials: List[Trial] = []
        for config, summary in zip(configs, summaries):
            economics = economics_from_summary(summary, self.cost_model)
            trials.append(
                Trial(
                    config=config,
                    rung=rung,
                    steps=trace.steps,
                    summary=summary,
                    economics=economics,
                    objective=objective_value(summary, economics),
                    feasible=is_feasible(summary),
                )
            )
        self.wall_s += time.perf_counter() - started
        return trials

    # -- the front door ----------------------------------------------------------------

    def tune(self, space: ParamSpace, strategy) -> OptResult:
        """Search ``space`` with ``strategy``; returns the full result."""
        self.evaluations = 0
        self.full_length_evaluations = 0
        self.duplicate_trials = 0
        self.wall_s = 0.0
        configs = space.configs()
        trials = strategy.run(self.evaluate, configs, len(self.trace))
        return OptResult(
            space=space,
            strategy=strategy.name,
            trials=trials,
            full_steps=len(self.trace),
            evaluations=self.evaluations,
            full_length_evaluations=self.full_length_evaluations,
            duplicate_trials=self.duplicate_trials,
            wall_s=self.wall_s,
        )
