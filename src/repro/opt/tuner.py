"""The policy auto-tuner: strategies x spaces over the batched engine.

:class:`PolicyTuner` owns the evaluation side of an optimization: it
materialises :class:`~repro.opt.space.PolicyConfig` batches into
:class:`~repro.kernels.batch.ReplaySpec` lists, deduplicates specs that
replay identically (via :func:`repro.kernels.batch.unique_specs`),
pushes each batch through one :class:`BatchReplayRunner` pass, and
turns the summaries into ranked :class:`~repro.opt.result.Trial`
records.  Searching a ``degradation_bounds`` dimension spawns one
memoized :class:`~repro.sweep.context.ModelContext` per distinct bound,
so trials with different QoS bounds never share (bound-dependent)
frequency tables.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.fleet.economics import CostModel
from repro.dvfs.trace import LoadTrace
from repro.kernels.batch import BatchReplayRunner, unique_specs
from repro.opt.objective import (
    economics_from_summary,
    is_feasible,
    objective_value,
)
from repro.opt.result import OptResult, Trial
from repro.opt.space import ParamSpace, PolicyConfig
from repro.resilience import (
    CheckpointStore,
    FailedSummary,
    ReplayFault,
    check_on_error,
    corrupt,
    decode_floats,
    encode_floats,
    fault_point,
    run_guarded,
)
from repro.resilience.checkpoint import payload_digest
from repro.sweep.context import ModelContext
from repro.workloads.base import WorkloadCharacteristics


def _encode_trial(trial: Trial) -> Dict[str, object]:
    """One trial as strict-JSON checkpoint data (exact round trip)."""
    return {
        "config": trial.config.as_dict(),
        "rung": trial.rung,
        "steps": trial.steps,
        "summary": encode_floats(dict(trial.summary)),
        "economics": encode_floats(dict(trial.economics)),
        "objective": encode_floats(trial.objective),
        "feasible": trial.feasible,
    }


def _decode_trial(data: Dict[str, object]) -> Trial:
    """Inverse of :func:`_encode_trial`."""
    return Trial(
        config=PolicyConfig.from_dict(data["config"]),  # type: ignore[arg-type]
        rung=int(data["rung"]),  # type: ignore[arg-type]
        steps=int(data["steps"]),  # type: ignore[arg-type]
        summary=decode_floats(data["summary"]),  # type: ignore[arg-type]
        economics=decode_floats(data["economics"]),  # type: ignore[arg-type]
        objective=float(decode_floats(data["objective"])),  # type: ignore[arg-type]
        feasible=bool(data["feasible"]),
    )


@dataclass(eq=False)
class PolicyTuner:
    """Evaluates policy configs for one (workload, trace) pair.

    The tuner is a pure driver of the batched replay engine: every
    trial's summary is bit-for-bit what
    :class:`~repro.fleet.simulation.FleetSimulator` would report for
    the same policy, and every trial's dollars are bit-for-bit what
    :meth:`CostModel.rollup` would compute from that replay.
    ``evaluations`` / ``full_length_evaluations`` / ``duplicate_trials``
    count the *last* :meth:`tune` call (reset at its start), which is
    what lets benchmarks compare strategy budgets.
    """

    context: ModelContext
    workload: WorkloadCharacteristics
    trace: LoadTrace
    cost_model: CostModel = field(default_factory=CostModel)
    frequencies: Optional[Tuple[float, ...]] = None
    on_error: str = "raise"
    retries: int = 0

    def __post_init__(self) -> None:
        if self.workload.instructions_per_request <= 0:
            raise ValueError(
                f"policy tuner: the cost-per-QPS objective needs a workload "
                f"with a request size, and {self.workload.name!r} has "
                f"instructions_per_request="
                f"{self.workload.instructions_per_request!r}"
            )
        if len(self.trace) < 1:
            raise ValueError("policy tuner: trace must have at least one step")
        check_on_error(self.on_error)
        if not isinstance(self.retries, int) or self.retries < 0:
            raise ValueError(
                f"policy tuner: retries must be an integer >= 0, "
                f"got {self.retries!r}"
            )
        self._contexts: Dict[Optional[float], ModelContext] = {
            None: self.context
        }
        self._runners: Dict[Optional[float], BatchReplayRunner] = {}
        self._store: Optional[CheckpointStore] = None
        self._saved_counters: Dict[str, int] = {}
        self.quarantined: List[Dict[str, object]] = []
        self.evaluations = 0
        self.full_length_evaluations = 0
        self.duplicate_trials = 0
        self.wall_s = 0.0

    # -- evaluation backend ------------------------------------------------------------

    def _runner(self, bound: Optional[float]) -> BatchReplayRunner:
        """One batched runner per distinct degradation bound."""
        key = bound
        if bound is not None and bound == self.context.degradation_bound:
            key = None
        runner = self._runners.get(key)
        if runner is None:
            context = self._contexts.get(key)
            if context is None:
                context = ModelContext(
                    configuration=self.context.configuration,
                    degradation_bound=key,
                )
                self._contexts[key] = context
            runner = BatchReplayRunner(
                context,
                frequencies=self.frequencies,
                on_error=self.on_error,
            )
            self._runners[key] = runner
        return runner

    def evaluate(
        self,
        configs: Sequence[PolicyConfig],
        steps: Optional[int] = None,
        rung: int = 0,
    ) -> List[Trial]:
        """Run one rung: every config on the first ``steps`` trace steps.

        ``steps=None`` evaluates the full trace.  Configs whose specs
        replay identically are evaluated once and share the summary;
        the returned trials keep the submitted config order (minus
        quarantined configs under ``on_error="quarantine"``).

        With a checkpoint store armed (see :meth:`tune`'s
        ``checkpoint_dir``), a rung that already has a valid checkpoint
        for these exact configs and steps is restored -- trials and
        counters bit-for-bit -- instead of re-evaluated, and every
        freshly evaluated rung is checkpointed on completion.
        """
        started = time.perf_counter()
        trace = self.trace if steps is None else self.trace.head(steps)
        full_length = trace.steps == self.trace.steps
        if self._store is not None:
            restored = self._restore_rung(configs, trace.steps, rung)
            if restored is not None:
                self.wall_s += time.perf_counter() - started
                return restored
        fault_point(
            "tuner.rung", identity=f"rung {rung} ({len(configs)} configs)"
        )
        counter_snapshot = (
            self.evaluations,
            self.full_length_evaluations,
            self.duplicate_trials,
            len(self.quarantined),
        )
        try:
            trials = self._evaluate_rung(configs, trace, full_length, rung)
        except BaseException:
            # A failed (possibly retried) rung must not leave partial
            # counter increments behind.
            (
                self.evaluations,
                self.full_length_evaluations,
                self.duplicate_trials,
                kept,
            ) = counter_snapshot
            del self.quarantined[kept:]
            raise
        if self._store is not None:
            self._save_rung(configs, trace.steps, rung, trials)
        self.wall_s += time.perf_counter() - started
        return trials

    def _evaluate_rung(
        self,
        configs: Sequence[PolicyConfig],
        trace: LoadTrace,
        full_length: bool,
        rung: int,
    ) -> List[Trial]:
        """One rung's actual evaluation (no checkpoint involvement)."""
        quarantine = self.on_error == "quarantine"
        specs = [
            config.replay_spec(self.workload, trace) for config in configs
        ]

        # Group positions by degradation bound: each bound has its own
        # context, and specs only deduplicate within a runner's batch.
        groups: Dict[Optional[float], List[int]] = {}
        for position, config in enumerate(configs):
            groups.setdefault(config.degradation_bound, []).append(position)

        summaries: List[Optional[Dict[str, object]]] = [None] * len(configs)
        with obs.trace(
            "opt.rung", rung=rung, configs=len(configs), steps=trace.steps
        ) as span:
            rung_evaluations = 0
            rung_duplicates = 0
            rung_full_length = 0
            for bound in sorted(
                groups,
                key=lambda b: (b is not None, b if b is not None else 0.0),
            ):
                positions = groups[bound]
                runner = self._runner(bound)
                group_specs = [specs[p] for p in positions]
                unique, index_map = unique_specs(group_specs)
                rung_duplicates += len(group_specs) - len(unique)
                rung_evaluations += len(unique)
                if full_length:
                    rung_full_length += len(unique)
                batch_summaries = runner.run(unique).summaries()
                for local, position in enumerate(positions):
                    summaries[position] = batch_summaries[index_map[local]]
            self.duplicate_trials += rung_duplicates
            self.evaluations += rung_evaluations
            self.full_length_evaluations += rung_full_length
            span.set(
                evaluations=rung_evaluations, duplicates=rung_duplicates
            )
        obs.count("opt.evaluations", rung_evaluations)
        obs.count("opt.duplicate_trials", rung_duplicates)

        trials: List[Trial] = []
        for config, summary in zip(configs, summaries):
            if isinstance(summary, FailedSummary):
                # The batched runner isolated this config's replay;
                # drop the trial and keep its identity on the record.
                self._record_quarantine(config, rung, summary)
                continue
            economics = economics_from_summary(summary, self.cost_model)
            objective = corrupt(
                "tuner.objective",
                objective_value(summary, economics),
                identity=f"config {config.label()!r} rung {rung}",
            )
            if quarantine and math.isnan(objective):
                fault = ReplayFault(
                    "objective is NaN (corrupt evaluation)",
                    identity=f"config {config.label()!r} rung {rung}",
                )
                self._record_quarantine(
                    config, rung, FailedSummary.from_fault(fault)
                )
                obs.count("resilience.quarantined")
                continue
            trials.append(
                Trial(
                    config=config,
                    rung=rung,
                    steps=trace.steps,
                    summary=summary,
                    economics=economics,
                    objective=objective,
                    feasible=is_feasible(summary),
                )
            )
        return trials

    def _record_quarantine(
        self, config: PolicyConfig, rung: int, failed: FailedSummary
    ) -> None:
        self.quarantined.append(
            {
                "rung": rung,
                "config": config.as_dict(),
                "label": config.label(),
                "failure": failed.as_dict(),
            }
        )

    # -- checkpointing -----------------------------------------------------------------

    def _rung_name(self, rung: int) -> str:
        return f"rung_{rung:03d}"

    def _restore_rung(
        self, configs: Sequence[PolicyConfig], steps: int, rung: int
    ) -> Optional[List[Trial]]:
        """Trials from a valid rung checkpoint, or ``None`` to rebuild.

        Counters and quarantine records saved with the rung are
        restored too, so a resumed :meth:`tune` reports exactly the
        counters an uninterrupted run would.
        """
        assert self._store is not None
        cached = self._store.load_valid(self._rung_name(rung))
        if cached is None:
            return None
        if cached.get("steps") != steps or cached.get("configs") != [
            config.as_dict() for config in configs
        ]:
            # Valid file, different rung contents (e.g. a strategy or
            # space tweak survived the fingerprint): rebuild.
            obs.count("resilience.checkpoint_rejected")
            return None
        counters = cached["counters"]
        for name in (
            "evaluations",
            "full_length_evaluations",
            "duplicate_trials",
        ):
            delta = int(counters[name])
            setattr(self, name, getattr(self, name) + delta)
            self._saved_counters[name] += delta
        for record in cached.get("quarantined", ()):
            self.quarantined.append(decode_floats(record))
        obs.count("resilience.rungs_resumed")
        return [_decode_trial(data) for data in cached["trials"]]

    def _save_rung(
        self,
        configs: Sequence[PolicyConfig],
        steps: int,
        rung: int,
        trials: List[Trial],
    ) -> None:
        assert self._store is not None
        rung_quarantined = [
            record
            for record in self.quarantined
            if record["rung"] == rung
        ]
        counters = self._rung_counter_deltas()
        self._store.save(
            self._rung_name(rung),
            {
                "rung": rung,
                "steps": steps,
                "configs": [config.as_dict() for config in configs],
                "trials": [_encode_trial(trial) for trial in trials],
                "quarantined": encode_floats(rung_quarantined),
                "counters": counters,
            },
        )

    def _rung_counter_deltas(self) -> Dict[str, int]:
        """The latest rung's counter deltas (total minus already saved).

        Checkpoints store per-rung *deltas* so a resumed run can add
        them back and report counters bit-identical to an
        uninterrupted run.
        """
        saved = self._saved_counters
        deltas = {}
        for name in (
            "evaluations",
            "full_length_evaluations",
            "duplicate_trials",
        ):
            total = int(getattr(self, name))
            deltas[name] = total - saved[name]
            saved[name] = total
        return deltas

    # -- the front door ----------------------------------------------------------------

    def _fingerprint(self, space: ParamSpace, strategy) -> str:
        """What a checkpoint must have been produced by to be resumable."""
        return payload_digest(
            {
                "space": space.summary(),
                "strategy": repr(strategy),
                "workload": self.workload.name,
                "trace": {
                    "steps": len(self.trace),
                    "step_seconds": float(self.trace.step_seconds),
                    "utilization": payload_digest(
                        [float(u) for u in self.trace.utilization]
                    ),
                },
                "cost_model": repr(self.cost_model),
                "frequencies": (
                    None
                    if self.frequencies is None
                    else [float(f) for f in self.frequencies]
                ),
                "degradation_bound": self.context.degradation_bound,
                "on_error": self.on_error,
            }
        )

    def tune(
        self,
        space: ParamSpace,
        strategy,
        checkpoint_dir: Union[str, Path, None] = None,
    ) -> OptResult:
        """Search ``space`` with ``strategy``; returns the full result.

        ``checkpoint_dir`` arms per-rung checkpointing: each completed
        rung is sealed into an atomic, digest-validated checkpoint, and
        a re-run over the same directory restores completed rungs
        instead of re-evaluating them -- the resumed :class:`OptResult`
        is bit-identical (:meth:`OptResult.as_dict`) to an
        uninterrupted run's.  Checkpoints are bound to the exact
        (space, strategy, workload, trace, ...) fingerprint; anything
        else in the directory is ignored and rebuilt.
        """
        self.evaluations = 0
        self.full_length_evaluations = 0
        self.duplicate_trials = 0
        self.wall_s = 0.0
        self.quarantined = []
        self._saved_counters = {
            "evaluations": 0,
            "full_length_evaluations": 0,
            "duplicate_trials": 0,
        }
        if checkpoint_dir is not None:
            self._store = CheckpointStore(
                Path(checkpoint_dir),
                fingerprint=self._fingerprint(space, strategy),
            )
        evaluate = self.evaluate
        if self.retries:
            def evaluate(configs, steps=None, rung=0):  # noqa: E306
                return run_guarded(
                    self.evaluate,
                    configs,
                    steps,
                    rung,
                    retries=self.retries,
                    identity=f"rung {rung}",
                )
        try:
            configs = space.configs()
            trials = strategy.run(evaluate, configs, len(self.trace))
        finally:
            self._store = None
        return OptResult(
            space=space,
            strategy=strategy.name,
            trials=trials,
            full_steps=len(self.trace),
            evaluations=self.evaluations,
            full_length_evaluations=self.full_length_evaluations,
            duplicate_trials=self.duplicate_trials,
            wall_s=self.wall_s,
            quarantined=self.quarantined,
        )
