"""Policy parameter spaces: the knobs an optimizer may turn.

A :class:`ParamSpace` is a frozen, fully-validated description of a
policy design space: which DVFS governors, routing policies, fleet
sizes, pack fill fractions, autoscaler utilisation bands and wake
latencies (and optionally QoS/degradation bounds) the optimizer may
combine.  Every field is checked at construction time -- a space that
exists is a space that can be enumerated -- mirroring the
:class:`~repro.scenarios.spec.ScenarioSpec` contract.

:meth:`ParamSpace.configs` enumerates the cross product as
*canonicalized* :class:`PolicyConfig` points: parameters that are
no-ops for a combination (the pack fill fraction under a non-pack
routing, the wake latency of a fleet that never autoscales) are
normalised to ``None`` and the resulting duplicates dropped, so two
parameter combinations that would replay identically become one trial.
Configs materialise straight into
:class:`~repro.kernels.batch.ReplaySpec` instances, which keeps the
optimizer a pure driver of the batched replay engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dvfs.trace import LoadTrace
from repro.fleet.autoscaler import Autoscaler
from repro.fleet.routing import PackRouting, RoutingPolicy, router_by_name
from repro.kernels.batch import ReplaySpec
from repro.workloads.base import WorkloadCharacteristics

Band = Optional[Tuple[float, float]]
"""An autoscaler utilisation band ``(low, high)``; ``None`` = static fleet."""


@dataclass(frozen=True)
class PolicyConfig:
    """One canonical point of a policy space.

    ``fill_fraction`` is ``None`` unless the routing is ``pack`` (it is
    a no-op everywhere else); ``band`` is ``None`` for a fleet that
    never autoscales, in which case ``wake_steps`` is ``None`` too.
    ``degradation_bound`` is ``None`` when the trial inherits the
    scenario's bound.  Two equal configs replay identically, which is
    what lets :meth:`ParamSpace.configs` deduplicate the cross product.
    """

    governor: str
    routing: str
    fleet_size: int
    fill_fraction: Optional[float] = None
    band: Band = None
    wake_steps: Optional[int] = None
    degradation_bound: Optional[float] = None

    def key(self) -> tuple:
        """Deterministic total-order key (tie-breaking, sorting)."""
        return (
            self.fleet_size,
            self.governor,
            self.routing,
            -1.0 if self.fill_fraction is None else self.fill_fraction,
            self.band is not None,
            (-1.0, -1.0) if self.band is None else self.band,
            -1 if self.wake_steps is None else self.wake_steps,
            -1.0 if self.degradation_bound is None else self.degradation_bound,
        )

    def label(self) -> str:
        """Compact human-readable identifier (CLI trials table)."""
        parts = [f"{self.routing}", f"{self.governor}", f"n={self.fleet_size}"]
        if self.fill_fraction is not None:
            parts.append(f"fill={self.fill_fraction:g}")
        if self.band is None:
            parts.append("static")
        else:
            parts.append(f"band={self.band[0]:g}-{self.band[1]:g}")
            parts.append(f"wake={self.wake_steps}")
        if self.degradation_bound is not None:
            parts.append(f"bound={self.degradation_bound:g}")
        return " ".join(parts)

    # -- materialisation ---------------------------------------------------------------

    def routing_policy(self) -> RoutingPolicy:
        """The configured routing policy instance."""
        if self.routing == "pack" and self.fill_fraction is not None:
            return PackRouting(fill_fraction=self.fill_fraction)
        return router_by_name(self.routing)

    def autoscaler(self) -> Optional[Autoscaler]:
        """The configured autoscaler, ``None`` for a static fleet."""
        if self.band is None:
            return None
        return Autoscaler(
            low=self.band[0],
            high=self.band[1],
            wake_steps=self.wake_steps if self.wake_steps is not None else 1,
        )

    def replay_spec(
        self, workload: WorkloadCharacteristics, trace: LoadTrace
    ) -> ReplaySpec:
        """This config as a batched-engine :class:`ReplaySpec`."""
        return ReplaySpec(
            workload=workload,
            trace=trace,
            governor=self.governor,
            fleet_size=self.fleet_size,
            routing=self.routing_policy(),
            autoscaler=self.autoscaler(),
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-able description (golden fixtures, CLI)."""
        return {
            "governor": self.governor,
            "routing": self.routing,
            "fleet_size": self.fleet_size,
            "fill_fraction": self.fill_fraction,
            "band": None if self.band is None else list(self.band),
            "wake_steps": self.wake_steps,
            "degradation_bound": self.degradation_bound,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PolicyConfig":
        """Inverse of :meth:`as_dict` (checkpoint decode).

        Exact: every field survives the JSON round trip bit-for-bit
        (floats serialise via shortest repr), so a config decoded from
        a checkpoint compares equal to the one that was encoded.
        """
        band = data.get("band")
        return cls(
            governor=str(data["governor"]),
            routing=str(data["routing"]),
            fleet_size=int(data["fleet_size"]),  # type: ignore[arg-type]
            fill_fraction=data.get("fill_fraction"),  # type: ignore[arg-type]
            band=None if band is None else (band[0], band[1]),  # type: ignore[index]
            wake_steps=data.get("wake_steps"),  # type: ignore[arg-type]
            degradation_bound=data.get("degradation_bound"),  # type: ignore[arg-type]
        )


def _check_dimension_not_empty(name: str, values: tuple) -> None:
    if not values:
        raise ValueError(
            f"parameter space: dimension {name!r} must not be empty"
        )


def _check_no_duplicates(name: str, values: tuple) -> None:
    if len(set(values)) != len(values):
        raise ValueError(
            f"parameter space: dimension {name!r} contains duplicates: "
            f"{values}"
        )


@dataclass(frozen=True)
class ParamSpace:
    """Frozen validated policy design space.

    Parameters
    ----------
    fleet_sizes:
        Fleet sizes to search; each must be an integer >= 1.
    governors:
        Governor policy names from
        :data:`repro.dvfs.governors.GOVERNORS`.
    routings:
        Routing policy names from :data:`repro.fleet.routing.ROUTERS`.
    fill_fractions:
        Pack fill fractions in ``(0, 1]``; a no-op (canonicalized away)
        for combinations whose routing is not ``pack``.
    bands:
        Autoscaler utilisation bands ``(low, high)`` with
        ``0 < low < high <= 1``; a ``None`` entry searches the static
        (never-autoscaled) fleet.
    wake_steps:
        Autoscaler boot latencies in trace steps (integers >= 0); a
        no-op for the static-fleet band.
    degradation_bounds:
        QoS/degradation bounds (>= 1) to search; a ``None`` entry
        inherits the evaluation context's bound.
    """

    fleet_sizes: Tuple[int, ...] = (8,)
    governors: Tuple[str, ...] = ("qos_tracker",)
    routings: Tuple[str, ...] = ("pack",)
    fill_fractions: Tuple[float, ...] = (0.75,)
    bands: Tuple[Band, ...] = ((0.35, 0.75),)
    wake_steps: Tuple[int, ...] = (1,)
    degradation_bounds: Tuple[Optional[float], ...] = (None,)

    def __post_init__(self) -> None:
        # Imported here (like ScenarioSpec does) to keep the package
        # import graph acyclic.
        from repro.dvfs.governors import GOVERNORS
        from repro.fleet.routing import ROUTERS

        for name in (
            "fleet_sizes",
            "governors",
            "routings",
            "fill_fractions",
            "bands",
            "wake_steps",
            "degradation_bounds",
        ):
            values = getattr(self, name)
            _check_dimension_not_empty(name, values)
            _check_no_duplicates(name, values)

        for size in self.fleet_sizes:
            if not isinstance(size, int) or size < 1:
                raise ValueError(
                    f"parameter space: fleet sizes must be integers >= 1, "
                    f"got {size!r}"
                )
        unknown_governors = [g for g in self.governors if g not in GOVERNORS]
        if unknown_governors:
            known = ", ".join(GOVERNORS)
            raise ValueError(
                f"parameter space: unknown governors {unknown_governors}; "
                f"known governors: {known}"
            )
        unknown_routings = [r for r in self.routings if r not in ROUTERS]
        if unknown_routings:
            known = ", ".join(ROUTERS)
            raise ValueError(
                f"parameter space: unknown routings {unknown_routings}; "
                f"known policies: {known}"
            )
        for fill in self.fill_fractions:
            if not (math.isfinite(fill) and 0.0 < fill <= 1.0):
                raise ValueError(
                    f"parameter space: fill fractions must be finite and in "
                    f"(0, 1], got {fill!r}"
                )
        for band in self.bands:
            if band is None:
                continue
            if not isinstance(band, tuple) or len(band) != 2:
                raise ValueError(
                    f"parameter space: a band is a (low, high) pair, "
                    f"got {band!r}"
                )
            low, high = band
            if not (math.isfinite(low) and math.isfinite(high)):
                raise ValueError(
                    f"parameter space: band bounds must be finite, "
                    f"got {band!r}"
                )
            if low >= high:
                raise ValueError(
                    f"parameter space: degenerate band (need low < high), "
                    f"got low={low!r} high={high!r}"
                )
            if not (0.0 < low and high <= 1.0):
                raise ValueError(
                    f"parameter space: band must satisfy 0 < low < high <= 1, "
                    f"got {band!r}"
                )
        for steps in self.wake_steps:
            if not isinstance(steps, int) or steps < 0:
                raise ValueError(
                    f"parameter space: wake steps must be integers >= 0, "
                    f"got {steps!r}"
                )
        for bound in self.degradation_bounds:
            if bound is None:
                continue
            if math.isnan(bound):
                raise ValueError(
                    "parameter space: degradation bound must not be NaN"
                )
            if not math.isfinite(bound) or bound < 1.0:
                raise ValueError(
                    f"parameter space: degradation bound must be finite and "
                    f">= 1 (1.0 = no slowdown allowed), got {bound!r}"
                )

    # -- enumeration -------------------------------------------------------------------

    def configs(self) -> Tuple[PolicyConfig, ...]:
        """The canonical deduplicated cross product, enumeration order.

        Parameters that cannot influence a combination's replay are
        normalised away before deduplication: ``fill_fraction`` becomes
        ``None`` under a non-pack routing, and ``wake_steps`` becomes
        ``None`` for the static (``band=None``) fleet.  The first
        occurrence of each canonical config wins, so the order is a
        deterministic function of the dimension order alone.
        """
        seen = set()
        out: List[PolicyConfig] = []
        for fleet_size in self.fleet_sizes:
            for governor in self.governors:
                for routing in self.routings:
                    for fill in self.fill_fractions:
                        for band in self.bands:
                            for wake in self.wake_steps:
                                for bound in self.degradation_bounds:
                                    config = PolicyConfig(
                                        governor=governor,
                                        routing=routing,
                                        fleet_size=fleet_size,
                                        fill_fraction=(
                                            fill if routing == "pack" else None
                                        ),
                                        band=band,
                                        wake_steps=(
                                            wake if band is not None else None
                                        ),
                                        degradation_bound=bound,
                                    )
                                    if config not in seen:
                                        seen.add(config)
                                        out.append(config)
        return tuple(out)

    @property
    def size(self) -> int:
        """Number of canonical (deduplicated) configs."""
        return len(self.configs())

    @property
    def raw_size(self) -> int:
        """Size of the raw cross product, duplicates included."""
        return (
            len(self.fleet_sizes)
            * len(self.governors)
            * len(self.routings)
            * len(self.fill_fractions)
            * len(self.bands)
            * len(self.wake_steps)
            * len(self.degradation_bounds)
        )

    def summary(self) -> Dict[str, object]:
        """JSON-able description of the space (golden fixtures)."""
        return {
            "fleet_sizes": list(self.fleet_sizes),
            "governors": list(self.governors),
            "routings": list(self.routings),
            "fill_fractions": list(self.fill_fractions),
            "bands": [
                None if band is None else list(band) for band in self.bands
            ],
            "wake_steps": list(self.wake_steps),
            "degradation_bounds": list(self.degradation_bounds),
            "raw_size": self.raw_size,
            "size": self.size,
        }
