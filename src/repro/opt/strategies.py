"""Deterministic search strategies over a policy space.

Both strategies are pure drivers of an ``evaluate`` callback (supplied
by :class:`~repro.opt.tuner.PolicyTuner`) that turns a batch of configs
into :class:`~repro.opt.result.Trial` records via one batched-engine
pass.  :class:`GridSearch` evaluates the whole space at full trace
length; :class:`SuccessiveHalving` spends most of its budget on short
trace prefixes, promoting only the top ``keep_fraction`` of each rung
to the next (longer) prefix, and evaluates only the last survivors at
full length.  Replays are causal, so a config's prefix behaviour is
exactly the first ``k`` steps of its full-length behaviour -- the cheap
rungs are unbiased previews, not approximations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.opt.result import Trial, trial_rank_key
from repro.opt.space import PolicyConfig

Evaluate = Callable[[Sequence[PolicyConfig], Optional[int], int], List[Trial]]
"""``evaluate(configs, steps, rung)``; ``steps=None`` = full trace."""


@dataclass(frozen=True)
class GridSearch:
    """Exhaustively evaluate every config at full trace length."""

    name = "grid"

    def run(
        self,
        evaluate: Evaluate,
        configs: Sequence[PolicyConfig],
        full_steps: int,
    ) -> List[Trial]:
        return evaluate(configs, None, 0)


@dataclass(frozen=True)
class SuccessiveHalving:
    """Prefix-based successive halving.

    Rung ``r`` evaluates the surviving configs on trace prefix
    ``prefix_steps[r]``; the top ``keep_fraction`` (ranked by
    :func:`~repro.opt.result.trial_rank_key`, ties broken by canonical
    config key -- submission order never matters) survive to the next
    rung.  The final rung always runs at full trace length, so the
    reported optimum is judged on exactly the same evidence grid search
    would use.  Survivor sets preserve enumeration order, which makes
    ``keep_fraction=1.0`` reproduce exhaustive grid search trial for
    trial on the final rung.
    """

    keep_fraction: float = 0.5
    prefix_steps: Tuple[int, ...] = ()

    name = "halving"

    def __post_init__(self) -> None:
        if not (
            isinstance(self.keep_fraction, float)
            and math.isfinite(self.keep_fraction)
            and 0.0 < self.keep_fraction <= 1.0
        ):
            raise ValueError(
                f"successive halving: keep fraction must be a finite float in "
                f"(0, 1], got {self.keep_fraction!r}"
            )
        for steps in self.prefix_steps:
            if not isinstance(steps, int) or steps < 1:
                raise ValueError(
                    f"successive halving: prefix steps must be integers >= 1, "
                    f"got {steps!r}"
                )
        if any(
            later <= earlier
            for earlier, later in zip(self.prefix_steps, self.prefix_steps[1:])
        ):
            raise ValueError(
                f"successive halving: prefix steps must be strictly "
                f"increasing, got {self.prefix_steps}"
            )

    def schedule(self, full_steps: int) -> Tuple[Optional[int], ...]:
        """Per-rung prefix lengths; the ``None`` tail is the full trace."""
        prefixes = self.prefix_steps
        if not prefixes:
            # Default geometric schedule: quarter then half trace.
            prefixes = tuple(
                sorted({max(1, full_steps // 4), max(1, full_steps // 2)})
            )
            prefixes = tuple(p for p in prefixes if p < full_steps)
        else:
            for steps in prefixes:
                if steps >= full_steps:
                    raise ValueError(
                        f"successive halving: prefix of {steps} steps is not "
                        f"shorter than the {full_steps}-step trace"
                    )
        return prefixes + (None,)

    def run(
        self,
        evaluate: Evaluate,
        configs: Sequence[PolicyConfig],
        full_steps: int,
    ) -> List[Trial]:
        schedule = self.schedule(full_steps)
        survivors: List[PolicyConfig] = list(configs)
        trials: List[Trial] = []
        for rung, steps in enumerate(schedule):
            rung_trials = evaluate(survivors, steps, rung)
            trials.extend(rung_trials)
            if steps is None:
                break
            keep = max(
                1, math.ceil(self.keep_fraction * len(rung_trials))
            )
            ranked = sorted(
                range(len(rung_trials)),
                key=lambda i: trial_rank_key(rung_trials[i]),
            )
            kept = set(ranked[:keep])
            # Stable filter: survivors stay in enumeration order so the
            # trial stream is a deterministic function of the space.
            survivors = [
                rung_trials[i].config
                for i in range(len(rung_trials))
                if i in kept
            ]
        return trials


STRATEGIES = {
    "grid": GridSearch,
    "halving": SuccessiveHalving,
}
"""Strategy name -> class, mirroring GOVERNORS / ROUTERS registries."""
