"""Optimizer outcomes: trials, the optimum, and the Pareto frontier.

A :class:`Trial` is one (config, trace prefix) evaluation: the batched
engine's replay summary, the cost-model economics derived from it, and
the scalar objective.  :class:`OptResult` collects every trial an
optimization produced (all rungs, in evaluation order), exposes them as
a frozen columnar table, and derives the two headline artifacts golden
fixtures pin: the best config (deterministic total order, never
QoS-violating when a QoS-clean config exists) and the energy-vs-QoS
Pareto frontier over the full-length trials with dominated points
dropped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.opt.space import ParamSpace, PolicyConfig


@dataclass(frozen=True)
class Trial:
    """One evaluated (config, trace prefix) point.

    ``rung`` is the successive-halving round the trial ran in (always
    0 for grid search) and ``steps`` the evaluated trace prefix length;
    ``summary`` is the batched engine's fleet replay summary and
    ``economics`` the cost-model rollup computed from it.
    """

    config: PolicyConfig
    rung: int
    steps: int
    summary: Dict[str, object]
    economics: Dict[str, object]
    objective: float
    feasible: bool


def trial_rank_key(trial: Trial) -> tuple:
    """Deterministic total order: the optimizer's notion of "better".

    Feasible (QoS-clean) trials always precede infeasible ones and are
    ordered by objective (cost per QPS); infeasible trials are ordered
    by how badly they violate, then by cost.  Ties break on the
    config's canonical key, so the ranking -- and everything derived
    from it (the optimum, halving's survivor sets) -- is invariant to
    trial submission order.
    """
    cost = trial.economics["cost_per_qps_year"]
    return (
        0 if trial.feasible else 1,
        trial.objective if trial.feasible else int(trial.summary["violation_count"]),
        math.inf if cost is None else float(cost),
        trial.config.key(),
    )


def pareto_frontier(
    violations: Sequence[float], energy: Sequence[float]
) -> Tuple[int, ...]:
    """Indices of the non-dominated (violations, energy) points.

    Both axes are minimised.  A point is dominated when another point
    is no worse on both axes and strictly better on at least one.
    Duplicate points keep only their first occurrence, so duplicated
    trials cannot inflate the frontier; the returned indices are sorted
    by ascending violations, then ascending energy, making the frontier
    *point set* invariant under trial permutation.

    Raises
    ------
    ValueError
        On zero points, mismatched axis lengths, or NaN coordinates --
        a NaN cannot be ordered, so a frontier over it would be
        meaningless.
    """
    if len(violations) != len(energy):
        raise ValueError(
            f"Pareto frontier needs one energy per violation count, got "
            f"{len(violations)} violation counts and {len(energy)} energies"
        )
    if len(violations) == 0:
        raise ValueError("cannot compute a Pareto frontier over zero trials")
    first_seen: Dict[Tuple[float, float], int] = {}
    for index, (v, e) in enumerate(zip(violations, energy)):
        v = float(v)
        e = float(e)
        if math.isnan(v) or math.isnan(e):
            raise ValueError(
                f"Pareto frontier point {index} has a NaN coordinate "
                f"(violations={v!r}, energy={e!r})"
            )
        first_seen.setdefault((v, e), index)
    frontier: List[Tuple[float, float, int]] = []
    best_energy = math.inf
    for (v, e), index in sorted(
        first_seen.items(), key=lambda item: (item[0][0], item[0][1], item[1])
    ):
        if e < best_energy:
            frontier.append((v, e, index))
            best_energy = e
    return tuple(index for _, _, index in frontier)


def _float_or_nan(value) -> float:
    return math.nan if value is None else float(value)


class OptResult:
    """Everything one policy optimization produced.

    ``trials`` holds every evaluation in submission order across all
    rungs; the *final rung* (the full-length evaluations the strategy
    finished on) is what the optimum and the frontier are derived
    from.  :attr:`columns` is the frozen columnar trials table;
    :attr:`wall_s` carries the nondeterministic wall clock and is
    deliberately excluded from :meth:`as_dict` so golden fixtures stay
    byte-stable.
    """

    def __init__(
        self,
        space: ParamSpace,
        strategy: str,
        trials: Sequence[Trial],
        full_steps: int,
        evaluations: int,
        full_length_evaluations: int,
        duplicate_trials: int = 0,
        wall_s: float = 0.0,
        quarantined: Sequence[Dict[str, object]] = (),
    ):
        if not trials:
            raise ValueError("cannot build an OptResult from zero trials")
        self.space = space
        self.strategy = strategy
        self.trials: Tuple[Trial, ...] = tuple(trials)
        self.full_steps = int(full_steps)
        self.evaluations = int(evaluations)
        self.full_length_evaluations = int(full_length_evaluations)
        self.duplicate_trials = int(duplicate_trials)
        self.wall_s = float(wall_s)
        self.quarantined: Tuple[Dict[str, object], ...] = tuple(quarantined)
        final_rung = max(trial.rung for trial in self.trials)
        self.final_indices: Tuple[int, ...] = tuple(
            index
            for index, trial in enumerate(self.trials)
            if trial.rung == final_rung
        )
        for index in self.final_indices:
            if self.trials[index].steps != self.full_steps:
                raise ValueError(
                    f"final-rung trial {index} ran {self.trials[index].steps} "
                    f"steps, not the full {self.full_steps}"
                )
        self._columns: Optional[Dict[str, np.ndarray]] = None

    def __len__(self) -> int:
        return len(self.trials)

    # -- the optimum -------------------------------------------------------------------

    @property
    def best_index(self) -> int:
        """Index (into :attr:`trials`) of the winning full-length trial."""
        return min(
            self.final_indices,
            key=lambda index: trial_rank_key(self.trials[index]),
        )

    @property
    def best_trial(self) -> Trial:
        """The winning full-length trial."""
        return self.trials[self.best_index]

    @property
    def best_config(self) -> PolicyConfig:
        """The winning config."""
        return self.best_trial.config

    # -- the frontier ------------------------------------------------------------------

    @property
    def frontier_metric(self) -> str:
        """Energy axis of the frontier.

        ``energy_per_request_j`` when every full-length trial reports
        one (request-sized workloads); ``total_energy_j`` otherwise, so
        virtualized classes without a request size still get a
        frontier.
        """
        if all(
            self.trials[index].summary["energy_per_request_j"] is not None
            for index in self.final_indices
        ):
            return "energy_per_request_j"
        return "total_energy_j"

    @property
    def frontier_indices(self) -> Tuple[int, ...]:
        """Trial indices of the energy-vs-QoS frontier (full length)."""
        metric = self.frontier_metric
        local = pareto_frontier(
            [
                int(self.trials[index].summary["violation_count"])
                for index in self.final_indices
            ],
            [
                float(self.trials[index].summary[metric])
                for index in self.final_indices
            ],
        )
        return tuple(self.final_indices[position] for position in local)

    def frontier(self) -> List[Dict[str, object]]:
        """The non-dominated (QoS, energy) points as JSON-able rows."""
        metric = self.frontier_metric
        rows = []
        for index in self.frontier_indices:
            trial = self.trials[index]
            rows.append(
                {
                    "config": trial.config.as_dict(),
                    "violation_count": int(trial.summary["violation_count"]),
                    metric: float(trial.summary[metric]),
                    "cost_per_qps_year": trial.economics["cost_per_qps_year"],
                    "feasible": trial.feasible,
                }
            )
        return rows

    # -- columnar access ---------------------------------------------------------------

    @property
    def columns(self) -> Dict[str, np.ndarray]:
        """The trials as a frozen columnar table (one row per trial)."""
        if self._columns is None:
            trials = self.trials
            columns: Dict[str, np.ndarray] = {
                "rung": np.array([t.rung for t in trials], dtype=np.int64),
                "steps": np.array([t.steps for t in trials], dtype=np.int64),
                "governor": np.array(
                    [t.config.governor for t in trials], dtype=object
                ),
                "routing": np.array(
                    [t.config.routing for t in trials], dtype=object
                ),
                "fleet_size": np.array(
                    [t.config.fleet_size for t in trials], dtype=np.int64
                ),
                "fill_fraction": np.array(
                    [_float_or_nan(t.config.fill_fraction) for t in trials]
                ),
                "band_low": np.array(
                    [
                        math.nan if t.config.band is None else t.config.band[0]
                        for t in trials
                    ]
                ),
                "band_high": np.array(
                    [
                        math.nan if t.config.band is None else t.config.band[1]
                        for t in trials
                    ]
                ),
                "wake_steps": np.array(
                    [_float_or_nan(t.config.wake_steps) for t in trials]
                ),
                "degradation_bound": np.array(
                    [
                        _float_or_nan(t.config.degradation_bound)
                        for t in trials
                    ]
                ),
                "total_energy_j": np.array(
                    [t.summary["total_energy_j"] for t in trials]
                ),
                "energy_per_request_j": np.array(
                    [
                        _float_or_nan(t.summary["energy_per_request_j"])
                        for t in trials
                    ]
                ),
                "mean_qps": np.array(
                    [_float_or_nan(t.summary["mean_qps"]) for t in trials]
                ),
                "violation_count": np.array(
                    [t.summary["violation_count"] for t in trials],
                    dtype=np.int64,
                ),
                "queue_violation_count": np.array(
                    [t.summary["queue_violation_count"] for t in trials],
                    dtype=np.int64,
                ),
                "cost_per_qps_year": np.array(
                    [
                        _float_or_nan(t.economics["cost_per_qps_year"])
                        for t in trials
                    ]
                ),
                "objective": np.array([t.objective for t in trials]),
                "feasible": np.array(
                    [t.feasible for t in trials], dtype=bool
                ),
            }
            for array in columns.values():
                array.setflags(write=False)
            self._columns = columns
        return self._columns

    def trial_dicts(self) -> List[Dict[str, object]]:
        """One JSON-able row per trial (CLI trials table rendering)."""
        rows = []
        best = self.best_index
        for index, trial in enumerate(self.trials):
            rows.append(
                {
                    "trial": index,
                    "rung": trial.rung,
                    "steps": trial.steps,
                    "label": trial.config.label(),
                    **trial.config.as_dict(),
                    "violation_count": int(trial.summary["violation_count"]),
                    "queue_violation_count": int(
                        trial.summary["queue_violation_count"]
                    ),
                    "total_energy_j": float(trial.summary["total_energy_j"]),
                    "energy_per_request_j": trial.summary[
                        "energy_per_request_j"
                    ],
                    "mean_qps": trial.summary["mean_qps"],
                    "cost_per_qps_year": trial.economics["cost_per_qps_year"],
                    "feasible": trial.feasible,
                    "best": index == best,
                }
            )
        return rows

    # -- serialisation -----------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """The golden-pinnable scalars: optimum, frontier, counters.

        Deterministic and byte-stable across runs -- wall-clock timing
        is deliberately excluded (it rides along separately via
        :attr:`wall_s`).
        """
        best = self.best_trial
        out: Dict[str, object] = {
            "strategy": self.strategy,
            "space": self.space.summary(),
            "full_steps": self.full_steps,
            "trial_count": len(self.trials),
            "config_count": len(self.final_indices),
            "evaluations": self.evaluations,
            "full_length_evaluations": self.full_length_evaluations,
            "duplicate_trials": self.duplicate_trials,
            "best": {
                "config": best.config.as_dict(),
                "label": best.config.label(),
                "feasible": best.feasible,
                "objective_cost_per_qps_year": (
                    None if not math.isfinite(best.objective) else best.objective
                ),
                "cost_per_qps_year": best.economics["cost_per_qps_year"],
                "cost_per_million_requests": best.economics[
                    "cost_per_million_requests"
                ],
                "total_energy_j": float(best.summary["total_energy_j"]),
                "energy_per_request_j": best.summary["energy_per_request_j"],
                "mean_qps": best.summary["mean_qps"],
                "violation_count": int(best.summary["violation_count"]),
                "queue_violation_count": int(
                    best.summary["queue_violation_count"]
                ),
            },
            "frontier_metric": self.frontier_metric,
            "frontier": self.frontier(),
        }
        # Only quarantine-mode runs with actual losses carry the key,
        # so strict-mode golden fixtures stay byte-identical.
        if self.quarantined:
            out["quarantined"] = [dict(record) for record in self.quarantined]
        return out
