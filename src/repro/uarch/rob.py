"""Instruction-window (ROB) based memory-level-parallelism model.

The cores are 3-way out-of-order with a 128-entry instruction window
(Section IV).  How much of a long-latency LLC miss the core can hide
depends on how many independent misses fit in the window: with misses
every ``instructions_per_miss`` instructions, at most
``window / instructions_per_miss`` misses can overlap, bounded by the
workload's intrinsic memory-level parallelism (pointer chasing in
Data Serving exposes little; streaming in Media Streaming exposes a
lot).

The exposed (non-overlapped) portion of each miss is what enters the
interval model's memory CPI component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ReorderBufferModel:
    """Memory-level parallelism achievable by the instruction window."""

    window_size: int = 128
    issue_width: int = 3

    def __post_init__(self) -> None:
        check_positive("window_size", self.window_size)
        check_positive("issue_width", self.issue_width)

    def window_limited_mlp(self, misses_per_kilo_instruction: float) -> float:
        """MLP ceiling imposed by the window for a given miss density."""
        if misses_per_kilo_instruction <= 0.0:
            return float(self.window_size)
        instructions_per_miss = 1000.0 / misses_per_kilo_instruction
        return max(1.0, self.window_size / instructions_per_miss)

    def effective_mlp(
        self,
        misses_per_kilo_instruction: float,
        workload_mlp: float,
    ) -> float:
        """Achievable MLP: min of the workload's parallelism and the window limit."""
        check_positive("workload_mlp", workload_mlp)
        return max(
            1.0, min(workload_mlp, self.window_limited_mlp(misses_per_kilo_instruction))
        )

    def exposed_miss_latency(
        self,
        miss_latency_cycles: float,
        misses_per_kilo_instruction: float,
        workload_mlp: float,
    ) -> float:
        """Average non-overlapped latency per miss, in core cycles."""
        if miss_latency_cycles <= 0.0:
            return 0.0
        mlp = self.effective_mlp(misses_per_kilo_instruction, workload_mlp)
        return miss_latency_cycles / mlp
