"""MESI-style coherence directory for one cluster.

Each cluster's LLC keeps its four cores' L1 caches coherent over the
crossbar.  The directory tracks, per LLC line, which cores may hold the
line and whether one of them holds it modified, and counts the
coherence actions (invalidations, cache-to-cache transfers, writebacks
forced by downgrades).  The cluster simulator uses these counts to size
crossbar traffic; the protocol detail is deliberately minimal -- enough
to capture sharing behaviour, not a verification-grade protocol model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Set


class LineState(enum.Enum):
    """Directory-visible state of a line."""

    INVALID = "invalid"
    SHARED = "shared"
    MODIFIED = "modified"


@dataclass
class CoherenceStats:
    """Coherence action counters."""

    invalidations: int = 0
    cache_to_cache_transfers: int = 0
    downgrade_writebacks: int = 0
    read_requests: int = 0
    write_requests: int = 0

    @property
    def coherence_messages(self) -> int:
        """Total coherence messages exchanged over the crossbar."""
        return (
            self.invalidations
            + self.cache_to_cache_transfers
            + self.downgrade_writebacks
        )


@dataclass
class _DirectoryEntry:
    state: LineState = LineState.INVALID
    sharers: Set[int] = field(default_factory=set)
    owner: int | None = None


class CoherenceDirectory:
    """Tracks sharers/owner of LLC lines within one cluster."""

    def __init__(self, core_count: int = 4):
        if core_count <= 0:
            raise ValueError(f"core_count must be positive, got {core_count}")
        self.core_count = core_count
        self.stats = CoherenceStats()
        self._entries: Dict[int, _DirectoryEntry] = {}

    def _entry(self, line_address: int) -> _DirectoryEntry:
        return self._entries.setdefault(line_address, _DirectoryEntry())

    def _check_core(self, core_id: int) -> None:
        if not (0 <= core_id < self.core_count):
            raise ValueError(
                f"core_id {core_id} outside [0, {self.core_count})"
            )

    def read(self, core_id: int, line_address: int) -> bool:
        """Record a read by ``core_id``.

        Returns True when the data came from another core's cache
        (cache-to-cache transfer), False when it came from the LLC or
        memory.
        """
        self._check_core(core_id)
        self.stats.read_requests += 1
        entry = self._entry(line_address)
        transferred = False
        if entry.state is LineState.MODIFIED and entry.owner != core_id:
            # Owner must write back and downgrade to shared.
            self.stats.downgrade_writebacks += 1
            self.stats.cache_to_cache_transfers += 1
            transferred = True
            entry.sharers.add(entry.owner)
            entry.owner = None
            entry.state = LineState.SHARED
        entry.sharers.add(core_id)
        if entry.state is LineState.INVALID:
            entry.state = LineState.SHARED
        return transferred

    def write(self, core_id: int, line_address: int) -> int:
        """Record a write by ``core_id``; returns invalidations sent."""
        self._check_core(core_id)
        self.stats.write_requests += 1
        entry = self._entry(line_address)
        invalidations = 0
        if entry.state is LineState.MODIFIED and entry.owner != core_id:
            self.stats.cache_to_cache_transfers += 1
            invalidations += 1
        for sharer in list(entry.sharers):
            if sharer != core_id:
                invalidations += 1
        if invalidations:
            self.stats.invalidations += invalidations
        entry.sharers = {core_id}
        entry.owner = core_id
        entry.state = LineState.MODIFIED
        return invalidations

    def evict(self, line_address: int) -> None:
        """Drop the directory entry when the LLC evicts the line."""
        self._entries.pop(line_address, None)

    def sharers(self, line_address: int) -> Set[int]:
        """Current sharer set of a line (empty when untracked)."""
        entry = self._entries.get(line_address)
        if entry is None:
            return set()
        result = set(entry.sharers)
        if entry.owner is not None:
            result.add(entry.owner)
        return result

    def state(self, line_address: int) -> LineState:
        """Current directory state of a line."""
        entry = self._entries.get(line_address)
        return entry.state if entry is not None else LineState.INVALID
