"""Branch predictor accuracy and misprediction-penalty model.

The interval core model charges a CPI component for branch
mispredictions:

    cpi_branch = branch_fraction * (1 - accuracy) * penalty / width_factor

where the penalty is the pipeline refill depth of the 3-way OoO
Cortex-A57-class core.  The paper's simulations launch from checkpoints
with warmed branch predictors, so we model the steady-state accuracy of
a warmed predictor as a per-workload characteristic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class BranchPredictorModel:
    """Warmed branch predictor of an A57-class front end.

    Parameters
    ----------
    base_accuracy:
        Prediction accuracy on a well-behaved control-flow profile.
    misprediction_penalty_cycles:
        Pipeline refill penalty in core cycles.
    """

    base_accuracy: float = 0.95
    misprediction_penalty_cycles: float = 14.0

    def __post_init__(self) -> None:
        check_fraction("base_accuracy", self.base_accuracy)
        check_positive(
            "misprediction_penalty_cycles", self.misprediction_penalty_cycles
        )

    def accuracy(self, workload_branch_predictability: float = 1.0) -> float:
        """Effective accuracy for a workload.

        ``workload_branch_predictability`` of 1.0 keeps the base
        accuracy; lower values (hard-to-predict server code) scale the
        *miss* rate up proportionally.
        """
        check_fraction(
            "workload_branch_predictability", workload_branch_predictability
        )
        miss_rate = (1.0 - self.base_accuracy) * (
            2.0 - workload_branch_predictability
        )
        return max(0.0, 1.0 - miss_rate)

    def cpi_contribution(
        self,
        branch_fraction: float,
        workload_branch_predictability: float = 1.0,
    ) -> float:
        """CPI added by branch mispredictions for the given mix."""
        check_fraction("branch_fraction", branch_fraction)
        miss_rate = 1.0 - self.accuracy(workload_branch_predictability)
        return branch_fraction * miss_rate * self.misprediction_penalty_cycles
