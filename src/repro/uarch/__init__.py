"""Microarchitecture models (Flexus timing-model substitute).

The paper's performance numbers come from Flexus timing models of
out-of-order cores, caches, on-chip protocol controllers, interconnects
and DRAM.  This package provides the equivalent building blocks:

* :mod:`repro.uarch.cache` -- set-associative write-back caches with LRU
  replacement and full statistics.
* :mod:`repro.uarch.hierarchy` -- the per-core L1I/L1D and per-cluster
  shared LLC arrangement of the paper's cluster (32KB 2-way L1s, 4MB
  16-way LLC).
* :mod:`repro.uarch.coherence` -- a MESI-style directory tracking sharers
  of LLC lines inside one cluster.
* :mod:`repro.uarch.interconnect` -- the cluster crossbar latency /
  contention model.
* :mod:`repro.uarch.branch` -- branch predictor accuracy / penalty model.
* :mod:`repro.uarch.rob` -- instruction-window (ROB) based memory-level
  parallelism model.
* :mod:`repro.uarch.core_model` -- the interval model of a 3-way OoO
  Cortex-A57-class core producing UIPC as a function of core frequency
  and memory-system latencies.
"""

from repro.uarch.cache import CacheConfig, CacheStats, SetAssociativeCache
from repro.uarch.hierarchy import ClusterCacheHierarchy, HierarchyConfig, AccessResult
from repro.uarch.coherence import CoherenceDirectory, CoherenceStats, LineState
from repro.uarch.interconnect import CrossbarModel
from repro.uarch.branch import BranchPredictorModel
from repro.uarch.rob import ReorderBufferModel
from repro.uarch.core_model import (
    CoreConfig,
    CpiStack,
    IntervalCoreModel,
    UncoreLatencies,
)

__all__ = [
    "CacheConfig",
    "CacheStats",
    "SetAssociativeCache",
    "ClusterCacheHierarchy",
    "HierarchyConfig",
    "AccessResult",
    "CoherenceDirectory",
    "CoherenceStats",
    "LineState",
    "CrossbarModel",
    "BranchPredictorModel",
    "ReorderBufferModel",
    "CoreConfig",
    "CpiStack",
    "IntervalCoreModel",
    "UncoreLatencies",
]
