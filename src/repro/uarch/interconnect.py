"""Cluster crossbar latency and contention model.

Cores and LLC banks inside a cluster are connected by a cache-coherent
crossbar (Section II-B).  The crossbar sits on the fixed uncore clock
domain, so its latency is constant in *nanoseconds* regardless of the
core DVFS point; the core model converts it to core cycles.

Contention is modelled with an M/M/1-style waiting-time term per LLC
bank port, which is small at the paper's per-cluster traffic levels but
becomes visible when consolidation increases per-cluster load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_non_negative, check_positive


@dataclass(frozen=True)
class CrossbarModel:
    """Crossbar traversal latency with utilisation-dependent queueing.

    Parameters
    ----------
    base_latency_ns:
        Unloaded one-way traversal latency (request or response).
    service_time_ns:
        Port occupancy per transfer (64B line over the crossbar).
    ports:
        Number of LLC bank ports (4 banks in the paper's cluster).
    """

    base_latency_ns: float = 2.0
    service_time_ns: float = 1.0
    ports: int = 4

    def __post_init__(self) -> None:
        check_positive("base_latency_ns", self.base_latency_ns)
        check_positive("service_time_ns", self.service_time_ns)
        check_positive("ports", self.ports)

    def port_utilization(self, transfers_per_second: float) -> float:
        """Average utilisation of one port for the given cluster traffic."""
        check_non_negative("transfers_per_second", transfers_per_second)
        per_port = transfers_per_second / self.ports
        return min(0.99, per_port * self.service_time_ns * 1e-9)

    def queueing_delay_ns(self, transfers_per_second: float) -> float:
        """M/M/1 waiting time at one port, nanoseconds."""
        rho = self.port_utilization(transfers_per_second)
        if rho >= 0.99:
            rho = 0.99
        return self.service_time_ns * rho / (1.0 - rho)

    def round_trip_latency_ns(self, transfers_per_second: float = 0.0) -> float:
        """Request + response traversal latency including queueing, ns."""
        one_way = self.base_latency_ns + self.queueing_delay_ns(transfers_per_second)
        return 2.0 * one_way + self.service_time_ns

    def saturated(self, transfers_per_second: float, threshold: float = 0.9) -> bool:
        """True when port utilisation exceeds ``threshold``."""
        check_fraction("threshold", threshold)
        return self.port_utilization(transfers_per_second) >= threshold
