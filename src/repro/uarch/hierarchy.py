"""Cluster cache hierarchy: per-core L1s and a shared LLC.

The paper's cluster couples four Cortex-A57 cores, each with 32KB 2-way
L1 instruction and data caches, to a unified 4MB 16-way LLC with four
banks over a cache-coherent crossbar (Section IV).  This module wires
the functional cache models together with the coherence directory and
reports, per access, which level served it and whether memory traffic
(fill and/or dirty writeback) was generated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.uarch.cache import CacheConfig, SetAssociativeCache
from repro.uarch.coherence import CoherenceDirectory
from repro.utils.units import KB, MB
from repro.utils.validation import check_positive


class ServicedBy(enum.Enum):
    """Cache level that satisfied an access."""

    L1 = "l1"
    LLC = "llc"
    MEMORY = "memory"


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory reference through the hierarchy."""

    serviced_by: ServicedBy
    memory_reads: int
    memory_writebacks: int
    coherence_invalidations: int = 0

    @property
    def is_llc_miss(self) -> bool:
        """True when the access had to go to DRAM."""
        return self.serviced_by is ServicedBy.MEMORY


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the paper's cluster hierarchy."""

    core_count: int = 4
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(capacity_bytes=32 * KB, associativity=2)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(capacity_bytes=32 * KB, associativity=2)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            capacity_bytes=4 * MB, associativity=16, banks=4
        )
    )

    def __post_init__(self) -> None:
        check_positive("core_count", self.core_count)


class ClusterCacheHierarchy:
    """Functional model of one cluster's caches and coherence."""

    def __init__(self, config: HierarchyConfig | None = None):
        self.config = config or HierarchyConfig()
        self.l1i: List[SetAssociativeCache] = [
            SetAssociativeCache(self.config.l1i, name=f"l1i-{core}")
            for core in range(self.config.core_count)
        ]
        self.l1d: List[SetAssociativeCache] = [
            SetAssociativeCache(self.config.l1d, name=f"l1d-{core}")
            for core in range(self.config.core_count)
        ]
        self.llc = SetAssociativeCache(self.config.llc, name="llc")
        self.directory = CoherenceDirectory(core_count=self.config.core_count)

    # -- access path ---------------------------------------------------------------

    def access(
        self,
        core_id: int,
        address: int,
        is_write: bool = False,
        is_instruction: bool = False,
    ) -> AccessResult:
        """Run one reference from ``core_id`` through L1 -> LLC -> memory."""
        if not (0 <= core_id < self.config.core_count):
            raise ValueError(
                f"core_id {core_id} outside [0, {self.config.core_count})"
            )
        l1 = self.l1i[core_id] if is_instruction else self.l1d[core_id]
        line_address = self.llc.line_address(address)

        invalidations = 0
        if is_write and not is_instruction:
            invalidations = self.directory.write(core_id, line_address)
            if invalidations:
                for other_core, cache in enumerate(self.l1d):
                    if other_core != core_id:
                        cache.invalidate(address)
        elif not is_instruction:
            self.directory.read(core_id, line_address)

        l1_outcome = l1.access(address, is_write=is_write)
        if l1_outcome.hit:
            return AccessResult(
                serviced_by=ServicedBy.L1,
                memory_reads=0,
                memory_writebacks=0,
                coherence_invalidations=invalidations,
            )

        memory_reads = 0
        memory_writebacks = 0

        # L1 victim writes back into the LLC (stays on chip).
        if l1_outcome.evicted_dirty_address is not None:
            llc_writeback = self.llc.access(
                l1_outcome.evicted_dirty_address, is_write=True
            )
            if llc_writeback.evicted_dirty_address is not None:
                memory_writebacks += 1
                self.directory.evict(
                    self.llc.line_address(llc_writeback.evicted_dirty_address)
                )

        llc_outcome = self.llc.access(address, is_write=False)
        if llc_outcome.evicted_dirty_address is not None:
            memory_writebacks += 1
            self.directory.evict(
                self.llc.line_address(llc_outcome.evicted_dirty_address)
            )

        if llc_outcome.hit:
            serviced_by = ServicedBy.LLC
        else:
            serviced_by = ServicedBy.MEMORY
            memory_reads += 1

        return AccessResult(
            serviced_by=serviced_by,
            memory_reads=memory_reads,
            memory_writebacks=memory_writebacks,
            coherence_invalidations=invalidations,
        )

    # -- statistics ------------------------------------------------------------------

    def l1d_misses(self) -> int:
        """Total data-L1 misses across the cluster's cores."""
        return sum(cache.stats.misses for cache in self.l1d)

    def llc_misses(self) -> int:
        """Total LLC misses (off-chip reads)."""
        return self.llc.stats.misses

    def reset_stats(self) -> None:
        """Zero all cache statistics (content and directory preserved)."""
        for cache in self.l1i + self.l1d + [self.llc]:
            cache.reset_stats()
