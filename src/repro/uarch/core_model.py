"""Interval (CPI-stack) model of a 3-way out-of-order Cortex-A57 core.

The study needs one number per (workload, core frequency) pair: the
user-instructions-per-cycle (UIPC) the core sustains, from which UIPS,
request latency scaling and efficiency are derived.  An interval model
captures the mechanism that matters for the NTC trade-off: memory and
uncore latencies are fixed in *nanoseconds* (the LLC and DRAM do not
slow down with the cores), so their cost in *core cycles* shrinks as the
core frequency drops, and memory-bound workloads lose much less
throughput than the frequency reduction alone would suggest.

The CPI stack is::

    cpi_total = cpi_base                      (issue/dependency limited)
              + cpi_branch                    (mispredictions)
              + cpi_llc     (L1 misses that hit the LLC, partly hidden)
              + cpi_memory  (LLC misses to DRAM, partly hidden by MLP)

with the hiding factors provided by the instruction-window model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.branch import BranchPredictorModel
from repro.uarch.interconnect import CrossbarModel
from repro.uarch.rob import ReorderBufferModel
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of the modelled core."""

    issue_width: int = 3
    window_size: int = 128
    l1_hit_cycles: float = 2.0
    frequency_nominal_hz: float = 2.0e9

    def __post_init__(self) -> None:
        check_positive("issue_width", self.issue_width)
        check_positive("window_size", self.window_size)
        check_positive("l1_hit_cycles", self.l1_hit_cycles)
        check_positive("frequency_nominal_hz", self.frequency_nominal_hz)


@dataclass(frozen=True)
class UncoreLatencies:
    """Latencies of the fixed-clock uncore and memory, in nanoseconds."""

    llc_hit_ns: float = 10.0
    memory_ns: float = 70.0

    def __post_init__(self) -> None:
        check_positive("llc_hit_ns", self.llc_hit_ns)
        check_positive("memory_ns", self.memory_ns)

    def with_memory_latency(self, memory_ns: float) -> "UncoreLatencies":
        """Copy with a different DRAM latency (fed by the DRAM simulator)."""
        return UncoreLatencies(llc_hit_ns=self.llc_hit_ns, memory_ns=memory_ns)


@dataclass(frozen=True)
class CpiStack:
    """Per-component cycles-per-instruction breakdown."""

    base: float
    branch: float
    llc: float
    memory: float

    @property
    def total(self) -> float:
        """Total CPI."""
        return self.base + self.branch + self.llc + self.memory

    @property
    def uipc(self) -> float:
        """User instructions per cycle."""
        return 1.0 / self.total

    @property
    def memory_bound_fraction(self) -> float:
        """Fraction of cycles spent waiting on the LLC and DRAM."""
        return (self.llc + self.memory) / self.total


@dataclass(frozen=True)
class IntervalCoreModel:
    """Interval performance model of one core.

    Parameters
    ----------
    config:
        Core microarchitecture parameters.
    branch_predictor:
        Misprediction penalty model.
    crossbar:
        Cluster crossbar model; its round-trip latency is added to the
        LLC hit latency (both live on the uncore clock domain).
    """

    config: CoreConfig = field(default_factory=CoreConfig)
    branch_predictor: BranchPredictorModel = field(default_factory=BranchPredictorModel)
    crossbar: CrossbarModel = field(default_factory=CrossbarModel)

    def _reorder_buffer(self) -> ReorderBufferModel:
        return ReorderBufferModel(
            window_size=self.config.window_size, issue_width=self.config.issue_width
        )

    def cpi_stack(
        self,
        frequency_hz: float,
        base_cpi: float,
        branch_fraction: float,
        branch_predictability: float,
        l1_mpki: float,
        llc_mpki: float,
        memory_level_parallelism: float,
        uncore: UncoreLatencies | None = None,
        cluster_llc_transfers_per_second: float = 0.0,
    ) -> CpiStack:
        """Compute the CPI stack at ``frequency_hz`` for one workload.

        Parameters
        ----------
        frequency_hz:
            Core clock frequency.
        base_cpi:
            Cycles per instruction with a perfect memory system beyond
            the L1 (dependencies, issue width, functional units).
        branch_fraction / branch_predictability:
            Control-flow characteristics of the workload.
        l1_mpki:
            L1 data+instruction misses per kilo-instruction (total).
        llc_mpki:
            LLC misses per kilo-instruction (off-chip accesses); must
            not exceed ``l1_mpki``.
        memory_level_parallelism:
            Intrinsic overlap the workload's miss stream allows.
        uncore:
            Fixed-domain latencies; defaults to the paper configuration.
        cluster_llc_transfers_per_second:
            Cluster-level LLC traffic used for crossbar contention.
        """
        check_positive("frequency_hz", frequency_hz)
        check_positive("base_cpi", base_cpi)
        check_non_negative("l1_mpki", l1_mpki)
        check_non_negative("llc_mpki", llc_mpki)
        if llc_mpki > l1_mpki + 1e-9:
            raise ValueError("llc_mpki cannot exceed l1_mpki")
        latencies = uncore or UncoreLatencies()

        cycles_per_ns = frequency_hz / 1.0e9
        llc_round_trip_ns = latencies.llc_hit_ns + self.crossbar.round_trip_latency_ns(
            cluster_llc_transfers_per_second
        )
        llc_hit_cycles = llc_round_trip_ns * cycles_per_ns
        memory_cycles = (latencies.memory_ns + llc_round_trip_ns) * cycles_per_ns

        reorder_buffer = self._reorder_buffer()
        llc_hits_per_ki = max(0.0, l1_mpki - llc_mpki)

        cpi_branch = self.branch_predictor.cpi_contribution(
            branch_fraction, branch_predictability
        )
        # L1 misses that hit in the LLC are short enough that the window
        # hides them well; treat their parallelism as the workload MLP
        # relaxed by the issue window.
        exposed_llc = reorder_buffer.exposed_miss_latency(
            llc_hit_cycles, l1_mpki, max(memory_level_parallelism, 2.0)
        )
        exposed_memory = reorder_buffer.exposed_miss_latency(
            memory_cycles, llc_mpki, memory_level_parallelism
        )

        return CpiStack(
            base=base_cpi,
            branch=cpi_branch,
            llc=llc_hits_per_ki / 1000.0 * exposed_llc,
            memory=llc_mpki / 1000.0 * exposed_memory,
        )

    def uipc(self, frequency_hz: float, **characteristics) -> float:
        """User instructions per cycle at ``frequency_hz`` (see cpi_stack)."""
        return self.cpi_stack(frequency_hz, **characteristics).uipc

    def uips(self, frequency_hz: float, **characteristics) -> float:
        """User instructions per second of one core at ``frequency_hz``."""
        return self.uipc(frequency_hz, **characteristics) * frequency_hz
