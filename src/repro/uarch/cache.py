"""Set-associative cache model with LRU replacement.

Used for the per-core L1 instruction/data caches (32KB, 2-way) and the
per-cluster LLC (4MB, 16-way, 4 banks) of the paper's cluster
organisation.  The model is functional (hit/miss/writeback behaviour and
statistics); access latencies are applied by the core model and the
cluster simulator, because L1s run on the core clock while the LLC sits
on the fixed uncore clock domain.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.utils.units import KB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    capacity_bytes: int = 32 * KB
    associativity: int = 2
    line_bytes: int = 64
    banks: int = 1
    write_back: bool = True
    write_allocate: bool = True

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("associativity", self.associativity)
        check_positive("line_bytes", self.line_bytes)
        check_positive("banks", self.banks)
        if self.capacity_bytes % (self.associativity * self.line_bytes):
            raise ValueError(
                "capacity must be a multiple of associativity * line size"
            )
        if self.sets < 1:
            raise ValueError("cache must have at least one set")

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.capacity_bytes // (self.associativity * self.line_bytes)

    @property
    def lines(self) -> int:
        """Total number of lines."""
        return self.capacity_bytes // self.line_bytes


@dataclass
class CacheStats:
    """Hit/miss/writeback counters of one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that miss."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction given an instruction count."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions


@dataclass
class _Line:
    """Cache-line metadata."""

    tag: int
    dirty: bool = False


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache with LRU."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # One ordered dict per set: maps tag -> line, ordered by recency
        # (last item = most recently used).
        self._sets: Dict[int, OrderedDict] = {}

    # -- address helpers ---------------------------------------------------------

    def _index_and_tag(self, address: int) -> tuple:
        line_address = address // self.config.line_bytes
        index = line_address % self.config.sets
        tag = line_address // self.config.sets
        return index, tag

    def line_address(self, address: int) -> int:
        """Address of the cache line containing ``address``."""
        return (address // self.config.line_bytes) * self.config.line_bytes

    def _reconstruct_address(self, index: int, tag: int) -> int:
        line_address = tag * self.config.sets + index
        return line_address * self.config.line_bytes

    # -- access paths --------------------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> "AccessOutcome":
        """Access ``address``; returns hit/miss and any dirty eviction."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        self.stats.accesses += 1
        index, tag = self._index_and_tag(address)
        cache_set = self._sets.setdefault(index, OrderedDict())

        if tag in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(tag)
            if is_write:
                if self.config.write_back:
                    cache_set[tag].dirty = True
                else:
                    self.stats.writebacks += 1
            return AccessOutcome(hit=True, evicted_dirty_address=None)

        self.stats.misses += 1
        if is_write and not self.config.write_allocate:
            self.stats.writebacks += 1
            return AccessOutcome(hit=False, evicted_dirty_address=None)

        evicted_dirty: Optional[int] = None
        if len(cache_set) >= self.config.associativity:
            victim_tag, victim_line = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_line.dirty:
                self.stats.writebacks += 1
                evicted_dirty = self._reconstruct_address(index, victim_tag)
        cache_set[tag] = _Line(tag=tag, dirty=is_write and self.config.write_back)
        return AccessOutcome(hit=False, evicted_dirty_address=evicted_dirty)

    def contains(self, address: int) -> bool:
        """True when the line holding ``address`` is resident (no side effects)."""
        index, tag = self._index_and_tag(address)
        return tag in self._sets.get(index, {})

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address``; returns True if it was present."""
        index, tag = self._index_and_tag(address)
        cache_set = self._sets.get(index)
        if cache_set and tag in cache_set:
            del cache_set[tag]
            return True
        return False

    def reset_stats(self) -> None:
        """Zero the statistics counters (content is preserved)."""
        self.stats = CacheStats()

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(cache_set) for cache_set in self._sets.values())


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one cache access."""

    hit: bool
    evicted_dirty_address: Optional[int]

    @property
    def caused_writeback(self) -> bool:
        """True when the access evicted a dirty line."""
        return self.evicted_dirty_address is not None
