"""DRAM energy accounting from controller counters (Table I).

The paper computes memory power by scaling the Table I chip energies to
the number of ranks in the system and the application's bandwidth.
This module performs the same computation from the counters produced by
the timing simulator, so the detailed and analytical paths use the same
energy coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.system import MemorySystem
from repro.power.dram_power import (
    DDR4_4GBIT_X8,
    DramChipEnergyProfile,
    MemoryOrganization,
)
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DramEnergyReport:
    """Energy breakdown of the memory system over an interval."""

    interval_seconds: float
    background_energy: float
    read_energy: float
    write_energy: float

    @property
    def dynamic_energy(self) -> float:
        """Read plus write energy in joules."""
        return self.read_energy + self.write_energy

    @property
    def total_energy(self) -> float:
        """Total energy in joules."""
        return self.background_energy + self.dynamic_energy

    @property
    def average_power(self) -> float:
        """Average power in watts over the interval."""
        if self.interval_seconds <= 0.0:
            return 0.0
        return self.total_energy / self.interval_seconds


@dataclass(frozen=True)
class DramEnergyAccountant:
    """Converts memory-system counters into energy using a chip profile."""

    chip: DramChipEnergyProfile = DDR4_4GBIT_X8
    organization: MemoryOrganization = MemoryOrganization()

    def report_from_counters(
        self,
        interval_seconds: float,
        bytes_read: int,
        bytes_written: int,
    ) -> DramEnergyReport:
        """Energy report from raw byte counters over ``interval_seconds``."""
        check_positive("interval_seconds", interval_seconds)
        if bytes_read < 0 or bytes_written < 0:
            raise ValueError("byte counters must be non-negative")
        background = (
            self.organization.total_chips
            * self.chip.background_power
            * interval_seconds
        )
        return DramEnergyReport(
            interval_seconds=interval_seconds,
            background_energy=background,
            read_energy=bytes_read * self.chip.read_energy_per_byte,
            write_energy=bytes_written * self.chip.write_energy_per_byte,
        )

    def report(self, system: MemorySystem, interval_seconds: float) -> DramEnergyReport:
        """Energy report for a simulated :class:`MemorySystem` interval."""
        stats = system.stats()
        return self.report_from_counters(
            interval_seconds=interval_seconds,
            bytes_read=stats.bytes_read,
            bytes_written=stats.bytes_written,
        )
