"""Multi-channel memory-system facade.

Combines the four per-channel controllers into the 64GB, 4-channel
DDR4-1600 subsystem of the paper's server and exposes:

* a simple ``access`` path used by the cache hierarchy (latency of one
  cache-line fill/writeback),
* a batch ``run`` path used by trace-driven simulation,
* aggregate statistics (bandwidth, latency, row-hit rate) and the
  command/traffic counters consumed by the energy accountant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.dram.address_map import AddressMapping
from repro.dram.commands import MemoryRequest, RequestType
from repro.dram.controller import ChannelController, ControllerStats
from repro.dram.timing import DDR4Timing, DDR4_1600_4GBIT


@dataclass(frozen=True)
class MemorySystemStats:
    """Aggregated statistics over all channels."""

    reads: int
    writes: int
    bytes_read: int
    bytes_written: int
    row_hit_rate: float
    average_read_latency_cycles: float
    refreshes: int

    @property
    def accesses(self) -> int:
        """Total accesses across channels."""
        return self.reads + self.writes


@dataclass
class MemorySystem:
    """The server's DRAM subsystem: several independent DDR4 channels."""

    timing: DDR4Timing = field(default_factory=lambda: DDR4_1600_4GBIT)
    mapping: AddressMapping = field(default_factory=AddressMapping)
    scheduling_window: int = 16

    def __post_init__(self) -> None:
        self._controllers: List[ChannelController] = [
            ChannelController(
                timing=self.timing,
                mapping=self.mapping,
                scheduling_window=self.scheduling_window,
            )
            for _ in range(self.mapping.channels)
        ]

    @property
    def channels(self) -> int:
        """Number of independent channels."""
        return self.mapping.channels

    @property
    def controllers(self) -> List[ChannelController]:
        """Per-channel controllers (exposed for tests and detailed stats)."""
        return self._controllers

    # -- access paths -------------------------------------------------------------

    def access(self, address: int, is_write: bool, cycle: int) -> int:
        """Latency in memory-clock cycles of a single cache-line access."""
        channel = self.mapping.decode(address).channel
        return self._controllers[channel].access_latency(address, is_write, cycle)

    def run(self, requests: Iterable[MemoryRequest]) -> List[MemoryRequest]:
        """Service a batch of requests, splitting them across channels."""
        per_channel: List[List[MemoryRequest]] = [[] for _ in range(self.channels)]
        for request in requests:
            channel = self.mapping.decode(request.address).channel
            per_channel[channel].append(request)
        completed: List[MemoryRequest] = []
        for channel, channel_requests in enumerate(per_channel):
            completed.extend(self._controllers[channel].run(channel_requests))
        return completed

    def read(self, address: int, cycle: int) -> int:
        """Latency of a read (cache-line fill) in memory-clock cycles."""
        return self.access(address, is_write=False, cycle=cycle)

    def write(self, address: int, cycle: int) -> int:
        """Latency of a write (dirty eviction) in memory-clock cycles."""
        return self.access(address, is_write=True, cycle=cycle)

    # -- statistics ------------------------------------------------------------------

    def channel_stats(self) -> List[ControllerStats]:
        """Per-channel statistics."""
        return [controller.stats for controller in self._controllers]

    def stats(self) -> MemorySystemStats:
        """Aggregate statistics across channels."""
        reads = sum(stats.reads for stats in self.channel_stats())
        writes = sum(stats.writes for stats in self.channel_stats())
        bytes_read = sum(stats.bytes_read for stats in self.channel_stats())
        bytes_written = sum(stats.bytes_written for stats in self.channel_stats())
        refreshes = sum(stats.refreshes for stats in self.channel_stats())
        accesses = reads + writes
        if accesses:
            row_hit_rate = (
                sum(stats.row_hits for stats in self.channel_stats()) / accesses
            )
        else:
            row_hit_rate = 0.0
        if reads:
            average_latency = (
                sum(stats.total_read_latency for stats in self.channel_stats()) / reads
            )
        else:
            average_latency = 0.0
        return MemorySystemStats(
            reads=reads,
            writes=writes,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            row_hit_rate=row_hit_rate,
            average_read_latency_cycles=average_latency,
            refreshes=refreshes,
        )

    def average_read_latency_seconds(self) -> float:
        """Average read latency in seconds across all channels."""
        return self.timing.cycles_to_seconds(self.stats().average_read_latency_cycles)

    @staticmethod
    def make_request(address: int, is_write: bool, cycle: int) -> MemoryRequest:
        """Build a :class:`MemoryRequest` (convenience for trace players)."""
        return MemoryRequest(
            address=address,
            request_type=RequestType.WRITE if is_write else RequestType.READ,
            arrival_cycle=cycle,
        )
