"""Per-channel DDR4 memory controller with FR-FCFS scheduling.

The controller models the transaction path the paper's DRAMSim2
configuration exercises:

* per-bank open-row tracking (row hits / misses / conflicts),
* FR-FCFS arbitration (oldest row-hit first, then oldest request),
* shared data-bus occupancy per channel,
* the four-activate window (tFAW) per rank,
* periodic refresh (tREFI / tRFC) that stalls the whole rank.

It is transaction-level rather than cycle-stepped: requests are served
in scheduler order, and the completion cycle of every request is
computed from the bank/bus/refresh constraints.  That keeps Python
runtimes practical while preserving latency and bandwidth behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List

from repro.dram.address_map import AddressMapping, DecodedAddress
from repro.dram.bank import Bank
from repro.dram.commands import MemoryRequest
from repro.dram.timing import DDR4Timing, DDR4_1600_4GBIT


@dataclass
class ControllerStats:
    """Counters accumulated by one channel controller."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    activations: int = 0
    precharges: int = 0
    refreshes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    total_read_latency: int = 0

    @property
    def accesses(self) -> int:
        """Total column accesses served."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row."""
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses

    @property
    def average_read_latency(self) -> float:
        """Average read latency in memory-clock cycles."""
        if self.reads == 0:
            return 0.0
        return self.total_read_latency / self.reads


@dataclass
class ChannelController:
    """FR-FCFS controller for one DDR4 channel.

    Parameters
    ----------
    timing:
        Device timing profile.
    mapping:
        Address interleaving (provides rank/bank topology).
    scheduling_window:
        Maximum number of queued requests inspected when looking for a
        row hit (the FR part of FR-FCFS).
    """

    timing: DDR4Timing = field(default_factory=lambda: DDR4_1600_4GBIT)
    mapping: AddressMapping = field(default_factory=AddressMapping)
    scheduling_window: int = 16
    stats: ControllerStats = field(default_factory=ControllerStats)

    def __post_init__(self) -> None:
        if self.scheduling_window < 1:
            raise ValueError("scheduling_window must be >= 1")
        self._banks: Dict[int, Bank] = {}
        self._activate_history: Dict[int, Deque[int]] = {}
        self._bus_free = 0
        self._next_refresh = self.timing.tREFI

    # -- internal helpers -------------------------------------------------------

    def _bank(self, index: int) -> Bank:
        if index not in self._banks:
            self._banks[index] = Bank(self.timing)
        return self._banks[index]

    def _respect_refresh(self, cycle: int) -> int:
        """Apply any refreshes due before ``cycle``; return adjusted cycle."""
        while cycle >= self._next_refresh:
            refresh_end = self._next_refresh + self.timing.tRFC
            for bank in self._banks.values():
                bank.precharge(self._next_refresh)
                bank.block_until(refresh_end)
            self.stats.refreshes += 1
            self._next_refresh += self.timing.tREFI
            cycle = max(cycle, refresh_end)
        return cycle

    def _respect_faw(self, rank: int, activate_cycle: int) -> int:
        """Delay an ACTIVATE so at most four land in any tFAW window."""
        history = self._activate_history.setdefault(rank, deque(maxlen=4))
        if len(history) == 4:
            earliest_allowed = history[0] + self.timing.tFAW
            activate_cycle = max(activate_cycle, earliest_allowed)
        return activate_cycle

    def _record_activate(self, rank: int, cycle: int) -> None:
        history = self._activate_history.setdefault(rank, deque(maxlen=4))
        history.append(cycle)

    # -- scheduling ----------------------------------------------------------------

    def _pick_next(self, queue: List[MemoryRequest], now: int) -> int:
        """Index of the next request to service (FR-FCFS)."""
        window = queue[: self.scheduling_window]
        for index, request in enumerate(window):
            if request.arrival_cycle > now:
                break
            decoded = self.mapping.decode(request.address)
            bank = self._bank(self.mapping.flat_bank_index(decoded))
            if bank.is_open and bank.open_row == decoded.row:
                return index
        return 0

    def _service(self, request: MemoryRequest, now: int) -> int:
        """Schedule one request; returns its completion cycle."""
        decoded: DecodedAddress = self.mapping.decode(request.address)
        bank_index = self.mapping.flat_bank_index(decoded)
        bank = self._bank(bank_index)
        start = max(now, request.arrival_cycle)
        start = self._respect_refresh(start)

        if bank.is_open and bank.open_row == decoded.row:
            self.stats.row_hits += 1
        elif bank.is_open:
            self.stats.row_conflicts += 1
            bank.precharge(start)
            self.stats.precharges += 1
            activate_cycle = self._respect_faw(decoded.rank, start)
            issued = bank.activate(decoded.row, activate_cycle)
            self._record_activate(decoded.rank, issued)
            self.stats.activations += 1
        else:
            self.stats.row_misses += 1
            activate_cycle = self._respect_faw(decoded.rank, start)
            issued = bank.activate(decoded.row, activate_cycle)
            self._record_activate(decoded.rank, issued)
            self.stats.activations += 1

        issue, data_done = bank.column_access(start, request.is_write)
        # Serialize bursts on the shared channel data bus.
        bus_start = max(issue, self._bus_free)
        if bus_start > issue:
            data_done += bus_start - issue
        self._bus_free = bus_start + self.timing.burst_cycles

        request.completion_cycle = data_done
        if request.is_write:
            self.stats.writes += 1
            self.stats.bytes_written += request.size_bytes
        else:
            self.stats.reads += 1
            self.stats.bytes_read += request.size_bytes
            self.stats.total_read_latency += data_done - request.arrival_cycle
        return data_done

    # -- public API -------------------------------------------------------------------

    def run(self, requests: Iterable[MemoryRequest]) -> List[MemoryRequest]:
        """Service ``requests`` (sorted by arrival) and return them completed."""
        queue: List[MemoryRequest] = sorted(requests, key=lambda r: r.arrival_cycle)
        completed: List[MemoryRequest] = []
        now = 0
        while queue:
            now = max(now, queue[0].arrival_cycle)
            index = self._pick_next(queue, now)
            request = queue.pop(index)
            completion = self._service(request, now)
            now = max(now, min(completion, now + self.timing.burst_cycles))
            completed.append(request)
        return completed

    def access_latency(self, address: int, is_write: bool, cycle: int) -> int:
        """Convenience single-request path: returns the access latency in cycles."""
        from repro.dram.commands import RequestType

        request = MemoryRequest(
            address=address,
            request_type=RequestType.WRITE if is_write else RequestType.READ,
            arrival_cycle=cycle,
        )
        completion = self._service(request, cycle)
        return completion - cycle

    @property
    def busy_until(self) -> int:
        """Cycle at which the channel data bus becomes free."""
        return self._bus_free
