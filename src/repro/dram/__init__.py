"""DDR4 memory-system timing simulator (DRAMSim2 substitute).

The paper integrates DRAMSim2 into Flexus and configures it from the
Micron DDR4 datasheet.  This package provides the equivalent substrate:

* :mod:`repro.dram.timing` -- DDR4-1600 timing parameters (Micron 4Gbit).
* :mod:`repro.dram.commands` -- DRAM command and request vocabulary.
* :mod:`repro.dram.address_map` -- physical-address to channel / rank /
  bank-group / bank / row / column decomposition.
* :mod:`repro.dram.bank` -- per-bank state machine enforcing the timing
  constraints between ACTIVATE / READ / WRITE / PRECHARGE.
* :mod:`repro.dram.controller` -- per-channel FR-FCFS memory controller.
* :mod:`repro.dram.system` -- multi-channel memory system facade.
* :mod:`repro.dram.power_counters` -- converts command/traffic counters
  into energy with the Table I chip profiles.
"""

from repro.dram.timing import DDR4Timing, DDR4_1600_4GBIT
from repro.dram.commands import DramCommand, MemoryRequest, RequestType
from repro.dram.address_map import AddressMapping, DecodedAddress
from repro.dram.bank import Bank, BankState
from repro.dram.controller import ChannelController, ControllerStats
from repro.dram.system import MemorySystem, MemorySystemStats
from repro.dram.power_counters import DramEnergyAccountant, DramEnergyReport

__all__ = [
    "DDR4Timing",
    "DDR4_1600_4GBIT",
    "DramCommand",
    "MemoryRequest",
    "RequestType",
    "AddressMapping",
    "DecodedAddress",
    "Bank",
    "BankState",
    "ChannelController",
    "ControllerStats",
    "MemorySystem",
    "MemorySystemStats",
    "DramEnergyAccountant",
    "DramEnergyReport",
]
