"""Physical-address interleaving for the DDR4 memory system.

The decomposition follows the common row : rank : bank-group : bank :
column : channel : offset order (channel bits lowest above the line
offset), which interleaves consecutive cache lines across channels and
banks -- the configuration DRAMSim2 uses for high-bandwidth scale-out
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


def _bit_width(count: int) -> int:
    """Number of bits needed to index ``count`` entries (count must be a power of two)."""
    if count <= 0 or count & (count - 1):
        raise ValueError(f"count must be a positive power of two, got {count}")
    return count.bit_length() - 1


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address decomposed into DRAM coordinates."""

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class AddressMapping:
    """Address interleaving across channels, ranks, bank groups and banks.

    Parameters
    ----------
    channels, ranks, bank_groups, banks_per_group:
        Topology counts; all must be powers of two.
    line_bytes:
        Cache-line (and minimum access) size in bytes.
    row_bytes:
        Row-buffer size in bytes per rank (column space).
    """

    channels: int = 4
    ranks: int = 4
    bank_groups: int = 4
    banks_per_group: int = 4
    line_bytes: int = 64
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        for name in ("channels", "ranks", "bank_groups", "banks_per_group"):
            check_positive(name, getattr(self, name))
            _bit_width(getattr(self, name))
        check_positive("line_bytes", self.line_bytes)
        check_positive("row_bytes", self.row_bytes)
        if self.row_bytes % self.line_bytes:
            raise ValueError("row_bytes must be a multiple of line_bytes")

    @property
    def columns_per_row(self) -> int:
        """Number of cache-line-sized columns in one row."""
        return self.row_bytes // self.line_bytes

    def decode(self, address: int) -> DecodedAddress:
        """Decompose a physical byte address into DRAM coordinates."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        line = address // self.line_bytes

        channel = line % self.channels
        line //= self.channels

        column = line % self.columns_per_row
        line //= self.columns_per_row

        bank = line % self.banks_per_group
        line //= self.banks_per_group

        bank_group = line % self.bank_groups
        line //= self.bank_groups

        rank = line % self.ranks
        line //= self.ranks

        row = line
        return DecodedAddress(
            channel=channel,
            rank=rank,
            bank_group=bank_group,
            bank=bank,
            row=row,
            column=column,
        )

    def flat_bank_index(self, decoded: DecodedAddress) -> int:
        """Unique bank index within a channel (rank, bank group, bank)."""
        banks_per_rank = self.bank_groups * self.banks_per_group
        return (
            decoded.rank * banks_per_rank
            + decoded.bank_group * self.banks_per_group
            + decoded.bank
        )

    @property
    def banks_per_channel(self) -> int:
        """Total independently schedulable banks in one channel."""
        return self.ranks * self.bank_groups * self.banks_per_group
