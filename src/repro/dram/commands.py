"""DRAM request and command vocabulary."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative


class RequestType(enum.Enum):
    """Type of a memory-controller request."""

    READ = "read"
    WRITE = "write"


class DramCommand(enum.Enum):
    """Device-level DRAM commands issued by the controller."""

    ACTIVATE = "activate"
    READ = "read"
    WRITE = "write"
    PRECHARGE = "precharge"
    REFRESH = "refresh"


@dataclass
class MemoryRequest:
    """One cache-line-sized request presented to the memory system.

    Attributes
    ----------
    address:
        Physical byte address of the access.
    request_type:
        READ or WRITE.
    arrival_cycle:
        Memory-clock cycle at which the request reaches the controller.
    size_bytes:
        Request size; the default 64 bytes matches the LLC line size.
    completion_cycle:
        Filled in by the controller when the request's data transfer
        finishes; ``None`` until then.
    """

    address: int
    request_type: RequestType
    arrival_cycle: int
    size_bytes: int = 64
    completion_cycle: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        check_non_negative("address", self.address)
        check_non_negative("arrival_cycle", self.arrival_cycle)
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")

    @property
    def is_write(self) -> bool:
        """True for write requests."""
        return self.request_type is RequestType.WRITE

    @property
    def latency(self) -> int:
        """Cycles from arrival to completion (requires completion)."""
        if self.completion_cycle is None:
            raise ValueError("request has not completed yet")
        return self.completion_cycle - self.arrival_cycle
