"""DDR4 device timing parameters.

All parameters are expressed in memory-clock cycles of the I/O clock
(800MHz for DDR4-1600, i.e. 1600MT/s), matching how DRAMSim2 consumes
the Micron datasheet.  The default parameter set corresponds to a
Micron 4Gbit x8 DDR4-1600 part, the device the paper's Table I and
memory organisation are based on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DDR4Timing:
    """Timing parameters of one DDR4 device/speed grade (in cycles).

    Attributes follow JEDEC naming:

    * ``tCL`` -- CAS (read) latency.
    * ``tRCD`` -- ACTIVATE to READ/WRITE delay.
    * ``tRP`` -- PRECHARGE to ACTIVATE delay.
    * ``tRAS`` -- ACTIVATE to PRECHARGE minimum.
    * ``tRC`` -- ACTIVATE to ACTIVATE (same bank) minimum.
    * ``tCCD`` -- column-to-column delay (back-to-back bursts).
    * ``tRRD`` -- ACTIVATE to ACTIVATE (different bank) minimum.
    * ``tFAW`` -- four-activate window.
    * ``tWR`` -- write recovery time.
    * ``tWTR`` -- write-to-read turnaround.
    * ``tRTP`` -- read-to-precharge delay.
    * ``tCWL`` -- CAS write latency.
    * ``tREFI`` -- average refresh interval.
    * ``tRFC`` -- refresh cycle time.
    * ``burst_length`` -- transfers per column command (BL8).
    """

    name: str
    clock_hz: float
    tCL: int
    tRCD: int
    tRP: int
    tRAS: int
    tRC: int
    tCCD: int
    tRRD: int
    tFAW: int
    tWR: int
    tWTR: int
    tRTP: int
    tCWL: int
    tREFI: int
    tRFC: int
    burst_length: int = 8
    banks_per_group: int = 4
    bank_groups: int = 4
    row_size_bytes: int = 1024
    device_width_bits: int = 8

    def __post_init__(self) -> None:
        check_positive("clock_hz", self.clock_hz)
        for field_name in (
            "tCL",
            "tRCD",
            "tRP",
            "tRAS",
            "tRC",
            "tCCD",
            "tRRD",
            "tFAW",
            "tWR",
            "tWTR",
            "tRTP",
            "tCWL",
            "tREFI",
            "tRFC",
            "burst_length",
            "banks_per_group",
            "bank_groups",
            "row_size_bytes",
            "device_width_bits",
        ):
            check_positive(field_name, getattr(self, field_name))
        if self.tRAS + self.tRP > self.tRC:
            raise ValueError("inconsistent timings: tRAS + tRP must be <= tRC")

    @property
    def banks(self) -> int:
        """Total banks per rank (bank groups x banks per group)."""
        return self.banks_per_group * self.bank_groups

    @property
    def burst_cycles(self) -> int:
        """Data-bus cycles occupied by one burst (BL8 on a DDR bus = 4)."""
        return max(1, self.burst_length // 2)

    @property
    def clock_period_seconds(self) -> float:
        """Memory clock period in seconds."""
        return 1.0 / self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert memory-clock cycles to seconds."""
        return cycles / self.clock_hz

    @property
    def row_hit_latency(self) -> int:
        """Read latency in cycles when the row is already open."""
        return self.tCL + self.burst_cycles

    @property
    def row_closed_latency(self) -> int:
        """Read latency in cycles when the bank is precharged (row closed)."""
        return self.tRCD + self.tCL + self.burst_cycles

    @property
    def row_conflict_latency(self) -> int:
        """Read latency in cycles when another row is open (conflict)."""
        return self.tRP + self.tRCD + self.tCL + self.burst_cycles


# Micron 4Gbit x8 DDR4-1600 (CL 11) expressed at the 800MHz I/O clock.
DDR4_1600_4GBIT = DDR4Timing(
    name="ddr4-1600-4gbit-x8",
    clock_hz=800.0e6,
    tCL=11,
    tRCD=11,
    tRP=11,
    tRAS=28,
    tRC=39,
    tCCD=4,
    tRRD=5,
    tFAW=20,
    tWR=12,
    tWTR=6,
    tRTP=6,
    tCWL=9,
    tREFI=6240,
    tRFC=208,
)
