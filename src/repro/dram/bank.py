"""Per-bank DRAM state machine.

Each bank tracks its open row and the earliest cycles at which the next
ACTIVATE, column access (READ/WRITE) and PRECHARGE commands may issue,
enforcing the tRCD/tRP/tRAS/tRC/tWR/tRTP constraints from the timing
profile.  The channel controller layers bus arbitration, FR-FCFS
scheduling, tFAW and refresh on top of this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dram.timing import DDR4Timing


class BankState(enum.Enum):
    """Observable state of a DRAM bank."""

    PRECHARGED = "precharged"
    ACTIVE = "active"


@dataclass
class Bank:
    """One DRAM bank and its timing bookkeeping (cycles).

    The bank exposes *earliest-issue* accounting: commands are issued at
    ``max(requested_cycle, earliest_allowed)`` and the method returns the
    cycle at which the command's effect completes.
    """

    timing: DDR4Timing
    state: BankState = BankState.PRECHARGED
    open_row: int | None = None
    next_activate: int = 0
    next_access: int = 0
    next_precharge: int = 0
    row_activations: int = field(default=0, compare=False)

    def activate(self, row: int, cycle: int) -> int:
        """Issue ACTIVATE for ``row``; returns the issue cycle.

        Raises
        ------
        ValueError
            If the bank already has a row open (must precharge first).
        """
        if self.state is BankState.ACTIVE:
            raise ValueError("cannot ACTIVATE: bank already has an open row")
        issue = max(cycle, self.next_activate)
        timing = self.timing
        self.state = BankState.ACTIVE
        self.open_row = row
        self.row_activations += 1
        self.next_access = issue + timing.tRCD
        self.next_precharge = issue + timing.tRAS
        self.next_activate = issue + timing.tRC
        return issue

    def precharge(self, cycle: int) -> int:
        """Issue PRECHARGE; returns the issue cycle.  Idempotent when closed."""
        if self.state is BankState.PRECHARGED:
            return cycle
        issue = max(cycle, self.next_precharge)
        self.state = BankState.PRECHARGED
        self.open_row = None
        self.next_activate = max(self.next_activate, issue + self.timing.tRP)
        return issue

    def column_access(self, cycle: int, is_write: bool) -> tuple:
        """Issue READ or WRITE to the open row.

        Returns ``(issue_cycle, data_done_cycle)`` where ``data_done`` is
        when the last data beat of the burst leaves (read) or is written
        into (write) the device.

        Raises
        ------
        ValueError
            If no row is open.
        """
        if self.state is not BankState.ACTIVE:
            raise ValueError("cannot READ/WRITE: no open row")
        timing = self.timing
        issue = max(cycle, self.next_access)
        if is_write:
            data_done = issue + timing.tCWL + timing.burst_cycles
            # Write recovery constrains the following precharge.
            self.next_precharge = max(self.next_precharge, data_done + timing.tWR)
            self.next_access = max(self.next_access, issue + timing.tCCD)
        else:
            data_done = issue + timing.tCL + timing.burst_cycles
            self.next_precharge = max(self.next_precharge, issue + timing.tRTP)
            self.next_access = max(self.next_access, issue + timing.tCCD)
        return issue, data_done

    def block_until(self, cycle: int) -> None:
        """Push all earliest-issue times to at least ``cycle`` (refresh)."""
        self.next_activate = max(self.next_activate, cycle)
        self.next_access = max(self.next_access, cycle)
        self.next_precharge = max(self.next_precharge, cycle)

    @property
    def is_open(self) -> bool:
        """True when a row is currently open."""
        return self.state is BankState.ACTIVE
