"""Tail-latency scaling with core frequency (Figure 2 methodology).

The paper measures the minimum 99th-percentile latency of each
scale-out application at a nominal 2GHz operating point with near-zero
contention, then scales that latency by the simulated throughput ratio:

    latency_99(f) = latency_99(f_nominal) * UIPS(f_nominal) / UIPS(f)

which is valid because the number of user instructions per request does
not depend on the operating point.  Figure 2 plots this latency
normalised to each application's QoS limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive
from repro.workloads.base import WorkloadCharacteristics


@dataclass(frozen=True)
class LatencyPoint:
    """Latency of one workload at one core frequency."""

    frequency_hz: float
    latency_seconds: float
    qos_limit_seconds: float

    @property
    def normalized_to_qos(self) -> float:
        """Latency divided by the QoS limit (1.0 = exactly at the limit)."""
        return self.latency_seconds / self.qos_limit_seconds

    @property
    def meets_qos(self) -> bool:
        """True when the latency is at or below the QoS limit."""
        return self.normalized_to_qos <= 1.0 + 1e-9


@dataclass(frozen=True)
class TailLatencyModel:
    """Applies the paper's latency-vs-throughput scaling rule."""

    workload: WorkloadCharacteristics

    def __post_init__(self) -> None:
        if not self.workload.is_scale_out:
            raise ValueError(
                f"{self.workload.name}: tail-latency scaling applies to "
                "scale-out workloads only"
            )

    def latency(
        self,
        frequency_hz: float,
        core_uips: float,
        core_uips_nominal: float,
    ) -> LatencyPoint:
        """Latency at ``frequency_hz`` given per-core throughputs.

        Parameters
        ----------
        frequency_hz:
            The operating point being evaluated (recorded in the result).
        core_uips:
            Per-core user instructions per second at that point.
        core_uips_nominal:
            Per-core UIPS at the nominal (2GHz) measurement point.
        """
        check_positive("frequency_hz", frequency_hz)
        check_positive("core_uips", core_uips)
        check_positive("core_uips_nominal", core_uips_nominal)
        scale = core_uips_nominal / core_uips
        latency = self.workload.minimum_latency_99th_seconds * scale
        return LatencyPoint(
            frequency_hz=frequency_hz,
            latency_seconds=latency,
            qos_limit_seconds=self.workload.qos_limit_seconds,
        )

    def slowdown_budget(self) -> float:
        """Largest tolerable throughput slowdown before violating QoS."""
        return self.workload.qos_headroom_at_nominal
