"""Request-latency and QoS substrate.

Provides the latency-side models of the study:

* :mod:`repro.latency.queueing` -- M/M/1 and M/G/1 queueing models used
  to reason about loaded servers and consolidation headroom.
* :mod:`repro.latency.tail` -- the paper's tail-latency scaling rule:
  the 99th-percentile latency measured at the nominal operating point is
  scaled by the inverse of the per-core throughput ratio (Section V-A).
* :mod:`repro.latency.degradation` -- batch execution-time degradation
  model for the virtualized workloads (2x / 4x bounds).
"""

from repro.latency.queueing import MM1Queue, MG1Queue
from repro.latency.tail import TailLatencyModel, LatencyPoint
from repro.latency.degradation import BatchDegradationModel

__all__ = [
    "MM1Queue",
    "MG1Queue",
    "TailLatencyModel",
    "LatencyPoint",
    "BatchDegradationModel",
]
