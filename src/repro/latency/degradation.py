"""Batch execution-time degradation model for virtualized workloads.

The virtualized banking VMs run batch tasks without user interaction,
so their QoS is expressed as the maximum tolerable increase in
execution time relative to the nominal 2GHz operating point
(Section III-B2): at least 2x is always tolerated in the partners'
production data centres, and up to 4x in the relaxed case.  Execution
time is inversely proportional to per-core throughput, so::

    degradation(f) = UIPS(f_nominal) / UIPS(f)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive
from repro.workloads.banking_vm import (
    DEGRADATION_LIMIT_RELAXED,
    DEGRADATION_LIMIT_STRICT,
)
from repro.workloads.base import WorkloadCharacteristics


@dataclass(frozen=True)
class BatchDegradationModel:
    """Execution-time degradation of a batch (virtualized) workload."""

    workload: WorkloadCharacteristics

    def __post_init__(self) -> None:
        if not self.workload.is_virtualized:
            raise ValueError(
                f"{self.workload.name}: degradation modelling applies to "
                "virtualized workloads only"
            )

    def degradation(self, core_uips: float, core_uips_nominal: float) -> float:
        """Execution-time increase factor relative to the nominal point."""
        check_positive("core_uips", core_uips)
        check_positive("core_uips_nominal", core_uips_nominal)
        return core_uips_nominal / core_uips

    def meets_bound(
        self,
        core_uips: float,
        core_uips_nominal: float,
        bound: float = DEGRADATION_LIMIT_RELAXED,
    ) -> bool:
        """True when the degradation stays within ``bound``."""
        check_positive("bound", bound)
        return self.degradation(core_uips, core_uips_nominal) <= bound + 1e-9

    @staticmethod
    def bounds() -> dict:
        """The strict (2x) and relaxed (4x) bounds used in the paper."""
        return {
            "strict": DEGRADATION_LIMIT_STRICT,
            "relaxed": DEGRADATION_LIMIT_RELAXED,
        }
