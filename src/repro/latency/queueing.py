"""Queueing models for loaded scale-out servers.

The paper measures its baseline 99th-percentile latencies "in a
near-zero contention configuration" and scales them with throughput.
The consolidation discussion (Section V-C), however, asks how much load
can be added before the tail blows up; these classical queueing models
provide that extension:

* :class:`MM1Queue` -- exponential service times; closed-form response
  time distribution, so percentiles are exact.
* :class:`MG1Queue` -- general service times via the
  Pollaczek-Khinchine formula, with a percentile approximation based on
  an exponential tail matched to the mean response time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MM1Queue:
    """M/M/1 queue: Poisson arrivals, exponential service."""

    arrival_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        check_positive("arrival_rate", self.arrival_rate)
        check_positive("service_rate", self.service_rate)
        if self.arrival_rate >= self.service_rate:
            raise ValueError(
                f"unstable queue: arrival rate {self.arrival_rate} >= "
                f"service rate {self.service_rate}"
            )

    @property
    def utilization(self) -> float:
        """Server utilisation (rho)."""
        return self.arrival_rate / self.service_rate

    @property
    def mean_response_time(self) -> float:
        """Mean time in system (wait + service), seconds."""
        return 1.0 / (self.service_rate - self.arrival_rate)

    @property
    def mean_waiting_time(self) -> float:
        """Mean time in queue (excluding service), seconds."""
        return self.utilization / (self.service_rate - self.arrival_rate)

    def response_time_percentile(self, percentile: float) -> float:
        """Exact response-time percentile (response time is exponential)."""
        if not (0.0 < percentile < 100.0):
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        return -math.log(1.0 - percentile / 100.0) * self.mean_response_time


@dataclass(frozen=True)
class MG1Queue:
    """M/G/1 queue: Poisson arrivals, general service distribution."""

    arrival_rate: float
    mean_service_time: float
    service_time_cv: float = 1.0

    def __post_init__(self) -> None:
        check_positive("arrival_rate", self.arrival_rate)
        check_positive("mean_service_time", self.mean_service_time)
        check_positive("service_time_cv", self.service_time_cv)
        if self.utilization >= 1.0:
            raise ValueError(
                f"unstable queue: utilisation {self.utilization:.3f} >= 1"
            )

    @property
    def utilization(self) -> float:
        """Server utilisation (rho)."""
        return self.arrival_rate * self.mean_service_time

    @property
    def mean_waiting_time(self) -> float:
        """Pollaczek-Khinchine mean waiting time, seconds."""
        rho = self.utilization
        cv_squared = self.service_time_cv * self.service_time_cv
        return (rho * self.mean_service_time * (1.0 + cv_squared)) / (
            2.0 * (1.0 - rho)
        )

    @property
    def mean_response_time(self) -> float:
        """Mean time in system, seconds."""
        return self.mean_waiting_time + self.mean_service_time

    def response_time_percentile(
        self, percentile: float, *, corrected: bool = False
    ) -> float:
        """Approximate response-time percentile.

        The default (``corrected=False``) fits an exponential tail to
        the mean response time: the service-time variability only enters
        through the Pollaczek-Khinchine mean, not the tail *shape*, so
        high-CV services are under-penalised at the far percentiles and
        low-CV ones over-penalised at light load.

        ``corrected=True`` applies the standard two-moment
        (Marchal-style) refinement: the waiting time is modelled as an
        atom of mass ``1 - rho`` at zero (the probability of finding the
        server idle) plus an exponential tail whose conditional mean is
        the P-K mean waiting time over ``rho``, and the service time is
        added back deterministically.  For the M/M/1 special case this
        converges to the exact percentile as ``rho -> 1``, and the
        squared CV now scales the tail itself, not just the mean.
        """
        if not (0.0 < percentile < 100.0):
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        tail_probability = 1.0 - percentile / 100.0
        if not corrected:
            return -math.log(tail_probability) * self.mean_response_time
        rho = self.utilization
        if tail_probability >= rho:
            # The (1 - rho) idle atom already covers the percentile:
            # the request never waits.
            waiting_tail = 0.0
        else:
            waiting_tail = (self.mean_waiting_time / rho) * math.log(
                rho / tail_probability
            )
        return self.mean_service_time + waiting_tail

    def max_stable_arrival_rate(self, safety_margin: float = 0.05) -> float:
        """Largest arrival rate keeping utilisation below 1 - margin."""
        if not (0.0 <= safety_margin < 1.0):
            raise ValueError("safety_margin must be in [0, 1)")
        return (1.0 - safety_margin) / self.mean_service_time
