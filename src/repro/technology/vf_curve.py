"""Transregional voltage-frequency model.

The study sweeps core frequency from the super-threshold region (2GHz
and above) down into the near-threshold region (a few hundred MHz at
0.5V), so the delay model must be valid across the threshold.  We use a
transregional drain-current approximation in the spirit of the EKV model:

    I_on(Vdd)  ~  [ n*v_T * ln(1 + exp((Vdd - Vth) / (2*n*v_T))) ]^2
    f_max(Vdd) =  K * I_on(Vdd) / Vdd

which reduces to the classical alpha-power law ``(Vdd - Vth)^2 / Vdd``
deep in super-threshold and to an exponential dependence on
``Vdd - Vth`` in sub-threshold, with a smooth transition in between --
exactly the behaviour the paper's Figure 1 curves exhibit.

``K`` (the *drive factor*) and ``Vth`` come from the
:class:`repro.technology.process.ProcessTechnology` flavour; body bias
shifts the effective threshold voltage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.technology.process import ProcessTechnology
from repro.utils.validation import check_positive

THERMAL_VOLTAGE_300K = 0.02585
"""Thermal voltage kT/q at 300 kelvin, in volts."""


@dataclass(frozen=True)
class TransregionalVFModel:
    """Maximum-frequency model valid from sub- to super-threshold.

    Parameters
    ----------
    technology:
        The process flavour providing ``Vth``, the drive factor and the
        subthreshold slope factor.
    temperature_kelvin:
        Junction temperature; enters through the thermal voltage.
    """

    technology: ProcessTechnology
    temperature_kelvin: float = 300.0

    def __post_init__(self) -> None:
        check_positive("temperature_kelvin", self.temperature_kelvin)

    # -- primitive quantities -------------------------------------------------

    @property
    def thermal_voltage(self) -> float:
        """Thermal voltage kT/q at the model temperature, in volts."""
        return THERMAL_VOLTAGE_300K * self.temperature_kelvin / 300.0

    def effective_threshold(self, body_bias: float = 0.0) -> float:
        """Effective threshold voltage under ``body_bias`` volts of bias.

        Forward body bias (positive) lowers the threshold by the
        technology's body-effect coefficient (85mV/V for UTBB FD-SOI);
        reverse body bias raises it.
        """
        tech = self.technology
        if not (tech.body_bias_min - 1e-9 <= body_bias <= tech.body_bias_max + 1e-9):
            raise ValueError(
                f"body bias {body_bias:+.2f}V outside the allowed range "
                f"[{tech.body_bias_min:+.1f}V, {tech.body_bias_max:+.1f}V] "
                f"for {tech.name}"
            )
        return tech.threshold_voltage - tech.body_effect_coefficient * body_bias

    def _inversion_charge(self, vdd: float, vth_eff: float) -> float:
        """Smooth interpolation of the normalised on-current."""
        n_vt = self.technology.subthreshold_slope_factor * self.thermal_voltage
        overdrive = (vdd - vth_eff) / (2.0 * n_vt)
        # log1p(exp(x)) computed stably for large positive overdrive.
        if overdrive > 30.0:
            log_term = overdrive
        else:
            log_term = math.log1p(math.exp(overdrive))
        charge = 2.0 * n_vt * log_term
        return charge * charge

    # -- public API ------------------------------------------------------------

    def max_frequency(self, vdd: float, body_bias: float = 0.0) -> float:
        """Maximum operating frequency in Hz at supply ``vdd`` volts.

        Returns 0.0 for non-positive supply voltages.  The caller is
        responsible for enforcing the technology's minimum functional
        voltage (SRAM limits) -- see
        :meth:`repro.technology.a57_model.CortexA57PowerModel.operating_point`.
        """
        if vdd <= 0.0:
            return 0.0
        vth_eff = self.effective_threshold(body_bias)
        return self.technology.drive_factor * self._inversion_charge(vdd, vth_eff) / vdd

    def vdd_for_frequency(
        self,
        frequency_hz: float,
        body_bias: float = 0.0,
        vdd_max: float | None = None,
        tolerance: float = 1e-6,
    ) -> float:
        """Lowest supply voltage able to sustain ``frequency_hz``.

        Solved by bisection on the monotone ``max_frequency`` curve.

        Raises
        ------
        ValueError
            If the requested frequency exceeds what the technology can
            reach at ``vdd_max`` (default: the nominal supply voltage).
        """
        check_positive("frequency_hz", frequency_hz)
        upper = vdd_max if vdd_max is not None else self.technology.nominal_vdd
        if self.max_frequency(upper, body_bias) < frequency_hz:
            raise ValueError(
                f"{self.technology.name} cannot reach "
                f"{frequency_hz / 1e6:.0f}MHz at or below {upper:.2f}V"
                f" (body bias {body_bias:+.2f}V)"
            )
        lower = 0.05
        while upper - lower > tolerance:
            midpoint = 0.5 * (lower + upper)
            if self.max_frequency(midpoint, body_bias) >= frequency_hz:
                upper = midpoint
            else:
                lower = midpoint
        return upper

    def frequency_range(self, body_bias: float = 0.0) -> tuple:
        """(min, max) frequency reachable inside the functional Vdd range."""
        tech = self.technology
        return (
            self.max_frequency(tech.min_functional_vdd, body_bias),
            self.max_frequency(tech.nominal_vdd, body_bias),
        )
