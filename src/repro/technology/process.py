"""Named process technology flavours and their electrical parameters.

The paper compares three flavours of a 28nm node for a Cortex-A57 class
core (Figure 1):

* **bulk** -- conventional 28nm bulk CMOS.  Higher threshold voltage,
  no useful body-bias range, and SRAM timing failures below ~0.6V.
* **FD-SOI** -- 28nm UTBB FD-SOI with flip-well (LVT) transistors.
  Lower effective threshold, functional down to 0.5V, and a wide forward
  body-bias (FBB) range of 0V..+3V.
* **FD-SOI + FBB** -- the same FD-SOI process with forward body bias
  applied; in this library the FBB amount is either fixed or chosen per
  operating point to minimise power (see
  :class:`repro.technology.a57_model.CortexA57PowerModel`).

The numerical values are calibration parameters chosen so that the
resulting V(f) / P(f) curves reproduce the anchor points reported in the
paper (see ``docs`` strings in :mod:`repro.technology.a57_model`); they
are not foundry data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class ProcessTechnology:
    """Electrical parameters of one process flavour.

    Attributes
    ----------
    name:
        Human-readable flavour name (``"bulk-28nm"`` etc.).
    threshold_voltage:
        Nominal threshold voltage Vth in volts, at zero body bias.
    nominal_vdd:
        Nominal (maximum rated) supply voltage in volts.
    min_functional_vdd:
        Lowest supply voltage at which the core (including its L1 SRAM)
        is functional.  The paper reports timing failures at 0.5V for
        bulk and functionality down to 0.5V for FD-SOI.
    drive_factor:
        Technology drive-strength constant ``K`` of the transregional
        delay model, in Hz*V (frequency = K * g(Vdd, Vth) / Vdd).
    subthreshold_slope_factor:
        Ideality factor ``n`` of the subthreshold slope (dimensionless).
    body_bias_min / body_bias_max:
        Allowed body-bias range in volts (negative = reverse body bias).
    body_effect_coefficient:
        Threshold-voltage shift per volt of body bias, in V/V.  The
        paper reports 85mV of Vth shift per 1V of bias for UTBB FD-SOI.
    leakage_nominal:
        Per-core leakage power in watts at ``nominal_vdd``, nominal Vth,
        and reference temperature.
    leakage_voltage_exponent:
        Sensitivity of leakage to supply voltage (DIBL + gate leakage),
        expressed as an exponential coefficient per volt.
    """

    name: str
    threshold_voltage: float
    nominal_vdd: float
    min_functional_vdd: float
    drive_factor: float
    subthreshold_slope_factor: float
    body_bias_min: float
    body_bias_max: float
    body_effect_coefficient: float
    leakage_nominal: float
    leakage_voltage_exponent: float

    def __post_init__(self) -> None:
        check_positive("threshold_voltage", self.threshold_voltage)
        check_positive("nominal_vdd", self.nominal_vdd)
        check_positive("min_functional_vdd", self.min_functional_vdd)
        check_positive("drive_factor", self.drive_factor)
        check_positive("subthreshold_slope_factor", self.subthreshold_slope_factor)
        check_positive("leakage_nominal", self.leakage_nominal)
        check_in_range(
            "min_functional_vdd", self.min_functional_vdd, 0.2, self.nominal_vdd
        )
        if self.body_bias_min > self.body_bias_max:
            raise ValueError("body_bias_min must be <= body_bias_max")

    @property
    def supports_forward_body_bias(self) -> bool:
        """True when the flavour exposes a usable FBB range."""
        return self.body_bias_max > 0.0

    @property
    def supports_reverse_body_bias(self) -> bool:
        """True when the flavour exposes a usable RBB range."""
        return self.body_bias_min < 0.0

    def with_name(self, name: str) -> "ProcessTechnology":
        """Return a copy of this technology with a different name."""
        return replace(self, name=name)


# Calibration notes
# -----------------
# The drive factors are chosen so that:
#   * FD-SOI reaches ~3.5GHz at 1.3V and ~100-150MHz at 0.5V,
#   * bulk reaches ~3.0GHz at 1.35V and is below FD-SOI at every voltage,
#   * FD-SOI with ~+1.5V FBB exceeds 500MHz at 0.5V,
# matching the qualitative anchors in Figure 1 of the paper.

BULK_28NM = ProcessTechnology(
    name="bulk-28nm",
    threshold_voltage=0.52,
    nominal_vdd=1.35,
    min_functional_vdd=0.60,
    drive_factor=5.88e9,
    subthreshold_slope_factor=1.70,
    body_bias_min=-0.3,
    body_bias_max=0.3,
    body_effect_coefficient=0.025,
    leakage_nominal=0.22,
    leakage_voltage_exponent=2.0,
)

FDSOI_28NM = ProcessTechnology(
    name="fdsoi-28nm",
    threshold_voltage=0.42,
    nominal_vdd=1.30,
    min_functional_vdd=0.50,
    drive_factor=5.88e9,
    subthreshold_slope_factor=1.35,
    body_bias_min=-3.0,
    body_bias_max=3.0,
    body_effect_coefficient=0.085,
    leakage_nominal=0.10,
    leakage_voltage_exponent=2.0,
)

FDSOI_28NM_FBB = FDSOI_28NM.with_name("fdsoi-28nm-fbb")
"""FD-SOI flavour used when forward body bias is applied.

The electrical parameters are identical to :data:`FDSOI_28NM`; the
difference is purely in how the operating point is chosen (a non-zero
body bias is allowed / optimised).
"""


TECHNOLOGIES = {
    BULK_28NM.name: BULK_28NM,
    FDSOI_28NM.name: FDSOI_28NM,
    FDSOI_28NM_FBB.name: FDSOI_28NM_FBB,
}
"""Registry of the technology flavours studied in the paper."""


def technology_by_name(name: str) -> ProcessTechnology:
    """Look up a technology flavour by name.

    Raises
    ------
    KeyError
        If ``name`` is not one of the registered flavours.
    """
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGIES))
        raise KeyError(f"unknown technology {name!r}; known flavours: {known}") from None
