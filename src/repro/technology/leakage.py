"""Leakage power model with voltage, threshold and temperature dependence.

Leakage is the quantity that ultimately limits how far near-threshold
operation pays off: dynamic power falls roughly cubically with the
voltage/frequency point while leakage falls only slowly, so below some
frequency "leakage brings efficiency down" (paper, Section V-B).

The model used here is a standard compact form:

    P_leak(Vdd, Vth_eff, T) = P_nom
        * exp((Vth_nom - Vth_eff) / S_vth)          -- body-bias / Vth shift
        * (Vdd / Vdd_nom) * exp(k_v * (Vdd - Vdd_nom))  -- DIBL + supply scaling
        * 2^((T - T_nom) / T_double)                 -- temperature

``S_vth`` is an *effective* leakage slope; it is intentionally softer
than the intrinsic subthreshold swing because a core's total leakage
mixes body-bias-sensitive subthreshold current with gate and junction
components that do not respond to body bias.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.technology.process import ProcessTechnology
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LeakageModel:
    """Per-core leakage power model.

    Parameters
    ----------
    technology:
        Process flavour providing the nominal leakage, nominal Vdd/Vth
        and the supply-voltage sensitivity.
    vth_slope:
        Effective leakage slope in volts per e-fold of leakage change
        when the effective threshold voltage shifts (body bias).
    temperature_nominal_kelvin:
        Temperature at which ``technology.leakage_nominal`` is quoted.
    temperature_doubling_kelvin:
        Temperature increase that doubles leakage.
    """

    technology: ProcessTechnology
    vth_slope: float = 0.065
    temperature_nominal_kelvin: float = 330.0
    temperature_doubling_kelvin: float = 25.0

    def __post_init__(self) -> None:
        check_positive("vth_slope", self.vth_slope)
        check_positive("temperature_nominal_kelvin", self.temperature_nominal_kelvin)
        check_positive("temperature_doubling_kelvin", self.temperature_doubling_kelvin)

    def power(
        self,
        vdd: float,
        vth_eff: float | None = None,
        temperature_kelvin: float | None = None,
    ) -> float:
        """Leakage power in watts of one core at the given operating point.

        Parameters
        ----------
        vdd:
            Supply voltage in volts.  Zero or negative voltages (power
            gated) return zero leakage.
        vth_eff:
            Effective threshold voltage (after body bias).  Defaults to
            the technology's nominal threshold.
        temperature_kelvin:
            Junction temperature; defaults to the nominal temperature.
        """
        if vdd <= 0.0:
            return 0.0
        tech = self.technology
        threshold = tech.threshold_voltage if vth_eff is None else vth_eff
        temperature = (
            self.temperature_nominal_kelvin
            if temperature_kelvin is None
            else temperature_kelvin
        )

        vth_factor = math.exp((tech.threshold_voltage - threshold) / self.vth_slope)
        supply_factor = (vdd / tech.nominal_vdd) * math.exp(
            tech.leakage_voltage_exponent * (vdd - tech.nominal_vdd)
        )
        temperature_factor = 2.0 ** (
            (temperature - self.temperature_nominal_kelvin)
            / self.temperature_doubling_kelvin
        )
        return tech.leakage_nominal * vth_factor * supply_factor * temperature_factor

    def sleep_power(self, vdd: float, sleep_leakage_fraction: float) -> float:
        """Leakage power in the RBB state-retentive sleep mode.

        ``sleep_leakage_fraction`` comes from
        :meth:`repro.technology.body_bias.BodyBiasModel.sleep_leakage_fraction`.
        """
        return self.power(vdd) * sleep_leakage_fraction
