"""Switching (dynamic) power model.

Dynamic power follows the classical CMOS relation

    P_dyn = C_eff * Vdd^2 * f * activity

where ``C_eff`` is the effective switched capacitance of the core and
``activity`` captures workload-dependent switching (instruction mix,
issue rate, clock gating).  The quadratic dependence on Vdd combined
with the roughly linear f(Vdd) relation in super-threshold produces the
cubic power-vs-frequency behaviour the paper leans on ("due to the
cubic relation between frequency and power", Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class DynamicPowerModel:
    """Per-core switching power model.

    Parameters
    ----------
    effective_capacitance:
        Effective switched capacitance of the core in farads per cycle.
        The default of 0.8nF is calibrated so a 36-core chip reaches the
        ~175W top of the paper's Figure 1 power axis at 3.5GHz/1.3V and
        stays inside the 100W chip budget at the 2GHz nominal point.
    clock_tree_fraction:
        Fraction of the switched capacitance that toggles every cycle
        regardless of workload activity (clock tree and always-on
        control), bounding how far low-activity workloads reduce power.
    """

    effective_capacitance: float = 0.8e-9
    clock_tree_fraction: float = 0.25

    def __post_init__(self) -> None:
        check_positive("effective_capacitance", self.effective_capacitance)
        check_fraction("clock_tree_fraction", self.clock_tree_fraction)

    def power(self, vdd: float, frequency_hz: float, activity: float = 1.0) -> float:
        """Dynamic power in watts at the given voltage/frequency/activity.

        ``activity`` of 1.0 corresponds to the worst-case switching used
        for the Figure 1 envelope; workloads typically sit below it.
        """
        check_fraction("activity", activity)
        if frequency_hz <= 0.0 or vdd <= 0.0:
            return 0.0
        effective_activity = (
            self.clock_tree_fraction + (1.0 - self.clock_tree_fraction) * activity
        )
        return (
            self.effective_capacitance
            * vdd
            * vdd
            * frequency_hz
            * effective_activity
        )

    def energy_per_cycle(self, vdd: float, activity: float = 1.0) -> float:
        """Switching energy per clock cycle in joules."""
        check_fraction("activity", activity)
        effective_activity = (
            self.clock_tree_fraction + (1.0 - self.clock_tree_fraction) * activity
        )
        return self.effective_capacitance * vdd * vdd * effective_activity
