"""Body-bias model for UTBB FD-SOI.

The paper highlights four uses of body biasing in a near-threshold
server (Section II-A):

1. operating at the best energy point for a given performance target
   (forward body bias, FBB, lowers Vth so a lower Vdd sustains the same
   frequency, at the cost of higher leakage);
2. fast performance boosting (the back-bias of a 5mm^2 Cortex-A9 can be
   switched between 0V and 1.3V in under 1 microsecond);
3. state-retentive leakage management (reverse body bias, RBB, reduces
   leakage by up to an order of magnitude while keeping state);
4. variation mitigation (part of the bias range is reserved).

This module models the threshold-voltage shift, the transition time of
bias changes, and the sleep-mode leakage reduction achievable with RBB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.technology.process import ProcessTechnology
from repro.utils.validation import check_fraction, check_non_negative, check_positive

BIAS_TRANSITION_TIME_PER_MM2 = 0.18e-6
"""Body-bias transition time per mm^2 of biased well area, in seconds.

Calibrated so a 5mm^2 Cortex-A9 class core switches its back bias
between 0V and 1.3V in under 1 microsecond, as reported by the STM
28nm FD-SOI test chip the paper cites.
"""

RBB_SLEEP_LEAKAGE_REDUCTION = 10.0
"""Leakage reduction factor achievable in the RBB state-retentive sleep
mode ("up to an order of magnitude" in the paper)."""

RBB_FULL_REDUCTION_BIAS = 2.55
"""Reverse-bias magnitude (volts) at which the full order-of-magnitude
leakage reduction is reached (the usable RBB range of UTBB FD-SOI)."""


@dataclass(frozen=True)
class BodyBiasModel:
    """Threshold shift, transition timing and sleep-mode model.

    Parameters
    ----------
    technology:
        Process flavour supplying the allowed bias range and the body
        effect coefficient (85mV/V for UTBB FD-SOI).
    variation_reserve:
        Fraction of the forward-bias range reserved for process/voltage/
        temperature variation compensation (use #4 above) and therefore
        unavailable for performance/energy trade-offs.
    """

    technology: ProcessTechnology
    variation_reserve: float = 0.15

    def __post_init__(self) -> None:
        check_fraction("variation_reserve", self.variation_reserve)

    # -- bias range ------------------------------------------------------------

    @property
    def usable_forward_bias(self) -> float:
        """Maximum FBB (volts) available after the variation reserve."""
        return self.technology.body_bias_max * (1.0 - self.variation_reserve)

    @property
    def usable_reverse_bias(self) -> float:
        """Maximum RBB magnitude (volts) available after the reserve."""
        return -self.technology.body_bias_min * (1.0 - self.variation_reserve)

    def clamp(self, bias: float) -> float:
        """Clamp ``bias`` into the usable (reserve-adjusted) range."""
        return max(-self.usable_reverse_bias, min(self.usable_forward_bias, bias))

    # -- threshold shift --------------------------------------------------------

    def threshold_shift(self, bias: float) -> float:
        """Threshold-voltage shift (volts) produced by ``bias`` volts.

        Positive (forward) bias yields a negative shift (lower Vth).
        """
        tech = self.technology
        if not (tech.body_bias_min - 1e-9 <= bias <= tech.body_bias_max + 1e-9):
            raise ValueError(
                f"bias {bias:+.2f}V outside allowed range "
                f"[{tech.body_bias_min:+.1f}, {tech.body_bias_max:+.1f}]V"
            )
        return -tech.body_effect_coefficient * bias

    def effective_threshold(self, bias: float) -> float:
        """Effective Vth (volts) of the technology under ``bias``."""
        return self.technology.threshold_voltage + self.threshold_shift(bias)

    # -- transitions ------------------------------------------------------------

    def transition_time(self, area_mm2: float, bias_swing: float) -> float:
        """Time (seconds) to slew the well bias by ``bias_swing`` volts.

        The transition time grows with the biased well area (well
        capacitance) and with the voltage swing; the constant is
        calibrated against the 5mm^2 / 1.3V / <1us data point.
        """
        check_positive("area_mm2", area_mm2)
        check_non_negative("bias_swing", bias_swing)
        reference_swing = 1.3
        return BIAS_TRANSITION_TIME_PER_MM2 * area_mm2 * (bias_swing / reference_swing)

    # -- sleep mode --------------------------------------------------------------

    def sleep_leakage_fraction(self, rbb_magnitude: float | None = None) -> float:
        """Fraction of active leakage remaining in RBB sleep mode.

        The full order-of-magnitude reduction reported for UTBB FD-SOI
        requires about :data:`RBB_FULL_REDUCTION_BIAS` volts of reverse
        bias; smaller bias magnitudes (or technologies with a narrow
        bias range, like bulk) interpolate geometrically, so a bulk
        device with a +/-0.3V well range keeps most of its leakage.
        """
        if not self.technology.supports_reverse_body_bias:
            return 1.0
        available = self.usable_reverse_bias
        magnitude = (
            available if rbb_magnitude is None else min(abs(rbb_magnitude), available)
        )
        exponent = min(1.0, magnitude / RBB_FULL_REDUCTION_BIAS)
        return RBB_SLEEP_LEAKAGE_REDUCTION ** (-exponent)
