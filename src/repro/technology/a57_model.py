"""Calibrated Cortex-A57 voltage/frequency/power model (Figure 1).

This is the core-level model the rest of the study consumes.  For a
requested core frequency it returns the full operating point:

* the minimum supply voltage that sustains the frequency (clamped at
  the technology's minimum functional voltage -- the L1 SRAM limit the
  paper reports at 0.5V),
* the body-bias setting (none, fixed, or power-optimal within the
  usable FBB range),
* dynamic, leakage and total power per core and per chip.

Calibration targets (the paper's Figure 1 anchors):

* FD-SOI reaches roughly 3.5GHz at nominal voltage and ~100MHz at 0.5V;
  with forward body bias the 0.5V frequency exceeds 500MHz.
* Bulk cannot operate at 0.5V (SRAM timing) and needs a higher voltage
  than FD-SOI at every frequency.
* The 36-core chip peaks around 175W at the top of the frequency range
  and sits inside the 100W chip budget at the 2GHz nominal point.
* At the same frequency:  P(bulk) > P(FD-SOI) >= P(FD-SOI+FBB), with the
  relative saving of the FD-SOI flavours over bulk growing as the
  voltage drops towards the near-threshold region.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

from repro.technology.body_bias import BodyBiasModel
from repro.technology.dynamic_power import DynamicPowerModel
from repro.technology.leakage import LeakageModel
from repro.technology.process import (
    FDSOI_28NM,
    FDSOI_28NM_FBB,
    ProcessTechnology,
)
from repro.technology.vf_curve import TransregionalVFModel
from repro.utils.validation import check_fraction, check_positive


class BodyBiasPolicy(enum.Enum):
    """How the forward body bias is chosen per operating point."""

    NONE = "none"
    """Zero body bias (plain bulk or plain FD-SOI operation)."""

    FIXED = "fixed"
    """A constant forward bias (the classic 'FD-SOI + FBB' curve)."""

    OPTIMAL = "optimal"
    """Per-operating-point bias minimising total core power."""


@dataclass(frozen=True)
class CoreOperatingPoint:
    """Fully-resolved operating point of one core."""

    frequency_hz: float
    vdd: float
    body_bias: float
    dynamic_power: float
    leakage_power: float

    @property
    def total_power(self) -> float:
        """Total per-core power in watts."""
        return self.dynamic_power + self.leakage_power

    @property
    def energy_per_cycle(self) -> float:
        """Total energy per clock cycle in joules."""
        if self.frequency_hz <= 0.0:
            return 0.0
        return self.total_power / self.frequency_hz

    @property
    def leakage_fraction(self) -> float:
        """Leakage share of total power (0 when the core is off)."""
        total = self.total_power
        if total <= 0.0:
            return 0.0
        return self.leakage_power / total


@dataclass(frozen=True)
class CortexA57PowerModel:
    """Calibrated A57-class core model for one process flavour.

    Parameters
    ----------
    technology:
        Process flavour; use :data:`repro.technology.process.FDSOI_28NM_FBB`
        together with a FIXED or OPTIMAL policy for the body-biased curve.
    bias_policy:
        Body-bias policy (see :class:`BodyBiasPolicy`).
    fixed_body_bias:
        Forward bias used by the FIXED policy, volts.
    temperature_kelvin:
        Junction temperature used for delay and leakage.
    dynamic:
        Switching power model; default calibrated for an A57 at 28nm.
    """

    technology: ProcessTechnology = FDSOI_28NM
    bias_policy: BodyBiasPolicy = BodyBiasPolicy.NONE
    fixed_body_bias: float = 1.5
    temperature_kelvin: float = 330.0
    dynamic: DynamicPowerModel = field(default_factory=DynamicPowerModel)
    leakage_vth_slope: float = 0.065

    def __post_init__(self) -> None:
        check_positive("temperature_kelvin", self.temperature_kelvin)
        check_positive("fixed_body_bias", self.fixed_body_bias)
        if (
            self.bias_policy is BodyBiasPolicy.FIXED
            and self.fixed_body_bias > self.technology.body_bias_max
        ):
            raise ValueError(
                f"fixed body bias {self.fixed_body_bias}V exceeds the "
                f"{self.technology.name} range (max {self.technology.body_bias_max}V)"
            )

    # -- component models -------------------------------------------------------
    # The component models are immutable and depend only on constructor
    # fields, so they are built once per instance (the sweep engine calls
    # operating_point thousands of times per flavour).

    @cached_property
    def vf_model(self) -> TransregionalVFModel:
        """The transregional voltage-frequency model for this flavour."""
        return TransregionalVFModel(self.technology, self.temperature_kelvin)

    @cached_property
    def body_bias_model(self) -> BodyBiasModel:
        """The body-bias model for this flavour."""
        return BodyBiasModel(self.technology)

    @cached_property
    def leakage_model(self) -> LeakageModel:
        """The leakage model for this flavour."""
        return LeakageModel(self.technology, vth_slope=self.leakage_vth_slope)

    @cached_property
    def _candidate_bias_grid(self) -> tuple:
        return self._candidate_biases()

    # -- candidate biases ---------------------------------------------------------

    def _candidate_biases(self) -> tuple:
        if self.bias_policy is BodyBiasPolicy.NONE:
            return (0.0,)
        if self.bias_policy is BodyBiasPolicy.FIXED:
            return (min(self.fixed_body_bias, self.body_bias_model.usable_forward_bias),)
        # OPTIMAL: scan the usable forward-bias range on a fine grid.
        maximum = self.body_bias_model.usable_forward_bias
        steps = 32
        return tuple(maximum * index / steps for index in range(steps + 1))

    def _operating_point_at_bias(
        self, frequency_hz: float, bias: float, activity: float
    ) -> CoreOperatingPoint | None:
        vf_model = self.vf_model
        technology = self.technology
        maximum_frequency = vf_model.max_frequency(technology.nominal_vdd, bias)
        if frequency_hz > maximum_frequency:
            return None
        vdd = vf_model.vdd_for_frequency(frequency_hz, body_bias=bias)
        vdd = max(vdd, technology.min_functional_vdd)
        vth_eff = vf_model.effective_threshold(bias)
        dynamic_power = self.dynamic.power(vdd, frequency_hz, activity)
        leakage_power = self.leakage_model.power(
            vdd, vth_eff=vth_eff, temperature_kelvin=self.temperature_kelvin
        )
        return CoreOperatingPoint(
            frequency_hz=frequency_hz,
            vdd=vdd,
            body_bias=bias,
            dynamic_power=dynamic_power,
            leakage_power=leakage_power,
        )

    # -- public API ----------------------------------------------------------------

    def max_frequency(self) -> float:
        """Highest frequency reachable at nominal voltage (best allowed bias)."""
        best = 0.0
        for bias in self._candidate_bias_grid:
            best = max(
                best,
                self.vf_model.max_frequency(self.technology.nominal_vdd, bias),
            )
        return best

    def min_voltage_frequency(self) -> float:
        """Highest frequency reachable at the minimum functional voltage.

        This is the Figure 1 anchor: ~100MHz for plain FD-SOI at 0.5V,
        above 500MHz with forward body bias.
        """
        best = 0.0
        for bias in self._candidate_bias_grid:
            best = max(
                best,
                self.vf_model.max_frequency(self.technology.min_functional_vdd, bias),
            )
        return best

    def operating_point(
        self, frequency_hz: float, activity: float = 1.0
    ) -> CoreOperatingPoint:
        """Resolve the lowest-power operating point for ``frequency_hz``.

        Raises
        ------
        ValueError
            If the frequency is not reachable by this flavour within the
            nominal-voltage and body-bias limits.
        """
        check_positive("frequency_hz", frequency_hz)
        check_fraction("activity", activity)
        best: CoreOperatingPoint | None = None
        for bias in self._candidate_bias_grid:
            candidate = self._operating_point_at_bias(frequency_hz, bias, activity)
            if candidate is None:
                continue
            if best is None or candidate.total_power < best.total_power:
                best = candidate
        if best is None:
            raise ValueError(
                f"{self.technology.name} ({self.bias_policy.value} bias) cannot reach "
                f"{frequency_hz / 1e6:.0f}MHz at nominal voltage"
            )
        return best

    def core_power(self, frequency_hz: float, activity: float = 1.0) -> float:
        """Total per-core power in watts at ``frequency_hz``."""
        return self.operating_point(frequency_hz, activity).total_power

    def chip_core_power(
        self, frequency_hz: float, core_count: int, activity: float = 1.0
    ) -> float:
        """Aggregate power of ``core_count`` identical cores in watts."""
        if core_count <= 0:
            raise ValueError(f"core_count must be positive, got {core_count}")
        return self.core_power(frequency_hz, activity) * core_count

    def is_reachable(self, frequency_hz: float) -> bool:
        """True when ``frequency_hz`` is reachable by this flavour."""
        try:
            self.operating_point(frequency_hz)
        except ValueError:
            return False
        return True


def default_flavour_models() -> dict:
    """The three Figure 1 flavours with their conventional policies.

    Returns a mapping from flavour label to a configured
    :class:`CortexA57PowerModel`:

    * ``"bulk"``        -- bulk 28nm, no body bias;
    * ``"fdsoi"``       -- FD-SOI 28nm, no body bias;
    * ``"fdsoi-fbb"``   -- FD-SOI 28nm with power-optimal forward bias.
    """
    from repro.technology.process import BULK_28NM

    return {
        "bulk": CortexA57PowerModel(
            technology=BULK_28NM, bias_policy=BodyBiasPolicy.NONE
        ),
        "fdsoi": CortexA57PowerModel(
            technology=FDSOI_28NM, bias_policy=BodyBiasPolicy.NONE
        ),
        "fdsoi-fbb": CortexA57PowerModel(
            technology=FDSOI_28NM_FBB,
            bias_policy=BodyBiasPolicy.OPTIMAL,
            fixed_body_bias=1.5,
        ),
    }
