"""Core-generation scaling and DVFS calibration anchors.

The paper builds its Cortex-A57 model indirectly: it starts from a
measured Cortex-A9 implementation in STM 28nm bulk and FD-SOI, then
scales it to an A57 using the frequency ratios observed across the
Samsung Exynos processor family at the same voltage (the A57 is on
average 1.17x faster than the A9, the A53 1.08x), and uses the Exynos
5433 DVFS table for active/static energy-per-cycle anchors.

This module encodes those published anchors so the calibrated
:class:`repro.technology.a57_model.CortexA57PowerModel` can be traced
back to them and so tests can check the scaling arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.utils.interpolation import PiecewiseLinear, monotone_increasing
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DVFSAnchor:
    """One operating point of a published DVFS table."""

    frequency_hz: float
    voltage: float

    def __post_init__(self) -> None:
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("voltage", self.voltage)


# Public approximate DVFS operating points of the Samsung Exynos 5433
# big (Cortex-A57) cluster, used by the paper as voltage/frequency
# calibration anchors ("The frequency/voltage information can be
# extracted from the Linux CPUFreq drivers").
EXYNOS_5433_DVFS_TABLE: tuple = (
    DVFSAnchor(frequency_hz=0.5e9, voltage=0.80),
    DVFSAnchor(frequency_hz=0.7e9, voltage=0.85),
    DVFSAnchor(frequency_hz=0.9e9, voltage=0.90),
    DVFSAnchor(frequency_hz=1.1e9, voltage=0.95),
    DVFSAnchor(frequency_hz=1.3e9, voltage=1.00),
    DVFSAnchor(frequency_hz=1.5e9, voltage=1.05),
    DVFSAnchor(frequency_hz=1.7e9, voltage=1.10),
    DVFSAnchor(frequency_hz=1.9e9, voltage=1.20),
)


@dataclass(frozen=True)
class CoreGenerationScaling:
    """Frequency scaling between Cortex-A9 and newer ARM cores.

    The ratios capture the pipeline-length / critical-path differences
    the paper extracts by comparing voltage-to-frequency ratios across
    the Exynos family: at the same voltage an A57 clocks on average
    1.17x higher than an A9 and an A53 1.08x higher.
    """

    a57_over_a9: float = 1.17
    a53_over_a9: float = 1.08

    def __post_init__(self) -> None:
        check_positive("a57_over_a9", self.a57_over_a9)
        check_positive("a53_over_a9", self.a53_over_a9)

    def a9_to_a57_frequency(self, frequency_hz: float) -> float:
        """Frequency an A57 reaches at the voltage where an A9 reaches ``frequency_hz``."""
        return frequency_hz * self.a57_over_a9

    def a57_to_a9_frequency(self, frequency_hz: float) -> float:
        """Inverse of :meth:`a9_to_a57_frequency`."""
        return frequency_hz / self.a57_over_a9

    def a9_to_a53_frequency(self, frequency_hz: float) -> float:
        """Frequency an A53 reaches at the voltage where an A9 reaches ``frequency_hz``."""
        return frequency_hz * self.a53_over_a9

    def scale_dvfs_table(
        self, anchors: Sequence[DVFSAnchor], ratio: float
    ) -> tuple:
        """Scale the frequency axis of a DVFS table by ``ratio``."""
        check_positive("ratio", ratio)
        return tuple(
            DVFSAnchor(frequency_hz=anchor.frequency_hz * ratio, voltage=anchor.voltage)
            for anchor in anchors
        )


def dvfs_voltage_curve(anchors: Sequence[DVFSAnchor]) -> PiecewiseLinear:
    """Build a voltage(frequency) piecewise-linear curve from DVFS anchors.

    Raises
    ------
    ValueError
        If the anchors are not sorted by strictly increasing frequency
        or the voltages are not non-decreasing (a malformed table).
    """
    frequencies = [anchor.frequency_hz for anchor in anchors]
    voltages = [anchor.voltage for anchor in anchors]
    if not monotone_increasing(frequencies, strict=True):
        raise ValueError("DVFS anchors must have strictly increasing frequencies")
    if not monotone_increasing(voltages):
        raise ValueError("DVFS anchor voltages must be non-decreasing")
    return PiecewiseLinear(frequencies, voltages)
