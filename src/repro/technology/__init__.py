"""Process-technology models for near-threshold server processors.

This package implements the technology-level substrate of the paper:

* :mod:`repro.technology.process` -- named process flavours (28nm bulk,
  28nm UTBB FD-SOI, FD-SOI with forward body bias) and their electrical
  parameters.
* :mod:`repro.technology.vf_curve` -- a transregional delay model giving
  the maximum operating frequency as a function of supply voltage from
  the sub-threshold region up to nominal voltage, and its inverse.
* :mod:`repro.technology.body_bias` -- forward/reverse body-bias model
  (threshold-voltage shift, transition time, sleep-mode leakage
  reduction) for UTBB FD-SOI.
* :mod:`repro.technology.leakage` -- sub-threshold/gate leakage power
  model with temperature and body-bias dependence.
* :mod:`repro.technology.dynamic_power` -- switching (CV^2 f) power.
* :mod:`repro.technology.scaling` -- core-generation frequency scaling
  factors (Cortex-A9 -> A53/A57) and the Exynos-5433-style DVFS anchor
  table used for calibration.
* :mod:`repro.technology.a57_model` -- the calibrated Cortex-A57 core
  power/performance model used to reproduce Figure 1.
"""

from repro.technology.process import (
    ProcessTechnology,
    BULK_28NM,
    FDSOI_28NM,
    FDSOI_28NM_FBB,
    TECHNOLOGIES,
    technology_by_name,
)
from repro.technology.vf_curve import TransregionalVFModel
from repro.technology.body_bias import BodyBiasModel
from repro.technology.leakage import LeakageModel
from repro.technology.dynamic_power import DynamicPowerModel
from repro.technology.scaling import (
    CoreGenerationScaling,
    EXYNOS_5433_DVFS_TABLE,
    DVFSAnchor,
)
from repro.technology.a57_model import (
    CortexA57PowerModel,
    CoreOperatingPoint,
    BodyBiasPolicy,
    default_flavour_models,
)

__all__ = [
    "ProcessTechnology",
    "BULK_28NM",
    "FDSOI_28NM",
    "FDSOI_28NM_FBB",
    "TECHNOLOGIES",
    "technology_by_name",
    "TransregionalVFModel",
    "BodyBiasModel",
    "LeakageModel",
    "DynamicPowerModel",
    "CoreGenerationScaling",
    "EXYNOS_5433_DVFS_TABLE",
    "DVFSAnchor",
    "CortexA57PowerModel",
    "CoreOperatingPoint",
    "BodyBiasPolicy",
    "default_flavour_models",
]
