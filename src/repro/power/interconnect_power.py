"""Cluster crossbar interconnect power model.

Each cluster couples its four cores to the LLC banks through a
cache-coherent crossbar.  The paper estimates the network links and
switch fabric power at ~25mW per crossbar, based on prior on-chip
network characterisation work, and places the crossbar on the uncore
voltage domain (its power does not track the core DVFS point).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CrossbarPowerModel:
    """Power model of one cluster's cache-coherent crossbar.

    Parameters
    ----------
    static_power:
        Idle (clocked but not transferring) power in watts; the paper's
        aggregate 25mW per crossbar is dominated by this term.
    energy_per_flit:
        Energy per 64-bit flit traversal in joules.
    flit_bytes:
        Payload bytes carried by one flit.
    """

    static_power: float = 0.025
    energy_per_flit: float = 2.0e-12
    flit_bytes: int = 8

    def __post_init__(self) -> None:
        check_positive("static_power", self.static_power)
        check_positive("energy_per_flit", self.energy_per_flit)
        check_positive("flit_bytes", self.flit_bytes)

    def dynamic_power(self, bytes_per_second: float) -> float:
        """Dynamic power for the given traffic in watts."""
        check_non_negative("bytes_per_second", bytes_per_second)
        flits_per_second = bytes_per_second / self.flit_bytes
        return flits_per_second * self.energy_per_flit

    def total_power(self, bytes_per_second: float = 0.0) -> float:
        """Total crossbar power in watts for the given traffic."""
        return self.static_power + self.dynamic_power(bytes_per_second)
