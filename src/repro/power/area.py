"""Chip area model.

The paper sizes the server die at 300mm^2 and reports that "the server
die can accommodate 9 clusters before hitting the area limit"
(Section IV).  This module provides the per-component area estimates
that reproduce that packing result and lets ablations change the
cluster composition (e.g. the 16-core / 4MB cluster used to derive the
optimal core-to-cache ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import MB
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ComponentArea:
    """Area estimates (mm^2) of the building blocks of the server die."""

    core_mm2: float = 3.2
    """One Cortex-A57 core including its private L1 caches."""

    llc_mm2_per_mb: float = 4.0
    """LLC array plus tag/control area per megabyte."""

    crossbar_mm2: float = 1.0
    """Per-cluster cache-coherent crossbar."""

    peripherals_mm2: float = 30.0
    """Chip-edge I/O peripherals (memory controller PHYs, PCIe, NIC)."""

    def __post_init__(self) -> None:
        check_positive("core_mm2", self.core_mm2)
        check_positive("llc_mm2_per_mb", self.llc_mm2_per_mb)
        check_positive("crossbar_mm2", self.crossbar_mm2)
        check_non_negative("peripherals_mm2", self.peripherals_mm2)


@dataclass(frozen=True)
class ChipAreaModel:
    """Packs clusters into the die area budget.

    Parameters
    ----------
    die_area_mm2:
        Total die area budget (300mm^2 in the paper).
    components:
        Per-component area estimates.
    """

    die_area_mm2: float = 300.0
    components: ComponentArea = ComponentArea()

    def __post_init__(self) -> None:
        check_positive("die_area_mm2", self.die_area_mm2)

    def cluster_area(self, cores_per_cluster: int, llc_bytes: int) -> float:
        """Area of one cluster in mm^2."""
        check_positive("cores_per_cluster", cores_per_cluster)
        check_positive("llc_bytes", llc_bytes)
        llc_mb = llc_bytes / MB
        return (
            cores_per_cluster * self.components.core_mm2
            + llc_mb * self.components.llc_mm2_per_mb
            + self.components.crossbar_mm2
        )

    def available_cluster_area(self) -> float:
        """Die area left for clusters after the peripheral ring, mm^2."""
        return self.die_area_mm2 - self.components.peripherals_mm2

    def max_clusters(self, cores_per_cluster: int, llc_bytes: int) -> int:
        """Largest cluster count that fits in the die area budget."""
        cluster = self.cluster_area(cores_per_cluster, llc_bytes)
        return int(self.available_cluster_area() // cluster)

    def chip_area(
        self, cluster_count: int, cores_per_cluster: int, llc_bytes: int
    ) -> float:
        """Total occupied area in mm^2 for the given organisation."""
        check_positive("cluster_count", cluster_count)
        return (
            cluster_count * self.cluster_area(cores_per_cluster, llc_bytes)
            + self.components.peripherals_mm2
        )

    def fits(self, cluster_count: int, cores_per_cluster: int, llc_bytes: int) -> bool:
        """True when the organisation fits in the die area budget."""
        return (
            self.chip_area(cluster_count, cores_per_cluster, llc_bytes)
            <= self.die_area_mm2
        )
