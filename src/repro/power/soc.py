"""SoC (processor-die) power aggregation: cores + uncore.

This is the scope used by Figures 3b and 4b: the chip's cores at their
DVFS operating point plus the fixed-voltage-domain uncore (LLCs,
crossbars, I/O peripherals).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.uncore import UncorePowerModel
from repro.technology.a57_model import CoreOperatingPoint, CortexA57PowerModel
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class SoCPowerBreakdown:
    """Power breakdown of the processor die at one operating point."""

    core_power: float
    llc_power: float
    crossbar_power: float
    peripheral_power: float

    @property
    def uncore_power(self) -> float:
        """Total uncore power in watts."""
        return self.llc_power + self.crossbar_power + self.peripheral_power

    @property
    def total(self) -> float:
        """Total SoC power in watts."""
        return self.core_power + self.uncore_power


@dataclass(frozen=True)
class SoCPowerModel:
    """Processor-die power model.

    Parameters
    ----------
    core_model:
        Calibrated per-core technology/power model.
    uncore:
        Uncore power model (LLCs + crossbars + peripherals).
    core_count:
        Total cores on the die (36 in the paper: 9 clusters x 4 cores).
    """

    core_model: CortexA57PowerModel = field(default_factory=CortexA57PowerModel)
    uncore: UncorePowerModel = field(default_factory=UncorePowerModel)
    core_count: int = 36

    def __post_init__(self) -> None:
        check_positive("core_count", self.core_count)

    def breakdown(
        self,
        core_frequency_hz: float,
        activity: float = 1.0,
        llc_accesses_per_second: float = 1.0e8,
        crossbar_bytes_per_second: float = 0.0,
        io_utilization: float = 1.0,
        operating_point: CoreOperatingPoint | None = None,
    ) -> SoCPowerBreakdown:
        """Power breakdown at the given core frequency and activity.

        ``operating_point`` lets batched sweeps pass a memoized core
        operating point for (``core_frequency_hz``, ``activity``)
        instead of re-running the body-bias scan per call.
        """
        check_positive("core_frequency_hz", core_frequency_hz)
        check_fraction("activity", activity)
        if operating_point is None:
            operating_point = self.core_model.operating_point(
                core_frequency_hz, activity
            )
        core_voltage_ratio = (
            operating_point.vdd / self.core_model.technology.nominal_vdd
        )
        uncore_parts = self.uncore.breakdown(
            llc_accesses_per_second, crossbar_bytes_per_second, io_utilization
        )
        scale = 1.0
        if self.uncore.voltage_scales_with_core:
            scale = core_voltage_ratio * core_voltage_ratio
        return SoCPowerBreakdown(
            core_power=operating_point.total_power * self.core_count,
            llc_power=uncore_parts["llc"] * scale,
            crossbar_power=uncore_parts["crossbar"] * scale,
            peripheral_power=uncore_parts["peripherals"] * scale,
        )

    def core_power(self, core_frequency_hz: float, activity: float = 1.0) -> float:
        """Aggregate core power in watts at the given operating point."""
        return self.core_model.chip_core_power(
            core_frequency_hz, self.core_count, activity
        )

    def total_power(
        self,
        core_frequency_hz: float,
        activity: float = 1.0,
        llc_accesses_per_second: float = 1.0e8,
        crossbar_bytes_per_second: float = 0.0,
        io_utilization: float = 1.0,
        operating_point: CoreOperatingPoint | None = None,
    ) -> float:
        """Total SoC power in watts at the given operating point."""
        return self.breakdown(
            core_frequency_hz,
            activity,
            llc_accesses_per_second,
            crossbar_bytes_per_second,
            io_utilization,
            operating_point=operating_point,
        ).total
