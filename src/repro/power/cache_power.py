"""CACTI-style last-level-cache power model.

The paper uses CACTI / CACTI-P to size the LLC power: "A 1MB slice of
the LLC dissipates power in the order of 500mW, mostly due to leakage",
already accounting for cutting-edge leakage-reduction techniques, and
assumes the LLC sits on a voltage/clock domain separate from the cores
so its power does not scale with the core DVFS point.

The model exposes:

* a leakage term proportional to capacity (with an optional
  leakage-reduction factor standing in for CACTI-P's sleep transistors),
* a small dynamic term proportional to the access rate, and
* the total power of one cluster's LLC and of the whole chip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import MB
from repro.utils.validation import check_fraction, check_non_negative, check_positive


@dataclass(frozen=True)
class CachePowerModel:
    """Power model of an SRAM last-level cache.

    Parameters
    ----------
    capacity_bytes:
        Cache capacity in bytes (the paper's cluster LLC is 4MB).
    leakage_per_mb:
        Leakage power per megabyte in watts.  Calibrated to 0.45W/MB so
        that leakage plus the nominal dynamic component lands at the
        paper's ~500mW per 1MB slice.
    dynamic_energy_per_access:
        Energy per LLC access in joules (read or write of a 64B line).
    leakage_reduction:
        Fraction of leakage removed by CACTI-P style leakage-reduction
        techniques for the *idle* portions of the array; 0 disables it.
        The calibrated leakage_per_mb value is quoted after reduction,
        so the default is 0.
    """

    capacity_bytes: int = 4 * MB
    leakage_per_mb: float = 0.45
    dynamic_energy_per_access: float = 0.6e-9
    leakage_reduction: float = 0.0

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("leakage_per_mb", self.leakage_per_mb)
        check_positive("dynamic_energy_per_access", self.dynamic_energy_per_access)
        check_fraction("leakage_reduction", self.leakage_reduction)

    @property
    def capacity_mb(self) -> float:
        """Capacity in megabytes."""
        return self.capacity_bytes / MB

    def leakage_power(self) -> float:
        """Static power of the array in watts."""
        return self.capacity_mb * self.leakage_per_mb * (1.0 - self.leakage_reduction)

    def dynamic_power(self, accesses_per_second: float) -> float:
        """Dynamic power in watts at the given access rate."""
        check_non_negative("accesses_per_second", accesses_per_second)
        return accesses_per_second * self.dynamic_energy_per_access

    def total_power(self, accesses_per_second: float = 1.0e8) -> float:
        """Total power in watts; the default access rate reproduces the
        ~500mW-per-MB figure for a moderately loaded 1MB slice."""
        return self.leakage_power() + self.dynamic_power(accesses_per_second)

    def power_per_mb(self, accesses_per_second: float = 1.0e8) -> float:
        """Average power per megabyte at the given access rate."""
        return self.total_power(accesses_per_second) / self.capacity_mb
