"""Chip-edge I/O peripheral power model (McPAT substitute).

The paper models the processor's I/O peripherals (memory controllers'
PHY, PCIe, network interfaces, misc. system logic) with McPAT following
a Sun UltraSPARC T2 configuration, "resulting in 5W", constant with
respect to the core voltage/frequency point.

Instead of embedding McPAT we provide an analytical breakdown whose
components sum to the same 5W aggregate, so the aggregate and its
composition are both inspectable and can be varied in ablations (e.g.
energy-proportional I/O in the discussion section).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.utils.validation import check_fraction, check_non_negative


@dataclass(frozen=True)
class PeripheralComponent:
    """One I/O peripheral block.

    ``idle_fraction`` is the fraction of the block's peak power burned
    regardless of utilisation (non-energy-proportional share).
    """

    name: str
    peak_power: float
    idle_fraction: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("peak_power", self.peak_power)
        check_fraction("idle_fraction", self.idle_fraction)

    def power(self, utilization: float = 0.0) -> float:
        """Power in watts at the given utilisation (0..1)."""
        check_fraction("utilization", utilization)
        idle = self.peak_power * self.idle_fraction
        proportional = self.peak_power * (1.0 - self.idle_fraction)
        return idle + proportional * utilization


def _default_t2_components() -> Tuple[PeripheralComponent, ...]:
    """Sun UltraSPARC T2 style I/O configuration summing to 5W."""
    return (
        PeripheralComponent("memory-controller-phy", peak_power=1.8, idle_fraction=0.85),
        PeripheralComponent("pcie-controller", peak_power=1.2, idle_fraction=0.90),
        PeripheralComponent("network-interface", peak_power=1.1, idle_fraction=0.90),
        PeripheralComponent("misc-system-logic", peak_power=0.9, idle_fraction=1.00),
    )


@dataclass(frozen=True)
class IOPeripheralPowerModel:
    """Aggregate I/O peripheral power of the server die.

    With the default (McPAT / UltraSPARC T2 style) component set the
    model reproduces the paper's 5W constant: the components' peak
    powers sum to 5W and their idle fractions are high enough that the
    total barely moves with utilisation, mirroring the paper's
    assumption of a constant peripheral power.
    """

    components: Tuple[PeripheralComponent, ...] = field(
        default_factory=_default_t2_components
    )

    @property
    def peak_power(self) -> float:
        """Sum of component peak powers in watts."""
        return sum(component.peak_power for component in self.components)

    def power(self, utilization: float = 1.0) -> float:
        """Total peripheral power in watts at the given I/O utilisation."""
        return sum(component.power(utilization) for component in self.components)

    def breakdown(self, utilization: float = 1.0) -> dict:
        """Per-component power in watts at the given utilisation."""
        return {
            component.name: component.power(utilization)
            for component in self.components
        }

    def scaled(self, factor: float) -> "IOPeripheralPowerModel":
        """Return a copy with every component's peak power scaled.

        Used by energy-proportionality ablations that posit more (or
        less) efficient I/O.
        """
        check_non_negative("factor", factor)
        return IOPeripheralPowerModel(
            components=tuple(
                PeripheralComponent(
                    name=component.name,
                    peak_power=component.peak_power * factor,
                    idle_fraction=component.idle_fraction,
                )
                for component in self.components
            )
        )
