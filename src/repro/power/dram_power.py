"""DDR4 memory power model (Micron power-calculator substitute).

The paper characterises an 8-bit-wide ("x8") 4Gbit DDR4 chip at a
1.6GHz clock with three energies (Table I):

    E_IDLE  = 0.0728 nJ/cycle     (background / standby energy)
    E_READ  = 0.2566 nJ/byte
    E_WRITE = 0.2495 nJ/byte

and notes: "in order to calculate the total power consumption, we scale
these numbers to match the number of ranks in the system and the
application's memory bandwidth consumption."

The server has four DDR4-1600 channels (25.6GB/s peak each), four ranks
per channel and eight x8 4Gbit chips per rank, for 64GB total.

This module also ships an LPDDR4-like profile (much lower background
energy) used by the energy-proportionality ablation the discussion
section suggests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB
from repro.utils.validation import check_non_negative, check_positive

NJ = 1.0e-9


@dataclass(frozen=True)
class DramChipEnergyProfile:
    """Energy characteristics of a single DRAM chip (Table I format).

    Attributes
    ----------
    name:
        Profile label, e.g. ``"ddr4-4gbit-x8"``.
    idle_energy_per_cycle:
        Background energy per memory-clock cycle, joules (E_IDLE).
    read_energy_per_byte:
        Energy per byte read from this chip, joules (E_READ).
    write_energy_per_byte:
        Energy per byte written to this chip, joules (E_WRITE).
    capacity_bits:
        Chip capacity in bits.
    data_width_bits:
        Chip interface width ("x8" -> 8).
    clock_hz:
        Memory clock at which the idle energy is quoted.
    """

    name: str
    idle_energy_per_cycle: float
    read_energy_per_byte: float
    write_energy_per_byte: float
    capacity_bits: int = 4 * 1024**3
    data_width_bits: int = 8
    clock_hz: float = 1.6e9

    def __post_init__(self) -> None:
        check_positive("idle_energy_per_cycle", self.idle_energy_per_cycle)
        check_positive("read_energy_per_byte", self.read_energy_per_byte)
        check_positive("write_energy_per_byte", self.write_energy_per_byte)
        check_positive("capacity_bits", self.capacity_bits)
        check_positive("data_width_bits", self.data_width_bits)
        check_positive("clock_hz", self.clock_hz)

    @property
    def background_power(self) -> float:
        """Background (idle) power of one chip in watts."""
        return self.idle_energy_per_cycle * self.clock_hz

    @property
    def capacity_bytes(self) -> int:
        """Chip capacity in bytes."""
        return self.capacity_bits // 8


DDR4_4GBIT_X8 = DramChipEnergyProfile(
    name="ddr4-4gbit-x8",
    idle_energy_per_cycle=0.0728 * NJ,
    read_energy_per_byte=0.2566 * NJ,
    write_energy_per_byte=0.2495 * NJ,
)
"""The paper's Table I DDR4 profile (Micron 4Gbit x8 at 1.6GHz)."""


LPDDR4_4GBIT_X8 = DramChipEnergyProfile(
    name="lpddr4-4gbit-x8",
    idle_energy_per_cycle=0.0110 * NJ,
    read_energy_per_byte=0.2900 * NJ,
    write_energy_per_byte=0.2850 * NJ,
)
"""Mobile-DRAM-like profile: background energy cut by ~6.6x at slightly
higher per-access energy, following the energy-proportional-memory
direction the paper's discussion cites (Malladi et al., ISCA 2012)."""


DRAM_CHIPS = {
    DDR4_4GBIT_X8.name: DDR4_4GBIT_X8,
    LPDDR4_4GBIT_X8.name: LPDDR4_4GBIT_X8,
}
"""Registry of the DRAM chip energy profiles studied in the paper."""


def dram_chip_by_name(name: str) -> DramChipEnergyProfile:
    """Look up a DRAM chip energy profile by name.

    Raises
    ------
    KeyError
        If ``name`` is not one of the registered profiles.
    """
    try:
        return DRAM_CHIPS[name]
    except KeyError:
        known = ", ".join(sorted(DRAM_CHIPS))
        raise KeyError(f"unknown DRAM chip {name!r}; known profiles: {known}") from None


@dataclass(frozen=True)
class MemoryOrganization:
    """Physical organisation of the server memory subsystem."""

    channels: int = 4
    ranks_per_channel: int = 4
    chips_per_rank: int = 8
    channel_peak_bandwidth: float = 25.6e9

    def __post_init__(self) -> None:
        check_positive("channels", self.channels)
        check_positive("ranks_per_channel", self.ranks_per_channel)
        check_positive("chips_per_rank", self.chips_per_rank)
        check_positive("channel_peak_bandwidth", self.channel_peak_bandwidth)

    @property
    def total_chips(self) -> int:
        """Number of DRAM chips in the system."""
        return self.channels * self.ranks_per_channel * self.chips_per_rank

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate peak bandwidth across all channels, bytes/s."""
        return self.channels * self.channel_peak_bandwidth

    def total_capacity_bytes(self, chip: DramChipEnergyProfile) -> int:
        """Total memory capacity in bytes for the given chip profile."""
        return self.total_chips * chip.capacity_bytes


DEFAULT_ORGANIZATION = MemoryOrganization()
"""The paper's memory organisation: 4 channels x 4 ranks x 8 chips = 64GB."""


@dataclass(frozen=True)
class MemoryPowerModel:
    """Server memory-subsystem power model.

    Total power = background power (all chips, constant, independent of
    the cores' DVFS point) + dynamic power proportional to the read and
    write bandwidth actually consumed by the application.
    """

    chip: DramChipEnergyProfile = DDR4_4GBIT_X8
    organization: MemoryOrganization = DEFAULT_ORGANIZATION

    def background_power(self) -> float:
        """Constant background power of the whole memory system, watts."""
        return self.organization.total_chips * self.chip.background_power

    def dynamic_power(
        self, read_bandwidth: float, write_bandwidth: float = 0.0
    ) -> float:
        """Dynamic power in watts for the given read/write bandwidth (bytes/s).

        Raises
        ------
        ValueError
            If the combined bandwidth exceeds the organisation's peak.
        """
        check_non_negative("read_bandwidth", read_bandwidth)
        check_non_negative("write_bandwidth", write_bandwidth)
        total = read_bandwidth + write_bandwidth
        if total > self.organization.peak_bandwidth * (1.0 + 1e-9):
            raise ValueError(
                f"requested bandwidth {total / 1e9:.1f}GB/s exceeds the "
                f"{self.organization.peak_bandwidth / 1e9:.1f}GB/s peak"
            )
        return (
            read_bandwidth * self.chip.read_energy_per_byte
            + write_bandwidth * self.chip.write_energy_per_byte
        )

    def total_power(self, read_bandwidth: float, write_bandwidth: float = 0.0) -> float:
        """Background plus dynamic power in watts."""
        return self.background_power() + self.dynamic_power(
            read_bandwidth, write_bandwidth
        )

    def total_capacity_bytes(self) -> int:
        """Total installed capacity in bytes (64GB for the default)."""
        return self.organization.total_capacity_bytes(self.chip)

    def capacity_gb(self) -> float:
        """Total installed capacity in gigabytes."""
        return self.total_capacity_bytes() / GB

    def with_chip(self, chip: DramChipEnergyProfile) -> "MemoryPowerModel":
        """Return a copy of the model using a different chip profile."""
        return MemoryPowerModel(chip=chip, organization=self.organization)
