"""Server power aggregation: SoC + memory subsystem.

This is the scope used by Figures 3c and 4c.  The memory background
power does not scale with the core frequency, while the memory dynamic
power falls as the slower cores issue fewer references per unit time --
which pushes the server-level efficiency optimum to an even higher core
frequency than the SoC-level optimum (~1.2GHz for scale-out workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.dram_power import MemoryPowerModel
from repro.power.soc import SoCPowerBreakdown, SoCPowerModel
from repro.technology.a57_model import CoreOperatingPoint
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class ServerPowerBreakdown:
    """Power breakdown of the whole server at one operating point."""

    soc: SoCPowerBreakdown
    memory_background_power: float
    memory_dynamic_power: float

    @property
    def memory_power(self) -> float:
        """Total memory-subsystem power in watts."""
        return self.memory_background_power + self.memory_dynamic_power

    @property
    def total(self) -> float:
        """Total server power in watts."""
        return self.soc.total + self.memory_power


@dataclass(frozen=True)
class ServerPowerModel:
    """Whole-server power model: processor die plus DRAM."""

    soc: SoCPowerModel = field(default_factory=SoCPowerModel)
    memory: MemoryPowerModel = field(default_factory=MemoryPowerModel)

    def breakdown(
        self,
        core_frequency_hz: float,
        activity: float = 1.0,
        memory_read_bandwidth: float = 0.0,
        memory_write_bandwidth: float = 0.0,
        llc_accesses_per_second: float = 1.0e8,
        crossbar_bytes_per_second: float = 0.0,
        io_utilization: float = 1.0,
        operating_point: CoreOperatingPoint | None = None,
    ) -> ServerPowerBreakdown:
        """Power breakdown at the given operating point and memory traffic.

        ``operating_point`` optionally forwards a memoized core
        operating point to the SoC model (see
        :meth:`repro.power.soc.SoCPowerModel.breakdown`).
        """
        check_non_negative("memory_read_bandwidth", memory_read_bandwidth)
        check_non_negative("memory_write_bandwidth", memory_write_bandwidth)
        soc_breakdown = self.soc.breakdown(
            core_frequency_hz,
            activity,
            llc_accesses_per_second,
            crossbar_bytes_per_second,
            io_utilization,
            operating_point=operating_point,
        )
        return ServerPowerBreakdown(
            soc=soc_breakdown,
            memory_background_power=self.memory.background_power(),
            memory_dynamic_power=self.memory.dynamic_power(
                memory_read_bandwidth, memory_write_bandwidth
            ),
        )

    def total_power(
        self,
        core_frequency_hz: float,
        activity: float = 1.0,
        memory_read_bandwidth: float = 0.0,
        memory_write_bandwidth: float = 0.0,
        llc_accesses_per_second: float = 1.0e8,
        crossbar_bytes_per_second: float = 0.0,
        io_utilization: float = 1.0,
        operating_point: CoreOperatingPoint | None = None,
    ) -> float:
        """Total server power in watts at the given operating point."""
        return self.breakdown(
            core_frequency_hz,
            activity,
            memory_read_bandwidth,
            memory_write_bandwidth,
            llc_accesses_per_second,
            crossbar_bytes_per_second,
            io_utilization,
            operating_point=operating_point,
        ).total
