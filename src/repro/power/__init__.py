"""Component power models for the near-threshold server.

The paper decomposes server power into three scopes (Section V-B):

* **cores** -- the 36 Cortex-A57 cores, modelled by
  :mod:`repro.technology.a57_model`;
* **SoC** -- cores plus the *uncore*: per-cluster LLC slices and
  crossbars and the chip-edge I/O peripherals, all on a voltage/clock
  domain separate from the cores;
* **server** -- SoC plus the DDR4 memory subsystem.

This package provides the uncore and memory models and the aggregation
types used to compute power at each scope:

* :mod:`repro.power.cache_power` -- CACTI-style LLC power (leakage
  dominated, ~500mW per 1MB slice).
* :mod:`repro.power.interconnect_power` -- cluster crossbar power
  (~25mW per crossbar).
* :mod:`repro.power.peripherals` -- McPAT-style chip I/O peripherals
  (~5W, Sun UltraSPARC T2 configuration).
* :mod:`repro.power.dram_power` -- Micron-style DDR4 background and
  per-operation energy (Table I), plus an LPDDR4-like profile for the
  energy-proportionality ablation.
* :mod:`repro.power.area` -- chip area model (300mm^2 budget, 9 clusters).
* :mod:`repro.power.soc` / :mod:`repro.power.server` -- aggregation.
"""

from repro.power.cache_power import CachePowerModel
from repro.power.interconnect_power import CrossbarPowerModel
from repro.power.peripherals import IOPeripheralPowerModel, PeripheralComponent
from repro.power.dram_power import (
    DramChipEnergyProfile,
    DDR4_4GBIT_X8,
    LPDDR4_4GBIT_X8,
    MemoryOrganization,
    MemoryPowerModel,
)
from repro.power.area import ChipAreaModel, ComponentArea
from repro.power.uncore import UncorePowerModel
from repro.power.soc import SoCPowerModel, SoCPowerBreakdown
from repro.power.server import ServerPowerModel, ServerPowerBreakdown

__all__ = [
    "CachePowerModel",
    "CrossbarPowerModel",
    "IOPeripheralPowerModel",
    "PeripheralComponent",
    "DramChipEnergyProfile",
    "DDR4_4GBIT_X8",
    "LPDDR4_4GBIT_X8",
    "MemoryOrganization",
    "MemoryPowerModel",
    "ChipAreaModel",
    "ComponentArea",
    "UncorePowerModel",
    "SoCPowerModel",
    "SoCPowerBreakdown",
    "ServerPowerModel",
    "ServerPowerBreakdown",
]
