"""Uncore power aggregation.

The uncore comprises, per the paper (Section II-C2):

* the per-cluster LLC slices (CACTI-style, leakage dominated),
* the per-cluster cache-coherent crossbars (~25mW each), and
* the chip-edge I/O peripherals (~5W, McPAT / UltraSPARC T2 style),

all assumed to live on a voltage/clock domain separate from the cores so
that "their static and dynamic power consumption is not affected by the
cores voltage/frequency point".  This constant uncore floor is what
shifts the SoC-level efficiency optimum away from the lowest core
frequency (Figure 3b / 4b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.cache_power import CachePowerModel
from repro.power.interconnect_power import CrossbarPowerModel
from repro.power.peripherals import IOPeripheralPowerModel
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class UncorePowerModel:
    """Chip uncore power: LLCs, crossbars and peripherals.

    Parameters
    ----------
    cluster_count:
        Number of clusters on the die (9 in the paper).
    llc:
        Power model of one cluster's LLC.
    crossbar:
        Power model of one cluster's crossbar.
    peripherals:
        Chip-level I/O peripheral power model.
    voltage_scales_with_core:
        When True the uncore is assumed to share the cores' voltage
        domain and its power is scaled by the square of the core
        voltage ratio -- an ablation of the paper's fixed-domain
        assumption (Section V-C discussion).
    """

    cluster_count: int = 9
    llc: CachePowerModel = field(default_factory=CachePowerModel)
    crossbar: CrossbarPowerModel = field(default_factory=CrossbarPowerModel)
    peripherals: IOPeripheralPowerModel = field(default_factory=IOPeripheralPowerModel)
    voltage_scales_with_core: bool = False

    def __post_init__(self) -> None:
        check_positive("cluster_count", self.cluster_count)

    def cluster_uncore_power(
        self,
        llc_accesses_per_second: float = 1.0e8,
        crossbar_bytes_per_second: float = 0.0,
    ) -> float:
        """Power of one cluster's LLC + crossbar in watts."""
        check_non_negative("llc_accesses_per_second", llc_accesses_per_second)
        return self.llc.total_power(llc_accesses_per_second) + self.crossbar.total_power(
            crossbar_bytes_per_second
        )

    def power(
        self,
        llc_accesses_per_second: float = 1.0e8,
        crossbar_bytes_per_second: float = 0.0,
        io_utilization: float = 1.0,
        core_voltage_ratio: float = 1.0,
    ) -> float:
        """Total uncore power of the chip in watts.

        ``core_voltage_ratio`` is the ratio of the core supply voltage
        to its nominal value; it only has an effect when
        ``voltage_scales_with_core`` is set (ablation mode).
        """
        check_positive("core_voltage_ratio", core_voltage_ratio)
        total = (
            self.cluster_count
            * self.cluster_uncore_power(
                llc_accesses_per_second, crossbar_bytes_per_second
            )
            + self.peripherals.power(io_utilization)
        )
        if self.voltage_scales_with_core:
            total *= core_voltage_ratio * core_voltage_ratio
        return total

    def breakdown(
        self,
        llc_accesses_per_second: float = 1.0e8,
        crossbar_bytes_per_second: float = 0.0,
        io_utilization: float = 1.0,
    ) -> dict:
        """Per-component uncore power in watts."""
        return {
            "llc": self.cluster_count * self.llc.total_power(llc_accesses_per_second),
            "crossbar": self.cluster_count
            * self.crossbar.total_power(crossbar_bytes_per_second),
            "peripherals": self.peripherals.power(io_utilization),
        }
