"""Process-wide span tracing and counter registry.

The instrumentation switch is **off by default** and the off-path is a
no-op: :func:`trace` returns a shared null span and :func:`count` /
:func:`gauge` return before touching any state, so instrumented hot
paths pay one boolean check per event (the overhead-guard benchmark
``benchmarks/test_bench_obs_overhead.py`` pins the cost at under 2% of
a kernel fleet replay).

Three primitives:

* :func:`trace` -- a hierarchical span: a context manager recording
  wall time, nesting (parent id and depth, per thread), and tagged
  attributes (``with trace("batch.run", batch_size=B) as span: ...``;
  ``span.set(...)`` adds attributes discovered mid-span).
* :func:`count` / :func:`gauge` -- a process-wide counter/gauge
  registry keyed by dotted names (``context.memo_hits``,
  ``batch.fallback_replays``, ...).
* :func:`capture` -- the collection window: enables instrumentation on
  entry, and on exit yields exactly the spans started inside the window
  and the counter *deltas* accrued during it, so concurrent or repeated
  captures never see each other's events.

Everything is thread-safe: span entry/exit and counter updates take a
single module lock, and the span stack (which defines parent/child
nesting) is thread-local, so a thread-parallel sweep records a correct
forest.  The module has zero dependencies beyond the standard library.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: immutable once recorded.

    ``start_s`` is an absolute ``time.perf_counter`` reading; reports
    normalise it to the capture window's start.  ``parent_id`` is the
    ``span_id`` of the enclosing span on the same thread (``None`` for
    roots) and ``depth`` that thread's nesting level at entry.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    duration_s: float
    depth: int
    attributes: Mapping[str, object]


class _State:
    """The module-global instrumentation state."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.enabled = 0  # capture/enable nesting depth; 0 = off
        self.next_id = 0
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.local = threading.local()

    def stack(self) -> List["Span"]:
        stack = getattr(self.local, "stack", None)
        if stack is None:
            stack = []
            self.local.stack = stack
        return stack


_STATE = _State()


def is_enabled() -> bool:
    """True while at least one capture (or explicit enable) is open."""
    return _STATE.enabled > 0


def enable() -> None:
    """Switch instrumentation on (nests; prefer :func:`capture`)."""
    with _STATE.lock:
        _STATE.enabled += 1


def disable() -> None:
    """Undo one :func:`enable`; at zero the off-path is a no-op again."""
    with _STATE.lock:
        if _STATE.enabled > 0:
            _STATE.enabled -= 1


def reset() -> None:
    """Drop every recorded span and counter (test isolation helper)."""
    with _STATE.lock:
        _STATE.spans.clear()
        _STATE.counters.clear()


class _Suspended:
    """Force the off-path while open (see :func:`suspended`)."""

    __slots__ = ("_saved",)

    def __enter__(self) -> "_Suspended":
        with _STATE.lock:
            self._saved = _STATE.enabled
            _STATE.enabled = 0
        return self

    def __exit__(self, *exc: object) -> bool:
        with _STATE.lock:
            _STATE.enabled = self._saved
        return False


def suspended() -> _Suspended:
    """Force instrumentation off inside a ``with`` block.

    Open captures keep collecting once the block exits; events inside
    the block are simply never recorded.  This is how the overhead
    benchmark measures the true off-path under a capture-holding
    fixture -- production code should not need it.
    """
    return _Suspended()


class _NullSpan:
    """The shared no-op span returned while instrumentation is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attributes: object) -> None:
        """No-op twin of :meth:`Span.set`."""


_NULL_SPAN = _NullSpan()


class Span:
    """A live span; use via ``with trace(name, **attrs) as span:``."""

    __slots__ = (
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "depth",
        "_start",
    )

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self.name = name
        self.attributes = attributes

    def __enter__(self) -> "Span":
        state = _STATE
        stack = state.stack()
        with state.lock:
            self.span_id = state.next_id
            state.next_id += 1
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def set(self, **attributes: object) -> None:
        """Attach attributes discovered while the span is open."""
        self.attributes.update(attributes)

    def __exit__(self, *exc: object) -> bool:
        duration = time.perf_counter() - self._start
        stack = _STATE.stack()
        if stack and stack[-1] is self:
            stack.pop()
        record = SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start_s=self._start,
            duration_s=duration,
            depth=self.depth,
            attributes=dict(self.attributes),
        )
        with _STATE.lock:
            _STATE.spans.append(record)
        return False


def trace(name: str, **attributes: object):
    """A span context manager; the shared no-op span while disabled.

    Attribute values must be JSON-able scalars (str/int/float/bool/
    None) -- reports serialise them verbatim into strict JSON.
    """
    if not _STATE.enabled:
        return _NULL_SPAN
    return Span(name, attributes)


def count(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op while disabled)."""
    if not _STATE.enabled:
        return
    with _STATE.lock:
        _STATE.counters[name] = _STATE.counters.get(name, 0) + value


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op while disabled)."""
    if not _STATE.enabled:
        return
    with _STATE.lock:
        _STATE.counters[name] = value


def counters_snapshot() -> Dict[str, float]:
    """The registry's current cumulative values (copy)."""
    with _STATE.lock:
        return dict(_STATE.counters)


class Capture:
    """One collection window: spans started and counters accrued inside.

    Entering enables instrumentation (nested captures stack); exiting
    disables it again and freezes :attr:`spans`, :attr:`duration_s` and
    the counter deltas.  When the last open capture closes, the global
    span buffer is cleared so long-lived processes never grow it
    unboundedly.
    """

    def __init__(self) -> None:
        self.spans: Tuple[SpanRecord, ...] = ()
        self.duration_s = 0.0
        self._id_start = 0
        self._counter_start: Dict[str, float] = {}
        self._start = 0.0
        self._closed_deltas: Optional[Dict[str, float]] = None

    def __enter__(self) -> "Capture":
        with _STATE.lock:
            _STATE.enabled += 1
            self._id_start = _STATE.next_id
            self._counter_start = dict(_STATE.counters)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.duration_s = time.perf_counter() - self._start
        with _STATE.lock:
            _STATE.enabled -= 1
            collected = [
                span
                for span in _STATE.spans
                if span.span_id >= self._id_start
            ]
            if _STATE.enabled == 0:
                _STATE.spans.clear()
        collected.sort(key=lambda span: (span.start_s, span.span_id))
        self.spans = tuple(collected)
        self._closed_deltas = self.counter_deltas()
        return False

    @property
    def start_s(self) -> float:
        """The window's ``perf_counter`` origin (spans normalise to it)."""
        return self._start

    def counter_deltas(self) -> Dict[str, float]:
        """Counters accrued inside the window (live until exit).

        Integral values come back as ``int`` so reports serialise
        event counts without a spurious ``.0``.
        """
        if self._closed_deltas is not None:
            return dict(self._closed_deltas)
        current = counters_snapshot()
        deltas: Dict[str, float] = {}
        for name, value in current.items():
            delta = value - self._counter_start.get(name, 0)
            if delta != 0:
                deltas[name] = int(delta) if delta == int(delta) else delta
        return deltas

    def report(self, meta: Optional[Mapping[str, object]] = None):
        """The window as a frozen :class:`~repro.obs.report.RunReport`."""
        from repro.obs.report import RunReport

        return RunReport.from_capture(self, meta=meta)


def capture() -> Capture:
    """Open a collection window: ``with capture() as cap: ...``."""
    return Capture()
