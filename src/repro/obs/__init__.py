"""Zero-dependency instrumentation: spans, counters, run reports.

``repro.obs`` is the stack's single observability layer.  Hot paths
call :func:`trace` / :func:`count` unconditionally -- both are no-ops
until a :func:`capture` window is open -- and callers that want a
performance artifact wrap the work in a capture and freeze it into a
:class:`RunReport` (strict JSON + CLI tables).  See ``core`` for the
primitives and ``report`` for the schema; ``python -m repro.obs``
validates and pretty-prints emitted reports.
"""

from repro.obs.core import (
    Capture,
    Span,
    SpanRecord,
    capture,
    count,
    counters_snapshot,
    disable,
    enable,
    gauge,
    is_enabled,
    reset,
    suspended,
    trace,
)
from repro.obs.report import (
    SCHEMA,
    SCHEMA_VERSION,
    RunReport,
    validate_report,
)

__all__ = [
    "Capture",
    "RunReport",
    "SCHEMA",
    "SCHEMA_VERSION",
    "Span",
    "SpanRecord",
    "capture",
    "count",
    "counters_snapshot",
    "disable",
    "enable",
    "gauge",
    "is_enabled",
    "reset",
    "suspended",
    "trace",
    "validate_report",
]
