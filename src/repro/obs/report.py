"""Machine-readable run reports: frozen columnar spans + counters.

:class:`RunReport` freezes one :class:`~repro.obs.core.Capture` window
into plain columnar data -- parallel tuples per span field plus a
counter mapping -- and serialises it to **strict JSON** (no NaN or
Infinity, sorted keys) so CI can archive a performance artifact per
run and future perf PRs can diff against a pinned baseline.

``validate_report`` checks a decoded document against the schema
(exact top-level keys, column types, equal column lengths, finite
numbers) and raises a :class:`ValueError` naming the offending field;
``python -m repro.obs validate PATH`` wraps it for CI.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

SCHEMA = "repro.obs/run-report"
SCHEMA_VERSION = 1

SPAN_COLUMNS = (
    "name",
    "start_s",
    "duration_s",
    "depth",
    "parent",
    "attributes",
)
"""The span table's columns, in serialisation order."""


def _round(value: float) -> float:
    """9-significant-digit rounding (matches the golden fixtures')."""
    return float(f"{value:.9g}")


@dataclass(frozen=True)
class RunReport:
    """One run's instrumentation, frozen columnar.

    Span fields are parallel tuples indexed by span position (sorted
    by start time); ``parents`` holds the *position* of each span's
    parent in the same tuples (``None`` for roots), so consumers can
    rebuild the tree without id bookkeeping.  ``counters`` are the
    counter deltas accrued during the capture window.
    """

    duration_s: float
    names: Tuple[str, ...] = ()
    starts_s: Tuple[float, ...] = ()
    durations_s: Tuple[float, ...] = ()
    depths: Tuple[int, ...] = ()
    parents: Tuple[Optional[int], ...] = ()
    attributes: Tuple[Mapping[str, object], ...] = ()
    counters: Mapping[str, float] = field(default_factory=dict)
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {
            len(column)
            for column in (
                self.names,
                self.starts_s,
                self.durations_s,
                self.depths,
                self.parents,
                self.attributes,
            )
        }
        if len(lengths) > 1:
            raise ValueError(
                f"run report: span columns have mismatched lengths {sorted(lengths)}"
            )

    # -- construction --------------------------------------------------------------------

    @classmethod
    def from_capture(
        cls, capture, meta: Optional[Mapping[str, object]] = None
    ) -> "RunReport":
        """Freeze a closed :class:`~repro.obs.core.Capture` window."""
        spans = capture.spans
        positions = {span.span_id: index for index, span in enumerate(spans)}
        return cls(
            duration_s=_round(capture.duration_s),
            names=tuple(span.name for span in spans),
            starts_s=tuple(
                _round(span.start_s - capture.start_s) for span in spans
            ),
            durations_s=tuple(_round(span.duration_s) for span in spans),
            depths=tuple(span.depth for span in spans),
            parents=tuple(
                positions.get(span.parent_id) if span.parent_id is not None else None
                for span in spans
            ),
            attributes=tuple(dict(span.attributes) for span in spans),
            counters=capture.counter_deltas(),
            meta=dict(meta or {}),
        )

    @classmethod
    def merge(
        cls,
        reports: Sequence["RunReport"],
        meta: Optional[Mapping[str, object]] = None,
    ) -> "RunReport":
        """Concatenate several reports into one.

        Span start times are offset by the cumulative duration of the
        preceding reports (so ordering stays monotone), parent links
        are re-based, and counters are summed.
        """
        if not reports:
            raise ValueError("run report: cannot merge zero reports")
        if len(reports) == 1 and meta is None:
            return reports[0]
        names: List[str] = []
        starts: List[float] = []
        durations: List[float] = []
        depths: List[int] = []
        parents: List[Optional[int]] = []
        attributes: List[Mapping[str, object]] = []
        counters: Dict[str, float] = {}
        offset = 0.0
        for report in reports:
            base = len(names)
            names.extend(report.names)
            starts.extend(_round(start + offset) for start in report.starts_s)
            durations.extend(report.durations_s)
            depths.extend(report.depths)
            parents.extend(
                None if parent is None else parent + base
                for parent in report.parents
            )
            attributes.extend(report.attributes)
            for key, value in report.counters.items():
                counters[key] = counters.get(key, 0) + value
            offset += report.duration_s
        return cls(
            duration_s=_round(offset),
            names=tuple(names),
            starts_s=tuple(starts),
            durations_s=tuple(durations),
            depths=tuple(depths),
            parents=tuple(parents),
            attributes=tuple(attributes),
            counters=counters,
            meta=dict(meta or {}),
        )

    # -- access --------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.names)

    def spans(self) -> Iterator[Dict[str, object]]:
        """One dict per span, in start order."""
        for index in range(len(self.names)):
            yield {
                "name": self.names[index],
                "start_s": self.starts_s[index],
                "duration_s": self.durations_s[index],
                "depth": self.depths[index],
                "parent": self.parents[index],
                "attributes": dict(self.attributes[index]),
            }

    def spans_named(self, name: str) -> List[Dict[str, object]]:
        """Every span called ``name``, in start order."""
        return [span for span in self.spans() if span["name"] == name]

    # -- serialisation -------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The schema document (plain JSON-able types only)."""
        return {
            "schema": SCHEMA,
            "version": SCHEMA_VERSION,
            "meta": dict(self.meta),
            "duration_s": self.duration_s,
            "spans": {
                "name": list(self.names),
                "start_s": list(self.starts_s),
                "duration_s": list(self.durations_s),
                "depth": list(self.depths),
                "parent": list(self.parents),
                "attributes": [dict(attrs) for attrs in self.attributes],
            },
            "counters": dict(self.counters),
        }

    def to_json(self) -> str:
        """Strict JSON: sorted keys, NaN/Infinity rejected outright."""
        return json.dumps(
            self.to_dict(), indent=2, sort_keys=True, allow_nan=False
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunReport":
        """Rebuild a report from a validated schema document."""
        validate_report(data)
        spans = data["spans"]
        return cls(
            duration_s=float(data["duration_s"]),
            names=tuple(spans["name"]),
            starts_s=tuple(float(v) for v in spans["start_s"]),
            durations_s=tuple(float(v) for v in spans["duration_s"]),
            depths=tuple(int(v) for v in spans["depth"]),
            parents=tuple(
                None if v is None else int(v) for v in spans["parent"]
            ),
            attributes=tuple(dict(attrs) for attrs in spans["attributes"]),
            counters=dict(data["counters"]),
            meta=dict(data["meta"]),
        )

    # -- rendering -----------------------------------------------------------------------

    def render(self) -> str:
        """CLI tables: the span tree, per-name totals, and counters."""
        from repro.utils.tables import format_table

        lines = [f"run report: {len(self)} spans, {self.duration_s:.3f} s"]
        if self.names:
            lines.append("")
            lines.append(
                format_table(
                    ("span", "start (ms)", "wall (ms)", "attributes"),
                    [
                        (
                            "  " * self.depths[index] + self.names[index],
                            f"{self.starts_s[index] * 1e3:.1f}",
                            f"{self.durations_s[index] * 1e3:.2f}",
                            " ".join(
                                f"{key}={value}"
                                for key, value in sorted(
                                    self.attributes[index].items()
                                )
                            ),
                        )
                        for index in range(len(self))
                    ],
                )
            )
            totals: Dict[str, Tuple[int, float]] = {}
            for index, name in enumerate(self.names):
                count, wall = totals.get(name, (0, 0.0))
                totals[name] = (count + 1, wall + self.durations_s[index])
            lines.append("")
            lines.append(
                format_table(
                    ("span", "calls", "total (ms)", "share"),
                    [
                        (
                            name,
                            count,
                            f"{wall * 1e3:.2f}",
                            (
                                f"{wall / self.duration_s:.1%}"
                                if self.duration_s > 0
                                else "-"
                            ),
                        )
                        for name, (count, wall) in sorted(
                            totals.items(),
                            key=lambda item: -item[1][1],
                        )
                    ],
                )
            )
        if self.counters:
            lines.append("")
            lines.append(
                format_table(
                    ("counter", "value"),
                    [
                        (name, self.counters[name])
                        for name in sorted(self.counters)
                    ],
                )
            )
        return "\n".join(lines)


# -- validation ------------------------------------------------------------------------


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"run report: {message}")


def _check_finite_numbers(values, path: str, integral: bool = False) -> None:
    for index, value in enumerate(values):
        _check(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"{path}[{index}] must be a number, got {value!r}",
        )
        _check(
            math.isfinite(value), f"{path}[{index}] must be finite, got {value!r}"
        )
        if integral:
            _check(
                isinstance(value, int),
                f"{path}[{index}] must be an integer, got {value!r}",
            )


def validate_report(data: object) -> None:
    """Check a decoded report document; raise ValueError on violation."""
    _check(isinstance(data, dict), f"document must be an object, got {type(data).__name__}")
    expected_keys = {"schema", "version", "meta", "duration_s", "spans", "counters"}
    _check(
        set(data) == expected_keys,
        f"top-level keys {sorted(data)} != {sorted(expected_keys)}",
    )
    _check(data["schema"] == SCHEMA, f"schema {data['schema']!r} != {SCHEMA!r}")
    _check(
        data["version"] == SCHEMA_VERSION,
        f"version {data['version']!r} != {SCHEMA_VERSION}",
    )
    _check(isinstance(data["meta"], dict), "meta must be an object")
    duration = data["duration_s"]
    _check(
        isinstance(duration, (int, float))
        and not isinstance(duration, bool)
        and math.isfinite(duration)
        and duration >= 0,
        f"duration_s must be a finite non-negative number, got {duration!r}",
    )
    spans = data["spans"]
    _check(isinstance(spans, dict), "spans must be an object of columns")
    _check(
        set(spans) == set(SPAN_COLUMNS),
        f"span columns {sorted(spans)} != {sorted(SPAN_COLUMNS)}",
    )
    lengths = {name: len(spans[name]) for name in SPAN_COLUMNS}
    _check(
        len(set(lengths.values())) == 1,
        f"span columns have mismatched lengths {lengths}",
    )
    size = lengths["name"]
    for index, name in enumerate(spans["name"]):
        _check(
            isinstance(name, str) and name,
            f"spans.name[{index}] must be a non-empty string, got {name!r}",
        )
    _check_finite_numbers(spans["start_s"], "spans.start_s")
    _check_finite_numbers(spans["duration_s"], "spans.duration_s")
    _check_finite_numbers(spans["depth"], "spans.depth", integral=True)
    for index, parent in enumerate(spans["parent"]):
        _check(
            parent is None
            or (
                isinstance(parent, int)
                and not isinstance(parent, bool)
                and 0 <= parent < size
            ),
            f"spans.parent[{index}] must be null or a span position, got {parent!r}",
        )
        if parent is not None:
            _check(
                parent != index,
                f"spans.parent[{index}] points at itself",
            )
    for index, attrs in enumerate(spans["attributes"]):
        _check(
            isinstance(attrs, dict),
            f"spans.attributes[{index}] must be an object, got {type(attrs).__name__}",
        )
        for key, value in attrs.items():
            _check(
                isinstance(key, str),
                f"spans.attributes[{index}] key {key!r} must be a string",
            )
            _check(
                value is None or isinstance(value, (str, int, float, bool)),
                f"spans.attributes[{index}].{key} must be a JSON scalar, got {value!r}",
            )
            if isinstance(value, float):
                _check(
                    math.isfinite(value),
                    f"spans.attributes[{index}].{key} must be finite, got {value!r}",
                )
    counters = data["counters"]
    _check(isinstance(counters, dict), "counters must be an object")
    for name, value in counters.items():
        _check(
            isinstance(name, str) and name,
            f"counter name {name!r} must be a non-empty string",
        )
        _check(
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value),
            f"counters.{name} must be a finite number, got {value!r}",
        )
