"""CLI for run-report artifacts: ``python -m repro.obs {validate,show} PATH``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.report import RunReport, validate_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate and inspect repro.obs run-report JSON artifacts.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    validate = subparsers.add_parser(
        "validate", help="check a report file against the schema"
    )
    validate.add_argument("paths", nargs="+", help="report JSON file(s)")

    show = subparsers.add_parser(
        "show", help="render a report file as CLI tables"
    )
    show.add_argument("path", help="report JSON file")
    return parser


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle, parse_constant=_reject_constant)


def _reject_constant(token: str) -> float:
    raise ValueError(f"non-finite JSON constant {token!r} is not allowed")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "validate":
        failures = 0
        for path in args.paths:
            try:
                validate_report(_load(path))
            except (OSError, ValueError) as error:
                print(f"{path}: INVALID: {error}", file=sys.stderr)
                failures += 1
            else:
                print(f"{path}: ok")
        return 1 if failures else 0
    if args.command == "show":
        try:
            report = RunReport.from_dict(_load(args.path))
        except (OSError, ValueError) as error:
            print(f"{args.path}: INVALID: {error}", file=sys.stderr)
            return 1
        print(report.render())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
