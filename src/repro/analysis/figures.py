"""Data series behind the paper's figures.

Every function returns plain data (frequencies plus one or more named
series) so the benchmark harnesses can print the same rows/series the
paper plots, and tests can assert on the shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.config import ServerConfiguration, default_server
from repro.core.efficiency import EfficiencyAnalyzer, EfficiencyScope
from repro.core.qos import QosAnalyzer
from repro.technology.a57_model import default_flavour_models
from repro.utils.units import mhz
from repro.workloads.banking_vm import virtualized_workloads
from repro.workloads.cloudsuite import scale_out_workloads


@dataclass(frozen=True)
class FigureSeries:
    """One named (x, y) series of a figure."""

    label: str
    x_values: tuple
    y_values: tuple

    def __post_init__(self) -> None:
        if len(self.x_values) != len(self.y_values):
            raise ValueError("x and y series must have the same length")

    def as_rows(self) -> List[tuple]:
        """(x, y) pairs for table rendering."""
        return list(zip(self.x_values, self.y_values))


# -- Figure 1 ------------------------------------------------------------------------


def figure1_series(
    frequencies_hz: Sequence[float] | None = None,
    core_count: int = 36,
) -> Dict[str, Dict[str, FigureSeries]]:
    """Voltage and chip core power versus frequency per technology flavour.

    Returns ``{flavour: {"vdd": series, "power": series}}`` with
    frequencies in MHz on the x axis, matching the paper's Figure 1.
    Frequencies a flavour cannot reach are skipped for that flavour.
    """
    if frequencies_hz is None:
        frequencies_hz = [mhz(value) for value in range(100, 3501, 100)]
    result: Dict[str, Dict[str, FigureSeries]] = {}
    for label, model in default_flavour_models().items():
        xs, vdds, powers = [], [], []
        for frequency in frequencies_hz:
            if not model.is_reachable(frequency):
                continue
            operating_point = model.operating_point(frequency)
            xs.append(frequency / 1e6)
            vdds.append(operating_point.vdd)
            powers.append(operating_point.total_power * core_count)
        result[label] = {
            "vdd": FigureSeries(f"{label} Vdd", tuple(xs), tuple(vdds)),
            "power": FigureSeries(f"{label} Power", tuple(xs), tuple(powers)),
        }
    return result


# -- Figure 2 ------------------------------------------------------------------------


def figure2_series(
    configuration: ServerConfiguration | None = None,
    frequencies_hz: Sequence[float] | None = None,
) -> Dict[str, FigureSeries]:
    """99th-percentile latency normalised to QoS versus core frequency."""
    configuration = configuration or default_server()
    analyzer = QosAnalyzer(configuration)
    series = {}
    for name, workload in scale_out_workloads().items():
        result = analyzer.latency_curve(workload, frequencies_hz)
        xs = tuple(point.frequency_hz / 1e9 for point in result.points)
        ys = tuple(point.normalized_to_qos for point in result.points)
        series[name] = FigureSeries(name, xs, ys)
    return series


# -- Figures 3 and 4 --------------------------------------------------------------------


def _efficiency_series(
    workloads: Dict[str, object],
    scope: EfficiencyScope,
    configuration: ServerConfiguration,
    frequencies_hz: Sequence[float] | None,
) -> Dict[str, FigureSeries]:
    analyzer = EfficiencyAnalyzer(configuration)
    series = {}
    for name, workload in workloads.items():
        points = analyzer.curve(workload, scope, frequencies_hz)
        xs = tuple(point.frequency_hz / 1e9 for point in points)
        ys = tuple(point.efficiency_guips_per_watt for point in points)
        series[name] = FigureSeries(name, xs, ys)
    return series


def figure3_series(
    scope: EfficiencyScope,
    configuration: ServerConfiguration | None = None,
    frequencies_hz: Sequence[float] | None = None,
) -> Dict[str, FigureSeries]:
    """Efficiency (GUIPS/W) versus frequency for the scale-out workloads.

    ``scope`` selects sub-figure (a) cores, (b) SoC or (c) server.
    """
    configuration = configuration or default_server()
    return _efficiency_series(
        scale_out_workloads(), scope, configuration, frequencies_hz
    )


def figure4_series(
    scope: EfficiencyScope,
    configuration: ServerConfiguration | None = None,
    frequencies_hz: Sequence[float] | None = None,
) -> Dict[str, FigureSeries]:
    """Efficiency (GUIPS/W) versus frequency for the virtualized workloads."""
    configuration = configuration or default_server()
    return _efficiency_series(
        virtualized_workloads(), scope, configuration, frequencies_hz
    )
