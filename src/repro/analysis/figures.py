"""Data series behind the paper's figures.

Every function returns plain data (frequencies plus one or more named
series) so the benchmark harnesses can print the same rows/series the
paper plots, and tests can assert on the shapes.

Figures 2, 3 and 4 resolve their sweeps through the scenario registry
(:mod:`repro.scenarios`): each figure is a view over one registered
scenario's batched sweep, optionally re-pointed at a caller-supplied
configuration or grid; the per-scope efficiency series are sliced out
of the columnar :class:`~repro.sweep.result.SweepResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.config import ServerConfiguration, default_server
from repro.core.efficiency import EfficiencyScope
from repro.scenarios import ScenarioRunner, get_scenario
from repro.sweep.result import SweepResult
from repro.technology.a57_model import default_flavour_models
from repro.utils.units import mhz
from repro.workloads.banking_vm import virtualized_workloads
from repro.workloads.cloudsuite import scale_out_workloads


@dataclass(frozen=True)
class FigureSeries:
    """One named (x, y) series of a figure."""

    label: str
    x_values: tuple
    y_values: tuple

    def __post_init__(self) -> None:
        if len(self.x_values) != len(self.y_values):
            raise ValueError("x and y series must have the same length")

    def as_rows(self) -> List[tuple]:
        """(x, y) pairs for table rendering."""
        return list(zip(self.x_values, self.y_values))


# -- Figure 1 ------------------------------------------------------------------------


def figure1_series(
    frequencies_hz: Sequence[float] | None = None,
    core_count: int = 36,
) -> Dict[str, Dict[str, FigureSeries]]:
    """Voltage and chip core power versus frequency per technology flavour.

    Returns ``{flavour: {"vdd": series, "power": series}}`` with
    frequencies in MHz on the x axis, matching the paper's Figure 1.
    Frequencies a flavour cannot reach are skipped for that flavour.
    """
    if frequencies_hz is None:
        frequencies_hz = [mhz(value) for value in range(100, 3501, 100)]
    result: Dict[str, Dict[str, FigureSeries]] = {}
    for label, model in default_flavour_models().items():
        xs, vdds, powers = [], [], []
        for frequency in frequencies_hz:
            if not model.is_reachable(frequency):
                continue
            operating_point = model.operating_point(frequency)
            xs.append(frequency / 1e6)
            vdds.append(operating_point.vdd)
            powers.append(operating_point.total_power * core_count)
        result[label] = {
            "vdd": FigureSeries(f"{label} Vdd", tuple(xs), tuple(vdds)),
            "power": FigureSeries(f"{label} Power", tuple(xs), tuple(powers)),
        }
    return result


# -- Figure 2 ------------------------------------------------------------------------


def figure2_series(
    configuration: ServerConfiguration | None = None,
    frequencies_hz: Sequence[float] | None = None,
    sweep: SweepResult | None = None,
) -> Dict[str, FigureSeries]:
    """99th-percentile latency normalised to QoS versus core frequency.

    ``sweep`` optionally reuses an existing sweep table (it must cover
    the scale-out workloads) instead of running a new one.
    """
    configuration = configuration or default_server()
    workloads = scale_out_workloads()
    if sweep is None:
        sweep = _scenario_sweep(
            "fig2_qos", configuration, _sorted_grid(configuration, frequencies_hz)
        )
    series = {}
    for name in workloads:
        rows = sweep.filter(workload_name=name)
        if len(rows) == 0:
            raise ValueError(
                f"supplied sweep does not cover scale-out workload {name!r}"
            )
        order = np.argsort(rows.column("frequency_hz"), kind="stable")
        xs = tuple(float(f) / 1e9 for f in rows.column("frequency_hz")[order])
        ys = tuple(
            float(value)
            for value in rows.column("latency_normalized_to_qos")[order]
        )
        series[name] = FigureSeries(name, xs, ys)
    return series


# -- Figures 3 and 4 --------------------------------------------------------------------


def efficiency_series_by_scope(
    workload_names: Sequence[str],
    sweep: SweepResult,
) -> Dict[EfficiencyScope, Dict[str, FigureSeries]]:
    """Per-scope efficiency (GUIPS/W) series sliced from one sweep table."""
    result: Dict[EfficiencyScope, Dict[str, FigureSeries]] = {
        scope: {} for scope in EfficiencyScope
    }
    for name in workload_names:
        rows = sweep.filter(workload_name=name)
        xs = tuple(float(f) / 1e9 for f in rows.column("frequency_hz"))
        for scope in EfficiencyScope:
            ys = tuple(float(v) / 1e9 for v in rows.efficiency(scope))
            result[scope][name] = FigureSeries(name, xs, ys)
    return result


def _scenario_sweep(
    scenario_name: str,
    configuration: ServerConfiguration | None,
    frequencies_hz: Sequence[float] | None,
) -> SweepResult:
    """Sweep table of a registered scenario, optionally re-pointed."""
    spec = get_scenario(scenario_name)
    overrides = {}
    if configuration is not None:
        overrides["base_configuration"] = configuration
    if frequencies_hz is not None:
        overrides["frequency_grid_hz"] = tuple(frequencies_hz)
    if overrides:
        spec = spec.with_overrides(**overrides)
    return ScenarioRunner().run(spec).sweep


def _efficiency_figure(
    workloads: Dict[str, object],
    scenario_name: str,
    scope: EfficiencyScope,
    configuration: ServerConfiguration | None,
    frequencies_hz: Sequence[float] | None,
) -> Dict[str, FigureSeries]:
    sweep = _scenario_sweep(scenario_name, configuration, frequencies_hz)
    return efficiency_series_by_scope(list(workloads), sweep)[scope]


def figure3_series(
    scope: EfficiencyScope,
    configuration: ServerConfiguration | None = None,
    frequencies_hz: Sequence[float] | None = None,
) -> Dict[str, FigureSeries]:
    """Efficiency (GUIPS/W) versus frequency for the scale-out workloads.

    ``scope`` selects sub-figure (a) cores, (b) SoC or (c) server.
    """
    return _efficiency_figure(
        scale_out_workloads(), "fig3_scaleout", scope, configuration, frequencies_hz
    )


def figure4_series(
    scope: EfficiencyScope,
    configuration: ServerConfiguration | None = None,
    frequencies_hz: Sequence[float] | None = None,
) -> Dict[str, FigureSeries]:
    """Efficiency (GUIPS/W) versus frequency for the virtualized workloads."""
    return _efficiency_figure(
        virtualized_workloads(), "fig4_virtualized", scope, configuration, frequencies_hz
    )


def _sorted_grid(
    configuration: ServerConfiguration, frequencies_hz: Sequence[float] | None
) -> List[float]:
    grid = (
        frequencies_hz
        if frequencies_hz is not None
        else configuration.frequency_grid
    )
    return sorted(grid)
