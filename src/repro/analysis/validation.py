"""Validation of the reproduced trends against the paper's claims.

Each check compares a quantity computed by this library against the
corresponding claim in the paper's results section.  Absolute numbers
are not expected to match (the substrate is an analytical/synthetic
model, not the authors' Flexus testbed); the checks target the *shape*
results: orderings, optimum locations, crossover frequencies.

The checks feed both the test suite and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import efficiency_optima_rows
from repro.core.config import ServerConfiguration, default_server
from repro.core.energy_proportionality import EnergyProportionalityAnalyzer
from repro.sweep.context import ModelContext
from repro.sweep.result import SweepResult
from repro.sweep.runner import SweepRunner
from repro.technology.a57_model import default_flavour_models
from repro.utils.units import ghz, mhz
from repro.workloads.banking_vm import (
    DEGRADATION_LIMIT_RELAXED,
    DEGRADATION_LIMIT_STRICT,
    VMS_HIGH_MEM,
    VMS_LOW_MEM,
    virtualized_workloads,
)
from repro.workloads.cloudsuite import scale_out_workloads


@dataclass(frozen=True)
class ClaimCheck:
    """One paper claim checked against the reproduction."""

    claim: str
    paper_value: str
    measured_value: str
    passed: bool


def _check(claim: str, paper_value: str, measured_value: str, passed: bool) -> ClaimCheck:
    return ClaimCheck(
        claim=claim,
        paper_value=paper_value,
        measured_value=measured_value,
        passed=bool(passed),
    )


def _technology_checks() -> List[ClaimCheck]:
    models = default_flavour_models()
    checks = []

    fdsoi_min_v_freq = models["fdsoi"].min_voltage_frequency()
    fbb_min_v_freq = models["fdsoi-fbb"].min_voltage_frequency()
    checks.append(
        _check(
            "FD-SOI reaches ~100MHz at 0.5V",
            "almost 100MHz",
            f"{fdsoi_min_v_freq / 1e6:.0f}MHz",
            50e6 <= fdsoi_min_v_freq <= 250e6,
        )
    )
    checks.append(
        _check(
            "FD-SOI+FBB exceeds 500MHz at 0.5V",
            "more than 500MHz",
            f"{fbb_min_v_freq / 1e6:.0f}MHz",
            fbb_min_v_freq > 500e6,
        )
    )
    checks.append(
        _check(
            "Bulk cannot operate at 0.5V",
            "timing issues at 0.5V",
            f"min functional Vdd {models['bulk'].technology.min_functional_vdd:.2f}V",
            models["bulk"].technology.min_functional_vdd > 0.5,
        )
    )

    common = [mhz(300), mhz(500), ghz(1.0), ghz(2.0)]
    ordering_ok = True
    for frequency in common:
        p_bulk = models["bulk"].core_power(frequency)
        p_fdsoi = models["fdsoi"].core_power(frequency)
        p_fbb = models["fdsoi-fbb"].core_power(frequency)
        ordering_ok = ordering_ok and (p_bulk > p_fdsoi >= p_fbb - 1e-12)
    checks.append(
        _check(
            "P(bulk) > P(FD-SOI) >= P(FD-SOI+FBB) at the same frequency",
            "FD-SOI reduces power vs bulk; FBB further increases savings",
            "ordering holds at 0.3/0.5/1/2GHz" if ordering_ok else "ordering violated",
            ordering_ok,
        )
    )

    gain_low = 1.0 - models["fdsoi"].core_power(mhz(300)) / models["bulk"].core_power(
        mhz(300)
    )
    gain_high = 1.0 - models["fdsoi"].core_power(ghz(2.0)) / models["bulk"].core_power(
        ghz(2.0)
    )
    checks.append(
        _check(
            "FD-SOI power gain over bulk grows toward near-threshold",
            "maximum benefits in the near-threshold region",
            f"gain {gain_low:.0%} at 300MHz vs {gain_high:.0%} at 2GHz",
            gain_low > gain_high,
        )
    )
    return checks


def _floor(sweep: SweepResult, name: str, bound: float | None = None) -> float | None:
    """Lowest swept frequency at which ``name`` meets its QoS/degradation bound."""
    return sweep.filter(workload_name=name).qos_floor(bound)


def _qos_checks(sweep: SweepResult) -> List[ClaimCheck]:
    checks = []
    floors = {}
    for name in scale_out_workloads():
        floors[name] = _floor(sweep, name)
    all_in_range = all(
        floor is not None and mhz(100) <= floor <= mhz(500)
        for floor in floors.values()
    )
    floor_text = ", ".join(
        f"{name}: {floor / 1e6:.0f}MHz" for name, floor in floors.items()
    )
    checks.append(
        _check(
            "Scale-out QoS floors fall in the 200-500MHz range",
            "operate at 200MHz-500MHz without violating QoS",
            floor_text,
            all_in_range,
        )
    )

    relaxed_floors = []
    strict_floors = []
    for name in virtualized_workloads():
        relaxed_floors.append(_floor(sweep, name, DEGRADATION_LIMIT_RELAXED))
        strict_floors.append(_floor(sweep, name, DEGRADATION_LIMIT_STRICT))
    relaxed_ok = all(floor is not None and floor <= mhz(500) for floor in relaxed_floors)
    strict_ok = all(floor is not None and floor <= ghz(1.0) for floor in strict_floors)
    checks.append(
        _check(
            "4x degradation bound allows 500MHz for the VMs",
            "frequency can be decreased down to 500MHz",
            ", ".join(f"{floor / 1e6:.0f}MHz" for floor in relaxed_floors),
            relaxed_ok,
        )
    )
    checks.append(
        _check(
            "2x degradation bound allows 1GHz for the VMs",
            "frequency could still be reduced to 1GHz",
            ", ".join(f"{floor / 1e6:.0f}MHz" for floor in strict_floors),
            strict_ok,
        )
    )
    return checks


def _efficiency_checks(sweep: SweepResult, context: ModelContext) -> List[ClaimCheck]:
    checks = []
    grid = context.reachable_frequencies()

    cores_at_floor = []
    soc_near_1ghz = []
    server_at_or_above_soc = []
    for optima in efficiency_optima_rows(sweep):
        cores_at_floor.append(optima["cores"] <= grid[1])
        soc_near_1ghz.append(mhz(600) <= optima["soc"] <= mhz(1400))
        server_at_or_above_soc.append(optima["server"] >= optima["soc"])

    checks.append(
        _check(
            "Cores-only efficiency peaks at the lowest functional frequency",
            "most energy-efficient design operates at the lowest V/f point",
            f"{sum(cores_at_floor)}/{len(cores_at_floor)} workloads",
            all(cores_at_floor),
        )
    )
    checks.append(
        _check(
            "SoC efficiency optimum moves to ~1GHz",
            "constant chip power pushes the optimum to 1GHz",
            f"{sum(soc_near_1ghz)}/{len(soc_near_1ghz)} workloads in 0.6-1.4GHz",
            all(soc_near_1ghz),
        )
    )
    checks.append(
        _check(
            "Server efficiency optimum at or above the SoC optimum",
            "optimal efficiency point moves further right (~1-1.2GHz)",
            f"{sum(server_at_or_above_soc)}/{len(server_at_or_above_soc)} workloads",
            all(server_at_or_above_soc),
        )
    )

    high = context.nominal_performance(VMS_HIGH_MEM)
    low = context.nominal_performance(VMS_LOW_MEM)
    checks.append(
        _check(
            "High-memory VMs achieve higher UIPS than low-memory VMs",
            "UIPS of VMs high-mem is higher than VMs low-mem",
            f"{high.chip_uips / 1e9:.1f} vs {low.chip_uips / 1e9:.1f} GUIPS",
            high.chip_uips > low.chip_uips,
        )
    )
    return checks


def _proportionality_checks(
    sweep: SweepResult, context: ModelContext
) -> List[ClaimCheck]:
    ep = EnergyProportionalityAnalyzer(context.configuration)
    checks = []

    workload = scale_out_workloads()["Data Serving"]
    grid = context.reachable_frequencies()
    low_frequency = grid[1]
    rows = sweep.filter(workload_name=workload.name, frequency_hz=low_frequency)
    server_power = float(rows.column("server_power")[0])
    soc_power = float(rows.column("soc_power")[0])
    memory_share = (server_power - soc_power) / server_power
    checks.append(
        _check(
            "Memory background power dominates as the SoC power shrinks",
            "background power of the memory dominates the total server power",
            f"memory is {memory_share:.0%} of server power at "
            f"{low_frequency / 1e6:.0f}MHz",
            memory_share > 0.25,
        )
    )

    comparison = ep.memory_technology_comparison(workload)
    names = list(comparison)
    baseline, alternative = comparison[names[0]], comparison[names[1]]
    checks.append(
        _check(
            "LPDDR4-class memory improves server energy proportionality",
            "mobile DRAM could increase the energy proportionality of servers",
            f"proportionality {baseline.proportionality_index:.2f} -> "
            f"{alternative.proportionality_index:.2f}",
            alternative.proportionality_index > baseline.proportionality_index,
        )
    )
    return checks


def validate_paper_claims(
    configuration: ServerConfiguration | None = None,
) -> List[ClaimCheck]:
    """Run every claim check against ``configuration`` (default server).

    All sweep-derived checks share one batched pass over the full
    (workload, frequency) grid.
    """
    configuration = configuration or default_server()
    runner = SweepRunner.for_configuration(configuration)
    all_workloads = {**scale_out_workloads(), **virtualized_workloads()}
    sweep = runner.run(all_workloads.values())
    checks: List[ClaimCheck] = []
    checks.extend(_technology_checks())
    checks.extend(_qos_checks(sweep))
    checks.extend(_efficiency_checks(sweep, runner.context))
    checks.extend(_proportionality_checks(sweep, runner.context))
    return checks


def claims_as_dict(configuration: ServerConfiguration | None = None) -> Dict[str, bool]:
    """Mapping of claim text to pass/fail."""
    return {check.claim: check.passed for check in validate_paper_claims(configuration)}
