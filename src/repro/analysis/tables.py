"""Table I, derived memory-power numbers, and sweep-derived tables."""

from __future__ import annotations

from typing import Dict, List

from repro.core.efficiency import EfficiencyScope
from repro.power.dram_power import (
    DDR4_4GBIT_X8,
    DramChipEnergyProfile,
    MemoryOrganization,
    MemoryPowerModel,
)
from repro.sweep.result import SweepResult

NJ = 1.0e-9


def efficiency_optima_rows(sweep: SweepResult) -> List[Dict[str, float]]:
    """Per-workload efficiency-optimum frequencies from one sweep table.

    Returns one row per workload (first-appearance order) with the
    optimum frequency in Hz at each scope -- the reduction Figures 3/4
    annotate and the benchmark harnesses print.
    """
    rows = []
    for name, group in sweep.group_by("workload_name").items():
        row: Dict[str, float] = {"workload": name}
        for scope in EfficiencyScope:
            index = group.argmax(group.efficiency(scope))
            row[scope.value] = float(group.column("frequency_hz")[index])
        rows.append(row)
    return rows


def table1_rows(chip: DramChipEnergyProfile = DDR4_4GBIT_X8) -> List[Dict[str, float]]:
    """Rows of Table I: per-chip DDR4 energies in the paper's units."""
    return [
        {
            "chip": chip.name,
            "E_IDLE (nJ/cycle)": chip.idle_energy_per_cycle / NJ,
            "E_READ (nJ/byte)": chip.read_energy_per_byte / NJ,
            "E_WRITE (nJ/byte)": chip.write_energy_per_byte / NJ,
        }
    ]


def memory_power_summary(
    chip: DramChipEnergyProfile = DDR4_4GBIT_X8,
    organization: MemoryOrganization | None = None,
    read_bandwidth: float = 10.0e9,
    write_bandwidth: float = 3.0e9,
) -> Dict[str, float]:
    """Derived memory-subsystem power figures at a representative load.

    The paper scales the Table I energies "to match the number of ranks
    in the system and the application's memory bandwidth consumption";
    this helper shows the scaled result for the 64GB organisation.
    """
    model = MemoryPowerModel(chip=chip, organization=organization or MemoryOrganization())
    return {
        "chips": model.organization.total_chips,
        "capacity_gb": model.capacity_gb(),
        "background_power_w": model.background_power(),
        "dynamic_power_w": model.dynamic_power(read_bandwidth, write_bandwidth),
        "total_power_w": model.total_power(read_bandwidth, write_bandwidth),
    }
