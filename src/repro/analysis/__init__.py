"""Figure/table data builders and paper-trend validation.

* :mod:`repro.analysis.figures` -- builds the data series behind every
  figure in the paper's evaluation (Figures 1-4).
* :mod:`repro.analysis.tables` -- builds Table I and the derived memory
  power numbers.
* :mod:`repro.analysis.validation` -- checks the reproduced trends
  against the claims the paper makes in its results section, producing
  the records used by EXPERIMENTS.md and the test suite.
"""

from repro.analysis.figures import (
    FigureSeries,
    figure1_series,
    figure2_series,
    figure3_series,
    figure4_series,
)
from repro.analysis.tables import table1_rows, memory_power_summary
from repro.analysis.validation import ClaimCheck, validate_paper_claims

__all__ = [
    "FigureSeries",
    "figure1_series",
    "figure2_series",
    "figure3_series",
    "figure4_series",
    "table1_rows",
    "memory_power_summary",
    "ClaimCheck",
    "validate_paper_claims",
]
