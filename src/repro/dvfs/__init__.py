"""DVFS governors over time-varying load.

The paper's sweeps pick one fixed frequency per operating point; this
package closes the loop for the server-consolidation story: a load
trace moves over time and a governor must ride the V/f curve while
holding the QoS bound.

* :mod:`repro.dvfs.trace` -- :class:`LoadTrace` and its generators
  (constant, diurnal, bursty, Bitbrains-derived replay), all
  deterministic given a seed.
* :mod:`repro.dvfs.governors` -- the :class:`Governor` policies
  (``performance``, ``powersave``, ``ondemand``, ``conservative`` and
  the QoS-aware ``qos_tracker``) over a :class:`PlatformView`.
* :mod:`repro.dvfs.simulator` -- :class:`GovernorSimulator`, stepping a
  trace through a shared :class:`~repro.sweep.context.ModelContext`.
* :mod:`repro.dvfs.replay` -- the columnar per-step
  :class:`ReplayResult` with its energy/violation reductions.

>>> from repro.core.config import default_server
>>> from repro.dvfs import GovernorSimulator, LoadTrace
>>> from repro.sweep.context import ModelContext
>>> from repro.workloads.cloudsuite import WEB_SEARCH
>>> simulator = GovernorSimulator(ModelContext(default_server()), WEB_SEARCH)
>>> replays = simulator.compare(LoadTrace.diurnal())
>>> replays["qos_tracker"].total_energy_j < replays["performance"].total_energy_j
True
"""

from repro.dvfs.governors import (
    GOVERNORS,
    MEMORYLESS_GOVERNORS,
    ConservativeGovernor,
    Governor,
    LoadObservation,
    OndemandGovernor,
    PerformanceGovernor,
    PlatformView,
    PowersaveGovernor,
    QosTrackerGovernor,
    governor_by_name,
)
from repro.dvfs.replay import REPLAY_COLUMNS, ReplayResult
from repro.dvfs.simulator import GovernorSimulator
from repro.dvfs.trace import LOAD_TRACES, LoadTrace, load_trace_by_name

__all__ = [
    "GOVERNORS",
    "LOAD_TRACES",
    "MEMORYLESS_GOVERNORS",
    "REPLAY_COLUMNS",
    "ConservativeGovernor",
    "Governor",
    "GovernorSimulator",
    "LoadObservation",
    "LoadTrace",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PlatformView",
    "PowersaveGovernor",
    "QosTrackerGovernor",
    "ReplayResult",
    "governor_by_name",
    "load_trace_by_name",
]
