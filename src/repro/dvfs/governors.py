"""DVFS governor policies.

A :class:`Governor` maps one load observation to the frequency the
server should run during the next trace step.  The four classic Linux
cpufreq policies are reproduced (``performance``, ``powersave``,
``ondemand``, ``conservative``) plus the paper-motivated
``qos_tracker``: the policy a near-threshold server actually wants,
which picks the *lowest* frequency that both covers the offered load
and satisfies the operating point's QoS (tail latency for scale-out
workloads, the execution-time degradation bound for VMs).

Governors see the platform through a :class:`PlatformView`: the
reachable frequency grid with, per frequency, the sustained throughput
and whether the operating point meets QoS.  All state a policy needs
across steps (the previous frequency) is part of the
:class:`LoadObservation`, so governor instances are immutable and
reusable across replays.

Unlike the kernel's sampling governors, ``ondemand`` here keys its
decisions off the *normalised* offered load (demand over nominal
throughput) rather than the load measured at the current frequency;
this keeps the policy memoryless, which the replay test layer exploits
(step-energy sums are then invariant under trace reordering).
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.utils.validation import check_fraction

_DEMAND_TOLERANCE = 1.0 + 1e-12
"""Capacity slack tolerance: covers float noise in demand comparisons."""


@dataclass(frozen=True)
class PlatformView:
    """What a governor may know about the machine.

    ``frequencies`` is the reachable grid in ascending order;
    ``capacity_uips`` the sustained chip throughput at each frequency
    and ``qos_ok`` whether the operating point meets the workload's QoS
    there.  Demand is expressed in UIPS against
    :attr:`nominal_frequency_hz` (the top of the grid).
    """

    frequencies: Tuple[float, ...]
    capacity_uips: Mapping[float, float]
    qos_ok: Mapping[float, bool]

    def __post_init__(self) -> None:
        if not self.frequencies:
            raise ValueError("platform view needs at least one frequency")
        if list(self.frequencies) != sorted(self.frequencies):
            raise ValueError(
                f"platform frequencies must be ascending, got {self.frequencies}"
            )
        for frequency in self.frequencies:
            if frequency not in self.capacity_uips:
                raise ValueError(f"missing capacity for {frequency} Hz")
            if frequency not in self.qos_ok:
                raise ValueError(f"missing QoS flag for {frequency} Hz")

    @property
    def min_frequency_hz(self) -> float:
        """Bottom of the reachable grid."""
        return self.frequencies[0]

    @property
    def nominal_frequency_hz(self) -> float:
        """Top of the reachable grid (the demand reference)."""
        return self.frequencies[-1]

    @property
    def nominal_capacity_uips(self) -> float:
        """Throughput at the nominal frequency."""
        return self.capacity_uips[self.nominal_frequency_hz]

    def covers(self, frequency_hz: float, demand_uips: float) -> bool:
        """True when ``frequency_hz`` sustains ``demand_uips``."""
        return self.capacity_uips[frequency_hz] * _DEMAND_TOLERANCE >= demand_uips

    def lowest_covering(
        self, demand_uips: float, require_qos: bool = False
    ) -> float | None:
        """Lowest frequency that covers the demand (optionally QoS-clean)."""
        for frequency in self.frequencies:
            if not self.covers(frequency, demand_uips):
                continue
            if require_qos and not self.qos_ok[frequency]:
                continue
            return frequency
        return None

    def neighbour(self, frequency_hz: float, step: int) -> float:
        """The grid frequency ``step`` notches away, clamped to the grid."""
        index = bisect.bisect_left(self.frequencies, frequency_hz)
        if (
            index >= len(self.frequencies)
            or self.frequencies[index] != frequency_hz
        ):
            raise ValueError(
                f"{frequency_hz} Hz is not on the platform grid "
                f"{self.frequencies}"
            )
        clamped = min(max(index + step, 0), len(self.frequencies) - 1)
        return self.frequencies[clamped]


@dataclass(frozen=True)
class LoadObservation:
    """One step's input to a governor decision.

    ``utilization`` is the offered load as a fraction of the nominal
    throughput, ``demand_uips`` the same demand in absolute UIPS, and
    ``previous_frequency_hz`` the frequency the machine ran during the
    previous step (the nominal frequency on the first step).
    """

    utilization: float
    demand_uips: float
    previous_frequency_hz: float


class Governor(ABC):
    """Frequency-selection policy: one observation in, one frequency out."""

    name: str = "governor"

    @abstractmethod
    def select(
        self, observation: LoadObservation, platform: PlatformView
    ) -> float:
        """The frequency to run during the observed step."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class PerformanceGovernor(Governor):
    """Always the highest reachable frequency (the race-to-the-top pin)."""

    name = "performance"

    def select(self, observation: LoadObservation, platform: PlatformView) -> float:
        return platform.nominal_frequency_hz


@dataclass(frozen=True)
class PowersaveGovernor(Governor):
    """Always the lowest reachable frequency, whatever the load."""

    name = "powersave"

    def select(self, observation: LoadObservation, platform: PlatformView) -> float:
        return platform.min_frequency_hz


@dataclass(frozen=True)
class OndemandGovernor(Governor):
    """Jump to the top above ``up_threshold``, else scale with the load.

    Below the threshold the target is the lowest frequency whose
    throughput, derated by ``up_threshold``, still covers the demand --
    the kernel's ``target = load * max / up_threshold`` proportional
    rule mapped onto a discrete grid.
    """

    up_threshold: float = 0.8
    name = "ondemand"

    def __post_init__(self) -> None:
        check_fraction("up_threshold", self.up_threshold)
        if self.up_threshold <= 0.0:
            raise ValueError(
                f"up_threshold must be positive, got {self.up_threshold}"
            )

    def select(self, observation: LoadObservation, platform: PlatformView) -> float:
        if observation.utilization > self.up_threshold:
            return platform.nominal_frequency_hz
        target = observation.demand_uips / self.up_threshold
        frequency = platform.lowest_covering(target)
        return (
            frequency if frequency is not None else platform.nominal_frequency_hz
        )


@dataclass(frozen=True)
class ConservativeGovernor(Governor):
    """Move one grid notch at a time toward the load.

    Steps up when the load at the previous frequency exceeds
    ``up_threshold``, down when it falls below ``down_threshold``;
    otherwise holds.  The gradual ramp is the point: it trades reaction
    latency (QoS violations on burst fronts) for frequency stability.
    """

    up_threshold: float = 0.75
    down_threshold: float = 0.3
    name = "conservative"

    def __post_init__(self) -> None:
        check_fraction("up_threshold", self.up_threshold)
        check_fraction("down_threshold", self.down_threshold)
        if self.down_threshold >= self.up_threshold:
            raise ValueError(
                f"down_threshold ({self.down_threshold}) must be below "
                f"up_threshold ({self.up_threshold})"
            )

    def select(self, observation: LoadObservation, platform: PlatformView) -> float:
        previous = observation.previous_frequency_hz
        capacity = platform.capacity_uips[previous]
        load = observation.demand_uips / capacity if capacity > 0 else 1.0
        if load > self.up_threshold:
            return platform.neighbour(previous, +1)
        if load < self.down_threshold:
            return platform.neighbour(previous, -1)
        return previous


@dataclass(frozen=True)
class QosTrackerGovernor(Governor):
    """Lowest frequency that covers the load *and* meets the QoS bound.

    This is the paper's operating-point selection turned into a policy:
    ride the V/f curve down to the QoS floor, never below it.  When no
    frequency is simultaneously feasible (a burst beyond every
    QoS-clean point) the policy falls back to the nominal frequency,
    which serves the most load at the smallest violation.
    """

    name = "qos_tracker"

    def select(self, observation: LoadObservation, platform: PlatformView) -> float:
        frequency = platform.lowest_covering(
            observation.demand_uips, require_qos=True
        )
        return (
            frequency if frequency is not None else platform.nominal_frequency_hz
        )


GOVERNORS: Dict[str, type] = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "qos_tracker": QosTrackerGovernor,
}
"""Governor factories by policy name, in canonical comparison order."""

MEMORYLESS_GOVERNORS = ("performance", "powersave", "ondemand", "qos_tracker")
"""Policies whose decisions depend only on the current observation."""


def governor_by_name(name: str) -> Governor:
    """Instantiate a governor by policy name.

    Raises
    ------
    ValueError
        If ``name`` is unknown; the message lists the known policies.
    """
    try:
        factory = GOVERNORS[name]
    except KeyError:
        known = ", ".join(GOVERNORS)
        raise ValueError(
            f"unknown governor {name!r}; known governors: {known}"
        ) from None
    return factory()
