"""Governor replay over a shared model context.

:class:`GovernorSimulator` steps a :class:`~repro.dvfs.trace.LoadTrace`
through a :class:`~repro.sweep.context.ModelContext`: at every step the
governor picks a grid frequency, the step runs on the memoized
operating point of that (workload, frequency) pair, and the per-step
power/energy/throughput/violation row lands in a columnar
:class:`~repro.dvfs.replay.ReplayResult`.

The energy semantics follow the paper's premise that frequency (with
its voltage) is the knob: the server draws the operating point's full
power while it is up, so a step's power depends on the chosen
frequency, not on the instantaneous load.  That is exactly why a
governor that rides the V/f curve down to the QoS floor saves energy
over pinning the nominal point -- and it makes the replay arithmetic
exact: a constant-load replay is the single-point context evaluation
repeated, and the ``performance`` governor is a per-step upper bound on
every other policy's energy (server power is monotone in frequency).

Every (workload, frequency) operating point is resolved through the
context's memoized :meth:`~repro.sweep.context.ModelContext.evaluate`,
so replaying five governors over a 288-step trace costs one sweep's
worth of model evaluations, shared with any other consumer of the same
context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence

import numpy as np

from repro import obs
from repro.dvfs.governors import (
    GOVERNORS,
    Governor,
    LoadObservation,
    PlatformView,
    governor_by_name,
)
from repro.dvfs.replay import ReplayResult
from repro.dvfs.trace import LoadTrace
from repro.sweep.context import ModelContext
from repro.sweep.result import OperatingPointRecord
from repro.workloads.base import WorkloadCharacteristics


@dataclass(eq=False)
class GovernorSimulator:
    """Replays load traces under DVFS governors for one workload.

    Parameters
    ----------
    context:
        The shared model context; its memoized operating points are
        reused across governors, traces and any concurrent sweep.
    workload:
        The workload serving the offered load.
    frequencies:
        Optional explicit grid; ``None`` uses the configuration's
        reachable grid.
    """

    context: ModelContext
    workload: WorkloadCharacteristics
    frequencies: Sequence[float] | None = None
    _platform: PlatformView | None = field(default=None, init=False, repr=False)
    _records: Dict[float, OperatingPointRecord] = field(
        default_factory=dict, init=False, repr=False
    )

    # -- platform -----------------------------------------------------------------------

    @property
    def platform(self) -> PlatformView:
        """The governor-visible platform (built once, memoized)."""
        if self._platform is None:
            grid = self.context.reachable_frequencies(self.frequencies)
            if not grid:
                raise ValueError(
                    f"no reachable frequency for workload "
                    f"{self.workload.name!r}; cannot replay"
                )
            records = {
                frequency: self.context.evaluate(self.workload, frequency)
                for frequency in grid
            }
            self._records = records
            self._platform = PlatformView(
                frequencies=tuple(sorted(grid)),
                capacity_uips={
                    frequency: record.chip_uips
                    for frequency, record in records.items()
                },
                qos_ok={
                    frequency: record.meets_qos
                    for frequency, record in records.items()
                },
            )
        return self._platform

    def record(self, frequency_hz: float) -> OperatingPointRecord:
        """The memoized operating point backing a platform frequency."""
        self.platform  # ensure built
        try:
            return self._records[frequency_hz]
        except KeyError:
            raise ValueError(
                f"{frequency_hz} Hz is not on the replay grid "
                f"{self.platform.frequencies}"
            ) from None

    @property
    def table(self):
        """The kernels' frozen frequency table (context-memoized)."""
        return self.context.frequency_table(
            self.workload, frequencies=self.frequencies
        )

    # -- replay -------------------------------------------------------------------------

    def replay(
        self,
        trace: LoadTrace,
        governor: Governor | str,
        reference: bool = False,
    ) -> ReplayResult:
        """Run one governor over one trace, one row per step.

        Dispatches to the vectorized :mod:`repro.kernels` path whenever
        the governor's exact type has a kernel; ``reference=True``
        forces the original object-based step loop (the two paths are
        bit-for-bit identical -- the kernel equivalence tests pin it).
        Governors without a kernel (custom subclasses) always take the
        reference path.
        """
        if isinstance(governor, str):
            governor = governor_by_name(governor)
        with obs.trace(
            "dvfs.replay",
            governor=governor.name,
            trace=trace.name,
            steps=len(trace),
        ) as span:
            if not reference:
                from repro.kernels.governors import has_kernel
                from repro.kernels.replay import governor_replay_columns

                if has_kernel(governor):
                    span.set(kernel=True)
                    obs.count("dvfs.kernel_replays")
                    return ReplayResult(
                        governor_name=governor.name,
                        workload_name=self.workload.name,
                        trace_name=trace.name,
                        step_seconds=trace.step_seconds,
                        instructions_per_request=(
                            self.workload.instructions_per_request
                        ),
                        columns=governor_replay_columns(
                            self.table, governor, trace
                        ),
                    )
            span.set(kernel=False)
            obs.count("dvfs.reference_replays")
            return self._reference_replay(trace, governor)

    def _reference_replay(
        self, trace: LoadTrace, governor: Governor
    ) -> ReplayResult:
        """The original object-based step loop (the bit-parity anchor)."""
        platform = self.platform
        nominal_capacity = platform.nominal_capacity_uips

        steps = len(trace)
        frequency = np.empty(steps, dtype=np.float64)
        power = np.empty(steps, dtype=np.float64)
        demand = np.empty(steps, dtype=np.float64)
        capacity = np.empty(steps, dtype=np.float64)
        served = np.empty(steps, dtype=np.float64)
        qos_metric = np.empty(steps, dtype=np.float64)
        qos_ok = np.empty(steps, dtype=bool)
        demand_met = np.empty(steps, dtype=bool)

        previous = platform.nominal_frequency_hz
        for index, utilization in enumerate(trace.utilization):
            step_demand = utilization * nominal_capacity
            choice = governor.select(
                LoadObservation(
                    utilization=utilization,
                    demand_uips=step_demand,
                    previous_frequency_hz=previous,
                ),
                platform,
            )
            record = self.record(choice)
            frequency[index] = choice
            power[index] = record.server_power
            demand[index] = step_demand
            capacity[index] = record.chip_uips
            served[index] = min(step_demand, record.chip_uips)
            if record.degradation is not None:
                qos_metric[index] = record.degradation
            elif record.latency_normalized_to_qos is not None:
                qos_metric[index] = record.latency_normalized_to_qos
            else:
                qos_metric[index] = np.nan
            qos_ok[index] = record.meets_qos
            # The same coverage test the governors use, so a policy
            # that believes a frequency covers the load is never
            # contradicted by the violation accounting.
            demand_met[index] = platform.covers(choice, step_demand)
            previous = choice

        return ReplayResult(
            governor_name=governor.name,
            workload_name=self.workload.name,
            trace_name=trace.name,
            step_seconds=trace.step_seconds,
            instructions_per_request=self.workload.instructions_per_request,
            columns={
                "step": np.arange(steps, dtype=np.int64),
                "time_s": trace.times(),
                "utilization": np.asarray(trace.utilization, dtype=np.float64),
                "frequency_hz": frequency,
                "power_w": power,
                "energy_j": power * trace.step_seconds,
                "demand_uips": demand,
                "capacity_uips": capacity,
                "served_uips": served,
                "qos_metric": qos_metric,
                "qos_ok": qos_ok,
                "demand_met": demand_met,
                "violation": ~(qos_ok & demand_met),
            },
        )

    def compare(
        self,
        trace: LoadTrace,
        governors: Iterable[Governor | str] | None = None,
        reference: bool = False,
    ) -> Dict[str, ReplayResult]:
        """Replay several governors on the same trace, keyed by name.

        Defaults to every registered governor in canonical order; the
        platform's operating points are shared across all replays.
        """
        chosen = list(governors) if governors is not None else list(GOVERNORS)
        results: Dict[str, ReplayResult] = {}
        for governor in chosen:
            result = self.replay(trace, governor, reference=reference)
            if result.governor_name in results:
                raise ValueError(
                    f"duplicate governor {result.governor_name!r} in comparison"
                )
            results[result.governor_name] = result
        return results
