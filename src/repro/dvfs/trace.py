"""Time-varying load traces for governor replay.

A :class:`LoadTrace` is a fixed-step utilisation series: step ``t``
offers ``utilization[t]`` of the server's nominal (2GHz) throughput for
``step_seconds``.  The paper's sweeps pick one operating point per
load level; the consolidation story only pays off when a governor can
ride the V/f curve as the load moves, so this module supplies the load
signals: a constant reference, a diurnal daily curve, a two-state
bursty process, and a replay derived from the synthetic Bitbrains VM
population of :mod:`repro.workloads.bitbrains`.

Every generator is deterministic given its seed (a local
``numpy.random.default_rng``; no global random state), so replay tables
are bit-for-bit reproducible and can be pinned by golden fixtures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.workloads.bitbrains import BitbrainsTraceModel


@dataclass(frozen=True)
class LoadTrace:
    """A fixed-step utilisation series.

    Parameters
    ----------
    name:
        Identifier of the trace (used in tables and summaries).
    step_seconds:
        Duration of every step; must be positive and finite.
    utilization:
        One offered-load level per step, each in ``[0, 1]``: the
        fraction of the server's nominal-frequency throughput the load
        demands during that step.  A value above 1 would ask for more
        than the machine can ever serve and is rejected.
    """

    name: str
    step_seconds: float
    utilization: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not math.isfinite(self.step_seconds) or self.step_seconds <= 0.0:
            raise ValueError(
                f"trace {self.name!r}: step duration must be positive and "
                f"finite, got {self.step_seconds}"
            )
        if not self.utilization:
            raise ValueError(
                f"trace {self.name!r}: must contain at least one step"
            )
        for index, value in enumerate(self.utilization):
            if not math.isfinite(value) or value < 0.0:
                raise ValueError(
                    f"trace {self.name!r}: utilisation at step {index} must "
                    f"be finite and non-negative, got {value}"
                )
            if value > 1.0:
                raise ValueError(
                    f"trace {self.name!r}: utilisation at step {index} "
                    f"exceeds 1 ({value}); loads are fractions of the "
                    "nominal-frequency throughput"
                )

    # -- views ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.utilization)

    @property
    def steps(self) -> int:
        """Number of steps in the trace."""
        return len(self.utilization)

    @property
    def duration_seconds(self) -> float:
        """Total trace duration."""
        return self.step_seconds * len(self.utilization)

    def times(self) -> np.ndarray:
        """Start time of every step, in seconds."""
        return np.arange(len(self.utilization), dtype=np.float64) * self.step_seconds

    @property
    def mean_utilization(self) -> float:
        """Average offered load over the trace."""
        return float(np.mean(self.utilization))

    @property
    def peak_utilization(self) -> float:
        """Highest offered load in the trace."""
        return float(np.max(self.utilization))

    def head(self, steps: int) -> "LoadTrace":
        """The first ``steps`` steps as a new trace."""
        if steps < 1:
            raise ValueError(f"head needs at least one step, got {steps}")
        return LoadTrace(
            name=self.name,
            step_seconds=self.step_seconds,
            utilization=self.utilization[:steps],
        )

    def permuted(self, order) -> "LoadTrace":
        """The same steps in a different order (for invariance tests)."""
        indices = list(order)
        if sorted(indices) != list(range(len(self.utilization))):
            raise ValueError(
                f"trace {self.name!r}: permutation must reorder exactly the "
                f"{len(self.utilization)} steps"
            )
        return LoadTrace(
            name=f"{self.name} (permuted)",
            step_seconds=self.step_seconds,
            utilization=tuple(self.utilization[i] for i in indices),
        )

    def summary(self) -> Dict[str, object]:
        """JSON-able description (pinned by the golden fixtures)."""
        return {
            "name": self.name,
            "steps": self.steps,
            "step_seconds": self.step_seconds,
            "duration_seconds": self.duration_seconds,
            "mean_utilization": self.mean_utilization,
            "peak_utilization": self.peak_utilization,
        }

    # -- composition -----------------------------------------------------------------

    def with_surge(
        self,
        start: int,
        steps: int,
        factor: float,
        shape: str = "step",
        name: str | None = None,
    ) -> "LoadTrace":
        """A flash-crowd surge: multiply a window of steps by ``factor``.

        ``shape="step"`` applies the full multiplier across the whole
        window; ``shape="ramp"`` ramps linearly from the baseline up to
        ``factor`` at the window's last step (the crowd building).  The
        window ``[start, start + steps)`` is clamped to the trace
        bounds, and surged values clip at 1.0 -- a saturated step
        cannot offer more than the fleet's nominal throughput.
        """
        if steps < 1:
            raise ValueError(
                f"trace {self.name!r}: surge needs at least one step, "
                f"got {steps}"
            )
        if not math.isfinite(factor) or factor <= 0.0:
            raise ValueError(
                f"trace {self.name!r}: surge factor must be positive and "
                f"finite, got {factor}"
            )
        if shape not in ("step", "ramp"):
            raise ValueError(
                f"trace {self.name!r}: unknown surge shape {shape!r}; "
                "known shapes: ramp, step"
            )
        first = max(int(start), 0)
        last = min(int(start) + int(steps), len(self.utilization))
        values = list(self.utilization)
        window = last - first
        for offset in range(window):
            if shape == "ramp":
                multiplier = 1.0 + (factor - 1.0) * (offset + 1) / window
            else:
                multiplier = factor
            values[first + offset] = min(
                1.0, values[first + offset] * multiplier
            )
        return LoadTrace(
            name=name if name is not None else f"{self.name}+surge",
            step_seconds=self.step_seconds,
            utilization=tuple(values),
        )

    def concat(self, other: "LoadTrace", name: str | None = None) -> "LoadTrace":
        """This trace followed by ``other`` (regional-failover shapes).

        Both traces must share the same step duration -- concatenating
        mismatched resolutions would silently re-time one of them.
        """
        if other.step_seconds != self.step_seconds:
            raise ValueError(
                f"cannot concat traces with mismatched step_seconds: "
                f"{self.name!r} has {self.step_seconds}, "
                f"{other.name!r} has {other.step_seconds}"
            )
        return LoadTrace(
            name=name if name is not None else f"{self.name}+{other.name}",
            step_seconds=self.step_seconds,
            utilization=self.utilization + other.utilization,
        )

    def scale(self, factor: float, name: str | None = None) -> "LoadTrace":
        """Every step multiplied by ``factor``, clipped at 1.0.

        The failover primitive: a region absorbing a sibling's traffic
        sees its whole trace scaled up (values saturate at the fleet's
        nominal throughput rather than becoming invalid loads).
        """
        if not math.isfinite(factor) or factor <= 0.0:
            raise ValueError(
                f"trace {self.name!r}: scale factor must be positive and "
                f"finite, got {factor}"
            )
        return LoadTrace(
            name=name if name is not None else f"{self.name}x{factor:g}",
            step_seconds=self.step_seconds,
            utilization=tuple(
                min(1.0, value * factor) for value in self.utilization
            ),
        )

    # -- generators ------------------------------------------------------------------

    @classmethod
    def constant(
        cls,
        utilization: float = 0.6,
        steps: int = 24,
        step_seconds: float = 300.0,
        name: str = "constant",
    ) -> "LoadTrace":
        """A flat load: every step offers the same utilisation."""
        return cls(
            name=name,
            step_seconds=step_seconds,
            utilization=(float(utilization),) * int(steps),
        )

    @classmethod
    def diurnal(
        cls,
        steps: int = 48,
        step_seconds: float = 1800.0,
        low: float = 0.15,
        high: float = 0.9,
        noise: float = 0.03,
        periods: float = 1.0,
        seed: int = 2016,
        name: str = "diurnal",
    ) -> "LoadTrace":
        """A smooth day/night curve: trough ``low``, peak ``high``.

        The defaults model one day in 30-minute steps, the canonical
        interactive-service shape (morning ramp, evening peak, night
        trough) plus small Gaussian measurement noise.
        """
        rng = np.random.default_rng(seed)
        phase = 2.0 * math.pi * periods * (np.arange(steps) + 0.5) / steps
        base = low + (high - low) * 0.5 * (1.0 - np.cos(phase))
        values = np.clip(base + rng.normal(0.0, noise, steps), 0.0, 1.0)
        return cls(
            name=name, step_seconds=step_seconds, utilization=tuple(map(float, values))
        )

    @classmethod
    def bursty(
        cls,
        steps: int = 120,
        step_seconds: float = 60.0,
        base: float = 0.2,
        burst: float = 0.95,
        burst_start_probability: float = 0.08,
        burst_stop_probability: float = 0.35,
        noise: float = 0.02,
        seed: int = 2016,
        name: str = "bursty",
    ) -> "LoadTrace":
        """A two-state Markov load: quiet baseline with load spikes.

        The chain starts quiet, enters a burst with probability
        ``burst_start_probability`` per step and leaves it with
        probability ``burst_stop_probability``, giving geometrically
        distributed burst lengths -- the memcached-style flash-crowd
        pattern that punishes slow-reacting governors.
        """
        rng = np.random.default_rng(seed)
        values = np.empty(steps, dtype=np.float64)
        in_burst = False
        for index in range(steps):
            if in_burst:
                in_burst = rng.random() >= burst_stop_probability
            else:
                in_burst = rng.random() < burst_start_probability
            level = burst if in_burst else base
            values[index] = level + rng.normal(0.0, noise)
        values = np.clip(values, 0.0, 1.0)
        return cls(
            name=name, step_seconds=step_seconds, utilization=tuple(map(float, values))
        )

    @classmethod
    def from_bitbrains(
        cls,
        steps: int = 288,
        step_seconds: float = 300.0,
        vms_per_step: int = 32,
        target_mean: float = 0.45,
        model: BitbrainsTraceModel | None = None,
        seed: int = 2016,
        name: str = "bitbrains",
    ) -> "LoadTrace":
        """A utilisation replay derived from the Bitbrains population.

        Each 300-second step (the dataset's sampling interval) draws
        ``vms_per_step`` VMs from the synthetic Bitbrains population
        and consolidates their CPU utilisations onto the server; a
        diurnal envelope reproduces the business-hours swing of the
        dataset's business-critical VMs.  ``target_mean`` rescales the
        consolidated signal so the server runs at a realistic average
        load; the result is clipped to ``[0, 1]``.
        """
        if model is None:
            model = BitbrainsTraceModel(seed=seed)
        cpu = np.array(
            [sample.cpu_utilization for sample in model.samples()], dtype=np.float64
        )
        rng = np.random.default_rng(seed)
        draws = rng.integers(0, len(cpu), size=(steps, vms_per_step))
        chunk_means = cpu[draws].mean(axis=1)
        phase = 2.0 * math.pi * (np.arange(steps) + 0.5) / steps
        envelope = 0.55 + 0.45 * 0.5 * (1.0 - np.cos(phase))
        raw = chunk_means * envelope
        raw_mean = float(raw.mean())
        if raw_mean <= 0.0:
            raise ValueError(
                "LoadTrace.from_bitbrains: the sampled VM population is "
                "all-idle (mean CPU utilisation is 0), so the trace cannot "
                f"be rescaled to target_mean={target_mean}; use a model "
                "whose samples carry nonzero cpu_utilization"
            )
        values = np.clip(raw * (target_mean / raw_mean), 0.0, 1.0)
        return cls(
            name=name, step_seconds=step_seconds, utilization=tuple(map(float, values))
        )


LOAD_TRACES = {
    "constant": LoadTrace.constant,
    "diurnal": LoadTrace.diurnal,
    "bursty": LoadTrace.bursty,
    "bitbrains": LoadTrace.from_bitbrains,
}
"""Named trace generators scenario specs can reference (defaults only)."""


def load_trace_by_name(name: str) -> LoadTrace:
    """Build a named trace with its default parameters.

    Raises
    ------
    ValueError
        If ``name`` is unknown; the message lists what is available.
    """
    try:
        factory = LOAD_TRACES[name]
    except KeyError:
        known = ", ".join(sorted(LOAD_TRACES))
        raise ValueError(
            f"unknown load trace {name!r}; known traces: {known}"
        ) from None
    return factory()
