"""Columnar governor-replay results.

A replay produces one row per trace step; :class:`ReplayResult` stores
the rows as NumPy columns (the :class:`~repro.sweep.result.SweepResult`
shape) so energy totals, violation counts and frequency residencies are
vectorised reductions, and exposes :meth:`summary` -- the per-governor
scalars the ``dvfs_replay`` analysis and the golden fixtures pin.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

_FLOAT_COLUMNS = (
    "time_s",
    "utilization",
    "frequency_hz",
    "power_w",
    "energy_j",
    "demand_uips",
    "capacity_uips",
    "served_uips",
)
# QoS metric: degradation for VMs, latency/QoS for scale-out; NaN when
# the model does not define one at the point.
_OPTIONAL_COLUMNS = ("qos_metric",)
_BOOL_COLUMNS = ("qos_ok", "demand_met", "violation")

REPLAY_COLUMNS = ("step",) + _FLOAT_COLUMNS + _OPTIONAL_COLUMNS + _BOOL_COLUMNS


class ReplayResult:
    """Per-step table of one governor replay over one load trace."""

    def __init__(
        self,
        governor_name: str,
        workload_name: str,
        trace_name: str,
        step_seconds: float,
        instructions_per_request: float,
        columns: Dict[str, np.ndarray],
    ):
        missing = [name for name in REPLAY_COLUMNS if name not in columns]
        if missing:
            raise ValueError(f"missing replay columns: {missing}")
        lengths = {name: len(columns[name]) for name in REPLAY_COLUMNS}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"replay columns have unequal lengths: {lengths}")
        self.governor_name = governor_name
        self.workload_name = workload_name
        self.trace_name = trace_name
        self.step_seconds = step_seconds
        self.instructions_per_request = instructions_per_request
        self._columns = {name: columns[name] for name in REPLAY_COLUMNS}

    # -- access -----------------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """The backing array of ``name`` (zero-copy)."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"unknown replay column {name!r}; available: {REPLAY_COLUMNS}"
            ) from None

    def __len__(self) -> int:
        return len(self._columns["step"])

    def to_dicts(self) -> List[Dict[str, object]]:
        """All steps as plain JSON-able dicts, in step order."""
        rows: List[Dict[str, object]] = []
        for index in range(len(self)):
            row: Dict[str, object] = {"step": int(self._columns["step"][index])}
            for name in _FLOAT_COLUMNS:
                row[name] = float(self._columns[name][index])
            for name in _OPTIONAL_COLUMNS:
                value = float(self._columns[name][index])
                row[name] = None if math.isnan(value) else value
            for name in _BOOL_COLUMNS:
                row[name] = bool(self._columns[name][index])
            rows.append(row)
        return rows

    # -- reductions -------------------------------------------------------------------

    @property
    def total_energy_j(self) -> float:
        """Energy consumed over the whole replay."""
        return float(self._columns["energy_j"].sum())

    @property
    def mean_power_w(self) -> float:
        """Average power over the replay (steps are equal-length)."""
        return float(self._columns["power_w"].mean())

    @property
    def mean_frequency_hz(self) -> float:
        """Average running frequency."""
        return float(self._columns["frequency_hz"].mean())

    @property
    def total_giga_instructions(self) -> float:
        """User work actually served over the replay, in 10^9 instructions."""
        served = self._columns["served_uips"].sum() * self.step_seconds
        return float(served / 1.0e9)

    @property
    def energy_per_giga_instruction_j(self) -> float | None:
        """Energy per 10^9 served instructions (None when nothing ran)."""
        work = self.total_giga_instructions
        return self.total_energy_j / work if work > 0 else None

    @property
    def total_requests(self) -> float | None:
        """Requests served (None for workloads without a request size)."""
        if self.instructions_per_request <= 0:
            return None
        served = self._columns["served_uips"].sum() * self.step_seconds
        return float(served / self.instructions_per_request)

    @property
    def energy_per_request_j(self) -> float | None:
        """Energy per served request (None when undefined)."""
        requests = self.total_requests
        if requests is None or requests <= 0:
            return None
        return self.total_energy_j / requests

    @property
    def violation_count(self) -> int:
        """Steps where the QoS bound or the offered load was missed."""
        return int(self._columns["violation"].sum())

    @property
    def violation_fraction(self) -> float:
        """Fraction of steps in violation."""
        return self.violation_count / len(self) if len(self) else 0.0

    def residency(self) -> Dict[float, float]:
        """Fraction of steps spent at each frequency, ascending."""
        frequencies = self._columns["frequency_hz"]
        values, counts = np.unique(frequencies, return_counts=True)
        return {
            float(value): float(count) / len(self)
            for value, count in zip(values, counts)
        }

    def summary(self) -> Dict[str, object]:
        """The replay's scalar outcomes (what the golden fixtures pin)."""
        return {
            "governor": self.governor_name,
            "workload": self.workload_name,
            "trace": self.trace_name,
            "steps": len(self),
            "step_seconds": self.step_seconds,
            "total_energy_j": self.total_energy_j,
            "mean_power_w": self.mean_power_w,
            "mean_frequency_hz": self.mean_frequency_hz,
            "distinct_frequencies": len(self.residency()),
            "total_giga_instructions": self.total_giga_instructions,
            "energy_per_giga_instruction_j": self.energy_per_giga_instruction_j,
            "total_requests": self.total_requests,
            "energy_per_request_j": self.energy_per_request_j,
            "violation_count": self.violation_count,
            "violation_fraction": self.violation_fraction,
        }

    def __repr__(self) -> str:
        return (
            f"ReplayResult({self.governor_name!r} x {self.workload_name!r} "
            f"on {self.trace_name!r}, {len(self)} steps, "
            f"{self.total_energy_j:.0f} J, {self.violation_count} violations)"
        )
