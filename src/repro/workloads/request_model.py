"""Per-request service model for scale-out applications.

The paper's latency methodology (Section V-A) rests on one invariant:
"the number of user instructions executed per request remains constant
across any contention point".  A request's service time at a given
operating point is therefore::

    service_time(f) = instructions_per_request / UIPS_core(f)

and the measured 99th-percentile latency scales with the inverse of the
per-core throughput.  This module implements that service-time model
plus a log-normal service-time distribution (parameterised by the
workload's coefficient of variation) used by the queueing extensions to
study loaded servers and consolidation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive
from repro.workloads.base import WorkloadCharacteristics


@dataclass(frozen=True)
class RequestServiceModel:
    """Service-time model of one scale-out application."""

    workload: WorkloadCharacteristics

    def __post_init__(self) -> None:
        if not self.workload.is_scale_out:
            raise ValueError(
                f"{self.workload.name} is not a scale-out workload; "
                "request-level modelling only applies to scale-out applications"
            )

    def mean_service_time(self, core_uips: float) -> float:
        """Mean service time in seconds at a per-core throughput of ``core_uips``."""
        check_positive("core_uips", core_uips)
        return self.workload.instructions_per_request / core_uips

    def lognormal_parameters(self, core_uips: float) -> tuple:
        """(mu, sigma) of the log-normal service-time distribution."""
        mean = self.mean_service_time(core_uips)
        cv = self.workload.service_time_cv
        sigma_squared = math.log(1.0 + cv * cv)
        mu = math.log(mean) - 0.5 * sigma_squared
        return mu, math.sqrt(sigma_squared)

    def percentile_service_time(self, core_uips: float, percentile: float) -> float:
        """Service time at ``percentile`` (0..100) of the distribution."""
        if not (0.0 < percentile < 100.0):
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        mu, sigma = self.lognormal_parameters(core_uips)
        z = _normal_quantile(percentile / 100.0)
        return math.exp(mu + sigma * z)

    def service_rate(self, core_uips: float) -> float:
        """Requests per second one core sustains at ``core_uips``."""
        return 1.0 / self.mean_service_time(core_uips)


def _normal_quantile(probability: float) -> float:
    """Quantile of the standard normal distribution (Acklam's approximation)."""
    if not (0.0 < probability < 1.0):
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    # Coefficients for the rational approximations.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    p_high = 1.0 - p_low
    if probability < p_low:
        q = math.sqrt(-2.0 * math.log(probability))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if probability > p_high:
        q = math.sqrt(-2.0 * math.log(1.0 - probability))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = probability - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )
