"""CloudSuite-like scale-out workload characteristics.

The four applications the paper evaluates (Section III-A1), with
characteristics calibrated against the published CloudSuite
characterisation ("Clearing the Clouds", ASPLOS 2012) and the QoS
limits the paper assumes (Section V-A):

========================  ==========  =====================================
Application               QoS limit   Behaviour captured
========================  ==========  =====================================
Data Serving (NoSQL)       20 ms      pointer-chasing, high MPKI, low MLP
Web Search                200 ms      large instruction footprint, moderate
                                      memory intensity
Web Serving               200 ms      dynamic content, branchy, moderate MPKI
Media Streaming           100 ms      streaming access, high MLP, low CPI
========================  ==========  =====================================

The baseline 99th-percentile latencies stand in for the paper's
measurements on an Intel i7-4785T at 2GHz in a near-zero-contention
configuration; they are chosen so each application's QoS crossover falls
in the 200-500MHz range the paper reports.
"""

from __future__ import annotations

from typing import Dict

from repro.utils.units import MB
from repro.workloads.base import WorkloadCharacteristics, WorkloadClass

NOMINAL_FREQUENCY_HZ = 2.0e9
"""Core frequency at which the baseline latencies are quoted."""


DATA_SERVING = WorkloadCharacteristics(
    name="Data Serving",
    workload_class=WorkloadClass.SCALE_OUT,
    base_cpi=0.80,
    branch_fraction=0.18,
    branch_predictability=0.85,
    l1_mpki=45.0,
    llc_mpki=12.0,
    memory_level_parallelism=1.6,
    activity_factor=0.70,
    write_fraction=0.30,
    instructions_per_request=200.0e3,
    minimum_latency_99th_seconds=6.0e-3,
    qos_limit_seconds=20.0e-3,
    memory_footprint_bytes=8192 * MB,
    service_time_cv=1.4,
)

WEB_SEARCH = WorkloadCharacteristics(
    name="Web Search",
    workload_class=WorkloadClass.SCALE_OUT,
    base_cpi=0.70,
    branch_fraction=0.16,
    branch_predictability=0.90,
    l1_mpki=30.0,
    llc_mpki=6.0,
    memory_level_parallelism=1.8,
    activity_factor=0.75,
    write_fraction=0.15,
    instructions_per_request=8.0e6,
    minimum_latency_99th_seconds=45.0e-3,
    qos_limit_seconds=200.0e-3,
    memory_footprint_bytes=12288 * MB,
    service_time_cv=1.2,
)

WEB_SERVING = WorkloadCharacteristics(
    name="Web Serving",
    workload_class=WorkloadClass.SCALE_OUT,
    base_cpi=0.85,
    branch_fraction=0.20,
    branch_predictability=0.85,
    l1_mpki=35.0,
    llc_mpki=8.0,
    memory_level_parallelism=1.7,
    activity_factor=0.70,
    write_fraction=0.25,
    instructions_per_request=1.0e6,
    minimum_latency_99th_seconds=75.0e-3,
    qos_limit_seconds=200.0e-3,
    memory_footprint_bytes=6144 * MB,
    service_time_cv=1.3,
)

MEDIA_STREAMING = WorkloadCharacteristics(
    name="Media Streaming",
    workload_class=WorkloadClass.SCALE_OUT,
    base_cpi=0.60,
    branch_fraction=0.10,
    branch_predictability=0.95,
    l1_mpki=20.0,
    llc_mpki=10.0,
    memory_level_parallelism=4.0,
    activity_factor=0.65,
    write_fraction=0.10,
    instructions_per_request=2.0e6,
    minimum_latency_99th_seconds=28.0e-3,
    qos_limit_seconds=100.0e-3,
    memory_footprint_bytes=10240 * MB,
    service_time_cv=1.1,
)


def scale_out_workloads() -> Dict[str, WorkloadCharacteristics]:
    """The paper's four scale-out applications, keyed by name."""
    workloads = (DATA_SERVING, WEB_SEARCH, WEB_SERVING, MEDIA_STREAMING)
    return {workload.name: workload for workload in workloads}


def qos_limits_ms() -> Dict[str, float]:
    """QoS limits in milliseconds, as assumed in Section V-A."""
    return {
        workload.name: workload.qos_limit_seconds * 1e3
        for workload in scale_out_workloads().values()
    }
