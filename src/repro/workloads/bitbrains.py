"""Statistical model of the Bitbrains VM traces.

The paper derives its two VM memory-provisioning classes (100MB
low-memory and 700MB high-memory) from the Bitbrains dataset of 1750
business-critical VMs (Shen et al., CCGrid 2015).  The raw traces are
not redistributable, so this module provides a statistical generator
that reproduces the published shape of the distribution: memory usage
is heavily right-skewed (log-normal-like) with a large population of
small VMs and a long tail of large ones.

The generator is deterministic given a seed and produces per-VM samples
(memory usage, CPU utilisation) plus the derived class statistics the
paper consumes: the representative low-memory and high-memory
provisioning levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.units import MB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class VmTraceSample:
    """One synthetic VM observation."""

    vm_id: int
    memory_bytes: float
    cpu_utilization: float


@dataclass(frozen=True)
class BitbrainsTraceModel:
    """Synthetic Bitbrains-like VM population.

    Parameters
    ----------
    vm_count:
        Number of VMs in the population (1750 in the dataset).
    seed:
        Seed of the deterministic random generator.
    log_mean / log_sigma:
        Parameters of the log-normal memory-usage distribution, in
        natural-log space of megabytes.  The defaults put the bulk of
        VMs around 100MB of actively used memory with a tail reaching
        several GB, consistent with the published characterisation.
    """

    vm_count: int = 1750
    seed: int = 2016
    log_mean: float = 4.7
    log_sigma: float = 1.4

    def __post_init__(self) -> None:
        check_positive("vm_count", self.vm_count)
        check_positive("log_sigma", self.log_sigma)

    def samples(self) -> List[VmTraceSample]:
        """Generate the synthetic VM population."""
        rng = np.random.default_rng(self.seed)
        memory_mb = rng.lognormal(self.log_mean, self.log_sigma, self.vm_count)
        cpu = np.clip(rng.beta(2.0, 5.0, self.vm_count), 0.01, 1.0)
        return [
            VmTraceSample(
                vm_id=index,
                memory_bytes=float(memory_mb[index]) * MB,
                cpu_utilization=float(cpu[index]),
            )
            for index in range(self.vm_count)
        ]

    def memory_percentile(self, percentile: float) -> float:
        """Memory usage (bytes) at the given percentile of the population."""
        if not (0.0 <= percentile <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {percentile}")
        values = np.array([sample.memory_bytes for sample in self.samples()])
        return float(np.percentile(values, percentile))

    def representative_classes(self) -> dict:
        """Low-memory / high-memory provisioning levels (bytes).

        Following the paper, the low-memory class provisions for the
        typical (median) VM and the high-memory class for the heavy
        (90th percentile) VMs; the defaults land near the paper's 100MB
        and 700MB figures.
        """
        return {
            "low-mem": self.memory_percentile(50.0),
            "high-mem": self.memory_percentile(90.0),
        }

    def class_populations(self, threshold_bytes: float = 300 * MB) -> dict:
        """Number of VMs below/above a provisioning threshold."""
        check_positive("threshold_bytes", threshold_bytes)
        samples = self.samples()
        low = sum(1 for sample in samples if sample.memory_bytes <= threshold_bytes)
        return {"low-mem": low, "high-mem": len(samples) - low}
