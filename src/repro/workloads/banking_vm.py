"""Synthetic virtualized banking workloads (VMs low-mem / high-mem).

The paper's virtualized applications are synthetic VMs performing batch
financial analysis -- "mainly based on matrix multiplication and
manipulation" -- whose CPU and memory utilisation can be tuned, with the
memory provisioning derived from the Bitbrains production traces
(Section III-A2): a 100MB low-memory class and a 700MB high-memory
class.  The paper observes that the high-memory VMs are also more
CPU-bound and achieve a higher UIPS than the low-memory VMs.

Their QoS is a bound on the batch execution-time degradation relative
to the 2GHz operating point: at most 2x in the strict case and 4x in
the relaxed case reported by the industrial partners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.utils.units import MB
from repro.utils.validation import check_fraction, check_positive
from repro.workloads.base import WorkloadCharacteristics, WorkloadClass

DEGRADATION_LIMIT_STRICT = 2.0
"""Minimum degradation bound observed in production data centres."""

DEGRADATION_LIMIT_RELAXED = 4.0
"""Maximum acceptable degradation bound (public-cloud scenario)."""


VMS_LOW_MEM = WorkloadCharacteristics(
    name="VMs low-mem",
    workload_class=WorkloadClass.VIRTUALIZED,
    base_cpi=0.50,
    branch_fraction=0.10,
    branch_predictability=0.95,
    l1_mpki=6.0,
    llc_mpki=0.5,
    memory_level_parallelism=3.0,
    activity_factor=0.85,
    write_fraction=0.30,
    memory_footprint_bytes=100 * MB,
)

VMS_HIGH_MEM = WorkloadCharacteristics(
    name="VMs high-mem",
    workload_class=WorkloadClass.VIRTUALIZED,
    base_cpi=0.44,
    branch_fraction=0.08,
    branch_predictability=0.95,
    l1_mpki=5.0,
    llc_mpki=0.8,
    memory_level_parallelism=3.5,
    activity_factor=0.90,
    write_fraction=0.35,
    memory_footprint_bytes=700 * MB,
)


def virtualized_workloads() -> Dict[str, WorkloadCharacteristics]:
    """The paper's two VM classes, keyed by name."""
    return {VMS_LOW_MEM.name: VMS_LOW_MEM, VMS_HIGH_MEM.name: VMS_HIGH_MEM}


@dataclass(frozen=True)
class BankingVmGenerator:
    """Generates tuned banking-VM workload variants.

    The paper tunes the synthetic banking application "to obtain various
    CPU and memory stress levels for the containers" and runs the
    experiments at worst-case (maximum CPU utilisation).  This generator
    produces :class:`WorkloadCharacteristics` variants across those
    tuning axes so consolidation and sensitivity studies have a
    population of VMs to draw from.

    Parameters
    ----------
    cpu_utilization:
        Target CPU utilisation of the VM (1.0 = fully compute busy).
    memory_intensity:
        Relative off-chip intensity (1.0 = the base class profile).
    base:
        The VM class to derive from.
    """

    cpu_utilization: float = 1.0
    memory_intensity: float = 1.0
    base: WorkloadCharacteristics = VMS_LOW_MEM

    def __post_init__(self) -> None:
        check_fraction("cpu_utilization", self.cpu_utilization)
        check_positive("memory_intensity", self.memory_intensity)

    def build(self, name: str | None = None) -> WorkloadCharacteristics:
        """Materialise the tuned VM characteristics."""
        scaled = self.base.scaled_intensity(self.memory_intensity)
        activity = max(0.05, self.base.activity_factor * self.cpu_utilization)
        label = name or (
            f"{self.base.name} (cpu={self.cpu_utilization:.0%}, "
            f"mem x{self.memory_intensity:g})"
        )
        return WorkloadCharacteristics(
            name=label,
            workload_class=WorkloadClass.VIRTUALIZED,
            base_cpi=self.base.base_cpi / max(self.cpu_utilization, 0.05),
            branch_fraction=self.base.branch_fraction,
            branch_predictability=self.base.branch_predictability,
            l1_mpki=scaled.l1_mpki,
            llc_mpki=scaled.llc_mpki,
            memory_level_parallelism=self.base.memory_level_parallelism,
            activity_factor=activity,
            write_fraction=self.base.write_fraction,
            memory_footprint_bytes=self.base.memory_footprint_bytes,
        )

    def sweep(self, utilizations: List[float]) -> List[WorkloadCharacteristics]:
        """Build one VM per requested CPU utilisation level."""
        return [
            BankingVmGenerator(
                cpu_utilization=utilization,
                memory_intensity=self.memory_intensity,
                base=self.base,
            ).build()
            for utilization in utilizations
        ]
