"""Workload characterisation record.

A :class:`WorkloadCharacteristics` instance carries everything the
performance, power and latency models need to know about an
application.  The values for the concrete workloads live in
:mod:`repro.workloads.cloudsuite` and :mod:`repro.workloads.banking_vm`
and are calibrated against published CloudSuite characterisation data
and the paper's own observations (memory-boundedness ordering, UIPS
ordering of the VM classes, QoS limits).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.utils.units import MB
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)


class WorkloadClass(enum.Enum):
    """Deployment class of a workload."""

    SCALE_OUT = "scale-out"
    VIRTUALIZED = "virtualized"


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Architecture-level characteristics of one application.

    Attributes
    ----------
    name:
        Human-readable workload name.
    workload_class:
        Scale-out (latency critical) or virtualized (batch).
    base_cpi:
        Cycles per instruction with a perfect memory system beyond L1.
    branch_fraction:
        Fraction of instructions that are branches.
    branch_predictability:
        1.0 = well predicted; lower values scale the miss rate up.
    l1_mpki:
        L1 (I+D) misses per kilo-instruction.
    llc_mpki:
        LLC misses per kilo-instruction (off-chip references).
    memory_level_parallelism:
        Intrinsic overlap of the workload's off-chip miss stream.
    activity_factor:
        Switching activity relative to the power-virus level used by the
        dynamic power model.
    write_fraction:
        Fraction of off-chip traffic that is writes (dirty evictions).
    instructions_per_request:
        User instructions needed to serve one request (scale-out only).
        The paper's latency scaling relies on this being independent of
        the operating point.
    minimum_latency_99th_seconds:
        99th-percentile request latency measured at the nominal 2GHz
        operating point in a near-zero-contention setup (scale-out only).
    qos_limit_seconds:
        Tail-latency QoS limit (scale-out only).
    memory_footprint_bytes:
        Resident memory footprint (VM provisioning for the virtualized
        class; dataset working size for scale-out).
    service_time_cv:
        Coefficient of variation of the per-request service time,
        used by the queueing extensions.
    """

    name: str
    workload_class: WorkloadClass
    base_cpi: float
    branch_fraction: float
    branch_predictability: float
    l1_mpki: float
    llc_mpki: float
    memory_level_parallelism: float
    activity_factor: float
    write_fraction: float
    instructions_per_request: float = 0.0
    minimum_latency_99th_seconds: float = 0.0
    qos_limit_seconds: float = 0.0
    memory_footprint_bytes: float = 100 * MB
    service_time_cv: float = 1.0

    def __post_init__(self) -> None:
        check_positive("base_cpi", self.base_cpi)
        check_fraction("branch_fraction", self.branch_fraction)
        check_fraction("branch_predictability", self.branch_predictability)
        check_non_negative("l1_mpki", self.l1_mpki)
        check_non_negative("llc_mpki", self.llc_mpki)
        if self.llc_mpki > self.l1_mpki:
            raise ValueError(
                f"{self.name}: llc_mpki ({self.llc_mpki}) cannot exceed "
                f"l1_mpki ({self.l1_mpki})"
            )
        check_positive("memory_level_parallelism", self.memory_level_parallelism)
        check_fraction("activity_factor", self.activity_factor)
        check_fraction("write_fraction", self.write_fraction)
        check_non_negative("instructions_per_request", self.instructions_per_request)
        check_non_negative(
            "minimum_latency_99th_seconds", self.minimum_latency_99th_seconds
        )
        check_non_negative("qos_limit_seconds", self.qos_limit_seconds)
        check_positive("memory_footprint_bytes", self.memory_footprint_bytes)
        check_positive("service_time_cv", self.service_time_cv)
        if self.is_scale_out:
            if self.qos_limit_seconds <= 0.0:
                raise ValueError(f"{self.name}: scale-out workloads need a QoS limit")
            if self.minimum_latency_99th_seconds <= 0.0:
                raise ValueError(
                    f"{self.name}: scale-out workloads need a baseline latency"
                )
            if self.minimum_latency_99th_seconds >= self.qos_limit_seconds:
                raise ValueError(
                    f"{self.name}: baseline latency must be below the QoS limit"
                )

    # -- convenience ------------------------------------------------------------

    @property
    def is_scale_out(self) -> bool:
        """True for latency-critical scale-out applications."""
        return self.workload_class is WorkloadClass.SCALE_OUT

    @property
    def is_virtualized(self) -> bool:
        """True for batch virtualized applications."""
        return self.workload_class is WorkloadClass.VIRTUALIZED

    @property
    def qos_headroom_at_nominal(self) -> float:
        """QoS limit divided by the nominal-frequency baseline latency."""
        if not self.is_scale_out:
            return float("inf")
        return self.qos_limit_seconds / self.minimum_latency_99th_seconds

    def off_chip_bytes_per_instruction(self, line_bytes: int = 64) -> float:
        """Average DRAM bytes moved per committed user instruction."""
        fills = self.llc_mpki / 1000.0
        writebacks = fills * self.write_fraction
        return (fills + writebacks) * line_bytes

    def with_footprint(self, memory_footprint_bytes: float) -> "WorkloadCharacteristics":
        """Copy of the workload with a different memory footprint."""
        return replace(self, memory_footprint_bytes=memory_footprint_bytes)

    def scaled_intensity(self, factor: float) -> "WorkloadCharacteristics":
        """Copy with the off-chip intensity scaled by ``factor``.

        Used by sensitivity studies: scales both the L1 and LLC miss
        densities while keeping their ratio.
        """
        check_positive("factor", factor)
        return replace(
            self,
            name=f"{self.name} (x{factor:g} memory intensity)",
            l1_mpki=self.l1_mpki * factor,
            llc_mpki=self.llc_mpki * factor,
        )
